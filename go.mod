module stacksync

go 1.22
