// Package stacksync's root benchmarks regenerate the paper's evaluation:
// one testing.B benchmark per table and figure (§5). Run them with
//
//	go test -bench=. -benchmem
//
// Each benchmark reports experiment-specific metrics through b.ReportMetric
// so the published shape is visible straight from the bench output; the
// full row/series printouts come from `go run ./cmd/experiments`.
package stacksync_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stacksync/internal/bench"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/obs"
	"stacksync/internal/trace"
	"stacksync/internal/wire"
)

// benchTrace is a reduced §5.2.1 trace: same generator, same distributions,
// fewer snapshots so a bench iteration stays in seconds.
func benchTrace() trace.GenConfig {
	return trace.GenConfig{Seed: 1, InitialFiles: 5, TrainIterations: 2, Snapshots: 12, BirthMean: 4}
}

// BenchmarkFig7aTraceGeneration regenerates Fig. 7(a): the benchmark trace
// and its file-size CDF.
func BenchmarkFig7aTraceGeneration(b *testing.B) {
	var under4MB float64
	for i := 0; i < b.N; i++ {
		res := bench.RunFig7a(trace.GenConfig{Seed: int64(i + 1)})
		for _, p := range res.Points {
			if p.Value == float64(4<<20) {
				under4MB = p.Fraction
			}
		}
	}
	b.ReportMetric(under4MB, "P(size<=4MB)")
}

// BenchmarkFig7bProtocolOverhead regenerates Fig. 7(b): total traffic over
// benchmark volume for StackSync (measured) vs the five provider models.
func BenchmarkFig7bProtocolOverhead(b *testing.B) {
	tr := trace.Generate(benchTrace())
	var stacksync, dropbox float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7b(tr)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Provider {
			case "StackSync":
				stacksync = row.Overhead
			case "Dropbox":
				dropbox = row.Overhead
			}
		}
	}
	b.ReportMetric(stacksync, "stacksync-overhead-x")
	b.ReportMetric(dropbox, "dropbox-overhead-x")
}

// BenchmarkFig7cControlTraffic regenerates Fig. 7(c): per-action control
// traffic, StackSync vs Dropbox.
func BenchmarkFig7cControlTraffic(b *testing.B) {
	tr := trace.Generate(benchTrace())
	var ssAdd, dbAdd float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7cd(tr)
		if err != nil {
			b.Fatal(err)
		}
		ssAdd = float64(res.StackSyncControl["ADD"])
		dbAdd = float64(res.DropboxControl["ADD"])
	}
	b.ReportMetric(ssAdd/1e3, "stacksync-ADD-ctl-KB")
	b.ReportMetric(dbAdd/1e3, "dropbox-ADD-ctl-KB")
}

// BenchmarkFig7dStorageTraffic regenerates Fig. 7(d): per-action storage
// traffic, StackSync vs Dropbox (delta encoding wins on UPDATE).
func BenchmarkFig7dStorageTraffic(b *testing.B) {
	tr := trace.Generate(benchTrace())
	var ssUpd, dbUpd float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7cd(tr)
		if err != nil {
			b.Fatal(err)
		}
		ssUpd = float64(res.StackSyncStorage["UPDATE"])
		dbUpd = float64(res.DropboxStorage["UPDATE"])
	}
	b.ReportMetric(ssUpd/1e6, "stacksync-UPD-stor-MB")
	b.ReportMetric(dbUpd/1e6, "dropbox-UPD-stor-MB")
}

// BenchmarkTable2Bundling regenerates Table 2: the effect of file bundling
// on control traffic at batch sizes 5..40.
func BenchmarkTable2Bundling(b *testing.B) {
	tr := trace.Generate(benchTrace())
	var ctl5, ctl40 float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable2(tr)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Provider == "StackSync" && row.BatchSize == 5 {
				ctl5 = float64(row.ControlBytes)
			}
			if row.Provider == "StackSync" && row.BatchSize == 40 {
				ctl40 = float64(row.ControlBytes)
			}
		}
	}
	b.ReportMetric(ctl5/1e3, "stacksync-batch5-ctl-KB")
	b.ReportMetric(ctl40/1e3, "stacksync-batch40-ctl-KB")
}

// BenchmarkFig7eSyncTime regenerates Fig. 7(e): time to bring six devices in
// sync per action type.
func BenchmarkFig7eSyncTime(b *testing.B) {
	var addMedian, removeMedian float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7e(40, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		addMedian = res.Boxplots["ADD"].Median
		removeMedian = res.Boxplots["REMOVE"].Median
	}
	b.ReportMetric(addMedian*1000, "ADD-median-ms")
	b.ReportMetric(removeMedian*1000, "REMOVE-median-ms")
}

// BenchmarkFig7fSizeSweep regenerates Fig. 7(f): sync time vs file size.
func BenchmarkFig7fSizeSweep(b *testing.B) {
	var small, large float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7f(2)
		if err != nil {
			b.Fatal(err)
		}
		small = res.Points[0].MeanSec
		large = res.Points[len(res.Points)-1].MeanSec
	}
	b.ReportMetric(small*1000, "128KB-ms")
	b.ReportMetric(large*1000, "8MB-ms")
}

// BenchmarkFig8aAutoScaling regenerates Fig. 8(a,b): the day-8 UB1 replay
// under predictive+reactive provisioning.
func BenchmarkFig8aAutoScaling(b *testing.B) {
	var maxInstances, violations float64
	for i := 0; i < b.N; i++ {
		res := bench.RunFig8ab(int64(i + 1))
		maxInstances = float64(res.MaxInstances())
		violations = res.ViolationFraction() * 100
	}
	b.ReportMetric(maxInstances, "max-instances")
	b.ReportMetric(violations, "sla-violations-%")
}

// BenchmarkFig8cMisprediction regenerates Fig. 8(c–e): the fooled predictor
// corrected by the reactive layer.
func BenchmarkFig8cMisprediction(b *testing.B) {
	var earlyP95, lateP95 float64
	for i := 0; i < b.N; i++ {
		res := bench.RunFig8cde(int64(i + 1))
		earlyP95 = res.Minutes[2].P95RespMs
		lateP95 = res.Minutes[10].P95RespMs
	}
	b.ReportMetric(earlyP95, "mispredicted-p95-ms")
	b.ReportMetric(lateP95, "corrected-p95-ms")
}

// BenchmarkFig8fFaultTolerance regenerates Fig. 8(f): commit response times
// with the SyncService instance crashing on a schedule.
func BenchmarkFig8fFaultTolerance(b *testing.B) {
	var steady, crashed float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8f(bench.Fig8fConfig{
			Duration:   4 * time.Second,
			CrashEvery: 1200 * time.Millisecond,
			CheckEvery: 100 * time.Millisecond,
			CommitGap:  10 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		steady = res.Steady.Median * 1000
		crashed = res.Crashed.Median * 1000
	}
	b.ReportMetric(steady, "steady-median-ms")
	b.ReportMetric(crashed, "crashed-median-ms")
}

// commitWorkload drives one fixed metadata workload — 8 workspaces × 4
// writers per workspace × 16 commits per writer, every commit durable through
// the WAL — against a store with the given shard count. With parallel=false
// the same commits run from a single goroutine, which is the pre-sharding
// behaviour: each commit waits out its own WAL flush before the next starts.
// Parallel committers instead share group-commit flushes, so the win this
// benchmark shows is flush amortisation plus cross-workspace concurrency.
func commitWorkload(b *testing.B, shards int, parallel bool) {
	const (
		nWorkspaces = 8
		nWriters    = 4
		nCommits    = 16
	)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err := metastore.OpenWAL(filepath.Join(b.TempDir(), "wal.log"))
		if err != nil {
			b.Fatal(err)
		}
		st := metastore.NewStore(metastore.WithWAL(w), metastore.WithShards(shards))
		for ws := 0; ws < nWorkspaces; ws++ {
			if err := st.CreateWorkspace(metastore.Workspace{ID: fmt.Sprintf("ws-%d", ws), Owner: "bench"}); err != nil {
				b.Fatal(err)
			}
		}
		write := func(ws, wr int) error {
			for v := uint64(1); v <= nCommits; v++ {
				_, err := st.CommitVersion(metastore.ItemVersion{
					Workspace: fmt.Sprintf("ws-%d", ws),
					ItemID:    fmt.Sprintf("item-%d", wr),
					Path:      fmt.Sprintf("/bench/%d", wr),
					Version:   v,
					Status:    metastore.Modified,
					DeviceID:  fmt.Sprintf("dev-%d", wr),
					Checksum:  fmt.Sprintf("c%d", v),
				})
				if err != nil {
					return err
				}
			}
			return nil
		}
		b.StartTimer()
		if parallel {
			var wg sync.WaitGroup
			var mu sync.Mutex
			var firstErr error
			for ws := 0; ws < nWorkspaces; ws++ {
				for wr := 0; wr < nWriters; wr++ {
					wg.Add(1)
					go func(ws, wr int) {
						defer wg.Done()
						if err := write(ws, wr); err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
						}
					}(ws, wr)
				}
			}
			wg.Wait()
			if firstErr != nil {
				b.Fatal(firstErr)
			}
		} else {
			for ws := 0; ws < nWorkspaces; ws++ {
				for wr := 0; wr < nWriters; wr++ {
					if err := write(ws, wr); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	total := float64(b.N) * nWorkspaces * nWriters * nCommits
	b.ReportMetric(total/b.Elapsed().Seconds(), "commits/s")
}

// BenchmarkCommitParallelWorkspaces measures the sharded metadata hot path:
// serial is the baseline (one committer, one WAL flush per record), and the
// shards=N legs run 8 workspaces × 4 goroutines each against the sharded
// store with group-commit. The issue's acceptance bar is shards=16 ≥ 2× the
// serial baseline's commits/s.
func BenchmarkCommitParallelWorkspaces(b *testing.B) {
	b.Run("serial", func(b *testing.B) { commitWorkload(b, 1, false) })
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			commitWorkload(b, shards, true)
		})
	}
}

// BenchmarkTransferPipeline measures the client's chunk upload throughput
// over the simulated store (1 ms per request, per object): serial is the
// one-chunk-at-a-time baseline (1 worker, batch 1), pipelined is the
// default-shaped pipeline (8 workers × 16-chunk batches with the
// server-assisted dedup probe folded into each batch). benchcmp gates on
// the pipelined MB/s metric; the issue's acceptance bar is pipelined >= 3x
// serial.
func BenchmarkTransferPipeline(b *testing.B) {
	run := func(b *testing.B, workers, batch int) {
		var mbps float64
		for i := 0; i < b.N; i++ {
			res, err := bench.RunTransferPipeline(bench.TransferOptions{
				Chunks: 128, ChunkSize: 8 << 10,
				Workers: workers, Batch: batch,
				PerRequest: 2 * time.Millisecond,
				Seed:       int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			mbps = res.MBps()
		}
		b.ReportMetric(mbps, "MB/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, 1) })
	b.Run("pipelined", func(b *testing.B) { run(b, 8, 16) })
}

// BenchmarkMultiInstanceCommit measures routed commit throughput through the
// workspace-affinity path: a compressed UB1 day-8 peak-hour slice replayed as
// synchronous routed commitRequests over a fleet of 1 vs 4 SyncService
// instances. Every iteration asserts the robustness contract (no failed and
// no lost acked commits) before reporting; benchcmp gates on the 4-instance
// commits/min metric.
func BenchmarkMultiInstanceCommit(b *testing.B) {
	run := func(b *testing.B, instances int) {
		var rate, p99ms float64
		for i := 0; i < b.N; i++ {
			res, err := bench.RunUB1Multi(bench.UB1MultiConfig{
				Seed:       int64(i + 1),
				Instances:  instances,
				Commits:    600,
				Committers: 8,
				Duration:   time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed > 0 || res.Lost > 0 {
				b.Fatalf("routed replay broke durability: %d failed, %d lost", res.Failed, res.Lost)
			}
			rate = res.RatePerMinute
			p99ms = float64(res.P99) / 1e6
		}
		b.ReportMetric(rate, "commits/min")
		b.ReportMetric(p99ms, "p99-ms")
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("instances=%d", n), func(b *testing.B) { run(b, n) })
	}
}

// BenchmarkFleetObs measures the fleet-observability plumbing on its own:
// one full Collector scrape plus rollup over a 4-instance fleet whose span
// sinks, metric registries and hot-workspace sketches are warm. No brokers,
// no RPC — pure collector overhead, so the trend gate catches a scrape that
// starts walking spans quadratically or allocating per metric. The steady
// state after the first iteration is the poller's real cost: every span is
// already deduplicated, so the loop pays the re-scan, the metric snapshot
// and the top-K merge.
func BenchmarkFleetObs(b *testing.B) {
	const (
		instances = 4
		traces    = 64
		children  = 4
	)
	col := obs.NewCollector()
	for i := 0; i < instances; i++ {
		id := fmt.Sprintf("inst-%d", i)
		reg := obs.NewRegistry()
		for m := 0; m < 16; m++ {
			reg.Counter(fmt.Sprintf("bench_metric_%d", m)).Add(uint64(m + 1))
		}
		sink := obs.NewSpanSink(0)
		tracer := obs.NewTracer(obs.WithSink(sink), obs.WithInstance(id))
		for t := 0; t < traces; t++ {
			root := tracer.StartRoot(fmt.Sprintf("bench.op.%d", t))
			for c := 0; c < children; c++ {
				child := tracer.StartChild(root.Context(), "bench.step")
				child.Annotate("step", fmt.Sprint(c))
				child.End()
			}
			root.End()
		}
		hot := obs.NewHotStats(8)
		for w := 0; w < 64; w++ {
			hot.ObserveCommit(fmt.Sprintf("ws-%d", w%12), 4, 4096)
		}
		col.Register(obs.Source{InstanceID: id, Registry: reg, Sink: sink, Hot: hot})
	}
	col.Collect() // absorb the warm spans once; iterations measure steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Collect()
		if got := len(col.Rollup().Instances); got != instances {
			b.Fatalf("rollup lost instances: %d != %d", got, instances)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "scrapes/s")
}

// BenchmarkMQPublishThroughput measures raw broker publish throughput into a
// fanout exchange with 8 bound queues, per-message vs batched (the path the
// SyncService's pipelined notification fan-out uses). benchcmp gates on the
// msgs/s metric.
func BenchmarkMQPublishThroughput(b *testing.B) {
	const (
		queues = 8
		batch  = 64
	)
	run := func(b *testing.B, batched bool) {
		br := mq.NewBroker()
		defer br.Close()
		if err := br.DeclareExchange("fan", mq.Fanout); err != nil {
			b.Fatal(err)
		}
		for q := 0; q < queues; q++ {
			name := fmt.Sprintf("q%d", q)
			if err := br.DeclareQueue(name); err != nil {
				b.Fatal(err)
			}
			if err := br.BindQueue(name, "fan", ""); err != nil {
				b.Fatal(err)
			}
		}
		payload := make([]byte, 256)
		pubs := make([]mq.Publication, batch)
		for i := range pubs {
			pubs[i] = mq.Publication{Exchange: "fan", Message: mq.Message{Body: payload}}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if batched {
				if err := mq.PublishAll(br, pubs); err != nil {
					b.Fatal(err)
				}
			} else {
				for j := 0; j < batch; j++ {
					if err := br.Publish("fan", "", mq.Message{Body: payload}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "msgs/s")
	}
	b.Run("single", func(b *testing.B) { run(b, false) })
	b.Run("batch", func(b *testing.B) { run(b, true) })
}

// BenchmarkWireFrameCodec measures frame encode+decode throughput for the
// binary (v2) framing against the legacy JSON framing over an in-memory
// stream — the broker→proxy wire hot path minus the TCP stack. The frame
// shape is a typical delivery: routed headers plus a 256-byte body.
// benchcmp gates on the binary leg's frames/s and allocs/op.
func BenchmarkWireFrameCodec(b *testing.B) {
	frame := &wire.Frame{
		Op: wire.OpDeliver, Queue: "sync.requests", ConsumerID: "c1",
		DeliveryID: 42, MessageID: "m-12345",
		Headers:    map[string]string{"codec": "bin", "x-route-key": "ws-7"},
		Body:       make([]byte, 256),
		Persistent: true,
	}
	run := func(b *testing.B, format wire.Format) {
		var buf bytes.Buffer
		w := wire.NewWriterFormat(&buf, format)
		r := wire.NewReader(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Write(frame); err != nil {
				b.Fatal(err)
			}
			f, err := r.Read()
			if err != nil {
				b.Fatal(err)
			}
			if f.Op != wire.OpDeliver || len(f.Body) != 256 {
				b.Fatalf("bad frame: %+v", f)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	}
	b.Run("json", func(b *testing.B) { run(b, wire.FormatJSON) })
	b.Run("binary", func(b *testing.B) { run(b, wire.FormatBinary) })
}

// readWriteMix drives 4 writers committing flat out against the MVCC store
// while `readers` goroutines poll workspaces that live on the same shards —
// the structure the pre-MVCC store guarded with one RWMutex per shard, so
// every one of these reads used to contend with the commit path. Each poll
// is a ChangesSince on a read-side workspace (full State scan every 8th
// iteration), with every 16th iteration tailing a written workspace from the
// reader's cursor so the change-log replay path stays in the mix without the
// benchmark degenerating into measuring O(readers x commits) tail-copy
// bandwidth. Polls pace at 10 ms: a reconnecting client issues one resync,
// not a busy-loop, and on a single-core runner unpaced readers would divide
// the CPU ~64:1 against the writers and measure scheduler fairness instead
// of locking. Each b.N iteration runs a fixed workload (4 writers x 8192
// commits against a fresh store) so the derived commits/s is stable at
// -benchtime 1x. The acceptance bar for the lock-free read path (DESIGN §16)
// is readers=256 commits/s within 10% of the readers=0 baseline; the
// pre-MVCC RWMutex store served ~1 commit/s under an unpaced 64:1 storm.
func readWriteMix(b *testing.B, readers int) {
	const (
		writers          = 4
		seedItems        = 64
		commitsPerWriter = 8192
		readPause        = 10 * time.Millisecond
	)
	var reads atomic.Int64
	wsName := func(w int) string { return fmt.Sprintf("ws-%d", w) }
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := metastore.NewStore(metastore.WithShards(4))
		for w := 0; w < 2*writers; w++ { // ws-0..3 written, ws-4..7 read-side
			if err := st.CreateWorkspace(metastore.Workspace{ID: wsName(w), Owner: "bench"}); err != nil {
				b.Fatal(err)
			}
			seed := make([]metastore.ItemVersion, seedItems)
			for k := range seed {
				seed[k] = metastore.ItemVersion{
					Workspace: wsName(w),
					ItemID:    fmt.Sprintf("seed-%d", k),
					Path:      fmt.Sprintf("/seed/%d", k),
					Version:   1,
					Status:    metastore.Added,
				}
			}
			if _, err := st.CommitBatch(seed); err != nil {
				b.Fatal(err)
			}
		}
		stop := make(chan struct{})
		var rwg sync.WaitGroup
		for r := 0; r < readers; r++ {
			rwg.Add(1)
			go func(r int) {
				defer rwg.Done()
				cold := wsName(writers + r%writers)
				hot := wsName(r % writers)
				var coldCursor, hotCursor uint64
				for j := 0; ; j++ {
					select {
					case <-stop:
						return
					default:
					}
					ws, cursor := cold, &coldCursor
					if j%16 == 15 {
						ws, cursor = hot, &hotCursor
					}
					ch, err := st.ChangesSince(ws, *cursor)
					if err != nil {
						return
					}
					*cursor = ch.Version
					if j%8 == 0 {
						if _, err := st.State(ws); err != nil {
							return
						}
					}
					reads.Add(1)
					time.Sleep(readPause)
				}
			}(r)
		}
		var wwg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		b.StartTimer()
		for w := 0; w < writers; w++ {
			wwg.Add(1)
			go func(w int) {
				defer wwg.Done()
				ws := wsName(w)
				for v := uint64(1); v <= commitsPerWriter; v++ {
					_, err := st.CommitVersion(metastore.ItemVersion{
						Workspace: ws,
						ItemID:    "hot",
						Path:      "/mix/hot.txt",
						Version:   v,
						Status:    metastore.Modified,
						DeviceID:  fmt.Sprintf("dev-%d", w),
						Checksum:  fmt.Sprintf("c%d", v),
					})
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(w)
		}
		wwg.Wait()
		b.StopTimer()
		close(stop)
		rwg.Wait()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		if firstErr != nil {
			b.Fatal(firstErr)
		}
		b.StartTimer()
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	b.ReportMetric(float64(b.N)*writers*commitsPerWriter/elapsed, "commits/s")
	b.ReportMetric(float64(reads.Load())/elapsed, "reads/s")
}

// BenchmarkReadWriteMix sweeps the readers:writers ratio over the lock-free
// metastore read path: 0 readers is the commit baseline, then 1:1, 8:1 and
// 64:1 (4 writers throughout). benchcmp gates the 64:1 commits/s — the leg
// where the pre-MVCC RWMutex collapsed — and the baseline, so a regression
// on either the write path or the read path's isolation shows up.
func BenchmarkReadWriteMix(b *testing.B) {
	for _, readers := range []int{0, 4, 32, 256} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			readWriteMix(b, readers)
		})
	}
}
