// Quickstart: a complete in-process StackSync deployment — message broker,
// metadata back-end, storage back-end, SyncService and two client devices —
// synchronizing a file from one device to the other.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"stacksync/internal/client"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The messaging substrate (the paper's RabbitMQ role).
	broker := mq.NewBroker()
	defer broker.Close()

	// 2. Metadata back-end (PostgreSQL role) with one shared workspace.
	meta := metastore.NewStore()
	defer meta.Close()
	if err := meta.CreateWorkspace(metastore.Workspace{
		ID: "family-photos", Owner: "alice", Members: []string{"bob"},
	}); err != nil {
		return err
	}

	// 3. Storage back-end (OpenStack Swift role).
	storage := objstore.NewMemory()

	// 4. The SyncService, bound to the shared request queue via ObjectMQ.
	serverBroker, err := omq.NewBroker(broker)
	if err != nil {
		return err
	}
	defer serverBroker.Close()
	service := core.NewService(meta, serverBroker)
	if _, err := service.Bind(); err != nil {
		return err
	}

	// 5. Two devices.
	newDevice := func(user, device string) (*client.Client, error) {
		b, err := omq.NewBroker(broker)
		if err != nil {
			return nil, err
		}
		c, err := client.NewClient(client.Config{
			UserID: user, DeviceID: device, WorkspaceID: "family-photos",
			Broker: b, Storage: storage,
		})
		if err != nil {
			return nil, err
		}
		return c, c.Start()
	}
	alice, err := newDevice("alice", "alice-laptop")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := newDevice("bob", "bob-desktop")
	if err != nil {
		return err
	}
	defer bob.Close()

	// 6. Alice adds a file; Bob receives it as a push notification.
	fmt.Println("alice: adding holiday.txt")
	if err := alice.PutFile("holiday.txt", []byte("Beach, 2014-12-08, Bordeaux")); err != nil {
		return err
	}
	if err := bob.WaitForVersion("holiday.txt", 1, 5*time.Second); err != nil {
		return err
	}
	content, _ := bob.FileContent("holiday.txt")
	fmt.Printf("bob:   received holiday.txt v1: %q\n", content)

	// 7. Bob edits it; Alice sees version 2.
	fmt.Println("bob:   editing holiday.txt")
	if err := bob.PutFile("holiday.txt", []byte("Beach, 2014-12-08, Bordeaux. Great wine!")); err != nil {
		return err
	}
	if err := alice.WaitForVersion("holiday.txt", 2, 5*time.Second); err != nil {
		return err
	}
	content, _ = alice.FileContent("holiday.txt")
	fmt.Printf("alice: received holiday.txt v2: %q\n", content)

	ws, err := alice.Workspaces()
	if err != nil {
		return err
	}
	fmt.Printf("alice's workspaces: %d (%s, owner %s)\n", len(ws), ws[0].ID, ws[0].Owner)
	return nil
}
