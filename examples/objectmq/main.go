// ObjectMQ HelloWorld — the paper's Fig. 2 example, plus the three
// invocation primitives of §3.2: @AsyncMethod, @SyncMethod and @MultiMethod.
//
//	go run ./examples/objectmq
package main

import (
	"fmt"
	"log"
	"time"

	"stacksync/internal/mq"
	"stacksync/internal/omq"
)

// HelloServer is the remote object. Exported methods are remotely callable.
type HelloServer struct {
	id string
}

// HelloWorld is the @AsyncMethod of Fig. 2: one-way, no reply.
func (h *HelloServer) HelloWorld(name string) {
	fmt.Printf("  [server %s] hello, %s!\n", h.id, name)
}

// Sum is a @SyncMethod: the caller blocks for the result.
func (h *HelloServer) Sum(nums []int) int {
	total := 0
	for _, n := range nums {
		total += n
	}
	return total
}

// WhoAreYou answers @MultiMethod group calls.
func (h *HelloServer) WhoAreYou(struct{}) string { return h.id }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The MOM system (RabbitMQ role) and two ObjectMQ endpoints.
	system := mq.NewBroker()
	defer system.Close()

	// broker.bind("hello", new HelloServer()) — three instances sharing the
	// identifier demonstrate queue-based load balancing and multicast.
	for i := 1; i <= 3; i++ {
		server, err := omq.NewBroker(system)
		if err != nil {
			return err
		}
		defer server.Close()
		if _, err := server.Bind("hello", &HelloServer{id: fmt.Sprintf("S%d", i)}); err != nil {
			return err
		}
	}

	clientBroker, err := omq.NewBroker(system)
	if err != nil {
		return err
	}
	defer clientBroker.Close()

	// helloClient = broker.lookup("hello")
	hello := clientBroker.Lookup("hello",
		omq.WithTimeout(1500*time.Millisecond), omq.WithRetries(5))

	// @AsyncMethod — unicast: exactly one of the three instances handles it.
	fmt.Println("async helloWorld():")
	if err := hello.Async("HelloWorld", "Bordeaux"); err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond)

	// @SyncMethod — blocking with timeout and retries.
	var sum int
	if err := hello.Call("Sum", &sum, []int{40, 2}); err != nil {
		return err
	}
	fmt.Printf("sync Sum([40 2]) = %d\n", sum)

	// @MultiMethod + @SyncMethod — one call, replies from every instance.
	replies, err := hello.MultiCall("WhoAreYou", 300*time.Millisecond, struct{}{})
	if err != nil {
		return err
	}
	fmt.Printf("multi WhoAreYou() collected %d replies:", len(replies))
	for _, r := range replies {
		var id string
		if err := r.Decode(&id); err != nil {
			return err
		}
		fmt.Printf(" %s", id)
	}
	fmt.Println()
	return nil
}
