// Elastic scaling demo: a Supervisor enforces a reactive provisioning
// policy over a pool of RemoteBroker-hosted worker instances while the
// offered load rises and falls — programmatic elasticity (§3.3) end to end
// on real queues, with instance counts printed as they change.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"time"

	"stacksync/internal/mq"
	"stacksync/internal/omq"
	"stacksync/internal/provision"
)

// worker simulates a service instance with a fixed processing cost.
type worker struct{}

// Handle processes one request in ~5 ms.
func (worker) Handle(n int) int {
	time.Sleep(5 * time.Millisecond)
	return n * 2
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	system := mq.NewBroker()
	defer system.Close()

	// Node hosting worker instances.
	nodeBroker, err := omq.NewBroker(system, omq.WithID("10-node"))
	if err != nil {
		return err
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		return err
	}
	defer rb.Close()
	rb.RegisterFactory("worker", func() (interface{}, error) { return worker{}, nil })
	if err := system.DeclareQueue("worker"); err != nil {
		return err
	}

	// An SLA tuned to the 5 ms workers: respond within 25 ms.
	sla := provision.SLA{
		D: 25 * time.Millisecond, S: 5 * time.Millisecond, VarService: 4e-6,
	}
	supBroker, err := omq.NewBroker(system, omq.WithID("00-sup"))
	if err != nil {
		return err
	}
	defer supBroker.Close()
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:         "worker",
		CheckEvery:  100 * time.Millisecond,
		Provisioner: provision.NewReactive(sla, 0.2, 0.2, nil),
	})
	if err != nil {
		return err
	}
	defer sup.Stop()

	// Drive load in three phases: quiet, burst, quiet.
	clientBroker, err := omq.NewBroker(system, omq.WithID("20-client"))
	if err != nil {
		return err
	}
	defer clientBroker.Close()
	proxy := clientBroker.Lookup("worker")

	phases := []struct {
		name string
		rps  int
		dur  time.Duration
	}{
		{"warm-up (20 req/s)", 20, 2 * time.Second},
		{"flash crowd (400 req/s)", 400, 3 * time.Second},
		{"cool-down (20 req/s)", 20, 3 * time.Second},
	}
	for _, ph := range phases {
		fmt.Printf("--- %s ---\n", ph.name)
		end := time.Now().Add(ph.dur)
		tick := time.NewTicker(time.Second / time.Duration(ph.rps))
		lastReport := time.Now()
		for time.Now().Before(end) {
			<-tick.C
			_ = proxy.Async("Handle", 21)
			if time.Since(lastReport) >= 500*time.Millisecond {
				lastReport = time.Now()
				info, err := supBroker.ObjectInfo("worker")
				if err == nil {
					fmt.Printf("    queue depth %4d | arrival %6.1f req/s | instances %d\n",
						info.QueueDepth, info.ArrivalRate, rb.InstanceCount("worker"))
				}
			}
		}
		tick.Stop()
	}
	fmt.Printf("final instances: %d (scale events recorded: %d)\n",
		rb.InstanceCount("worker"), len(sup.History()))
	return nil
}
