// Shared workspace: three devices collaborate on one workspace; two of them
// edit the same file concurrently and the losing edit is preserved as a
// conflict copy — the Dropbox-style policy of §4.1/§4.2.1.
//
//	go run ./examples/sharedworkspace
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"stacksync/internal/client"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	broker := mq.NewBroker()
	defer broker.Close()
	meta := metastore.NewStore()
	defer meta.Close()
	storage := objstore.NewMemory()

	if err := meta.CreateWorkspace(metastore.Workspace{
		ID: "design-docs", Owner: "alice", Members: []string{"bob", "carol"},
	}); err != nil {
		return err
	}

	serverBroker, err := omq.NewBroker(broker)
	if err != nil {
		return err
	}
	defer serverBroker.Close()
	if _, err := core.NewService(meta, serverBroker).Bind(); err != nil {
		return err
	}

	devices := map[string]*client.Client{}
	for _, spec := range []struct{ user, device string }{
		{"alice", "alice-laptop"}, {"bob", "bob-laptop"}, {"carol", "carol-tablet"},
	} {
		b, err := omq.NewBroker(broker)
		if err != nil {
			return err
		}
		defer b.Close()
		c, err := client.NewClient(client.Config{
			UserID: spec.user, DeviceID: spec.device, WorkspaceID: "design-docs",
			Broker: b, Storage: storage,
		})
		if err != nil {
			return err
		}
		if err := c.Start(); err != nil {
			return err
		}
		defer c.Close()
		devices[spec.device] = c
	}
	alice := devices["alice-laptop"]
	bob := devices["bob-laptop"]
	carol := devices["carol-tablet"]

	// A baseline version everyone shares.
	fmt.Println("alice creates spec.md v1")
	if err := alice.PutFile("spec.md", []byte("# Spec\nDraft v1")); err != nil {
		return err
	}
	for name, dev := range devices {
		if err := dev.WaitForVersion("spec.md", 1, 5*time.Second); err != nil {
			return fmt.Errorf("%s never synced: %w", name, err)
		}
	}

	// Concurrent edits: alice and bob both propose version 2.
	fmt.Println("alice and bob edit spec.md concurrently...")
	if err := alice.PutFile("spec.md", []byte("# Spec\nAlice's edit")); err != nil {
		return err
	}
	if err := bob.PutFile("spec.md", []byte("# Spec\nBob's edit")); err != nil {
		return err
	}

	// Everyone converges on the winner at v2, and the loser's edit survives
	// as a conflict copy on every device.
	for name, dev := range devices {
		if err := dev.WaitForVersion("spec.md", 2, 5*time.Second); err != nil {
			return fmt.Errorf("%s never saw v2: %w", name, err)
		}
	}
	var copyPath string
	deadline := time.Now().Add(5 * time.Second)
	for copyPath == "" && time.Now().Before(deadline) {
		for _, p := range carol.Paths() {
			if strings.Contains(p, "conflicted copy") {
				copyPath = p
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if copyPath == "" {
		return fmt.Errorf("no conflict copy appeared")
	}

	winner, _ := carol.FileContent("spec.md")
	loser, _ := carol.FileContent(copyPath)
	fmt.Printf("winner  (spec.md): %q\n", lastLine(winner))
	fmt.Printf("conflict copy (%s): %q\n", copyPath, lastLine(loser))
	fmt.Println("all three devices hold both versions — nothing was lost.")
	return nil
}

func lastLine(b []byte) string {
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	return lines[len(lines)-1]
}
