#!/bin/sh
# check.sh — the CI gate. Formatting, build, vet, then the full test suite
# under the race detector. The chaos soak is skipped under -short; CI runs it
# here (race-enabled) because the harness's value is precisely its
# concurrency.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l ./cmd ./internal)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

# Codec matrix: the messaging layers must pass under every negotiable codec,
# since $STACKSYNC_CODEC swings the default the whole fleet publishes with.
# The binary codec gets an extra race pass — it is the default-off path with
# the most hand-rolled encoding.
echo "==> codec matrix (json/gob/bin)"
for c in json gob bin; do
    echo "--- STACKSYNC_CODEC=$c"
    STACKSYNC_CODEC=$c go test ./internal/codec/ ./internal/omq/ ./internal/mq/
done
echo "--- STACKSYNC_CODEC=bin (race)"
STACKSYNC_CODEC=bin go test -race ./internal/codec/ ./internal/omq/ ./internal/wire/

# Extra interleavings over the client's parallel transfer pipeline: many
# writers, overlapping chunks, dedup probes and singleflight coalescing all
# racing — the part of the codebase where a data race would hide best.
echo "==> transfer pipeline stress (race, 3x)"
go test -race -count=3 -run '^TestTransferPipelineStress$' ./internal/client/

# Cross-instance failover is timing-sensitive by nature: re-run the seeded
# multi-instance soak and the cross-instance linearizability race under the
# race detector so a flaky interleaving fails here, not downstream. One extra
# count on top of the full-suite run above.
echo "==> multi-instance failover soak + linearizability (race, 2x total)"
go test -race -count=1 -run '^(TestMultiInstanceChaosQuick|TestCrossInstanceLinearizability)$' ./internal/bench/

# The fleet-trace smoke drives a routed commit through a deliberate owner
# crash and asserts one stitched trace spans both instances with a
# cause-annotated failover attempt. The collector polls concurrently with
# the kill, so this is also where a scrape/teardown race would surface.
echo "==> fleet-trace stitching smoke (race)"
go test -race -count=1 -run '^TestFleetTraceSmoke$' ./internal/bench/

# Short coverage-guided fuzz legs over the two codecs that parse
# attacker-controlled bytes: the wire frame reader and WAL replay. Ten
# seconds each is a smoke pass — run `go test -fuzz` open-ended to dig.
echo "==> fuzz smoke: FuzzFrameCodec (10s)"
go test -run '^$' -fuzz '^FuzzFrameCodec$' -fuzztime 10s ./internal/wire/

echo "==> fuzz smoke: FuzzWALReplay (10s)"
go test -run '^$' -fuzz '^FuzzWALReplay$' -fuzztime 10s ./internal/metastore/

# The MVCC read path's reply correctness under random commit/compact/read
# interleavings, checked against a serial reference log.
echo "==> fuzz smoke: FuzzChangesSince (10s)"
go test -run '^$' -fuzz '^FuzzChangesSince$' -fuzztime 10s ./internal/metastore/

# The snapshot-isolation harness and the linearizability harness are the
# proof obligations of the lock-free read path (DESIGN §16): re-run both
# under the race detector, one extra count on top of the full-suite pass.
echo "==> snapshot isolation + linearizability harnesses (race)"
go test -race -count=1 -run '^(TestSnapshotIsolationUnderConcurrentCommits|TestShardedStoreMatchesSerialReference|TestConcurrentSameWorkspaceInvariants)$' ./internal/metastore/

# The benchmark-history parser eats whatever landed in history.jsonl —
# including torn lines from crashed runs — so it gets its own fuzz smoke, and
# the trend gate's verdict table is re-run explicitly: it is the arbiter that
# decides whether a commit "regressed", so a bug here silently green-lights
# slow code.
echo "==> trend gate verdicts + history round-trip"
go test -run '^(TestGateVerdicts|TestGateMissingMetricFails|TestGateVacuousAndWindow|TestAppendReadHistoryRoundTrip)$' -v ./internal/benchhist/ | grep -E '^(=== RUN|--- (PASS|FAIL)|ok|FAIL)' || exit 1

echo "==> fuzz smoke: FuzzParseRecord (10s)"
go test -run '^$' -fuzz '^FuzzParseRecord$' -fuzztime 10s ./internal/benchhist/

# The scenario matrix at smoke size: every workload shape (fanout storm,
# Zipf skew, churn, cold start) must converge with zero violations.
echo "==> scenario matrix smoke"
go run ./cmd/experiments -run matrix -smoke

# The committed dashboard must match the committed history — `make dashboard`
# is deterministic, so a mismatch means someone appended history without
# regenerating (or edited the generated files by hand).
echo "==> dashboard up to date"
go run ./cmd/benchhist -mode dash -history dev/bench/history.jsonl -out "${TMPDIR:-/tmp}/bench-dash-check"
cmp -s "${TMPDIR:-/tmp}/bench-dash-check/data.js" dev/bench/data.js || {
    echo "dev/bench/data.js is stale — run 'make dashboard' and commit" >&2
    exit 1
}
cmp -s "${TMPDIR:-/tmp}/bench-dash-check/index.html" dev/bench/index.html || {
    echo "dev/bench/index.html is stale — run 'make dashboard' and commit" >&2
    exit 1
}
rm -rf "${TMPDIR:-/tmp}/bench-dash-check"

echo "OK"
