#!/bin/sh
# check.sh — the CI gate. Formatting, build, vet, then the full test suite
# under the race detector. The chaos soak is skipped under -short; CI runs it
# here (race-enabled) because the harness's value is precisely its
# concurrency.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l ./cmd ./internal)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "OK"
