#!/bin/sh
# check.sh — the CI gate. Build, vet, then the full test suite under the
# race detector. The chaos soak is skipped under -short; CI runs it here
# (race-enabled) because the harness's value is precisely its concurrency.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "OK"
