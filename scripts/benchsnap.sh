#!/bin/sh
# benchsnap.sh — snapshot the Fig. 7 microbenchmarks into a BENCH_<n>.json
# file at the repo root (next free n), so successive commits can be compared
# without re-running older checkouts. BENCHTIME overrides -benchtime
# (default 1x: one iteration per benchmark keeps the snapshot cheap; raise it
# for lower-variance numbers).
set -eu

cd "$(dirname "$0")/.."

pattern='^(BenchmarkFig7|BenchmarkCommitParallelWorkspaces|BenchmarkMQPublishThroughput|BenchmarkTransferPipeline|BenchmarkMultiInstanceCommit)'
benchtime="${BENCHTIME:-1x}"

n=1
while [ -e "BENCH_${n}.json" ]; do
    n=$((n + 1))
done
out="BENCH_${n}.json"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"takenAt\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", date, benchtime
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    extra = ""
    for (i = 5; i + 1 <= NF; i += 2) {
        extra = extra sprintf(", \"%s\": %s", $(i + 1), $i)
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"nsPerOp\": %s%s}", name, $2, $3, extra
}
END { printf "\n  ]\n}\n" }
' "$tmp" >"$out"

echo "wrote $out"
