#!/bin/sh
# benchsnap.sh — run the Fig. 7 microbenchmarks and record them twice: as a
# provenance-stamped record appended to dev/bench/history.jsonl (commit SHA,
# dirty flag, go version, GOMAXPROCS, host — what benchcmp's trend gate
# judges), and as a BENCH_<n>.json snapshot at the repo root (next free n)
# for eyeballing a single run. BENCHTIME overrides -benchtime (default 1x:
# one iteration per benchmark keeps the snapshot cheap; raise it for
# lower-variance numbers).
set -eu

cd "$(dirname "$0")/.."

pattern='^(BenchmarkFig7|BenchmarkCommitParallelWorkspaces|BenchmarkReadWriteMix|BenchmarkMQPublishThroughput|BenchmarkWireFrameCodec|BenchmarkPublishDisabledTracer|BenchmarkTransferPipeline|BenchmarkMultiInstanceCommit|BenchmarkFleetObs)'
benchtime="${BENCHTIME:-1x}"
history="${BENCH_HISTORY:-dev/bench/history.jsonl}"

n=1
while [ -e "BENCH_${n}.json" ]; do
    n=$((n + 1))
done
out="BENCH_${n}.json"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# The root package carries the paper-figure benchmarks; internal/omq adds
# the publish-path allocation guards gated by benchcmp.
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . ./internal/omq/ | tee "$tmp"

go run ./cmd/benchhist -mode append -history "$history" \
    -input "$tmp" -benchtime "$benchtime" -snapshot "$out"
