#!/bin/sh
# benchcmp.sh — trend-aware regression gate over the continuous benchmark
# history (dev/bench/history.jsonl). The newest micro-suite record is judged
# against the rolling median of the last 5 clean (non-dirty) runs; a gated
# metric more than 20% worse than that median fails, and a gated metric that
# vanished from the newest record fails as MISSING. Pre-history BENCH_<n>.json
# snapshots are imported on first use so existing repos keep their baseline.
#
# Snapshots default to one benchmark iteration (benchsnap's BENCHTIME=1x),
# which is noisy; a failure here means "re-run with BENCHTIME=20x and look",
# not necessarily "the commit is slow".
set -eu

cd "$(dirname "$0")/.."

history="${BENCH_HISTORY:-dev/bench/history.jsonl}"

if [ ! -e "$history" ]; then
    echo "benchcmp: $history absent — importing BENCH_<n>.json snapshots"
    go run ./cmd/benchhist -mode import -history "$history"
fi

exec go run ./cmd/benchhist -mode gate -history "$history" -suite micro \
    -window "${BENCH_WINDOW:-5}" -threshold "${BENCH_THRESHOLD:-0.20}"
