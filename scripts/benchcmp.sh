#!/bin/sh
# benchcmp.sh — regression gate over benchsnap snapshots. Compares the two
# newest BENCH_<n>.json files at the repo root and fails when a gated metric
# regressed by more than 20%: Fig. 7(e) sync time (lower is better) or MQ
# publish / parallel-commit throughput (higher is better). With fewer than
# two snapshots there is nothing to compare and the gate passes vacuously.
#
# Snapshots default to one benchmark iteration (benchsnap's BENCHTIME=1x),
# which is noisy; a failure here means "re-run with BENCHTIME=20x and look",
# not necessarily "the commit is slow".
set -eu

cd "$(dirname "$0")/.."

snaps=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n || true)
count=$(printf '%s\n' "$snaps" | grep -c . || true)
if [ "$count" -lt 2 ]; then
    echo "benchcmp: found $count snapshot(s), need 2 — nothing to compare"
    exit 0
fi
old=$(printf '%s\n' "$snaps" | tail -2 | head -1)
new=$(printf '%s\n' "$snaps" | tail -1)
echo "benchcmp: $old -> $new (threshold 20%)"

metric() { # metric <file> <benchmark-name> <metric-key>
    jq -r --arg n "$2" --arg m "$3" \
        '[.benchmarks[] | select(.name == $n) | .[$m] | select(. != null)][0] // empty' "$1"
}

fail=0

# gate <benchmark> <metric> <direction: lower|higher>
gate() {
    bench=$1 key=$2 dir=$3
    o=$(metric "$old" "$bench" "$key")
    n=$(metric "$new" "$bench" "$key")
    if [ -z "$o" ] || [ -z "$n" ]; then
        echo "  skip  $bench $key (missing in one snapshot)"
        return 0
    fi
    bad=$(awk -v o="$o" -v n="$n" -v d="$dir" 'BEGIN {
        if (o == 0) { print 0; exit }
        if (d == "lower")  print (n > o * 1.2) ? 1 : 0
        else               print (n < o * 0.8) ? 1 : 0
    }')
    if [ "$bad" = 1 ]; then
        echo "  FAIL  $bench $key: $o -> $n (${dir} is better)"
        fail=1
    else
        echo "  ok    $bench $key: $o -> $n"
    fi
}

gate BenchmarkFig7eSyncTime ADD-median-ms lower
gate BenchmarkFig7eSyncTime REMOVE-median-ms lower
gate BenchmarkMQPublishThroughput/batch msgs/s higher
gate BenchmarkCommitParallelWorkspaces/shards=16 commits/s higher
gate BenchmarkTransferPipeline/pipelined MB/s higher
gate BenchmarkMultiInstanceCommit/instances=4 commits/min higher

if [ "$fail" = 1 ]; then
    echo "benchcmp: regression over 20% detected" >&2
    exit 1
fi
echo "benchcmp: OK"
