window.BENCHMARK_DATA = {
  "lastUpdate": 1786162531266,
  "repoUrl": "stacksync",
  "entries": {
    "micro": [
      {
        "commit": {
          "id": "legacy-BENCH_1",
          "dirty": false
        },
        "date": 1786046603000,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 806695,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.96,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2264421079,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1221115531,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1173294718,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 1134988672,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 11.68,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.2942,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3271257940,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 16.92,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 806.1,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 75267026,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6802,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 16705419,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 30649,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 15310351,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 33441,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 14646745,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 34957,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 192987,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 331628,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 154544,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 414120,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "legacy-BENCH_2",
          "dirty": false
        },
        "date": 1786149235000,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 925914,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2445014326,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1293115152,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1250392722,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 897705849,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 16.2,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.2043,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3669512495,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 19.56,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 893.4,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 78555476,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6518,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 13436869,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 38104,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 14949936,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 34248,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 16121884,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 31758,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 296791076,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.58,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 73625725,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 15.19,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 63486,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 1008096,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 68700,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 931587,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "legacy-BENCH_3",
          "dirty": false
        },
        "date": 1786149253000,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 1088808,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2389307315,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1275868868,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1349536042,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 909109554,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 15.33,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.2352,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3663548674,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 19.91,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 892.7,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 74283467,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6893,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 20013763,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 25582,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 15771910,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 32463,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 14590951,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 35090,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 299264011,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.55,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 74717781,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 14.72,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1115249897,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 36011,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.364,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1114496750,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 35976,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1.293,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 72055,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 888210,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 82488,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 775870,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "fdf00cb44c3c868dc30715b75dd880ec96a973e0",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786155126404,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 1050817,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2809095510,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1440047924,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.6,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1411016700,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 1076354925,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 16.91,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.31,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 7510282854,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 21.82,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 2486,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 74456908,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6876,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 15857722,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 32287,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 14080301,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 36363,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 12817635,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 39945,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 294248597,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.61,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 73852940,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 15.17,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1115586779,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 36011,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.83,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1115311015,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 35991,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 2.442,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 796050,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 1256,
            "unit": "scrapes/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 386520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 151,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 78018,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 820324,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 89650,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 713887,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "fdf00cb44c3c868dc30715b75dd880ec96a973e0",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786155209589,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 1060929,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.961,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2502106535,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1260948620,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1290589326,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 692388972,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 9.788,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.1842,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3877816259,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 17.05,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 916.2,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 77672957,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6592,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 15426294,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 33190,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 11966492,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 42786,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 11650751,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 43946,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 295788148,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.57,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 75585675,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 14.71,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1114402660,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 36103,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.375,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1114728274,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 36096,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1.282,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 575230,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 1738,
            "unit": "scrapes/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 386520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 151,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 56428,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 1134189,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 98391,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 650468,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "1c80b43b9a828e11d6f58e01939e77b724d5acfc",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786157861148,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 1309623,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2816265100,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1391243441,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1376023124,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 990593335,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 14.43,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.2901,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 4890927439,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 19.71,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 1342,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 94118993,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 5440,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 14495104,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 35322,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 12304210,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 41612,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 13523025,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 37861,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 294799985,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.6,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 74751058,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 14.73,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1115422202,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 35972,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.344,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1120161344,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 35979,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 2.495,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 798193,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 1253,
            "unit": "scrapes/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 386520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 151,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 73842,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 866715,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 85483,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 748687,
            "unit": "msgs/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 216082381,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 151646,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 0,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 202289894,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 161985,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 118.6,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 204150957,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 160509,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 509.4,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 288624331,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 113532,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 5602,
            "unit": "reads/s"
          }
        ]
      },
      {
        "commit": {
          "id": "1c80b43b9a828e11d6f58e01939e77b724d5acfc",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786157953711,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 1625749,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.961,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2536764394,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1319019831,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.6,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1310395379,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 744209490,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 10.07,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.253,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 4100024423,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 18.62,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 897.3,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 72134405,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 7098,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 16187806,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 31629,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 28097195,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 18222,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 23590312,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 21704,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 297477435,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.56,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 76886625,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 14.39,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1131856872,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 36067,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.29,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1118601701,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 36102,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 5.139,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 718280,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 1392,
            "unit": "scrapes/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 386520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 151,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 116157,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 550978,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 110017,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 581728,
            "unit": "msgs/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 212683832,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 154069,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 0,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 192907396,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 169864,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 110.6,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 207227112,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 158126,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 649.9,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 220396343,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 148678,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 5611,
            "unit": "reads/s"
          }
        ]
      },
      {
        "commit": {
          "id": "1c80b43b9a828e11d6f58e01939e77b724d5acfc",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786157989525,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 905839,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2632871110,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1315995915,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1316155767,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 1039752619,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 13.21,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.2016,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3796939428,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 19.13,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 937.2,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 93824577,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 5457,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 14578493,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 35120,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 16920413,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 30259,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 14262455,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 35898,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 297346731,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.57,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 74082328,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 14.84,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1133694858,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 35975,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 11,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1109305847,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 35978,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 179.2,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 887940,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 1126,
            "unit": "scrapes/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 386520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 151,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 72941,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 877421,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 70985,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 901599,
            "unit": "msgs/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 216484851,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 151364,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 0,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 220533197,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 148585,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 108.8,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 223170870,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 146829,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 681.1,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 238411847,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 137443,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 4916,
            "unit": "reads/s"
          }
        ]
      },
      {
        "commit": {
          "id": "44f2eb20744e4a6aa83d99ad4763c32b7e7ad7fb",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786162531266,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 972187,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2405093482,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1233775425,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.6,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1194230502,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 856275775,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 15.04,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.1833,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3668685298,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 18.41,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 897.4,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 63344938,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 8083,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 14917111,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 34323,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 14581726,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 35112,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 17462316,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 29320,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 290300892,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.65,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 73562124,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 15.18,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1115052625,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 36007,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.449,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1112795489,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 35990,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1.319,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 924233,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 1082,
            "unit": "scrapes/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 386520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 151,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 45716,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 1399948,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 57672,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 85,
            "unit": "allocs/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 36574,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 1749877,
            "unit": "msgs/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 57672,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 85,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkWireFrameCodec/json",
            "value": 101027,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkWireFrameCodec/json",
            "value": 9898,
            "unit": "frames/s"
          },
          {
            "name": "BenchmarkWireFrameCodec/json",
            "value": 18040,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkWireFrameCodec/json",
            "value": 177,
            "unit": "allocs/op"
          },
          {
            "name": "BenchmarkWireFrameCodec/binary",
            "value": 22020,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkWireFrameCodec/binary",
            "value": 45413,
            "unit": "frames/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkWireFrameCodec/binary",
            "value": 1232,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkWireFrameCodec/binary",
            "value": 13,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 196874194,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 166441,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=0",
            "value": 0,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 189146676,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 173241,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=4",
            "value": 116.3,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 185840789,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 176323,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=32",
            "value": 635,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 193126165,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 169671,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkReadWriteMix/readers=256",
            "value": 5623,
            "unit": "reads/s"
          },
          {
            "name": "BenchmarkPublishDisabledTracer/bare",
            "value": 35411,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkPublishDisabledTracer/bare",
            "value": 8736,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkPublishDisabledTracer/bare",
            "value": 109,
            "unit": "allocs/op"
          },
          {
            "name": "BenchmarkPublishDisabledTracer/routed-headers",
            "value": 15132,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkPublishDisabledTracer/routed-headers",
            "value": 3520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkPublishDisabledTracer/routed-headers",
            "value": 15,
            "unit": "allocs/op",
            "dir": "lower"
          }
        ]
      }
    ],
    "scenario/churn": [
      {
        "commit": {
          "id": "1c80b43b9a828e11d6f58e01939e77b724d5acfc",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786158000023,
        "benches": [
          {
            "name": "churn",
            "value": 505.99810149512325,
            "unit": "ops/s",
            "dir": "higher"
          },
          {
            "name": "churn",
            "value": 4.064499,
            "unit": "p99-ms",
            "dir": "lower"
          },
          {
            "name": "churn",
            "value": 1,
            "unit": "attainment",
            "dir": "higher"
          },
          {
            "name": "churn",
            "value": 1.560994,
            "unit": "p50-ms"
          },
          {
            "name": "churn",
            "value": 12,
            "unit": "ops"
          },
          {
            "name": "churn",
            "value": 0,
            "unit": "retries"
          },
          {
            "name": "churn",
            "value": 3,
            "unit": "devices"
          },
          {
            "name": "churn",
            "value": 15,
            "unit": "reconnects"
          }
        ]
      }
    ],
    "scenario/coldstart": [
      {
        "commit": {
          "id": "1c80b43b9a828e11d6f58e01939e77b724d5acfc",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786158000023,
        "benches": [
          {
            "name": "coldstart",
            "value": 11508.30424849191,
            "unit": "ops/s",
            "dir": "higher"
          },
          {
            "name": "coldstart",
            "value": 9.85247,
            "unit": "p99-ms",
            "dir": "lower"
          },
          {
            "name": "coldstart",
            "value": 1,
            "unit": "attainment",
            "dir": "higher"
          },
          {
            "name": "coldstart",
            "value": 6.38025,
            "unit": "p50-ms"
          },
          {
            "name": "coldstart",
            "value": 120,
            "unit": "ops"
          },
          {
            "name": "coldstart",
            "value": 0,
            "unit": "retries"
          },
          {
            "name": "coldstart",
            "value": 5,
            "unit": "clients"
          },
          {
            "name": "coldstart",
            "value": 24,
            "unit": "corpus-files"
          }
        ]
      }
    ],
    "scenario/fanout": [
      {
        "commit": {
          "id": "1c80b43b9a828e11d6f58e01939e77b724d5acfc",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786158000023,
        "benches": [
          {
            "name": "fanout",
            "value": 672.59669765783,
            "unit": "ops/s",
            "dir": "higher"
          },
          {
            "name": "fanout",
            "value": 2.727778,
            "unit": "p99-ms",
            "dir": "lower"
          },
          {
            "name": "fanout",
            "value": 1,
            "unit": "attainment",
            "dir": "higher"
          },
          {
            "name": "fanout",
            "value": 1.46803,
            "unit": "p50-ms"
          },
          {
            "name": "fanout",
            "value": 15,
            "unit": "ops"
          },
          {
            "name": "fanout",
            "value": 0,
            "unit": "retries"
          },
          {
            "name": "fanout",
            "value": 4,
            "unit": "devices"
          }
        ]
      }
    ],
    "scenario/reconnect": [
      {
        "commit": {
          "id": "1c80b43b9a828e11d6f58e01939e77b724d5acfc",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786158000023,
        "benches": [
          {
            "name": "reconnect",
            "value": 2677.7297607277083,
            "unit": "ops/s",
            "dir": "higher"
          },
          {
            "name": "reconnect",
            "value": 24.710133,
            "unit": "p99-ms",
            "dir": "lower"
          },
          {
            "name": "reconnect",
            "value": 1,
            "unit": "attainment",
            "dir": "higher"
          },
          {
            "name": "reconnect",
            "value": 0.039353,
            "unit": "p50-ms"
          },
          {
            "name": "reconnect",
            "value": 300,
            "unit": "ops"
          },
          {
            "name": "reconnect",
            "value": 0,
            "unit": "retries"
          },
          {
            "name": "reconnect",
            "value": 0.129571,
            "unit": "base-p99-ms"
          },
          {
            "name": "reconnect",
            "value": 20,
            "unit": "cold-reads"
          },
          {
            "name": "reconnect",
            "value": 48,
            "unit": "warm-reads"
          },
          {
            "name": "reconnect",
            "value": 0,
            "unit": "fallback-fulls"
          }
        ]
      }
    ],
    "scenario/zipf": [
      {
        "commit": {
          "id": "1c80b43b9a828e11d6f58e01939e77b724d5acfc",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786158000023,
        "benches": [
          {
            "name": "zipf",
            "value": 32675.150515357916,
            "unit": "ops/s",
            "dir": "higher"
          },
          {
            "name": "zipf",
            "value": 0.162575,
            "unit": "p99-ms",
            "dir": "lower"
          },
          {
            "name": "zipf",
            "value": 1,
            "unit": "attainment",
            "dir": "higher"
          },
          {
            "name": "zipf",
            "value": 0.023682,
            "unit": "p50-ms"
          },
          {
            "name": "zipf",
            "value": 300,
            "unit": "ops"
          },
          {
            "name": "zipf",
            "value": 0,
            "unit": "retries"
          },
          {
            "name": "zipf",
            "value": 16,
            "unit": "workspaces"
          },
          {
            "name": "zipf",
            "value": 0.3566666666666667,
            "unit": "hot-ws-share"
          },
          {
            "name": "zipf",
            "value": 0.3566666666666667,
            "unit": "sketch-top-share"
          }
        ]
      }
    ]
  }
}
