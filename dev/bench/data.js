window.BENCHMARK_DATA = {
  "lastUpdate": 1786155209589,
  "repoUrl": "stacksync",
  "entries": {
    "micro": [
      {
        "commit": {
          "id": "legacy-BENCH_1",
          "dirty": false
        },
        "date": 1786046603000,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 806695,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.96,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2264421079,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1221115531,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1173294718,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 1134988672,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 11.68,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.2942,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3271257940,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 16.92,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 806.1,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 75267026,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6802,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 16705419,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 30649,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 15310351,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 33441,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 14646745,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 34957,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 192987,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 331628,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 154544,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 414120,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "legacy-BENCH_2",
          "dirty": false
        },
        "date": 1786149235000,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 925914,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2445014326,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1293115152,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1250392722,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 897705849,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 16.2,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.2043,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3669512495,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 19.56,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 893.4,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 78555476,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6518,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 13436869,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 38104,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 14949936,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 34248,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 16121884,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 31758,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 296791076,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.58,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 73625725,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 15.19,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 63486,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 1008096,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 68700,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 931587,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "legacy-BENCH_3",
          "dirty": false
        },
        "date": 1786149253000,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 1088808,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2389307315,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1275868868,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1349536042,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 909109554,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 15.33,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.2352,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3663548674,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 19.91,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 892.7,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 74283467,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6893,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 20013763,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 25582,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 15771910,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 32463,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 14590951,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 35090,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 299264011,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.55,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 74717781,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 14.72,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1115249897,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 36011,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.364,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1114496750,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 35976,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1.293,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 72055,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 888210,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 82488,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 775870,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "fdf00cb44c3c868dc30715b75dd880ec96a973e0",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786155126404,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 1050817,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.9576,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2809095510,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1440047924,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.6,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1411016700,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 1076354925,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 16.91,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.31,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 7510282854,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 21.82,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 2486,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 74456908,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6876,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 15857722,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 32287,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 14080301,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 36363,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 12817635,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 39945,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 294248597,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.61,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 73852940,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 15.17,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1115586779,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 36011,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.83,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1115311015,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 35991,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 2.442,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 796050,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 1256,
            "unit": "scrapes/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 386520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 151,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 78018,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 820324,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 89650,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 713887,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      },
      {
        "commit": {
          "id": "fdf00cb44c3c868dc30715b75dd880ec96a973e0",
          "dirty": true,
          "host": "vm",
          "goVersion": "go1.24.0"
        },
        "date": 1786155209589,
        "benches": [
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 1060929,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7aTraceGeneration",
            "value": 0.961,
            "unit": "P(size\u003c=4MB)"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 2502106535,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 1.275,
            "unit": "dropbox-overhead-x"
          },
          {
            "name": "BenchmarkFig7bProtocolOverhead",
            "value": 0.9422,
            "unit": "stacksync-overhead-x"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1260948620,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 1566,
            "unit": "dropbox-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7cControlTraffic",
            "value": 141.7,
            "unit": "stacksync-ADD-ctl-KB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 1290589326,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.02598,
            "unit": "dropbox-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7dStorageTraffic",
            "value": 0.453,
            "unit": "stacksync-UPD-stor-MB"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 692388972,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 9.788,
            "unit": "ADD-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7eSyncTime",
            "value": 0.1842,
            "unit": "REMOVE-median-ms",
            "dir": "lower"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 3877816259,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 17.05,
            "unit": "128KB-ms"
          },
          {
            "name": "BenchmarkFig7fSizeSweep",
            "value": 916.2,
            "unit": "8MB-ms"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 77672957,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/serial",
            "value": 6592,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 15426294,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=1",
            "value": 33190,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 11966492,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=4",
            "value": 42786,
            "unit": "commits/s"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 11650751,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkCommitParallelWorkspaces/shards=16",
            "value": 43946,
            "unit": "commits/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 295788148,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/serial",
            "value": 3.57,
            "unit": "MB/s"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 75585675,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkTransferPipeline/pipelined",
            "value": 14.71,
            "unit": "MB/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1114402660,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 36103,
            "unit": "commits/min"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=1",
            "value": 1.375,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1114728274,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 36096,
            "unit": "commits/min",
            "dir": "higher"
          },
          {
            "name": "BenchmarkMultiInstanceCommit/instances=4",
            "value": 1.282,
            "unit": "p99-ms"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 575230,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 1738,
            "unit": "scrapes/s",
            "dir": "higher"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 386520,
            "unit": "B/op"
          },
          {
            "name": "BenchmarkFleetObs",
            "value": 151,
            "unit": "allocs/op",
            "dir": "lower"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 56428,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/single",
            "value": 1134189,
            "unit": "msgs/s"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 98391,
            "unit": "ns/op"
          },
          {
            "name": "BenchmarkMQPublishThroughput/batch",
            "value": 650468,
            "unit": "msgs/s",
            "dir": "higher"
          }
        ]
      }
    ]
  }
}
