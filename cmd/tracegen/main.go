// Command tracegen is the benchmarking-tool trace generator of §5.2.1: it
// drives the Markov file-state model over the paper's file-size and change-
// pattern distributions and emits the resulting ADD/UPDATE/REMOVE trace as
// JSON lines, plus an aggregate summary on stderr.
//
//	tracegen -initial 20 -train 5 -snapshots 100 -seed 1 > trace.jsonl
//	tracegen -ub1 -days 8 > arrivals.jsonl      # the synthetic UB1 workload
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"stacksync/internal/trace"
)

func main() {
	initial := flag.Int("initial", 20, "initial number of files")
	train := flag.Int("train", 5, "training iterations (discarded)")
	snapshots := flag.Int("snapshots", 100, "recorded snapshots")
	seed := flag.Int64("seed", 1, "PRNG seed")
	ub1 := flag.Bool("ub1", false, "emit the synthetic UB1 arrival-rate trace instead")
	days := flag.Int("days", 8, "days of UB1 trace (with -ub1)")
	flag.Parse()

	if err := run(*initial, *train, *snapshots, *seed, *ub1, *days); err != nil {
		log.Fatal(err)
	}
}

func run(initial, train, snapshots int, seed int64, ub1 bool, days int) error {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)

	if ub1 {
		at := trace.GenerateUB1(trace.UB1Config{Days: days, Seed: seed})
		fmt.Fprintf(os.Stderr, "UB1 synthetic: %d days, step %v, peak %.0f req/min\n",
			days, at.Step, at.Peak()*60)
		return enc.Encode(at)
	}

	tr := trace.Generate(trace.GenConfig{
		InitialFiles:    initial,
		TrainIterations: train,
		Snapshots:       snapshots,
		Seed:            seed,
	})
	fmt.Fprintln(os.Stderr, tr.Summary())
	for _, op := range tr.Ops {
		if err := enc.Encode(op); err != nil {
			return err
		}
	}
	return nil
}
