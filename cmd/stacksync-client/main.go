// Command stacksync-client runs a StackSync desktop client: it connects to
// the broker of a stacksync-server, binds to a workspace and keeps a local
// directory in sync with it.
//
//	stacksync-client -broker 127.0.0.1:7070 -storage ./stacksync-data/chunks \
//	    -user alice -device alice-laptop -workspace shared -dir ~/Sync
//
// The storage back-end is the server's chunk directory in this reference
// deployment (both processes share a filesystem); the Store interface
// accommodates a remote gateway without client changes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stacksync/internal/client"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
)

func main() {
	brokerAddr := flag.String("broker", "127.0.0.1:7070", "broker address of the stacksync-server")
	storageURL := flag.String("storage-url", "http://127.0.0.1:7071", "storage gateway URL (preferred)")
	storageToken := flag.String("storage-token", "", "storage gateway auth token")
	storageDir := flag.String("storage", "", "chunk directory shared with the server (overrides -storage-url)")
	user := flag.String("user", "alice", "user id")
	device := flag.String("device", "", "device id (default <user>-<hostname>)")
	workspace := flag.String("workspace", "shared", "workspace id")
	dir := flag.String("dir", "./Sync", "local directory to synchronize")
	interval := flag.Duration("scan-interval", 500*time.Millisecond, "local change scan interval")
	flag.Parse()

	if err := run(*brokerAddr, *storageURL, *storageToken, *storageDir, *user, *device, *workspace, *dir, *interval); err != nil {
		log.Fatal(err)
	}
}

func run(brokerAddr, storageURL, storageToken, storageDir, user, device, workspace, dir string, interval time.Duration) error {
	if device == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "host"
		}
		device = user + "-" + host
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	conn, err := mq.Dial(brokerAddr)
	if err != nil {
		return fmt.Errorf("connect broker: %w", err)
	}
	defer conn.Close()
	broker, err := omq.NewBroker(conn)
	if err != nil {
		return err
	}
	defer broker.Close()

	var storage objstore.Store
	if storageDir != "" {
		disk, err := objstore.NewDisk(storageDir)
		if err != nil {
			return err
		}
		storage = disk
	} else {
		storage = objstore.NewHTTPStore(storageURL, storageToken)
	}

	c, err := client.NewClient(client.Config{
		UserID: user, DeviceID: device, WorkspaceID: workspace,
		Broker: broker, Storage: storage,
	})
	if err != nil {
		return err
	}
	if err := c.Start(); err != nil {
		return fmt.Errorf("start client (is the server running?): %w", err)
	}
	defer c.Close()

	watcher, err := client.NewDirWatcher(c, dir, interval)
	if err != nil {
		return err
	}
	watcher.Start()
	defer watcher.Stop()

	log.Printf("syncing %s as %s/%s in workspace %q", dir, user, device, workspace)
	go func() {
		for e := range c.Events() {
			switch e.Type {
			case client.LocalCommitted:
				log.Printf("committed %s (%s v%d)", e.Path, statusName(e.Status), e.Version)
			case client.RemoteApplied:
				log.Printf("received  %s (%s v%d)", e.Path, statusName(e.Status), e.Version)
			case client.ConflictResolved:
				log.Printf("conflict  preserved as %s", e.Path)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("stopping")
	return nil
}

func statusName(s metastore.Status) string { return s.String() }
