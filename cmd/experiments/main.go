// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§5). Each experiment prints the same rows/series the
// paper reports.
//
//	experiments -run fig7b           # one experiment
//	experiments -run all -quick      # everything, reduced trace sizes
//
// Experiment ids: fig7a fig7b fig7cd table2 fig7e fig7f fig8ab fig8cde fig8f
// plus the non-figure runs: chaos (robustness soak), chaos-multi
// (cross-instance failover soak over the routed fleet), fleet-trace
// (fleet-observability smoke: stitched cross-instance failover trace,
// collector rollup, hot-workspace sketch), ub1-multi (UB1 day-8
// peak replay over 4 routed instances with SLO attainment), matrix (the
// scenario matrix: fanout storm, Zipf-skewed workspaces, mobile churn,
// cold-start herd — recorded into the benchmark history and trend-gated
// unless -smoke), trace (end-to-end observability demo), elastic-demo
// (telemetry-instrumented Fig. 8 replay), ablation. -admin serves /metrics,
// /healthz, /tracez, /queuesz, /varz, /eventz, /elasticz, /benchz and
// /debug/pprof while (and after) the run executes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stacksync/internal/bench"
	"stacksync/internal/benchhist"
	"stacksync/internal/obs"
	"stacksync/internal/trace"
)

func main() {
	run := flag.String("run", "all", "experiment id (fig7a|fig7b|fig7cd|table2|fig7e|fig7f|fig8ab|fig8cde|fig8f|chaos|chaos-multi|fleet-trace|ub1-multi|matrix|trace|elastic-demo|all)")
	seed := flag.Int64("seed", 1, "PRNG seed for trace generation")
	quick := flag.Bool("quick", false, "smaller traces / shorter runs")
	smoke := flag.Bool("smoke", false, "matrix: minimal sizes, correctness only — no history append, no gate")
	history := flag.String("history", "dev/bench/history.jsonl", "matrix: benchmark history file to append to and gate against")
	admin := flag.String("admin", "", "admin endpoint address (e.g. 127.0.0.1:7072); kept serving after the run until interrupted")
	flag.Parse()

	if err := runExperiments(strings.ToLower(*run), *seed, *quick, *smoke, *history, *admin); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runExperiments(which string, seed int64, quick, smoke bool, historyPath, adminAddr string) error {
	// With -admin, the trace demo records into a shared tracer/registry that
	// the admin endpoint keeps serving after the run, so /tracez and /metrics
	// can be inspected interactively.
	var (
		tracer   *obs.Tracer
		registry *obs.Registry
		demo     *bench.ElasticDemo
	)
	if which == "elastic-demo" {
		demo = bench.NewElasticDemo(seed, quick)
	}
	if adminAddr != "" {
		tracer = obs.NewTracer()
		registry = obs.NewRegistry()
		adm := &obs.Admin{Registry: registry, Tracer: tracer, Bench: benchhist.AdminStatus(historyPath)}
		if demo != nil {
			// The demo's telemetry backs the admin surface: its registry,
			// scraper and flight recorder must be attached before Serve so
			// /varz, /eventz and /elasticz are live from the first sample.
			demo.AttachAdmin(adm)
		}
		srv, err := adm.Serve(adminAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s (/metrics /healthz /tracez /queuesz /varz /eventz /elasticz /benchz /debug/pprof)\n", srv.Addr())
		defer func() {
			fmt.Fprintln(os.Stderr, "run finished; admin endpoint still serving — interrupt to exit")
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			<-sig
		}()
	}
	genCfg := trace.GenConfig{Seed: seed}
	if quick {
		genCfg = trace.GenConfig{Seed: seed, InitialFiles: 5, TrainIterations: 2, Snapshots: 15, BirthMean: 4}
	}

	all := which == "all"
	ran := false
	out := os.Stdout

	if all || which == "fig7a" {
		ran = true
		bench.RunFig7a(genCfg).Print(out)
		fmt.Fprintln(out)
	}
	if all || which == "fig7b" {
		ran = true
		tr := trace.Generate(genCfg)
		res, err := bench.RunFig7b(tr)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
	}
	if all || which == "fig7cd" || which == "fig7c" || which == "fig7d" {
		ran = true
		tr := trace.Generate(genCfg)
		res, err := bench.RunFig7cd(tr)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
	}
	if all || which == "table2" {
		ran = true
		tr := trace.Generate(genCfg)
		res, err := bench.RunTable2(tr)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
	}
	if all || which == "fig7e" {
		ran = true
		ops := int64(120)
		if quick {
			ops = 30
		}
		res, err := bench.RunFig7e(ops, seed)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
	}
	if all || which == "fig7f" {
		ran = true
		reps := 5
		if quick {
			reps = 2
		}
		res, err := bench.RunFig7f(reps)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
	}
	if all || which == "fig8ab" || which == "fig8a" || which == "fig8b" {
		ran = true
		res := bench.RunFig8ab(seed)
		res.PrintFig8a(out, 30)
		fmt.Fprintln(out)
		res.PrintFig8b(out, 30)
		fmt.Fprintln(out)
	}
	if all || which == "fig8cde" || which == "fig8c" || which == "fig8d" || which == "fig8e" {
		ran = true
		res := bench.RunFig8cde(seed)
		res.PrintFig8cde(out)
		fmt.Fprintln(out)
	}
	if all || which == "fig8f" {
		ran = true
		cfg := bench.Fig8fConfig{}
		if quick {
			cfg.Duration = 4e9 // 4s
		}
		res, err := bench.RunFig8f(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
	}
	if which == "chaos" { // not part of "all": it is a robustness soak, not a figure
		ran = true
		cfg := bench.ChaosConfig{Seed: seed}
		if quick {
			// Long enough that at least one scheduled crash lands inside
			// the workload window.
			cfg.CommitsPerClient = 20
			cfg.CommitGap = 25e6 // 25ms
		} else {
			cfg.CommitsPerClient = 60
			cfg.Clients = 4
		}
		res, err := bench.RunChaos(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
		if len(res.Violations) > 0 {
			return fmt.Errorf("chaos soak failed with %d violations", len(res.Violations))
		}
	}
	if which == "chaos-multi" { // not part of "all": cross-instance failover soak
		ran = true
		cfg := bench.MultiChaosConfig{Seed: seed}
		if quick {
			cfg.Workspaces = 3
			cfg.Clients = 4
			cfg.CommitsPerClient = 6
			cfg.PhaseEvery = 250e6 // 250ms
			cfg.CrashEvery = 350e6 // 350ms
		} else {
			cfg.CommitsPerClient = 20
			cfg.CommitGap = 15e6 // 15ms
		}
		res, err := bench.RunMultiChaos(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
		if len(res.Violations) > 0 {
			return fmt.Errorf("multi-instance chaos soak failed with %d violations", len(res.Violations))
		}
	}
	if which == "fleet-trace" { // not part of "all": fleet-observability smoke
		ran = true
		cfg := bench.FleetTraceConfig{Seed: seed}
		if !quick {
			cfg.Instances = 3
			cfg.Workspaces = 6
			cfg.WarmCommits = 5
		}
		res, err := bench.RunFleetTrace(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
		if len(res.Violations) > 0 {
			return fmt.Errorf("fleet-trace smoke failed with %d violations", len(res.Violations))
		}
	}
	if which == "ub1-multi" { // not part of "all": routed-fleet peak replay
		ran = true
		cfg := bench.UB1MultiConfig{Seed: seed}
		if quick {
			cfg.Commits = 1200
			cfg.Duration = 2e9 // 2s
		}
		res, err := bench.RunUB1Multi(cfg)
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
		if res.Failed > 0 || res.Lost > 0 {
			return fmt.Errorf("ub1-multi broke durability: %d failed, %d lost", res.Failed, res.Lost)
		}
		if !res.SLOMet {
			return fmt.Errorf("ub1-multi missed the SLO: attainment %.4f < %.2f", res.Attainment, res.SLOObjective)
		}
	}
	if which == "matrix" { // not part of "all": scenario matrix into the benchmark history
		ran = true
		res, err := bench.RunMatrix(bench.MatrixConfig{Seed: seed, Quick: quick, Smoke: smoke})
		if err != nil {
			return err
		}
		res.Print(out)
		fmt.Fprintln(out)
		if v := res.Violations(); len(v) > 0 {
			return fmt.Errorf("scenario matrix failed with %d violations", len(v))
		}
		if !smoke {
			if err := recordAndGateMatrix(out, historyPath, res); err != nil {
				return err
			}
		}
	}
	if which == "trace" { // observability demo, not a paper figure
		ran = true
		if err := bench.RunTraceDemo(out, tracer, registry); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if which == "elastic-demo" { // instrumented Fig. 8 replay, not a separate figure
		ran = true
		demo.Run(out)
		fmt.Fprintln(out)
	}
	if all || which == "ablation" {
		ran = true
		files := 30
		if quick {
			files = 10
		}
		tres, err := bench.RunTransferAblation(files, seed)
		if err != nil {
			return err
		}
		tres.Print(out)
		fmt.Fprintln(out)

		crows, err := bench.RunCompressionAblation(trace.Generate(trace.GenConfig{
			Seed: seed, InitialFiles: 5, TrainIterations: 2, Snapshots: 12, BirthMean: 4,
		}))
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — chunk compression")
		fmt.Fprintf(out, "%-8s %14s %12s\n", "codec", "storage", "elapsed")
		for _, r := range crows {
			fmt.Fprintf(out, "%-8s %11.2f MB %12s\n", r.Compression, float64(r.StorageBytes)/(1<<20), r.Elapsed.Round(10e6))
		}
		fmt.Fprintln(out)

		drows, err := bench.RunDedupAblation(20, seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — per-user deduplication (half the files are duplicates)")
		for _, r := range drows {
			fmt.Fprintf(out, "%-28s %11.2f MB uploaded\n", r.Scenario, float64(r.StorageBytes)/(1<<20))
		}
		fmt.Fprintln(out)

		bench.PrintPolicyAblation(out, bench.RunPolicyAblation(seed))
		fmt.Fprintln(out)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}

// recordAndGateMatrix appends one history record per scenario, then judges
// every scenario suite against its rolling median — so workload shapes are
// regression-gated exactly like microbenchmarks.
func recordAndGateMatrix(out io.Writer, historyPath string, res *bench.MatrixResult) error {
	prov := benchhist.CollectProvenance(".")
	takenAt := time.Now()
	for i := range res.Scenarios {
		rec := res.Scenarios[i].HistoryRecord(prov, takenAt)
		if err := benchhist.Append(historyPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded %s into %s\n", rec.Suite, historyPath)
	}
	h, err := benchhist.ReadHistory(historyPath)
	if err != nil {
		return err
	}
	failed := 0
	for i := range res.Scenarios {
		suite := "scenario/" + res.Scenarios[i].Name
		rep, err := benchhist.GateSuite(h, suite, benchhist.GateConfig{})
		if err != nil {
			return err
		}
		rep.Print(out)
		if rep.Failed {
			failed++
		}
	}
	fmt.Fprintln(out)
	if failed > 0 {
		return fmt.Errorf("%d scenario suite(s) regressed vs the rolling median", failed)
	}
	return nil
}
