// Command benchhist maintains the continuous benchmark history
// (dev/bench/history.jsonl): appends provenance-stamped records, runs the
// trend-aware regression gate, imports pre-history BENCH_<n>.json
// snapshots, and regenerates the static dashboard. scripts/benchsnap.sh and
// scripts/benchcmp.sh are thin wrappers over it.
//
//	benchhist -mode append -input bench.txt -benchtime 1x -snapshot BENCH_4.json
//	benchhist -mode gate   -suite micro
//	benchhist -mode import
//	benchhist -mode dash   -out dev/bench
//	benchhist -mode latest
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stacksync/internal/benchhist"
)

func main() {
	var (
		mode      = flag.String("mode", "", "append|gate|import|dash|latest")
		history   = flag.String("history", "dev/bench/history.jsonl", "history file (JSON lines)")
		input     = flag.String("input", "-", "append: go test -bench output file (- for stdin)")
		benchtime = flag.String("benchtime", "1x", "append: -benchtime the run used, echoed into the record")
		snapshot  = flag.String("snapshot", "", "append: also write a BENCH_<n>.json snapshot here")
		suite     = flag.String("suite", benchhist.MicroSuite, "gate: suite to judge")
		window    = flag.Int("window", 5, "gate: rolling baseline size K (clean runs)")
		threshold = flag.Float64("threshold", 0.20, "gate: relative regression bound")
		out       = flag.String("out", "dev/bench", "dash: output directory")
	)
	flag.Parse()

	if err := run(*mode, *history, *input, *benchtime, *snapshot, *suite, *window, *threshold, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchhist:", err)
		os.Exit(1)
	}
}

func run(mode, history, input, benchtime, snapshot, suite string, window int, threshold float64, out string) error {
	switch mode {
	case "append":
		return runAppend(history, input, benchtime, snapshot)
	case "gate":
		return runGate(history, suite, window, threshold)
	case "import":
		n, err := benchhist.ImportSnapshots(history, ".")
		if err != nil {
			return err
		}
		fmt.Printf("imported %d snapshot(s) into %s\n", n, history)
		return nil
	case "dash":
		h, err := benchhist.ReadHistory(history)
		if err != nil {
			return err
		}
		warnSkipped(h)
		if err := benchhist.WriteDashboard(out, h); err != nil {
			return err
		}
		fmt.Printf("wrote %s/data.js and %s/index.html from %d record(s)\n", out, out, len(h.Records))
		return nil
	case "latest":
		h, err := benchhist.ReadHistory(history)
		if err != nil {
			return err
		}
		rec, ok := h.Latest()
		if !ok {
			return fmt.Errorf("history %s is empty", history)
		}
		return printJSON(os.Stdout, rec)
	default:
		return fmt.Errorf("unknown -mode %q (append|gate|import|dash|latest)", mode)
	}
}

func runAppend(history, input, benchtime, snapshot string) error {
	var r io.Reader = os.Stdin
	if input != "" && input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	metrics, err := benchhist.ParseGoBench(r, benchhist.MicroGates)
	if err != nil {
		return err
	}
	prov := benchhist.CollectProvenance(".")
	rec := benchhist.NewMicroRecord(prov, time.Now(), benchtime, metrics)
	if err := benchhist.Append(history, rec); err != nil {
		return err
	}
	dirty := ""
	if rec.Dirty {
		dirty = " (dirty)"
	}
	fmt.Printf("appended %s record @ %s%s to %s (%d metrics)\n",
		rec.Suite, shortSHA(rec.Commit), dirty, history, len(rec.Metrics))
	if snapshot != "" {
		if err := benchhist.WriteSnapshot(snapshot, rec); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", snapshot)
	}
	return nil
}

func runGate(history, suite string, window int, threshold float64) error {
	h, err := benchhist.ReadHistory(history)
	if err != nil {
		return err
	}
	warnSkipped(h)
	if len(h.Suite(suite)) == 0 {
		fmt.Printf("gate %s: no records in %s — nothing to judge\n", suite, history)
		return nil
	}
	rep, err := benchhist.GateSuite(h, suite, benchhist.GateConfig{Window: window, Threshold: threshold})
	if err != nil {
		return err
	}
	rep.Print(os.Stdout)
	if rep.Failed {
		return fmt.Errorf("suite %s regressed vs the rolling median (re-run with BENCHTIME=20x to confirm before digging)", suite)
	}
	return nil
}

func warnSkipped(h *benchhist.History) {
	if h.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "benchhist: warning: %d undecodable history line(s) skipped\n", h.Skipped)
	}
}

func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func shortSHA(c string) string {
	if len(c) > 12 {
		return c[:12]
	}
	return c
}
