// Command stacksync-server runs the server side of a StackSync deployment:
// the message broker (TCP), the metadata back-end (with WAL durability), the
// storage back-end (on disk), one or more SyncService instances, and a
// Supervisor enforcing reactive auto-scaling of the service pool.
//
//	stacksync-server -listen 127.0.0.1:7070 -data /var/lib/stacksync \
//	    -workspace shared -users alice,bob
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"stacksync/internal/benchhist"
	"stacksync/internal/codec"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/obs"
	"stacksync/internal/omq"
	"stacksync/internal/provision"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "broker listen address")
	storageListen := flag.String("storage-listen", "127.0.0.1:7071", "storage gateway listen address (empty disables)")
	storageToken := flag.String("storage-token", "", "storage gateway auth token (empty disables auth)")
	dataDir := flag.String("data", "./stacksync-data", "data directory (WAL, journal, chunks)")
	workspace := flag.String("workspace", "shared", "workspace id to create if missing")
	users := flag.String("users", "alice", "comma-separated users with access to the workspace")
	minInstances := flag.Int("min-instances", 1, "minimum SyncService instances")
	maxInstances := flag.Int("max-instances", 8, "maximum SyncService instances")
	metaShards := flag.Int("meta-shards", 0, "metadata store shard count, rounded up to a power of two (0 = default)")
	admin := flag.String("admin", "", "admin/introspection listen address, e.g. 127.0.0.1:7072 (empty disables; enabling it also enables tracing)")
	benchHistory := flag.String("bench-history", "dev/bench/history.jsonl", "benchmark history file served on /benchz")
	affinity := flag.Bool("affinity", false, "enable workspace-affinity routing: instances fence routed commits by consistent-hash ownership and the supervisor rebalances the ring on scale events")
	codecName := flag.String("codec", "", "RPC argument codec: json, gob or bin (default: $STACKSYNC_CODEC, else json); peers negotiate per message, so mixed fleets interoperate")
	flag.Parse()

	if err := run(*listen, *storageListen, *storageToken, *dataDir, *workspace, *users, *minInstances, *maxInstances, *metaShards, *admin, *benchHistory, *affinity, *codecName); err != nil {
		log.Fatal(err)
	}
}

func run(listen, storageListen, storageToken, dataDir, workspace, users string, minInstances, maxInstances, metaShards int, admin, benchHistory string, affinity bool, codecName string) error {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}

	// Message broker with persistent-message journalling, served over TCP.
	broker, err := mq.RecoverBroker(filepath.Join(dataDir, "broker.journal"))
	if err != nil {
		return err
	}
	defer broker.Close()
	server, err := mq.NewServer(broker, listen)
	if err != nil {
		return err
	}
	defer server.Close()
	log.Printf("broker listening on %s", server.Addr())

	// Observability: with -admin set, every broker shares one registry, one
	// tracer and one flight recorder so /metrics, /tracez and /eventz see the
	// whole node, and a scraper samples the registry into time series for
	// /varz.
	var (
		tracer   *obs.Tracer
		registry *obs.Registry
		events   *obs.EventLog
		scraper  *obs.Scraper
		obsOpts  []omq.BrokerOption
	)
	if admin != "" {
		tracer = obs.NewTracer()
		registry = obs.NewRegistry()
		events = obs.NewEventLog(obs.DefaultEventLogCapacity)
		scraper = obs.StartScraper(registry, obs.ScraperConfig{})
		defer scraper.Stop()
		obsOpts = []omq.BrokerOption{omq.WithTracer(tracer), omq.WithRegistry(registry), omq.WithEventLog(events)}
	}

	// RPC codec: an explicit -codec wins over $STACKSYNC_CODEC (the default
	// inside omq). obsOpts seeds every broker on this node, so all of them
	// speak the chosen codec; replies still follow each requester's codec.
	if codecName != "" {
		c, err := codec.ByName(codecName)
		if err != nil {
			return err
		}
		obsOpts = append(obsOpts, omq.WithCodec(c))
		log.Printf("rpc codec: %s", c.Name())
	}

	// Metadata back-end with WAL recovery, sharded by workspace.
	var metaOpts []metastore.Option
	if metaShards > 0 {
		metaOpts = append(metaOpts, metastore.WithShards(metaShards))
	}
	if registry != nil {
		metaOpts = append(metaOpts, metastore.WithRegistry(registry))
	}
	meta, err := metastore.Recover(filepath.Join(dataDir, "metadata.wal"), metaOpts...)
	if err != nil {
		return err
	}
	defer meta.Close()
	members := strings.Split(users, ",")
	err = meta.CreateWorkspace(metastore.Workspace{ID: workspace, Owner: members[0], Members: members})
	if err != nil && !strings.Contains(err.Error(), "exists") {
		return err
	}

	// Storage back-end on disk, fronted by the HTTP gateway so clients on
	// other machines reach it — the decoupled data flow of the paper.
	chunks, err := objstore.NewDisk(filepath.Join(dataDir, "chunks"))
	if err != nil {
		return err
	}
	if storageListen != "" {
		gw := &http.Server{Addr: storageListen, Handler: objstore.NewHandler(chunks, storageToken)}
		go func() {
			if err := gw.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("storage gateway: %v", err)
			}
		}()
		defer gw.Close()
		log.Printf("storage gateway listening on %s", storageListen)
	}

	// SyncService pool managed by a Supervisor with a reactive policy.
	nodeBroker, err := omq.NewBroker(broker, append([]omq.BrokerOption{omq.WithID("node-0")}, obsOpts...)...)
	if err != nil {
		return err
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		return err
	}
	defer rb.Close()
	notifBroker, err := omq.NewBroker(broker, append([]omq.BrokerOption{omq.WithID("notif-0")}, obsOpts...)...)
	if err != nil {
		return err
	}
	defer notifBroker.Close()
	// Fleet federation: with admin + affinity enabled, every spawned instance
	// gets its own span sink, registry, event log and hot-workspace sketch,
	// and a Collector scrapes them all so /fleetz and the fleet /tracez can
	// answer cross-instance questions. The shared node registry above keeps
	// covering node-wide components (broker, metastore); the per-instance
	// exports are what the collector stamps with instance id + ring epoch.
	var collector *obs.Collector
	type instanceObs struct {
		reg    *obs.Registry
		sink   *obs.SpanSink
		events *obs.EventLog
		tracer *obs.Tracer
		hot    *obs.HotStats
	}
	bundles := make(map[string]*instanceObs)
	var bundleMu sync.Mutex
	if admin != "" && affinity {
		collector = obs.NewCollector()
		rb.SetSpawnHooks(omq.SpawnHooks{
			Options: func(oid, instanceID string) []omq.BrokerOption {
				b := &instanceObs{
					reg:    obs.NewRegistry(),
					sink:   obs.NewSpanSink(0),
					events: obs.NewEventLog(obs.DefaultEventLogCapacity),
					hot:    obs.NewHotStats(8),
				}
				b.tracer = obs.NewTracer(obs.WithSink(b.sink), obs.WithInstance(instanceID))
				bundleMu.Lock()
				bundles[instanceID] = b
				bundleMu.Unlock()
				return []omq.BrokerOption{
					omq.WithTracer(b.tracer),
					omq.WithRegistry(b.reg),
					omq.WithEventLog(b.events),
				}
			},
			Stopped: func(oid, instanceID string, clean bool) {
				collector.MarkDead(instanceID, clean)
			},
		})
		stopPolling := collector.StartPolling(time.Second)
		defer stopPolling()
	}

	if affinity {
		// Affinity deployments give every instance its ring identity at spawn
		// time, so it fences routed calls stamped under a stale ring; the
		// supervisor (Routing below) pushes ring updates on every scale event.
		rb.RegisterInstanceFactory(core.ServiceOID, func(id string) (interface{}, error) {
			svc := core.NewService(meta, notifBroker)
			svc.SetInstance(id)
			if collector != nil {
				bundleMu.Lock()
				b := bundles[id]
				bundleMu.Unlock()
				if b != nil {
					svc.SetObs(b.tracer, b.hot)
					collector.Register(obs.Source{
						InstanceID: id,
						Epoch:      svc.RingEpoch,
						Ready:      svc.Ready,
						Registry:   b.reg,
						Sink:       b.sink,
						Events:     b.events,
						Hot:        b.hot,
					})
				}
			}
			return svc.API(), nil
		})
	} else {
		rb.RegisterFactory(core.ServiceOID, func() (interface{}, error) {
			return core.NewService(meta, notifBroker).API(), nil
		})
	}
	if err := broker.DeclareQueue(core.ServiceOID); err != nil {
		return err
	}

	supBroker, err := omq.NewBroker(broker, append([]omq.BrokerOption{omq.WithID("sup-0")}, obsOpts...)...)
	if err != nil {
		return err
	}
	defer supBroker.Close()
	reactive := provision.NewReactive(provision.DefaultSLA(), 0, 0, nil)
	if events != nil {
		reactive.SetEventLog(events)
	}
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:          core.ServiceOID,
		CheckEvery:   time.Second,
		MinInstances: minInstances,
		MaxInstances: maxInstances,
		Provisioner:  reactive,
		Routing:      affinity,
	})
	if err != nil {
		return err
	}
	defer sup.Stop()

	if admin != "" {
		adminSrv, err := (&obs.Admin{
			Registry: registry,
			Tracer:   tracer,
			Scraper:  scraper,
			Events:   events,
			Bench:    benchhist.AdminStatus(benchHistory),
			Elastic: func() obs.ElasticStatus {
				var st obs.ElasticStatus
				if s, err := broker.QueueStats(core.ServiceOID); err == nil {
					instances := rb.InstanceCount(core.ServiceOID)
					eta := instances
					if eta < 1 {
						eta = 1
					}
					svc := provision.DefaultSLA().S.Seconds()
					st.Queues = append(st.Queues, obs.QueueLoad{
						Queue:       core.ServiceOID,
						Lambda:      s.ArrivalRate,
						ServiceTime: svc,
						Instances:   instances,
						Rho:         s.ArrivalRate * svc / float64(eta),
					})
				}
				return st
			},
			Health: func() obs.Health {
				instances := rb.InstanceCount(core.ServiceOID)
				h := obs.Health{OK: instances >= minInstances, Components: []obs.ComponentHealth{
					{Name: "mq", OK: true, Detail: server.Addr()},
					{Name: "syncservice", OK: instances >= minInstances,
						Detail: fmt.Sprintf("%d/%d instances", instances, minInstances)},
				}}
				return h
			},
			Ready: func() obs.Health {
				// Liveness counts processes; readiness counts instances that
				// hold a ring slot. A fenced or draining instance is alive but
				// not ready, so it drops out here before /healthz notices.
				instances := rb.InstanceCount(core.ServiceOID)
				ready := instances
				if collector != nil {
					collector.Collect()
					ready = 0
					for _, st := range collector.Rollup().Instances {
						if st.Alive && st.Ready {
							ready++
						}
					}
				}
				return obs.Health{OK: ready >= minInstances, Components: []obs.ComponentHealth{
					{Name: "syncservice", OK: ready >= minInstances,
						Detail: fmt.Sprintf("%d/%d ready (of %d alive)", ready, minInstances, instances)},
				}}
			},
			Collector: collector,
			Queues: func() []obs.QueueInfo {
				names := broker.Queues()
				out := make([]obs.QueueInfo, 0, len(names))
				for _, name := range names {
					s, err := broker.QueueStats(name)
					if err != nil {
						continue
					}
					out = append(out, obs.QueueInfo{
						Name: s.Name, Depth: s.Depth, Unacked: s.Unacked,
						Consumers: s.Consumers, ArrivalRate: s.ArrivalRate,
						Enqueued: s.Enqueued, Acked: s.Acked, Redelivered: s.Redelivered,
					})
				}
				return out
			},
		}).Serve(admin)
		if err != nil {
			return err
		}
		defer adminSrv.Close()
		log.Printf("admin endpoint on http://%s (/metrics /healthz /readyz /tracez /fleetz /queuesz /varz /eventz /elasticz /benchz /debug/pprof)", adminSrv.Addr())
	}

	fmt.Printf("stacksync-server up: workspace=%q users=%v service pool %d..%d affinity=%v\n",
		workspace, members, minInstances, maxInstances, affinity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	return nil
}
