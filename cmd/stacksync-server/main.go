// Command stacksync-server runs the server side of a StackSync deployment:
// the message broker (TCP), the metadata back-end (with WAL durability), the
// storage back-end (on disk), one or more SyncService instances, and a
// Supervisor enforcing reactive auto-scaling of the service pool.
//
//	stacksync-server -listen 127.0.0.1:7070 -data /var/lib/stacksync \
//	    -workspace shared -users alice,bob
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
	"stacksync/internal/provision"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "broker listen address")
	storageListen := flag.String("storage-listen", "127.0.0.1:7071", "storage gateway listen address (empty disables)")
	storageToken := flag.String("storage-token", "", "storage gateway auth token (empty disables auth)")
	dataDir := flag.String("data", "./stacksync-data", "data directory (WAL, journal, chunks)")
	workspace := flag.String("workspace", "shared", "workspace id to create if missing")
	users := flag.String("users", "alice", "comma-separated users with access to the workspace")
	minInstances := flag.Int("min-instances", 1, "minimum SyncService instances")
	maxInstances := flag.Int("max-instances", 8, "maximum SyncService instances")
	flag.Parse()

	if err := run(*listen, *storageListen, *storageToken, *dataDir, *workspace, *users, *minInstances, *maxInstances); err != nil {
		log.Fatal(err)
	}
}

func run(listen, storageListen, storageToken, dataDir, workspace, users string, minInstances, maxInstances int) error {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}

	// Message broker with persistent-message journalling, served over TCP.
	broker, err := mq.RecoverBroker(filepath.Join(dataDir, "broker.journal"))
	if err != nil {
		return err
	}
	defer broker.Close()
	server, err := mq.NewServer(broker, listen)
	if err != nil {
		return err
	}
	defer server.Close()
	log.Printf("broker listening on %s", server.Addr())

	// Metadata back-end with WAL recovery.
	meta, err := metastore.Recover(filepath.Join(dataDir, "metadata.wal"))
	if err != nil {
		return err
	}
	defer meta.Close()
	members := strings.Split(users, ",")
	err = meta.CreateWorkspace(metastore.Workspace{ID: workspace, Owner: members[0], Members: members})
	if err != nil && !strings.Contains(err.Error(), "exists") {
		return err
	}

	// Storage back-end on disk, fronted by the HTTP gateway so clients on
	// other machines reach it — the decoupled data flow of the paper.
	chunks, err := objstore.NewDisk(filepath.Join(dataDir, "chunks"))
	if err != nil {
		return err
	}
	if storageListen != "" {
		gw := &http.Server{Addr: storageListen, Handler: objstore.NewHandler(chunks, storageToken)}
		go func() {
			if err := gw.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("storage gateway: %v", err)
			}
		}()
		defer gw.Close()
		log.Printf("storage gateway listening on %s", storageListen)
	}

	// SyncService pool managed by a Supervisor with a reactive policy.
	nodeBroker, err := omq.NewBroker(broker, omq.WithID("node-0"))
	if err != nil {
		return err
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		return err
	}
	defer rb.Close()
	notifBroker, err := omq.NewBroker(broker, omq.WithID("notif-0"))
	if err != nil {
		return err
	}
	defer notifBroker.Close()
	rb.RegisterFactory(core.ServiceOID, func() (interface{}, error) {
		return core.NewService(meta, notifBroker).API(), nil
	})
	if err := broker.DeclareQueue(core.ServiceOID); err != nil {
		return err
	}

	supBroker, err := omq.NewBroker(broker, omq.WithID("sup-0"))
	if err != nil {
		return err
	}
	defer supBroker.Close()
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:          core.ServiceOID,
		CheckEvery:   time.Second,
		MinInstances: minInstances,
		MaxInstances: maxInstances,
		Provisioner:  provision.NewReactive(provision.DefaultSLA(), 0, 0, nil),
	})
	if err != nil {
		return err
	}
	defer sup.Stop()

	fmt.Printf("stacksync-server up: workspace=%q users=%v service pool %d..%d\n",
		workspace, members, minInstances, maxInstances)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	return nil
}
