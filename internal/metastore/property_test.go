package metastore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestVersionChainInvariants drives random commit attempts and checks the
// store's core invariants after every operation: versions in a chain are
// strictly sequential, the current version is the chain's last, and exactly
// one proposal wins each version slot.
func TestVersionChainInvariants(t *testing.T) {
	const (
		seeds = 10
		items = 5
		steps = 400
	)
	for seed := int64(1); seed <= seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
			t.Fatal(err)
		}
		// Reference model: current version per item.
		model := make(map[string]uint64, items)

		for step := 0; step < steps; step++ {
			itemID := string(rune('a' + r.Intn(items)))
			// Propose a version that is correct (model+1) half the time and
			// arbitrary otherwise.
			var proposed uint64
			if r.Intn(2) == 0 {
				proposed = model[itemID] + 1
			} else {
				proposed = uint64(r.Intn(8))
			}
			status := Modified
			if proposed == 1 {
				status = Added
			}
			_, err := s.CommitVersion(ItemVersion{
				Workspace: "ws", ItemID: itemID, Path: "/" + itemID,
				Version: proposed, Status: status,
			})
			wantOK := proposed == model[itemID]+1
			if wantOK && err != nil {
				t.Fatalf("seed %d step %d: valid commit v%d over v%d rejected: %v",
					seed, step, proposed, model[itemID], err)
			}
			if !wantOK && err == nil {
				t.Fatalf("seed %d step %d: invalid commit v%d over v%d accepted",
					seed, step, proposed, model[itemID])
			}
			if err == nil {
				model[itemID] = proposed
			}
			// Invariants against the model.
			cur, ok, err := s.Current("ws", itemID)
			if err != nil {
				t.Fatal(err)
			}
			if model[itemID] == 0 {
				if ok {
					t.Fatalf("seed %d: phantom item %s", seed, itemID)
				}
				continue
			}
			if !ok || cur.Version != model[itemID] {
				t.Fatalf("seed %d: current(%s) = v%d ok=%v, model v%d",
					seed, itemID, cur.Version, ok, model[itemID])
			}
			hist, err := s.History("ws", itemID)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range hist {
				if v.Version != uint64(i+1) {
					t.Fatalf("seed %d: history[%d] of %s has v%d", seed, i, itemID, v.Version)
				}
			}
		}
	}
}

// TestStateMatchesChains cross-checks State against per-item Current for
// random workloads including deletions.
func TestStateMatchesChains(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := NewStore()
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	versions := map[string]uint64{}
	live := map[string]bool{}
	for step := 0; step < 300; step++ {
		itemID := string(rune('a' + r.Intn(8)))
		next := versions[itemID] + 1
		status := Modified
		if next == 1 {
			status = Added
		}
		if live[itemID] && r.Intn(4) == 0 {
			status = Deleted
		}
		if _, err := s.CommitVersion(ItemVersion{
			Workspace: "ws", ItemID: itemID, Path: "/" + itemID,
			Version: next, Status: status,
		}); err != nil {
			t.Fatal(err)
		}
		versions[itemID] = next
		live[itemID] = status != Deleted
	}
	state, err := s.State("ws")
	if err != nil {
		t.Fatal(err)
	}
	wantLive := 0
	for _, ok := range live {
		if ok {
			wantLive++
		}
	}
	if len(state) != wantLive {
		t.Fatalf("state has %d items, model says %d", len(state), wantLive)
	}
	for _, v := range state {
		if !live[v.ItemID] {
			t.Fatalf("deleted item %s in state", v.ItemID)
		}
		if v.Version != versions[v.ItemID] {
			t.Fatalf("state %s at v%d, model v%d", v.ItemID, v.Version, versions[v.ItemID])
		}
	}
}

// --- Linearizability-style model checking of the sharded store ---
//
// The sharded store serializes writers per workspace, so for a workload
// whose per-workspace op sequence is fixed, running the workspaces
// concurrently against the sharded store must be indistinguishable —
// per-op outcomes, final state, full histories — from replaying the same
// sequences one workspace at a time against a single-shard store (the old
// serial store, used here as the reference model). Schedules are generated
// from a seeded math/rand, and every failure message carries the seed, so a
// failing interleaving replays deterministically.

const (
	opCommit = iota
	opBatch
	opCurrent
)

// propOp is one scheduled operation against one workspace.
type propOp struct {
	kind   int
	items  []ItemVersion // proposals for opCommit (1 item) / opBatch
	ws     string
	itemID string // for opCurrent
}

// genSchedules builds a deterministic per-workspace op schedule. Proposals
// track a local next-version counter so roughly half are valid (+1) and the
// rest conflict, exercising both paths of Algorithm 1.
func genSchedules(seed int64, workspaces, ops, items int) [][]propOp {
	r := rand.New(rand.NewSource(seed))
	scheds := make([][]propOp, workspaces)
	for w := range scheds {
		ws := fmt.Sprintf("ws-%d", w)
		next := make(map[string]uint64, items)
		propose := func() ItemVersion {
			itemID := string(rune('a' + r.Intn(items)))
			var v uint64
			if r.Intn(2) == 0 {
				v = next[itemID] + 1
			} else {
				v = uint64(r.Intn(6))
			}
			status := Modified
			if v == 1 {
				status = Added
			} else if r.Intn(16) == 0 {
				status = Deleted
			}
			if v == next[itemID]+1 {
				next[itemID] = v
			}
			return ItemVersion{
				Workspace: ws, ItemID: itemID, Path: "/" + itemID,
				Version: v, Status: status, Size: int64(r.Intn(1000)),
				Checksum: fmt.Sprintf("c%d", r.Intn(4)),
			}
		}
		sched := make([]propOp, ops)
		for i := range sched {
			switch k := r.Intn(10); {
			case k < 5:
				sched[i] = propOp{kind: opCommit, ws: ws, items: []ItemVersion{propose()}}
			case k < 8:
				batch := make([]ItemVersion, 1+r.Intn(4))
				for j := range batch {
					batch[j] = propose()
				}
				sched[i] = propOp{kind: opBatch, ws: ws, items: batch}
			default:
				sched[i] = propOp{kind: opCurrent, ws: ws, itemID: string(rune('a' + r.Intn(items)))}
			}
		}
		scheds[w] = sched
	}
	return scheds
}

// runSchedule executes one workspace's schedule and renders every outcome —
// returned versions, batch results, read results, errors — to a canonical
// string for exact comparison against the reference model.
func runSchedule(s *Store, sched []propOp) []string {
	out := make([]string, len(sched))
	for i, op := range sched {
		switch op.kind {
		case opCommit:
			v, err := s.CommitVersion(op.items[0])
			out[i] = fmt.Sprintf("commit %s v%d err=%v", v.ItemID, v.Version, err)
		case opBatch:
			res, err := s.CommitBatch(op.items)
			line := fmt.Sprintf("batch err=%v", err)
			for _, r := range res {
				line += fmt.Sprintf(" [%v %s v%d]", r.Committed, r.Version.ItemID, r.Version.Version)
			}
			out[i] = line
		case opCurrent:
			v, ok, err := s.Current(op.ws, op.itemID)
			out[i] = fmt.Sprintf("current %s ok=%v v%d err=%v", op.itemID, ok, v.Version, err)
		}
	}
	return out
}

// TestShardedStoreMatchesSerialReference is the model-checking harness:
// concurrent per-workspace schedules against the sharded store must produce
// exactly the outcomes of the serial single-shard reference store.
func TestShardedStoreMatchesSerialReference(t *testing.T) {
	const (
		seeds      = 6
		workspaces = 8
		opsPerWS   = 150
		items      = 4
	)
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			scheds := genSchedules(seed, workspaces, opsPerWS, items)
			// Both stores use a fixed clock so committed timestamps compare
			// exactly (CommittedAt is assigned inside the store).
			fixed := time.Unix(1700000000, 0).UTC()
			now := func() time.Time { return fixed }
			sharded := NewStore(WithShards(16), WithNow(now))
			serial := NewStore(WithShards(1), WithNow(now))
			if sharded.Shards() != 16 || serial.Shards() != 1 {
				t.Fatalf("shard counts: %d/%d", sharded.Shards(), serial.Shards())
			}
			for w := 0; w < workspaces; w++ {
				ws := fmt.Sprintf("ws-%d", w)
				for _, s := range []*Store{sharded, serial} {
					if err := s.CreateWorkspace(Workspace{ID: ws, Owner: "u"}); err != nil {
						t.Fatal(err)
					}
				}
			}

			got := make([][]string, workspaces)
			var wg sync.WaitGroup
			for w := range scheds {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					got[w] = runSchedule(sharded, scheds[w])
				}()
			}
			wg.Wait()

			for w := range scheds {
				want := runSchedule(serial, scheds[w])
				for i := range want {
					if got[w][i] != want[i] {
						t.Fatalf("seed %d: ws-%d op %d diverges from reference model\n  sharded: %s\n  serial:  %s\n(re-run with seed %d for a deterministic replay)",
							seed, w, i, got[w][i], want[i], seed)
					}
				}
			}
			for w := 0; w < workspaces; w++ {
				ws := fmt.Sprintf("ws-%d", w)
				a, errA := sharded.State(ws)
				b, errB := serial.State(ws)
				if errA != nil || errB != nil {
					t.Fatalf("state: %v / %v", errA, errB)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("seed %d: final state of %s diverges\n  sharded: %+v\n  serial:  %+v", seed, ws, a, b)
				}
				for it := 0; it < items; it++ {
					itemID := string(rune('a' + it))
					ha, _ := sharded.History(ws, itemID)
					hb, _ := serial.History(ws, itemID)
					if !reflect.DeepEqual(ha, hb) {
						t.Fatalf("seed %d: history of %s/%s diverges", seed, ws, itemID)
					}
				}
			}
		})
	}
}

// TestConcurrentSameWorkspaceInvariants races writers into ONE workspace —
// the shard lock, not goroutine luck, must uphold first-committer-wins —
// while readers hammer the snapshot paths. Afterwards every chain must be
// strictly sequential with exactly one winner per version slot.
func TestConcurrentSameWorkspaceInvariants(t *testing.T) {
	const (
		writers  = 8
		attempts = 200
		items    = 4
	)
	s := NewStore(WithShards(8))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	var wg, rwg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: exercise Current/State/History concurrently with the writers;
	// under -race this doubles as a data-race probe on the read paths.
	for g := 0; g < 2; g++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, _ = s.Current("ws", "a")
				_, _ = s.State("ws")
				_, _ = s.History("ws", "b")
			}
		}()
	}
	var commits [items]uint64 // per item, winners counted
	var cmu sync.Mutex
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < attempts; i++ {
				it := r.Intn(items)
				itemID := string(rune('a' + it))
				cur, ok, err := s.Current("ws", itemID)
				if err != nil {
					t.Errorf("current: %v", err)
					return
				}
				next := uint64(1)
				if ok {
					next = cur.Version + 1
				}
				status := Modified
				if next == 1 {
					status = Added
				}
				_, err = s.CommitVersion(ItemVersion{
					Workspace: "ws", ItemID: itemID, Path: "/" + itemID,
					Version: next, Status: status, Checksum: fmt.Sprintf("w%d-%d", g, i),
				})
				if err == nil {
					cmu.Lock()
					commits[it]++
					cmu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	for it := 0; it < items; it++ {
		itemID := string(rune('a' + it))
		hist, err := s.History("ws", itemID)
		if err != nil {
			t.Fatalf("history %s: %v", itemID, err)
		}
		for i, v := range hist {
			if v.Version != uint64(i+1) {
				t.Fatalf("%s history[%d] = v%d: chain not sequential", itemID, i, v.Version)
			}
		}
		if uint64(len(hist)) != commits[it] {
			t.Fatalf("%s: %d committed acks but %d chain entries — a version slot had two winners or a winner vanished",
				itemID, commits[it], len(hist))
		}
	}
}

// --- Snapshot-isolation harness for the MVCC read path (DESIGN §16) ---
//
// Writers commit batches that move EVERY item of their workspace to the same
// version k (checksum "b<k>"), so the serial reference at any committed
// version is trivial to state: all items at one version. A reader that ever
// observes a mixed state saw a torn batch — exactly what the atomic snapshot
// swap must make impossible. ChangesSince replies are checked against the
// same model: a tail must be contiguous, grouped in whole batches, and end
// at a batch boundary; a Full reply must be a clean batch-aligned state. The
// log retention is kept tiny so compaction (automatic and forced) runs
// concurrently with the readers, exercising the full-state fallback under
// race as well.

// siCheckState verifies one observed state against the all-items-at-one-
// version model and returns the batch number it is consistent at.
func siCheckState(t *testing.T, ws string, items int, state []ItemVersion) uint64 {
	t.Helper()
	if len(state) == 0 {
		return 0
	}
	if len(state) != items {
		t.Errorf("%s: state has %d items, want 0 or %d: torn batch", ws, len(state), items)
		return 0
	}
	k := state[0].Version
	for _, v := range state {
		if v.Version != k || v.Checksum != fmt.Sprintf("b%d", k) {
			t.Errorf("%s: mixed state: item %s at v%d (%s), first item at v%d — torn batch visible",
				ws, v.ItemID, v.Version, v.Checksum, k)
			return k
		}
	}
	return k
}

func TestSnapshotIsolationUnderConcurrentCommits(t *testing.T) {
	const (
		workspaces = 4
		items      = 8
		batches    = 120
		readers    = 6
	)
	// Retention far below items*batches, and not batch-aligned, so automatic
	// compaction keeps trimming mid-run and its watermark can land mid-batch.
	s := NewStore(WithShards(8), WithLogRetention(42))
	wsID := func(w int) string { return fmt.Sprintf("ws-%d", w) }
	for w := 0; w < workspaces; w++ {
		if err := s.CreateWorkspace(Workspace{ID: wsID(w), Owner: "u"}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var writers, aux sync.WaitGroup

	// N writers: one per workspace, each committing whole-workspace batches.
	for w := 0; w < workspaces; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for k := uint64(1); k <= batches; k++ {
				batch := make([]ItemVersion, items)
				for i := range batch {
					status := Modified
					if k == 1 {
						status = Added
					}
					batch[i] = ItemVersion{
						Workspace: wsID(w), ItemID: fmt.Sprintf("it-%d", i),
						Path: fmt.Sprintf("/it-%d", i), Version: k, Status: status,
						Checksum: fmt.Sprintf("b%d", k),
					}
				}
				res, err := s.CommitBatch(batch)
				if err != nil {
					t.Errorf("ws-%d batch %d: %v", w, k, err)
					return
				}
				for _, r := range res {
					if !r.Committed {
						t.Errorf("ws-%d batch %d: unexpected conflict at v%d", w, k, r.Version.Version)
						return
					}
				}
			}
		}()
	}

	// A compactor forcing extra watermark movement while readers are mid-read.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for w := 0; w < workspaces; w++ {
				if _, err := s.CompactLog(wsID(w), items/2); err != nil {
					t.Errorf("compact %s: %v", wsID(w), err)
					return
				}
			}
		}
	}()

	// M readers: loop State and ChangesSince against every workspace,
	// checking snapshot isolation and per-reader monotonicity.
	for g := 0; g < readers; g++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			lastK := make([]uint64, workspaces)  // newest batch seen via State
			cursor := make([]uint64, workspaces) // ChangesSince resync cursor
			for {
				select {
				case <-stop:
					return
				default:
				}
				for w := 0; w < workspaces; w++ {
					state, err := s.State(wsID(w))
					if err != nil {
						t.Errorf("state %s: %v", wsID(w), err)
						return
					}
					k := siCheckState(t, wsID(w), items, state)
					if k < lastK[w] {
						t.Errorf("%s: State went back in time: batch %d after %d", wsID(w), k, lastK[w])
						return
					}
					lastK[w] = k

					ch, err := s.ChangesSince(wsID(w), cursor[w])
					if err != nil {
						t.Errorf("changesSince %s: %v", wsID(w), err)
						return
					}
					if ch.Version < cursor[w] {
						t.Errorf("%s: ChangesSince regressed: version %d below cursor %d", wsID(w), ch.Version, cursor[w])
						return
					}
					if ch.Version%items != 0 {
						t.Errorf("%s: reply version %d not batch-aligned: torn batch visible", wsID(w), ch.Version)
						return
					}
					if ch.Full {
						siCheckState(t, wsID(w), items, ch.Items)
					} else {
						if uint64(len(ch.Items)) != ch.Version-cursor[w] {
							t.Errorf("%s: tail of %d entries does not cover (%d, %d]",
								wsID(w), len(ch.Items), cursor[w], ch.Version)
							return
						}
						for j, e := range ch.Items {
							v := cursor[w] + 1 + uint64(j) // workspace version of this entry
							batch := (v-1)/items + 1
							if e.Version != batch || e.Checksum != fmt.Sprintf("b%d", batch) {
								t.Errorf("%s: tail entry %d (ws version %d) is item v%d (%s), want batch %d",
									wsID(w), j, v, e.Version, e.Checksum, batch)
								return
							}
						}
					}
					cursor[w] = ch.Version
				}
			}
		}()
	}

	writers.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		return
	}

	// Final state: the serial reference at the last committed version.
	for w := 0; w < workspaces; w++ {
		state, version, err := s.StateAt(wsID(w))
		if err != nil {
			t.Fatal(err)
		}
		if version != uint64(items*batches) {
			t.Fatalf("%s: final version %d, want %d", wsID(w), version, items*batches)
		}
		if k := siCheckState(t, wsID(w), items, state); k != batches {
			t.Fatalf("%s: final state at batch %d, want %d", wsID(w), k, batches)
		}
		ch, err := s.ChangesSince(wsID(w), version)
		if err != nil || ch.Full || len(ch.Items) != 0 || ch.Version != version {
			t.Fatalf("%s: caught-up reply: %+v err=%v", wsID(w), ch, err)
		}
	}
	if s.Compactions() == 0 {
		t.Fatal("retention never compacted: the fallback path was not exercised")
	}
}
