package metastore

import (
	"math/rand"
	"testing"
)

// TestVersionChainInvariants drives random commit attempts and checks the
// store's core invariants after every operation: versions in a chain are
// strictly sequential, the current version is the chain's last, and exactly
// one proposal wins each version slot.
func TestVersionChainInvariants(t *testing.T) {
	const (
		seeds = 10
		items = 5
		steps = 400
	)
	for seed := int64(1); seed <= seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
			t.Fatal(err)
		}
		// Reference model: current version per item.
		model := make(map[string]uint64, items)

		for step := 0; step < steps; step++ {
			itemID := string(rune('a' + r.Intn(items)))
			// Propose a version that is correct (model+1) half the time and
			// arbitrary otherwise.
			var proposed uint64
			if r.Intn(2) == 0 {
				proposed = model[itemID] + 1
			} else {
				proposed = uint64(r.Intn(8))
			}
			status := Modified
			if proposed == 1 {
				status = Added
			}
			_, err := s.CommitVersion(ItemVersion{
				Workspace: "ws", ItemID: itemID, Path: "/" + itemID,
				Version: proposed, Status: status,
			})
			wantOK := proposed == model[itemID]+1
			if wantOK && err != nil {
				t.Fatalf("seed %d step %d: valid commit v%d over v%d rejected: %v",
					seed, step, proposed, model[itemID], err)
			}
			if !wantOK && err == nil {
				t.Fatalf("seed %d step %d: invalid commit v%d over v%d accepted",
					seed, step, proposed, model[itemID])
			}
			if err == nil {
				model[itemID] = proposed
			}
			// Invariants against the model.
			cur, ok, err := s.Current("ws", itemID)
			if err != nil {
				t.Fatal(err)
			}
			if model[itemID] == 0 {
				if ok {
					t.Fatalf("seed %d: phantom item %s", seed, itemID)
				}
				continue
			}
			if !ok || cur.Version != model[itemID] {
				t.Fatalf("seed %d: current(%s) = v%d ok=%v, model v%d",
					seed, itemID, cur.Version, ok, model[itemID])
			}
			hist, err := s.History("ws", itemID)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range hist {
				if v.Version != uint64(i+1) {
					t.Fatalf("seed %d: history[%d] of %s has v%d", seed, i, itemID, v.Version)
				}
			}
		}
	}
}

// TestStateMatchesChains cross-checks State against per-item Current for
// random workloads including deletions.
func TestStateMatchesChains(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := NewStore()
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	versions := map[string]uint64{}
	live := map[string]bool{}
	for step := 0; step < 300; step++ {
		itemID := string(rune('a' + r.Intn(8)))
		next := versions[itemID] + 1
		status := Modified
		if next == 1 {
			status = Added
		}
		if live[itemID] && r.Intn(4) == 0 {
			status = Deleted
		}
		if _, err := s.CommitVersion(ItemVersion{
			Workspace: "ws", ItemID: itemID, Path: "/" + itemID,
			Version: next, Status: status,
		}); err != nil {
			t.Fatal(err)
		}
		versions[itemID] = next
		live[itemID] = status != Deleted
	}
	state, err := s.State("ws")
	if err != nil {
		t.Fatal(err)
	}
	wantLive := 0
	for _, ok := range live {
		if ok {
			wantLive++
		}
	}
	if len(state) != wantLive {
		t.Fatalf("state has %d items, model says %d", len(state), wantLive)
	}
	for _, v := range state {
		if !live[v.ItemID] {
			t.Fatalf("deleted item %s in state", v.ItemID)
		}
		if v.Version != versions[v.ItemID] {
			t.Fatalf("state %s at v%d, model v%d", v.ItemID, v.Version, versions[v.ItemID])
		}
	}
}
