package metastore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// WAL is the metadata store's write-ahead log: workspace creations and
// committed item versions are appended as JSON lines and replayed on
// recovery, standing in for PostgreSQL durability.
type WAL struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

type walOp string

const (
	walWorkspace walOp = "workspace"
	walVersion   walOp = "version"
)

type walEntry struct {
	Op        walOp        `json:"op"`
	Workspace *Workspace   `json:"workspace,omitempty"`
	Version   *ItemVersion `json:"version,omitempty"`
}

// OpenWAL opens (creating if needed) the log at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metastore: open wal: %w", err)
	}
	return &WAL{f: f, w: bufio.NewWriter(f)}, nil
}

func (w *WAL) record(e walEntry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("metastore: wal closed")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("metastore: marshal wal entry: %w", err)
	}
	if _, err := w.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("metastore: append wal: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("metastore: flush wal: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	w.f = nil
	if flushErr != nil {
		return fmt.Errorf("metastore: flush wal on close: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("metastore: close wal: %w", closeErr)
	}
	return nil
}

// Recover rebuilds a Store from the log at path and keeps journalling to it.
// A torn trailing line (crash mid-append) is tolerated: replay stops there.
func Recover(path string, opts ...Option) (*Store, error) {
	s := NewStore(opts...)
	s.wal = nil // replay without re-recording

	f, err := os.Open(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh database.
	case err != nil:
		return nil, fmt.Errorf("metastore: open wal for recovery: %w", err)
	default:
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e walEntry
			if err := json.Unmarshal(line, &e); err != nil {
				break // torn tail
			}
			switch e.Op {
			case walWorkspace:
				if e.Workspace != nil {
					if err := s.CreateWorkspace(*e.Workspace); err != nil && !errors.Is(err, ErrWorkspaceExists) {
						_ = f.Close()
						return nil, err
					}
				}
			case walVersion:
				if e.Version != nil {
					s.mu.Lock()
					_, err := s.commitLocked(*e.Version)
					s.mu.Unlock()
					if err != nil && !errors.Is(err, ErrVersionConflict) {
						_ = f.Close()
						return nil, err
					}
				}
			}
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("metastore: close wal after recovery: %w", err)
		}
	}

	w, err := OpenWAL(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
	return s, nil
}
