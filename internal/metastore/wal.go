package metastore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"stacksync/internal/obs"
)

// WAL is the metadata store's write-ahead log: workspace creations and
// committed item versions are appended as JSON lines and replayed on
// recovery, standing in for PostgreSQL durability.
//
// Appends use group commit: a committer enqueues its records and blocks on
// the group's completion while a single flusher drains the queue, writing
// every queued record and syncing the batch with one flush. Committers that
// arrive while a flush is in progress share the next one, so the flush cost
// amortizes across concurrent commits instead of being paid per record.
type WAL struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	w    *bufio.Writer

	queue    []*walGroup
	flushing bool  // a flusher goroutine is draining the queue
	werr     error // sticky death error (torn crash or close)

	// tearIn arms the injected crash: after tearIn more complete records,
	// the next record writes only half its bytes. -1 means disarmed.
	tearIn int

	// Metrics (nil without Instrument): flush count, records appended, and
	// the per-flush record count distribution — the group-commit batch size.
	flushes   *obs.Counter
	records   *obs.Counter
	batchHist *obs.Histogram
}

// ErrTornWrite reports an injected torn append: only a prefix of the record
// reached the file, as if the process crashed mid-write. The WAL refuses
// further writes, matching the crash it emulates.
var ErrTornWrite = errors.New("metastore: torn wal write (injected crash)")

var errWALClosed = errors.New("metastore: wal closed")

// walBatchBuckets sizes the group-commit histogram in records per flush.
var walBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// TearNext arms a fault: the next record writes only half its bytes (no
// newline), then the WAL behaves as crashed. Recovery must drop the torn
// tail and keep every complete record.
func (w *WAL) TearNext() { w.TearAfter(0) }

// TearAfter arms a fault n records ahead: n more records append completely,
// then the following record tears mid-write and the WAL behaves as crashed.
// The counter spans flushes, so a tear can land inside a group-commit batch
// or exactly on a batch boundary.
func (w *WAL) TearAfter(n int) {
	w.mu.Lock()
	w.tearIn = n
	w.mu.Unlock()
}

// Instrument wires the WAL's group-commit metrics into a registry.
func (w *WAL) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.mu.Lock()
	w.flushes = reg.Counter("metastore_wal_flushes_total")
	w.records = reg.Counter("metastore_wal_records_total")
	w.batchHist = reg.HistogramWith(walBatchBuckets, "metastore_wal_flush_records")
	w.mu.Unlock()
}

type walOp string

const (
	walWorkspace walOp = "workspace"
	walVersion   walOp = "version"
)

type walEntry struct {
	Op        walOp        `json:"op"`
	Workspace *Workspace   `json:"workspace,omitempty"`
	Version   *ItemVersion `json:"version,omitempty"`
}

// walGroup is one committer's contribution to a group-commit batch: its
// marshalled records and the channel the flusher completes it on.
type walGroup struct {
	lines [][]byte // records, newline added at write time
	err   error    // valid after done is closed
	done  chan struct{}
}

// wait blocks until the flusher has durably appended (or failed) the group.
func (g *walGroup) wait() error {
	<-g.done
	return g.err
}

// OpenWAL opens (creating if needed) the log at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metastore: open wal: %w", err)
	}
	w := &WAL{f: f, w: bufio.NewWriter(f), tearIn: -1}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// enqueue submits one committer's records for the next group-commit flush
// and returns the group to wait on. The caller may hold its shard lock —
// enqueueing never blocks on I/O, so per-workspace append order is fixed
// here while the flush itself overlaps with other committers.
func (w *WAL) enqueue(entries []walEntry) *walGroup {
	g := &walGroup{done: make(chan struct{})}
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			g.err = fmt.Errorf("metastore: marshal wal entry: %w", err)
			close(g.done)
			return g
		}
		g.lines = append(g.lines, line)
	}
	w.mu.Lock()
	if w.f == nil {
		err := w.werr
		w.mu.Unlock()
		if err == nil {
			err = errWALClosed
		}
		g.err = err
		close(g.done)
		return g
	}
	w.queue = append(w.queue, g)
	if !w.flushing {
		w.flushing = true
		go w.flushLoop()
	}
	w.mu.Unlock()
	return g
}

// flushLoop drains the queue in batches and exits when it runs dry, so an
// idle WAL holds no goroutine.
func (w *WAL) flushLoop() {
	w.mu.Lock()
	for len(w.queue) > 0 {
		batch := w.queue
		w.queue = nil
		w.flushBatch(batch)
	}
	w.flushing = false
	w.cond.Broadcast()
	w.mu.Unlock()
}

// flushBatch writes one batch of groups with a single flush. Called with
// w.mu held; releases it during I/O and reacquires before returning.
func (w *WAL) flushBatch(batch []*walGroup) {
	if w.f == nil {
		err := w.werr
		if err == nil {
			err = errWALClosed
		}
		for _, g := range batch {
			g.err = err
			close(g.done)
		}
		return
	}
	f, bw := w.f, w.w
	tear := w.tearIn
	armed := tear >= 0
	w.mu.Unlock()

	var torn bool
	var werr error // first hard write error; poisons the rest of the batch
	written := 0
	for _, g := range batch {
		if werr != nil {
			g.err = werr
			continue
		}
		for _, line := range g.lines {
			if tear == 0 {
				// Injected crash: half the record, no newline, then the
				// file is gone. Complete records already buffered in this
				// batch reach the file — recovery keeps them and drops the
				// torn tail.
				_, _ = bw.Write(line[:len(line)/2])
				_ = bw.Flush()
				_ = f.Close()
				torn = true
				werr = ErrTornWrite
				g.err = ErrTornWrite
				break
			}
			if tear > 0 {
				tear--
			}
			if _, err := bw.Write(line); err != nil {
				werr = fmt.Errorf("metastore: append wal: %w", err)
				g.err = werr
				break
			}
			if err := bw.WriteByte('\n'); err != nil {
				werr = fmt.Errorf("metastore: append wal: %w", err)
				g.err = werr
				break
			}
			written++
		}
	}
	switch {
	case torn:
		// Crash emulated; groups before the tear flushed with the half-line.
	case werr != nil:
		// A hard write error leaves the whole batch's durability unknown —
		// poison every group, including ones that appended without error.
		for _, g := range batch {
			g.err = werr
		}
	default:
		// The single flush+fsync that makes every record in the batch
		// durable — the cost all committers in the group share. This is
		// where group commit pays: N concurrent committers, one fsync.
		err := bw.Flush()
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			werr = fmt.Errorf("metastore: flush wal: %w", err)
			for _, g := range batch {
				g.err = werr
			}
		}
	}

	w.mu.Lock()
	if torn {
		w.f = nil
		w.werr = ErrTornWrite
	} else if armed {
		w.tearIn = tear // burn down across flushes until the tear lands
	}
	if werr == nil {
		if w.flushes != nil {
			w.flushes.Inc()
			w.records.Add(uint64(written))
			w.batchHist.Observe(float64(written))
		}
	}
	for _, g := range batch {
		close(g.done)
	}
}

// Close waits out any in-flight flush, then flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.flushing {
		w.cond.Wait()
	}
	if w.f == nil {
		return nil
	}
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	w.f = nil
	w.werr = errWALClosed
	if flushErr != nil {
		return fmt.Errorf("metastore: flush wal on close: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("metastore: close wal: %w", closeErr)
	}
	return nil
}

// Recover rebuilds a Store from the log at path and keeps journalling to it.
// A record counts as committed only when terminated by its newline; a torn
// trailing record (crash mid-append — including one torn inside a
// group-commit batch) is dropped: replay stops at the last complete record
// and the file is truncated there, so later appends can never merge with a
// partial line.
func Recover(path string, opts ...Option) (*Store, error) {
	s := NewStore(opts...)
	s.wal = nil // replay without re-recording

	f, err := os.Open(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh database.
	case err != nil:
		return nil, fmt.Errorf("metastore: open wal for recovery: %w", err)
	default:
		r := bufio.NewReaderSize(f, 64*1024)
		var offset int64 // bytes consumed so far
		var good int64   // offset just past the last complete, replayed record
	replay:
		for {
			line, readErr := r.ReadBytes('\n')
			offset += int64(len(line))
			complete := readErr == nil // the terminating '\n' made it to disk
			trimmed := trimLine(line)
			switch {
			case len(trimmed) == 0 && complete:
				good = offset // blank line, harmless
			case len(trimmed) > 0:
				var e walEntry
				if uerr := json.Unmarshal(trimmed, &e); uerr != nil || !complete {
					break replay // torn or corrupt tail: drop from here
				}
				if err := s.replayEntry(e); err != nil {
					_ = f.Close()
					return nil, err
				}
				good = offset
			}
			if readErr != nil {
				break // EOF
			}
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("metastore: close wal after recovery: %w", err)
		}
		if info, err := os.Stat(path); err == nil && info.Size() > good {
			if err := os.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("metastore: truncate torn wal tail: %w", err)
			}
		}
	}

	w, err := OpenWAL(path)
	if err != nil {
		return nil, err
	}
	s.attachWAL(w)
	return s, nil
}

// trimLine strips the trailing newline and surrounding spaces.
func trimLine(line []byte) []byte {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r' || line[len(line)-1] == ' ') {
		line = line[:len(line)-1]
	}
	for len(line) > 0 && line[0] == ' ' {
		line = line[1:]
	}
	return line
}

// replayEntry applies one recovered record. Conflicts and duplicates are
// tolerated: at-least-once appends (commit replays) are idempotent here too.
func (s *Store) replayEntry(e walEntry) error {
	switch e.Op {
	case walWorkspace:
		if e.Workspace != nil {
			if err := s.CreateWorkspace(*e.Workspace); err != nil && !errors.Is(err, ErrWorkspaceExists) {
				return err
			}
		}
	case walVersion:
		if e.Version != nil {
			sh := s.shards[s.shardIdx(e.Version.Workspace)]
			sh.mu.Lock()
			wr, werr := sh.writeTo(s, e.Version.Workspace)
			if werr != nil {
				sh.mu.Unlock()
				return werr
			}
			_, err := wr.commit(*e.Version, s.now)
			wr.install()
			sh.mu.Unlock()
			if err != nil && !errors.Is(err, ErrVersionConflict) {
				return err
			}
		}
	}
	return nil
}
