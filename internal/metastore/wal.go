package metastore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// WAL is the metadata store's write-ahead log: workspace creations and
// committed item versions are appended as JSON lines and replayed on
// recovery, standing in for PostgreSQL durability.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	tear bool
}

// ErrTornWrite reports an injected torn append: only a prefix of the record
// reached the file, as if the process crashed mid-write. The WAL refuses
// further writes, matching the crash it emulates.
var ErrTornWrite = errors.New("metastore: torn wal write (injected crash)")

// TearNext arms a fault: the next record writes only half its bytes (no
// newline), then the WAL behaves as crashed. Recovery must drop the torn
// tail and keep every complete record.
func (w *WAL) TearNext() {
	w.mu.Lock()
	w.tear = true
	w.mu.Unlock()
}

type walOp string

const (
	walWorkspace walOp = "workspace"
	walVersion   walOp = "version"
)

type walEntry struct {
	Op        walOp        `json:"op"`
	Workspace *Workspace   `json:"workspace,omitempty"`
	Version   *ItemVersion `json:"version,omitempty"`
}

// OpenWAL opens (creating if needed) the log at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metastore: open wal: %w", err)
	}
	return &WAL{f: f, w: bufio.NewWriter(f)}, nil
}

func (w *WAL) record(e walEntry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("metastore: wal closed")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("metastore: marshal wal entry: %w", err)
	}
	if w.tear {
		w.tear = false
		_, _ = w.w.Write(line[:len(line)/2])
		_ = w.w.Flush()
		_ = w.f.Close()
		w.f = nil
		return ErrTornWrite
	}
	if _, err := w.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("metastore: append wal: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("metastore: flush wal: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	w.f = nil
	if flushErr != nil {
		return fmt.Errorf("metastore: flush wal on close: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("metastore: close wal: %w", closeErr)
	}
	return nil
}

// Recover rebuilds a Store from the log at path and keeps journalling to it.
// A record counts as committed only when terminated by its newline; a torn
// trailing record (crash mid-append) is dropped — replay stops at the last
// complete record and the file is truncated there, so later appends can
// never merge with a partial line.
func Recover(path string, opts ...Option) (*Store, error) {
	s := NewStore(opts...)
	s.wal = nil // replay without re-recording

	f, err := os.Open(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh database.
	case err != nil:
		return nil, fmt.Errorf("metastore: open wal for recovery: %w", err)
	default:
		r := bufio.NewReaderSize(f, 64*1024)
		var offset int64 // bytes consumed so far
		var good int64   // offset just past the last complete, replayed record
	replay:
		for {
			line, readErr := r.ReadBytes('\n')
			offset += int64(len(line))
			complete := readErr == nil // the terminating '\n' made it to disk
			trimmed := trimLine(line)
			switch {
			case len(trimmed) == 0 && complete:
				good = offset // blank line, harmless
			case len(trimmed) > 0:
				var e walEntry
				if uerr := json.Unmarshal(trimmed, &e); uerr != nil || !complete {
					break replay // torn or corrupt tail: drop from here
				}
				if err := s.replayEntry(e); err != nil {
					_ = f.Close()
					return nil, err
				}
				good = offset
			}
			if readErr != nil {
				break // EOF
			}
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("metastore: close wal after recovery: %w", err)
		}
		if info, err := os.Stat(path); err == nil && info.Size() > good {
			if err := os.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("metastore: truncate torn wal tail: %w", err)
			}
		}
	}

	w, err := OpenWAL(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
	return s, nil
}

// trimLine strips the trailing newline and surrounding spaces.
func trimLine(line []byte) []byte {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r' || line[len(line)-1] == ' ') {
		line = line[:len(line)-1]
	}
	for len(line) > 0 && line[0] == ' ' {
		line = line[1:]
	}
	return line
}

// replayEntry applies one recovered record. Conflicts and duplicates are
// tolerated: at-least-once appends (commit replays) are idempotent here too.
func (s *Store) replayEntry(e walEntry) error {
	switch e.Op {
	case walWorkspace:
		if e.Workspace != nil {
			if err := s.CreateWorkspace(*e.Workspace); err != nil && !errors.Is(err, ErrWorkspaceExists) {
				return err
			}
		}
	case walVersion:
		if e.Version != nil {
			s.mu.Lock()
			_, err := s.commitLocked(*e.Version)
			s.mu.Unlock()
			if err != nil && !errors.Is(err, ErrVersionConflict) {
				return err
			}
		}
	}
	return nil
}
