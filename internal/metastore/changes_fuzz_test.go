package metastore

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

// FuzzChangesSince drives random commit / compact / read interleavings from
// the fuzzer's bytes and checks every ChangesSince reply against a serial
// reference model (a plain slice of the committed entries): the reply must be
// either the exact log tail after the cursor or — cold cursor, future cursor,
// or cursor below the compaction watermark — the exact live state, flagged
// Full. A tiny retention bound keeps automatic compaction in play alongside
// the byte-driven force-compactions.
func FuzzChangesSince(f *testing.F) {
	f.Add([]byte{0, 1, 4, 2, 8, 3, 0, 3, 200})
	f.Add([]byte{0, 0, 0, 0, 1, 3, 2, 0, 3, 9, 4, 1})
	f.Add([]byte{2, 7, 3, 5})
	f.Add([]byte{1, 2, 1, 2, 1, 2, 3, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256] // bound the final all-cursor sweep
		}
		fixed := time.Unix(1700000000, 0).UTC()
		s := NewStore(WithNow(func() time.Time { return fixed }), WithLogRetention(16))
		if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
			t.Fatal(err)
		}

		const items = 5
		var log []ItemVersion // reference model: every committed entry, in order
		cur := make(map[string]uint64, items)

		mk := func(b byte) ItemVersion {
			itemID := fmt.Sprintf("it-%d", int(b)%items)
			next := cur[itemID] + 1
			status := Modified
			if next == 1 {
				status = Added
			} else if b&0x80 != 0 {
				status = Deleted
			}
			return ItemVersion{
				Workspace: "ws", ItemID: itemID, Path: "/" + itemID,
				Version: next, Status: status, Checksum: fmt.Sprintf("c%d", next),
			}
		}
		live := func() []ItemVersion {
			last := make(map[string]ItemVersion, items)
			for _, v := range log {
				last[v.ItemID] = v
			}
			var out []ItemVersion
			for _, v := range last {
				if v.Status != Deleted {
					out = append(out, v)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i].ItemID < out[j].ItemID })
			return out
		}
		sameItems := func(got, want []ItemVersion) bool {
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					return false
				}
			}
			return true
		}
		checkRead := func(since uint64) {
			t.Helper()
			version := uint64(len(log))
			wm, err := s.CompactWatermark("ws")
			if err != nil {
				t.Fatal(err)
			}
			ch, err := s.ChangesSince("ws", since)
			if err != nil {
				t.Fatalf("ChangesSince(%d): %v", since, err)
			}
			if ch.Version != version || ch.Since != since || ch.Workspace != "ws" {
				t.Fatalf("ChangesSince(%d) header %+v, model version %d", since, ch, version)
			}
			switch {
			case since == 0 || since > version || since < wm:
				if !ch.Full || !sameItems(ch.Items, live()) {
					t.Fatalf("ChangesSince(%d) full reply diverges (wm=%d, v=%d)\n got:  %+v\n want: %+v",
						since, wm, version, ch.Items, live())
				}
			case since == version:
				if ch.Full || len(ch.Items) != 0 {
					t.Fatalf("ChangesSince(%d) at head: %+v", since, ch)
				}
			default:
				if ch.Full || !sameItems(ch.Items, log[since:]) {
					t.Fatalf("ChangesSince(%d) tail diverges (wm=%d, v=%d)\n got:  %+v\n want: %+v",
						since, wm, version, ch.Items, log[since:])
				}
			}
		}

		for i := 0; i < len(data); i++ {
			op := data[i]
			arg := byte(0)
			if i+1 < len(data) {
				i++
				arg = data[i]
			}
			switch op % 5 {
			case 0: // valid single commit
				v := mk(arg)
				committed, err := s.CommitVersion(v)
				if err != nil {
					t.Fatalf("commit %s v%d: %v", v.ItemID, v.Version, err)
				}
				cur[v.ItemID] = v.Version
				log = append(log, committed)
			case 1: // valid batch commit
				n := int(arg)%3 + 1
				batch := make([]ItemVersion, 0, n)
				for j := 0; j < n; j++ {
					v := mk(arg + byte(j))
					batch = append(batch, v)
					cur[v.ItemID] = v.Version
				}
				res, err := s.CommitBatch(batch)
				if err != nil {
					t.Fatalf("batch: %v", err)
				}
				for _, r := range res {
					if !r.Committed {
						t.Fatalf("valid batch proposal conflicted: %+v", r)
					}
					log = append(log, r.Version)
				}
			case 2: // force-compact
				keep := int(arg) % 8
				before, _ := s.CompactWatermark("ws")
				wm, err := s.CompactLog("ws", keep)
				if err != nil {
					t.Fatalf("compact: %v", err)
				}
				if wm < before {
					t.Fatalf("watermark regressed: %d -> %d", before, wm)
				}
			case 3: // read at a byte-derived cursor (can overshoot the head)
				checkRead(uint64(arg) % (uint64(len(log)) + 3))
			case 4: // stale proposal: must conflict, must not change the log
				itemID := fmt.Sprintf("it-%d", int(arg)%items)
				if cur[itemID] == 0 {
					continue
				}
				_, err := s.CommitVersion(ItemVersion{
					Workspace: "ws", ItemID: itemID, Path: "/" + itemID,
					Version: cur[itemID] + 2, Status: Modified,
				})
				if !errors.Is(err, ErrVersionConflict) {
					t.Fatalf("stale proposal: %v", err)
				}
			}
		}

		// Final sweep: every cursor, including one past the head.
		for since := uint64(0); since <= uint64(len(log))+1; since++ {
			checkRead(since)
		}
	})
}
