// Package metastore is the Metadata back-end substrate (paper: PostgreSQL
// 9.1). It stores workspaces and per-item version chains and gives the
// SyncService the one property Algorithm 1 leans on: the version-precedence
// check and the write of the new version commit atomically, so concurrent
// commitRequests over the same version serialize into one winner and one
// conflict (first-committer-wins).
//
// The paper's data model is per-workspace item-version tables with no
// cross-workspace invariants, so the store shards its state by workspace ID:
// commits to the same workspace serialize under that shard's writer lock,
// while commits to distinct workspaces proceed concurrently. An optional
// write-ahead log makes committed state durable; concurrent committers share
// its group-commit flush (see wal.go).
//
// Reads never take the shard lock: every workspace publishes an immutable
// MVCC snapshot (copy-on-write item table + append-only change log) through
// an atomic pointer, installed by the committer with one pointer swap — see
// mvcc.go and DESIGN §16.
package metastore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stacksync/internal/faults"
	"stacksync/internal/obs"
)

// Status is the lifecycle state of an item version.
type Status int

const (
	// Added marks the first version of a new item.
	Added Status = iota + 1
	// Modified marks a content or rename change.
	Modified
	// Deleted marks a tombstone version.
	Deleted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Added:
		return "ADD"
	case Modified:
		return "UPDATE"
	case Deleted:
		return "REMOVE"
	default:
		return "UNKNOWN"
	}
}

// Workspace is a synced folder shared by one or more users (§4.1).
type Workspace struct {
	ID      string   `json:"id"`
	Owner   string   `json:"owner"`
	Members []string `json:"members,omitempty"`
}

// ItemVersion is one version of one item in a workspace — the row the
// SyncService commits. Chunks lists the fingerprints needed to rebuild the
// file, so a losing client can fetch exactly the missing chunks (§4.2.1).
type ItemVersion struct {
	Workspace   string    `json:"workspace"`
	ItemID      string    `json:"itemId"`
	Path        string    `json:"path"`
	Version     uint64    `json:"version"`
	Status      Status    `json:"status"`
	Size        int64     `json:"size"`
	Chunks      []string  `json:"chunks,omitempty"`
	Checksum    string    `json:"checksum,omitempty"`
	DeviceID    string    `json:"deviceId,omitempty"`
	CommittedAt time.Time `json:"committedAt"`
}

// Errors returned by the store.
var (
	ErrWorkspaceExists = errors.New("metastore: workspace exists")
	ErrNoWorkspace     = errors.New("metastore: workspace not found")
	ErrVersionConflict = errors.New("metastore: version conflict")
	ErrNoItem          = errors.New("metastore: item not found")
	ErrClosed          = errors.New("metastore: store closed")
	ErrTxDone          = errors.New("metastore: transaction finished")
	// ErrTxAborted is a transient, injected transaction rollback: the commit
	// was not applied and may be retried verbatim.
	ErrTxAborted = errors.New("metastore: transaction aborted")
)

type itemChain struct {
	versions []ItemVersion // ascending by Version
}

func (c *itemChain) current() ItemVersion { return c.versions[len(c.versions)-1] }

// shard holds the workspaces that hash to it. Every invariant the store
// enforces is workspace-local, so one shard lock serializes workspace
// creation and snapshot installs for its workspaces; the workspace table is
// published through an atomic pointer (copied on create) so lookups — like
// every other read — never touch the lock.
type shard struct {
	mu sync.RWMutex // writers only: creates, commits, compactions
	ws atomic.Pointer[wsTable]
}

// DefaultShards is the shard count used when WithShards is not given.
const DefaultShards = 16

// Store is the metadata database.
type Store struct {
	shards []*shard
	mask   uint32
	wal    *WAL
	now    func() time.Time
	closed atomic.Bool

	nshards      int // WithShards hint, resolved in NewStore
	logRetention int // WithLogRetention hint, resolved in NewStore

	// Fault injection (nil in production): transaction aborts, delays and
	// torn WAL writes, rolled per commit.
	fplan *faults.Plan
	fsite string
	fkeys faults.Keyer

	// MVCC bookkeeping, maintained whether or not a registry is attached:
	// installs/compactRuns count snapshot swaps and compactions, logEntries
	// tracks the summed change-log length, lastInstall the newest snapshot's
	// install time (unix nanos; 0 before the first commit).
	installs    atomic.Uint64
	compactRuns atomic.Uint64
	logEntries  atomic.Int64
	lastInstall atomic.Int64

	reg        *obs.Registry
	contention []*obs.Counter // per shard; nil without a registry
	// Read-path and snapshot counters (nil without a registry): ChangesSince
	// outcomes, snapshot installs, compaction runs and dropped entries.
	chTail, chFull, chEmpty, chFallback *obs.Counter
	snapInstalls, compactions           *obs.Counter
	compactedEntries                    *obs.Counter
}

// inc bumps a read-path counter when a registry is attached. Counters are
// plain atomics, so this keeps the lock-free read path lock-free.
func (s *Store) inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Option configures a Store.
type Option func(*Store)

// WithWAL enables write-ahead durability at the given journal.
func WithWAL(w *WAL) Option {
	return func(s *Store) { s.wal = w }
}

// WithNow substitutes the timestamp source.
func WithNow(now func() time.Time) Option {
	return func(s *Store) { s.now = now }
}

// WithShards sets how many shards the workspace map splits into, rounded up
// to a power of two (minimum 1). One shard serializes all writers — the
// pre-sharding behavior, useful as a reference model and baseline.
func WithShards(n int) Option {
	return func(s *Store) { s.nshards = n }
}

// WithRegistry wires the store (and its WAL, if any) into a metrics
// registry: per-shard contention counters and group-commit flush metrics.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Store) { s.reg = reg }
}

// WithFaults wires deterministic fault injection into the transaction path:
// a commit may be rolled back with ErrTxAborted (transient — the caller's
// retry/redelivery layer must re-submit), may stall before taking the shard
// lock, or may tear the next WAL record as if the process crashed mid-append.
func WithFaults(plan *faults.Plan, site string) Option {
	return func(s *Store) { s.fplan, s.fsite = plan, site }
}

// injectTx rolls one transaction-level fault. It runs before the shard lock
// is taken, so an injected delay stalls only this commit — readers and
// commits to other workspaces proceed.
func (s *Store) injectTx() error {
	if s.fplan == nil {
		return nil
	}
	k := s.fkeys.Next()
	d := s.fplan.Decide(s.fsite, k)
	switch d.Kind {
	case faults.Abort:
		s.fplan.Note(s.fsite, k, faults.Abort, s.now())
		return ErrTxAborted
	case faults.Torn:
		if s.wal != nil {
			s.fplan.Note(s.fsite, k, faults.Torn, s.now())
			s.wal.TearNext()
		}
	case faults.Delay:
		s.fplan.Note(s.fsite, k, faults.Delay, s.now())
		time.Sleep(d.Delay)
	}
	return nil
}

// NewStore returns an empty metadata store.
func NewStore(opts ...Option) *Store {
	s := &Store{
		now:          time.Now,
		nshards:      DefaultShards,
		logRetention: DefaultLogRetention,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.logRetention < 2 {
		s.logRetention = 2
	}
	n := 1
	for n < s.nshards {
		n <<= 1
	}
	s.shards = make([]*shard, n)
	for i := range s.shards {
		sh := &shard{}
		t := make(wsTable)
		sh.ws.Store(&t)
		s.shards[i] = sh
	}
	s.mask = uint32(n - 1)
	if s.reg != nil {
		s.contention = make([]*obs.Counter, n)
		for i := range s.contention {
			s.contention[i] = s.reg.Counter("metastore_shard_contention_total", "shard", strconv.Itoa(i))
		}
		s.reg.GaugeFunc("metastore_shards", func() float64 { return float64(n) })
		s.chTail = s.reg.Counter("metastore_changes_since_total", "result", "tail")
		s.chFull = s.reg.Counter("metastore_changes_since_total", "result", "full")
		s.chEmpty = s.reg.Counter("metastore_changes_since_total", "result", "empty")
		s.chFallback = s.reg.Counter("metastore_changes_compaction_fallback_total")
		s.snapInstalls = s.reg.Counter("metastore_snapshot_installs_total")
		s.compactions = s.reg.Counter("metastore_log_compactions_total")
		s.compactedEntries = s.reg.Counter("metastore_log_compacted_entries_total")
		s.reg.GaugeFunc("metastore_log_entries", func() float64 {
			return float64(s.logEntries.Load())
		})
		s.reg.GaugeFunc("metastore_snapshot_age_seconds", func() float64 {
			last := s.lastInstall.Load()
			if last == 0 {
				return 0
			}
			return time.Duration(s.now().UnixNano() - last).Seconds()
		})
		if s.wal != nil {
			s.wal.Instrument(s.reg)
		}
	}
	return s
}

// SnapshotInstalls reports how many snapshot pointer swaps have been
// performed since the store opened (one per committing CommitVersion /
// per-workspace CommitBatch group).
func (s *Store) SnapshotInstalls() uint64 { return s.installs.Load() }

// Compactions reports how many change-log compactions have run.
func (s *Store) Compactions() uint64 { return s.compactRuns.Load() }

// lookupWS resolves a workspace without taking any lock.
func (s *Store) lookupWS(workspace string) (*wsState, bool) {
	sh := s.shards[s.shardIdx(workspace)]
	w, ok := (*sh.ws.Load())[workspace]
	return w, ok
}

// Shards reports the resolved shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shardIdx maps a workspace ID to its shard (FNV-1a, masked).
func (s *Store) shardIdx(workspace string) int {
	h := uint32(2166136261)
	for i := 0; i < len(workspace); i++ {
		h ^= uint32(workspace[i])
		h *= 16777619
	}
	return int(h & s.mask)
}

// lockShard write-locks shard idx, counting the acquisition as contended
// when another writer already holds it.
func (s *Store) lockShard(idx int) *shard {
	sh := s.shards[idx]
	if sh.mu.TryLock() {
		return sh
	}
	if s.contention != nil {
		s.contention[idx].Inc()
	}
	sh.mu.Lock()
	return sh
}

// attachWAL installs (or replaces) the journal and instruments it.
func (s *Store) attachWAL(w *WAL) {
	s.wal = w
	if s.reg != nil && w != nil {
		w.Instrument(s.reg)
	}
}

// CreateWorkspace registers a workspace.
func (s *Store) CreateWorkspace(ws Workspace) error {
	if s.closed.Load() {
		return ErrClosed
	}
	sh := s.lockShard(s.shardIdx(ws.ID))
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	old := sh.ws.Load()
	if _, ok := (*old)[ws.ID]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("metastore: create %q: %w", ws.ID, ErrWorkspaceExists)
	}
	// Copy-on-create: the table is read lock-free, so publish a new one.
	next := make(wsTable, len(*old)+1)
	for id, w := range *old {
		next[id] = w
	}
	st := &wsState{meta: ws}
	st.snap.Store(emptySnapshot())
	next[ws.ID] = st
	sh.ws.Store(&next)
	var g *walGroup
	if s.wal != nil {
		g = s.wal.enqueue([]walEntry{{Op: walWorkspace, Workspace: &ws}})
	}
	sh.mu.Unlock()
	if g != nil {
		return g.wait()
	}
	return nil
}

// WorkspacesFor lists the workspaces a user owns or is a member of —
// the getWorkspaces operation's backing query. Lock-free: it walks each
// shard's published workspace table.
func (s *Store) WorkspacesFor(user string) []Workspace {
	var out []Workspace
	for _, sh := range s.shards {
		for _, w := range *sh.ws.Load() {
			ws := w.meta
			if ws.Owner == user {
				out = append(out, ws)
				continue
			}
			for _, m := range ws.Members {
				if m == user {
					out = append(out, ws)
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Workspace fetches a workspace by id.
func (s *Store) Workspace(id string) (Workspace, error) {
	w, ok := s.lookupWS(id)
	if !ok {
		return Workspace{}, fmt.Errorf("metastore: %q: %w", id, ErrNoWorkspace)
	}
	return w.meta, nil
}

// Current returns the latest version of an item, with ok=false when the
// item has never been committed (Algorithm 1 line 4). Lock-free snapshot
// read.
func (s *Store) Current(workspace, itemID string) (ItemVersion, bool, error) {
	w, ok := s.lookupWS(workspace)
	if !ok {
		return ItemVersion{}, false, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	chain, ok := w.snap.Load().items[itemID]
	if !ok {
		return ItemVersion{}, false, nil
	}
	return chain.current(), true, nil
}

// CommitVersion atomically applies the version-precedence check of
// Algorithm 1 and stores the proposed version:
//
//   - item unknown  and proposed Version == 1  → committed (store_new_object)
//   - current+1 == proposed Version            → committed (store_new_version)
//   - anything else                            → ErrVersionConflict carrying
//     the authoritative current version, which the service piggybacks on the
//     CommitNotification so the losing client can reconstruct the file.
//
// The WAL record is enqueued while the shard lock is held (preserving
// per-workspace append order) but awaited after release, so concurrent
// committers share one group-commit flush.
func (s *Store) CommitVersion(v ItemVersion) (ItemVersion, error) {
	if s.closed.Load() {
		return ItemVersion{}, ErrClosed
	}
	if err := s.injectTx(); err != nil {
		return ItemVersion{}, err
	}
	sh := s.lockShard(s.shardIdx(v.Workspace))
	if s.closed.Load() {
		sh.mu.Unlock()
		return ItemVersion{}, ErrClosed
	}
	wr, err := sh.writeTo(s, v.Workspace)
	if err != nil {
		sh.mu.Unlock()
		return ItemVersion{}, err
	}
	committed, err := wr.commit(v, s.now)
	if err != nil {
		sh.mu.Unlock()
		return committed, err
	}
	var g *walGroup
	if s.wal != nil {
		g = s.wal.enqueue([]walEntry{{Op: walVersion, Version: &committed}})
	}
	wr.install()
	sh.mu.Unlock()
	if g != nil {
		if err := g.wait(); err != nil {
			return committed, err
		}
	}
	return committed, nil
}

// sameChunks reports elementwise equality of two chunk fingerprint lists.
func sameChunks(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BatchResult is one element of a CommitBatch outcome. Each proposal
// succeeds or conflicts independently (Algorithm 1 loops per object); the
// returned slice is parallel to the input, and conflicted entries carry the
// authoritative current version.
type BatchResult struct {
	Committed bool        `json:"committed"`
	Version   ItemVersion `json:"version"` // committed version, or current on conflict
}

// CommitBatch applies a list of proposed versions. Proposals are grouped by
// workspace; each group commits atomically with respect to other writers of
// that workspace (the paper's per-workspace transaction), and groups for
// distinct workspaces may interleave with concurrent committers. All of a
// group's WAL records join one group-commit flush.
func (s *Store) CommitBatch(proposals []ItemVersion) ([]BatchResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := s.injectTx(); err != nil {
		return nil, err
	}
	// Group indices by workspace, preserving both first-appearance order of
	// workspaces and in-workspace proposal order.
	type wsGroup struct {
		ws   string
		idxs []int
	}
	byWS := make(map[string]*wsGroup)
	var order []*wsGroup
	for i, p := range proposals {
		g, ok := byWS[p.Workspace]
		if !ok {
			g = &wsGroup{ws: p.Workspace}
			byWS[p.Workspace] = g
			order = append(order, g)
		}
		g.idxs = append(g.idxs, i)
	}

	results := make([]BatchResult, len(proposals))
	var flushes []*walGroup
	for _, g := range order {
		sh := s.lockShard(s.shardIdx(g.ws))
		if s.closed.Load() {
			sh.mu.Unlock()
			return nil, ErrClosed
		}
		wr, werr := sh.writeTo(s, g.ws)
		if werr != nil {
			sh.mu.Unlock()
			return nil, werr
		}
		var entries []walEntry
		abort := error(nil)
		for _, i := range g.idxs {
			committed, err := wr.commit(proposals[i], s.now)
			if err != nil {
				if errors.Is(err, ErrVersionConflict) {
					results[i] = BatchResult{Committed: false, Version: committed}
					continue
				}
				abort = err
				break
			}
			results[i] = BatchResult{Committed: true, Version: committed}
			if s.wal != nil {
				cv := committed
				entries = append(entries, walEntry{Op: walVersion, Version: &cv})
			}
		}
		if len(entries) > 0 {
			flushes = append(flushes, s.wal.enqueue(entries))
		}
		// One pointer swap publishes the whole group (even on a mid-group
		// abort, what committed before the abort stays committed — matching
		// the WAL records already enqueued above).
		wr.install()
		sh.mu.Unlock()
		if abort != nil {
			return nil, abort
		}
	}
	for _, g := range flushes {
		if err := g.wait(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// History returns the full version chain of an item, oldest first.
// Lock-free snapshot read: the chain structs are immutable, so the copy is
// taken from a stable view.
func (s *Store) History(workspace, itemID string) ([]ItemVersion, error) {
	w, ok := s.lookupWS(workspace)
	if !ok {
		return nil, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	chain, ok := w.snap.Load().items[itemID]
	if !ok {
		return nil, fmt.Errorf("metastore: %s/%s: %w", workspace, itemID, ErrNoItem)
	}
	out := make([]ItemVersion, len(chain.versions))
	copy(out, chain.versions)
	return out, nil
}

// State returns the latest version of every non-deleted item in a
// workspace — the costly getChanges snapshot clients fetch at startup.
// Lock-free: the whole reply is computed from one immutable snapshot, so a
// concurrent CommitBatch is seen entirely or not at all.
func (s *Store) State(workspace string) ([]ItemVersion, error) {
	sn, err := s.snapshotOf(workspace)
	if err != nil {
		return nil, err
	}
	return sn.live(), nil
}

// StateAt returns the live state together with the workspace version it is
// consistent at — what a client records as its resync cursor.
func (s *Store) StateAt(workspace string) ([]ItemVersion, uint64, error) {
	sn, err := s.snapshotOf(workspace)
	if err != nil {
		return nil, 0, err
	}
	return sn.live(), sn.version, nil
}

// CommitVersionOf reports the workspace's current committed version counter.
func (s *Store) CommitVersionOf(workspace string) (uint64, error) {
	sn, err := s.snapshotOf(workspace)
	if err != nil {
		return 0, err
	}
	return sn.version, nil
}

// snapshotOf loads the workspace's current snapshot, lock-free.
func (s *Store) snapshotOf(workspace string) (*snapshot, error) {
	w, ok := s.lookupWS(workspace)
	if !ok {
		return nil, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	return w.snap.Load(), nil
}

// ItemCount reports the number of live (non-deleted) items in a workspace.
func (s *Store) ItemCount(workspace string) (int, error) {
	state, err := s.State(workspace)
	if err != nil {
		return 0, err
	}
	return len(state), nil
}

// Close flushes the WAL and rejects further writes. It drains in-flight
// writers (each shard lock is acquired once) before closing the journal.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		// Empty critical section on purpose: entering the lock waits out any
		// writer that passed the closed check before the flag flipped.
		sh.mu.Unlock()
	}
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}
