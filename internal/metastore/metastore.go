// Package metastore is the Metadata back-end substrate (paper: PostgreSQL
// 9.1). It stores workspaces and per-item version chains and gives the
// SyncService the one property Algorithm 1 leans on: the version-precedence
// check and the write of the new version commit atomically, so concurrent
// commitRequests over the same version serialize into one winner and one
// conflict (first-committer-wins).
//
// Transactions serialize under a single writer lock — at file-sync scale the
// database is never the bottleneck the way contention semantics are — and
// an optional write-ahead log makes committed state durable.
package metastore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"stacksync/internal/faults"
)

// Status is the lifecycle state of an item version.
type Status int

const (
	// Added marks the first version of a new item.
	Added Status = iota + 1
	// Modified marks a content or rename change.
	Modified
	// Deleted marks a tombstone version.
	Deleted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Added:
		return "ADD"
	case Modified:
		return "UPDATE"
	case Deleted:
		return "REMOVE"
	default:
		return "UNKNOWN"
	}
}

// Workspace is a synced folder shared by one or more users (§4.1).
type Workspace struct {
	ID      string   `json:"id"`
	Owner   string   `json:"owner"`
	Members []string `json:"members,omitempty"`
}

// ItemVersion is one version of one item in a workspace — the row the
// SyncService commits. Chunks lists the fingerprints needed to rebuild the
// file, so a losing client can fetch exactly the missing chunks (§4.2.1).
type ItemVersion struct {
	Workspace   string    `json:"workspace"`
	ItemID      string    `json:"itemId"`
	Path        string    `json:"path"`
	Version     uint64    `json:"version"`
	Status      Status    `json:"status"`
	Size        int64     `json:"size"`
	Chunks      []string  `json:"chunks,omitempty"`
	Checksum    string    `json:"checksum,omitempty"`
	DeviceID    string    `json:"deviceId,omitempty"`
	CommittedAt time.Time `json:"committedAt"`
}

// Errors returned by the store.
var (
	ErrWorkspaceExists = errors.New("metastore: workspace exists")
	ErrNoWorkspace     = errors.New("metastore: workspace not found")
	ErrVersionConflict = errors.New("metastore: version conflict")
	ErrNoItem          = errors.New("metastore: item not found")
	ErrClosed          = errors.New("metastore: store closed")
	ErrTxDone          = errors.New("metastore: transaction finished")
	// ErrTxAborted is a transient, injected transaction rollback: the commit
	// was not applied and may be retried verbatim.
	ErrTxAborted = errors.New("metastore: transaction aborted")
)

type itemChain struct {
	versions []ItemVersion // ascending by Version
}

func (c *itemChain) current() ItemVersion { return c.versions[len(c.versions)-1] }

// Store is the metadata database.
type Store struct {
	mu         sync.RWMutex
	workspaces map[string]Workspace
	items      map[string]map[string]*itemChain // workspace -> itemID -> chain
	wal        *WAL
	now        func() time.Time
	closed     bool

	// Fault injection (nil in production): transaction aborts and torn WAL
	// writes, rolled per commit.
	fplan *faults.Plan
	fsite string
	fkeys faults.Keyer
}

// Option configures a Store.
type Option func(*Store)

// WithWAL enables write-ahead durability at the given journal.
func WithWAL(w *WAL) Option {
	return func(s *Store) { s.wal = w }
}

// WithNow substitutes the timestamp source.
func WithNow(now func() time.Time) Option {
	return func(s *Store) { s.now = now }
}

// WithFaults wires deterministic fault injection into the transaction path:
// a commit may be rolled back with ErrTxAborted (transient — the caller's
// retry/redelivery layer must re-submit) or may tear the next WAL record as
// if the process crashed mid-append.
func WithFaults(plan *faults.Plan, site string) Option {
	return func(s *Store) { s.fplan, s.fsite = plan, site }
}

// injectTx rolls one transaction-level fault. Caller holds s.mu.
func (s *Store) injectTx() error {
	if s.fplan == nil {
		return nil
	}
	k := s.fkeys.Next()
	switch s.fplan.Decide(s.fsite, k).Kind {
	case faults.Abort:
		s.fplan.Note(s.fsite, k, faults.Abort, s.now())
		return ErrTxAborted
	case faults.Torn:
		if s.wal != nil {
			s.fplan.Note(s.fsite, k, faults.Torn, s.now())
			s.wal.TearNext()
		}
	}
	return nil
}

// NewStore returns an empty metadata store.
func NewStore(opts ...Option) *Store {
	s := &Store{
		workspaces: make(map[string]Workspace),
		items:      make(map[string]map[string]*itemChain),
		now:        time.Now,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// CreateWorkspace registers a workspace.
func (s *Store) CreateWorkspace(ws Workspace) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.workspaces[ws.ID]; ok {
		return fmt.Errorf("metastore: create %q: %w", ws.ID, ErrWorkspaceExists)
	}
	s.workspaces[ws.ID] = ws
	s.items[ws.ID] = make(map[string]*itemChain)
	if s.wal != nil {
		return s.wal.record(walEntry{Op: walWorkspace, Workspace: &ws})
	}
	return nil
}

// WorkspacesFor lists the workspaces a user owns or is a member of —
// the getWorkspaces operation's backing query.
func (s *Store) WorkspacesFor(user string) []Workspace {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Workspace
	for _, ws := range s.workspaces {
		if ws.Owner == user {
			out = append(out, ws)
			continue
		}
		for _, m := range ws.Members {
			if m == user {
				out = append(out, ws)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Workspace fetches a workspace by id.
func (s *Store) Workspace(id string) (Workspace, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ws, ok := s.workspaces[id]
	if !ok {
		return Workspace{}, fmt.Errorf("metastore: %q: %w", id, ErrNoWorkspace)
	}
	return ws, nil
}

// Current returns the latest version of an item, with ok=false when the
// item has never been committed (Algorithm 1 line 4).
func (s *Store) Current(workspace, itemID string) (ItemVersion, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chains, ok := s.items[workspace]
	if !ok {
		return ItemVersion{}, false, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	chain, ok := chains[itemID]
	if !ok {
		return ItemVersion{}, false, nil
	}
	return chain.current(), true, nil
}

// CommitVersion atomically applies the version-precedence check of
// Algorithm 1 and stores the proposed version:
//
//   - item unknown  and proposed Version == 1  → committed (store_new_object)
//   - current+1 == proposed Version            → committed (store_new_version)
//   - anything else                            → ErrVersionConflict carrying
//     the authoritative current version, which the service piggybacks on the
//     CommitNotification so the losing client can reconstruct the file.
func (s *Store) CommitVersion(v ItemVersion) (ItemVersion, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ItemVersion{}, ErrClosed
	}
	if err := s.injectTx(); err != nil {
		return ItemVersion{}, err
	}
	committed, err := s.commitLocked(v)
	if err != nil {
		return committed, err
	}
	if s.wal != nil {
		if err := s.wal.record(walEntry{Op: walVersion, Version: &committed}); err != nil {
			return committed, err
		}
	}
	return committed, nil
}

func (s *Store) commitLocked(v ItemVersion) (ItemVersion, error) {
	chains, ok := s.items[v.Workspace]
	if !ok {
		return ItemVersion{}, fmt.Errorf("metastore: commit to %q: %w", v.Workspace, ErrNoWorkspace)
	}
	if v.CommittedAt.IsZero() {
		v.CommittedAt = s.now()
	}
	chain, exists := chains[v.ItemID]
	if !exists {
		if v.Version != 1 {
			return ItemVersion{}, fmt.Errorf("metastore: %s v%d on unknown item: %w", v.ItemID, v.Version, ErrVersionConflict)
		}
		chains[v.ItemID] = &itemChain{versions: []ItemVersion{v}}
		return v, nil
	}
	cur := chain.current()
	if v.Version != cur.Version+1 {
		// Replay detection: an at-least-once transport (MQ redelivery after
		// an instance crash, proxy retry, client retransmission) can re-submit
		// a proposal that already committed. Re-acknowledging it keeps the
		// duplicate from surfacing as a spurious conflict. Only proposals
		// carrying their writer's DeviceID can be identified as replays;
		// anonymous proposals keep strict first-committer-wins conflicts.
		if v.DeviceID != "" && v.Version >= 1 && v.Version <= cur.Version {
			prior := chain.versions[v.Version-1]
			if prior.DeviceID == v.DeviceID && prior.Checksum == v.Checksum &&
				prior.Status == v.Status && prior.Path == v.Path &&
				sameChunks(prior.Chunks, v.Chunks) {
				return prior, nil
			}
		}
		return cur, fmt.Errorf("metastore: %s proposed v%d over v%d: %w", v.ItemID, v.Version, cur.Version, ErrVersionConflict)
	}
	chain.versions = append(chain.versions, v)
	return v, nil
}

// sameChunks reports elementwise equality of two chunk fingerprint lists.
func sameChunks(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CommitBatch applies a list of proposed versions in one serialized
// transaction. Each element succeeds or conflicts independently (Algorithm 1
// loops per object); the returned slice is parallel to the input, and
// conflicted entries carry the authoritative current version.
type BatchResult struct {
	Committed bool        `json:"committed"`
	Version   ItemVersion `json:"version"` // committed version, or current on conflict
}

// CommitBatch commits proposals atomically with respect to other writers.
func (s *Store) CommitBatch(proposals []ItemVersion) ([]BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.injectTx(); err != nil {
		return nil, err
	}
	results := make([]BatchResult, len(proposals))
	for i, p := range proposals {
		committed, err := s.commitLocked(p)
		if err != nil {
			if errors.Is(err, ErrVersionConflict) {
				results[i] = BatchResult{Committed: false, Version: committed}
				continue
			}
			return nil, err
		}
		results[i] = BatchResult{Committed: true, Version: committed}
		if s.wal != nil {
			if err := s.wal.record(walEntry{Op: walVersion, Version: &committed}); err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}

// History returns the full version chain of an item, oldest first.
func (s *Store) History(workspace, itemID string) ([]ItemVersion, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chains, ok := s.items[workspace]
	if !ok {
		return nil, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	chain, ok := chains[itemID]
	if !ok {
		return nil, fmt.Errorf("metastore: %s/%s: %w", workspace, itemID, ErrNoItem)
	}
	out := make([]ItemVersion, len(chain.versions))
	copy(out, chain.versions)
	return out, nil
}

// State returns the latest version of every non-deleted item in a
// workspace — the costly getChanges snapshot clients fetch at startup.
func (s *Store) State(workspace string) ([]ItemVersion, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chains, ok := s.items[workspace]
	if !ok {
		return nil, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	var out []ItemVersion
	for _, chain := range chains {
		cur := chain.current()
		if cur.Status != Deleted {
			out = append(out, cur)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ItemID < out[j].ItemID })
	return out, nil
}

// ItemCount reports the number of live (non-deleted) items in a workspace.
func (s *Store) ItemCount(workspace string) (int, error) {
	state, err := s.State(workspace)
	if err != nil {
		return 0, err
	}
	return len(state), nil
}

// Close flushes the WAL and rejects further writes.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}
