package metastore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newWS(t *testing.T, s *Store, id, owner string, members ...string) {
	t.Helper()
	if err := s.CreateWorkspace(Workspace{ID: id, Owner: owner, Members: members}); err != nil {
		t.Fatal(err)
	}
}

func ver(ws, item string, v uint64, status Status) ItemVersion {
	return ItemVersion{
		Workspace: ws,
		ItemID:    item,
		Path:      "/" + item,
		Version:   v,
		Status:    status,
		Size:      100,
		Chunks:    []string{"fp-" + item + fmt.Sprint(v)},
	}
}

func TestWorkspaceLifecycle(t *testing.T) {
	s := NewStore()
	defer s.Close()
	newWS(t, s, "ws1", "alice", "bob")
	if err := s.CreateWorkspace(Workspace{ID: "ws1", Owner: "x"}); !errors.Is(err, ErrWorkspaceExists) {
		t.Fatalf("duplicate workspace: %v", err)
	}
	if _, err := s.Workspace("ws1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Workspace("nope"); !errors.Is(err, ErrNoWorkspace) {
		t.Fatalf("missing workspace: %v", err)
	}
}

func TestWorkspacesForOwnerAndMember(t *testing.T) {
	s := NewStore()
	defer s.Close()
	newWS(t, s, "wsA", "alice", "bob")
	newWS(t, s, "wsB", "bob")
	newWS(t, s, "wsC", "carol")

	if got := s.WorkspacesFor("alice"); len(got) != 1 || got[0].ID != "wsA" {
		t.Fatalf("alice workspaces: %+v", got)
	}
	got := s.WorkspacesFor("bob")
	if len(got) != 2 || got[0].ID != "wsA" || got[1].ID != "wsB" {
		t.Fatalf("bob workspaces: %+v", got)
	}
	if got := s.WorkspacesFor("nobody"); len(got) != 0 {
		t.Fatalf("stranger workspaces: %+v", got)
	}
}

func TestCommitNewObjectAndVersions(t *testing.T) {
	s := NewStore()
	defer s.Close()
	newWS(t, s, "ws", "alice")

	// New item must start at version 1.
	if _, err := s.CommitVersion(ver("ws", "f1", 2, Added)); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("v2 on unknown item: %v", err)
	}
	committed, err := s.CommitVersion(ver("ws", "f1", 1, Added))
	if err != nil {
		t.Fatal(err)
	}
	if committed.CommittedAt.IsZero() {
		t.Fatal("commit timestamp not set")
	}

	cur, ok, err := s.Current("ws", "f1")
	if err != nil || !ok || cur.Version != 1 {
		t.Fatalf("current = %+v, %v, %v", cur, ok, err)
	}
	if _, ok, _ := s.Current("ws", "ghost"); ok {
		t.Fatal("phantom item")
	}

	// Sequential versions commit; stale version conflicts and returns the
	// authoritative current version.
	if _, err := s.CommitVersion(ver("ws", "f1", 2, Modified)); err != nil {
		t.Fatal(err)
	}
	current, err := s.CommitVersion(ver("ws", "f1", 2, Modified))
	if !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("stale commit: %v", err)
	}
	if current.Version != 2 {
		t.Fatalf("conflict should return current v2, got v%d", current.Version)
	}
	// Version skips conflict too.
	if _, err := s.CommitVersion(ver("ws", "f1", 9, Modified)); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("skipped version: %v", err)
	}
}

func TestFirstCommitterWinsUnderConcurrency(t *testing.T) {
	// Two devices race to commit version 2 of the same file; exactly one
	// must win — the serialization Algorithm 1 relies on.
	s := NewStore()
	defer s.Close()
	newWS(t, s, "ws", "alice")
	if _, err := s.CommitVersion(ver("ws", "f", 1, Added)); err != nil {
		t.Fatal(err)
	}
	const racers = 16
	var wg sync.WaitGroup
	wins := make(chan int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := ver("ws", "f", 2, Modified)
			v.DeviceID = fmt.Sprintf("dev-%d", i)
			if _, err := s.CommitVersion(v); err == nil {
				wins <- i
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	count := 0
	for range wins {
		count++
	}
	if count != 1 {
		t.Fatalf("winners = %d, want exactly 1", count)
	}
}

func TestHistoryAndState(t *testing.T) {
	s := NewStore()
	defer s.Close()
	newWS(t, s, "ws", "alice")
	mustCommit := func(v ItemVersion) {
		t.Helper()
		if _, err := s.CommitVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(ver("ws", "a", 1, Added))
	mustCommit(ver("ws", "a", 2, Modified))
	mustCommit(ver("ws", "b", 1, Added))
	mustCommit(ver("ws", "c", 1, Added))
	mustCommit(ver("ws", "c", 2, Deleted))

	hist, err := s.History("ws", "a")
	if err != nil || len(hist) != 2 || hist[0].Version != 1 || hist[1].Version != 2 {
		t.Fatalf("history: %+v, %v", hist, err)
	}
	if _, err := s.History("ws", "ghost"); !errors.Is(err, ErrNoItem) {
		t.Fatalf("ghost history: %v", err)
	}

	// State excludes the deleted item and returns latest versions.
	state, err := s.State("ws")
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 2 {
		t.Fatalf("state has %d items, want 2: %+v", len(state), state)
	}
	if state[0].ItemID != "a" || state[0].Version != 2 || state[1].ItemID != "b" {
		t.Fatalf("state: %+v", state)
	}
	n, err := s.ItemCount("ws")
	if err != nil || n != 2 {
		t.Fatalf("item count = %d, %v", n, err)
	}
}

func TestCommitBatchMixedOutcomes(t *testing.T) {
	s := NewStore()
	defer s.Close()
	newWS(t, s, "ws", "alice")
	if _, err := s.CommitVersion(ver("ws", "exists", 1, Added)); err != nil {
		t.Fatal(err)
	}
	results, err := s.CommitBatch([]ItemVersion{
		ver("ws", "new", 1, Added),       // commits
		ver("ws", "exists", 1, Modified), // conflicts (current is v1)
		ver("ws", "exists", 2, Modified), // commits on top
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Committed || results[1].Committed || !results[2].Committed {
		t.Fatalf("batch outcomes: %+v", results)
	}
	if results[1].Version.Version != 1 {
		t.Fatalf("conflict carries current v%d, want 1", results[1].Version.Version)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{Added: "ADD", Modified: "UPDATE", Deleted: "REMOVE", Status(0): "UNKNOWN"} {
		if got := s.String(); got != want {
			t.Fatalf("%d.String() = %q", s, got)
		}
	}
}

func TestCloseRejectsWrites(t *testing.T) {
	s := NewStore()
	newWS(t, s, "ws", "alice")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := s.CommitVersion(ver("ws", "f", 1, Added)); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v", err)
	}
	if err := s.CreateWorkspace(Workspace{ID: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
}

func TestWALRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	fixed := time.Date(2014, 12, 8, 12, 0, 0, 0, time.UTC)
	s := NewStore(WithWAL(w), WithNow(func() time.Time { return fixed }))
	newWS(t, s, "ws", "alice", "bob")
	if _, err := s.CommitVersion(ver("ws", "f", 1, Added)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CommitVersion(ver("ws", "f", 2, Modified)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cur, ok, err := s2.Current("ws", "f")
	if err != nil || !ok || cur.Version != 2 {
		t.Fatalf("recovered current: %+v, %v, %v", cur, ok, err)
	}
	if !cur.CommittedAt.Equal(fixed) {
		t.Fatalf("recovery rewrote commit timestamp: %v", cur.CommittedAt)
	}
	ws := s2.WorkspacesFor("bob")
	if len(ws) != 1 || ws[0].ID != "ws" {
		t.Fatalf("recovered workspaces: %+v", ws)
	}
	// Recovered store must keep journalling.
	if _, err := s2.CommitVersion(ver("ws", "f", 3, Modified)); err != nil {
		t.Fatal(err)
	}
	_ = s2.Close()
	s3, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	cur, _, _ = s3.Current("ws", "f")
	if cur.Version != 3 {
		t.Fatalf("second-generation commit lost: v%d", cur.Version)
	}
}

func TestRecoverMissingWALStartsEmpty(t *testing.T) {
	s, err := Recover(filepath.Join(t.TempDir(), "never.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.WorkspacesFor("anyone"); len(got) != 0 {
		t.Fatalf("fresh store has workspaces: %+v", got)
	}
}

func TestCommitToUnknownWorkspaceFails(t *testing.T) {
	s := NewStore()
	defer s.Close()
	if _, err := s.CommitVersion(ver("ghost", "f", 1, Added)); !errors.Is(err, ErrNoWorkspace) {
		t.Fatalf("commit to missing workspace: %v", err)
	}
	if _, _, err := s.Current("ghost", "f"); !errors.Is(err, ErrNoWorkspace) {
		t.Fatalf("current in missing workspace: %v", err)
	}
	if _, err := s.State("ghost"); !errors.Is(err, ErrNoWorkspace) {
		t.Fatalf("state of missing workspace: %v", err)
	}
}
