package metastore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"stacksync/internal/faults"
)

func commitN(t *testing.T, s *Store, ws string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := s.CommitVersion(ItemVersion{
			Workspace: ws, ItemID: "item", Path: "f.txt",
			Version: uint64(i + 1), Status: Modified, Checksum: strings.Repeat("c", i+1),
		})
		if err != nil {
			t.Fatalf("commit v%d: %v", i+1, err)
		}
	}
}

// TestRecoverTornTail truncates the WAL mid-record and asserts recovery
// replays every complete transaction and drops only the torn tail.
func TestRecoverTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(WithWAL(w))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "ws", 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: cut the file mid-way through its last line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := data[:len(data)-1] // strip final newline
	lastLine := body[strings.LastIndexByte(string(body), '\n')+1:]
	torn := len(data) - 1 - len(lastLine)/2
	if err := os.Truncate(path, int64(torn)); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("recover torn wal: %v", err)
	}
	defer rec.Close()
	cur, ok, err := rec.Current("ws", "item")
	if err != nil || !ok {
		t.Fatalf("current after recovery: ok=%v err=%v", ok, err)
	}
	// Versions 1..4 were complete records; v5's record was torn.
	if cur.Version != 4 {
		t.Fatalf("recovered version = %d, want 4 (torn v5 dropped)", cur.Version)
	}

	// The torn tail must be gone from disk: appending and re-recovering must
	// not corrupt adjacent records.
	if _, err := rec.CommitVersion(ItemVersion{
		Workspace: "ws", ItemID: "item", Path: "f.txt", Version: 5, Status: Modified, Checksum: "new5",
	}); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(path)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer rec2.Close()
	cur, ok, err = rec2.Current("ws", "item")
	if err != nil || !ok || cur.Version != 5 || cur.Checksum != "new5" {
		t.Fatalf("after append+recover: %+v ok=%v err=%v", cur, ok, err)
	}
}

// TestRecoverNewlinelessCompleteTail: a record missing only its newline is
// still treated as torn — commit is defined by the terminating newline.
func TestRecoverNewlinelessCompleteTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(WithWAL(w))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "ws", 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-1); err != nil { // drop final '\n' only
		t.Fatal(err)
	}
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	cur, ok, _ := rec.Current("ws", "item")
	if !ok || cur.Version != 2 {
		t.Fatalf("recovered version = %d (ok=%v), want 2", cur.Version, ok)
	}
}

// TestInjectedTornWrite drives the tear through the fault plan: the store is
// configured with a TornP=1 site, the first commit tears its WAL record, and
// recovery drops exactly that record.
func TestInjectedTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(faults.Config{Seed: 1, Sites: map[string]faults.SiteConfig{
		"meta": {TornP: 1},
	}})
	s := NewStore(WithWAL(w), WithFaults(plan, "meta"))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	_, err = s.CommitVersion(ItemVersion{
		Workspace: "ws", ItemID: "item", Path: "f.txt", Version: 1, Status: Added, Checksum: "c",
	})
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("commit error = %v, want ErrTornWrite", err)
	}
	_ = s.Close()

	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("recover after injected tear: %v", err)
	}
	defer rec.Close()
	if _, ok, _ := rec.Current("ws", "item"); ok {
		t.Fatalf("torn commit survived recovery")
	}
	if _, err := rec.Workspace("ws"); err != nil {
		t.Fatalf("workspace record lost: %v", err)
	}
}

// TestCommitAbortInjection asserts ErrTxAborted rolls back cleanly and a
// retry of the same proposal succeeds.
func TestCommitAbortInjection(t *testing.T) {
	plan := faults.NewPlan(faults.Config{Seed: 2, Sites: map[string]faults.SiteConfig{
		"meta": {AbortP: 0.5},
	}})
	s := NewStore(WithFaults(plan, "meta"))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	aborts, commits := 0, 0
	for i := 0; i < 50; i++ {
		v := ItemVersion{
			Workspace: "ws", ItemID: "item", Path: "f.txt",
			Version: uint64(commits + 1), Status: Modified, Checksum: "c",
		}
		for {
			_, err := s.CommitBatch([]ItemVersion{v})
			if errors.Is(err, ErrTxAborted) {
				aborts++
				continue // transient: retry verbatim
			}
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			commits++
			break
		}
	}
	if commits != 50 {
		t.Fatalf("commits = %d, want 50", commits)
	}
	if aborts == 0 {
		t.Fatalf("no aborts injected at AbortP=0.5")
	}
	cur, ok, _ := s.Current("ws", "item")
	if !ok || cur.Version != 50 {
		t.Fatalf("final version = %d (ok=%v), want 50", cur.Version, ok)
	}
}

// TestCommitReplayIsIdempotent: re-submitting an already-committed proposal
// (MQ redelivery, proxy retry) re-acknowledges instead of conflicting.
func TestCommitReplayIsIdempotent(t *testing.T) {
	s := NewStore()
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	v := ItemVersion{Workspace: "ws", ItemID: "i", Path: "f", Version: 1, Status: Added, Checksum: "x", DeviceID: "d1"}
	if _, err := s.CommitVersion(v); err != nil {
		t.Fatal(err)
	}
	res, err := s.CommitBatch([]ItemVersion{v})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Committed {
		t.Fatalf("replayed proposal not re-acknowledged: %+v", res[0])
	}
	// A genuinely different proposal at the same version still conflicts.
	other := v
	other.DeviceID = "d2"
	other.Checksum = "y"
	res, err = s.CommitBatch([]ItemVersion{other})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Committed {
		t.Fatalf("conflicting proposal wrongly committed")
	}
}

// TestRecoverTornBatchMatrix parametrizes the crash point over group-commit
// batch boundaries: the torn record can be a lone append (mid-record), sit
// inside a multi-record batch, or land exactly on the boundary between two
// batches. In every case the recovered store must match a reference model
// built from only the records that became durable before the crash.
func TestRecoverTornBatchMatrix(t *testing.T) {
	fixed := time.Unix(1700000000, 0).UTC()
	now := func() time.Time { return fixed }
	mk := func(v uint64) ItemVersion {
		status := Modified
		if v == 1 {
			status = Added
		}
		return ItemVersion{
			Workspace: "ws", ItemID: "f", Path: "/f", Version: v,
			Status: status, Checksum: strings.Repeat("c", int(v)),
		}
	}
	cases := []struct {
		name    string
		run     func(t *testing.T, s *Store, w *WAL)
		survive uint64 // highest version durable after the crash
	}{
		{
			// Crash during a lone single-record append.
			name: "mid-record",
			run: func(t *testing.T, s *Store, w *WAL) {
				for v := uint64(1); v <= 2; v++ {
					if _, err := s.CommitVersion(mk(v)); err != nil {
						t.Fatalf("commit v%d: %v", v, err)
					}
				}
				w.TearNext()
				if _, err := s.CommitVersion(mk(3)); !errors.Is(err, ErrTornWrite) {
					t.Fatalf("torn commit error = %v, want ErrTornWrite", err)
				}
			},
			survive: 2,
		},
		{
			// Crash inside a batch: CommitBatch groups v2..v4 into one
			// group-commit flush and the tear lands on the middle record, so
			// v2 is durable and v3, v4 are lost.
			name: "inside-batch",
			run: func(t *testing.T, s *Store, w *WAL) {
				if _, err := s.CommitVersion(mk(1)); err != nil {
					t.Fatal(err)
				}
				w.TearAfter(1)
				if _, err := s.CommitBatch([]ItemVersion{mk(2), mk(3), mk(4)}); !errors.Is(err, ErrTornWrite) {
					t.Fatalf("torn batch error = %v, want ErrTornWrite", err)
				}
			},
			survive: 2,
		},
		{
			// Crash between batches: batch A lands completely, the very first
			// record of batch B tears, so A survives and B vanishes whole.
			name: "between-batches",
			run: func(t *testing.T, s *Store, w *WAL) {
				if _, err := s.CommitBatch([]ItemVersion{mk(1), mk(2)}); err != nil {
					t.Fatal(err)
				}
				w.TearAfter(0)
				if _, err := s.CommitBatch([]ItemVersion{mk(3), mk(4)}); !errors.Is(err, ErrTornWrite) {
					t.Fatalf("torn batch error = %v, want ErrTornWrite", err)
				}
			},
			survive: 2,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			w, err := OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			s := NewStore(WithWAL(w), WithNow(now))
			if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
				t.Fatal(err)
			}
			tc.run(t, s, w)
			_ = s.Close()

			rec, err := Recover(path, WithNow(now))
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer rec.Close()

			// Reference model: replay only the durable prefix on a fresh
			// in-memory store with the same clock.
			ref := NewStore(WithNow(now))
			if err := ref.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
				t.Fatal(err)
			}
			for v := uint64(1); v <= tc.survive; v++ {
				if _, err := ref.CommitVersion(mk(v)); err != nil {
					t.Fatal(err)
				}
			}
			gotState, err := rec.State("ws")
			if err != nil {
				t.Fatal(err)
			}
			wantState, err := ref.State("ws")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotState, wantState) {
				t.Fatalf("recovered state diverges from reference model\n got:  %+v\n want: %+v", gotState, wantState)
			}
			gotHist, _ := rec.History("ws", "f")
			wantHist, _ := ref.History("ws", "f")
			if !reflect.DeepEqual(gotHist, wantHist) {
				t.Fatalf("recovered history diverges from reference model\n got:  %+v\n want: %+v", gotHist, wantHist)
			}

			// WAL replay must rebuild an identical MVCC snapshot, not just
			// identical query answers: same workspace version, same change log
			// reaching back to creation (compaction state is volatile, so the
			// watermark resets to 0 on recovery), same ChangesSince replies at
			// every cursor.
			_, gotV, err := rec.StateAt("ws")
			if err != nil {
				t.Fatal(err)
			}
			if gotV != tc.survive {
				t.Fatalf("recovered workspace version %d, want %d", gotV, tc.survive)
			}
			if wm, _ := rec.CompactWatermark("ws"); wm != 0 {
				t.Fatalf("recovered watermark %d, want 0 (compaction state is volatile)", wm)
			}
			for since := uint64(0); since <= tc.survive+1; since++ {
				gotCh, gErr := rec.ChangesSince("ws", since)
				wantCh, wErr := ref.ChangesSince("ws", since)
				if (gErr == nil) != (wErr == nil) || !reflect.DeepEqual(gotCh, wantCh) {
					t.Fatalf("ChangesSince(%d) diverges after recovery\n got:  %+v (%v)\n want: %+v (%v)",
						since, gotCh, gErr, wantCh, wErr)
				}
			}

			// The truncated log must stay appendable and re-recoverable.
			if _, err := rec.CommitVersion(mk(tc.survive + 1)); err != nil {
				t.Fatalf("commit after recovery: %v", err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			rec2, err := Recover(path, WithNow(now))
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			defer rec2.Close()
			cur, ok, _ := rec2.Current("ws", "f")
			if !ok || cur.Version != tc.survive+1 {
				t.Fatalf("after append+recover: v%d ok=%v, want v%d", cur.Version, ok, tc.survive+1)
			}
		})
	}
}

// TestCurrentNotBlockedByInjectedSlowCommit is the regression test for the
// injectTx bug: fault-injection sleeps used to run under the store's write
// lock, so one artificially slow commit stalled every reader. Delays now
// fire before lock acquisition — a reader on another workspace (and even on
// the same one) answers immediately while the slow commit sleeps.
func TestCurrentNotBlockedByInjectedSlowCommit(t *testing.T) {
	cfg := func(seed int64) faults.Config {
		return faults.Config{Seed: seed, Sites: map[string]faults.SiteConfig{
			"meta": {DelayP: 1, MaxDelay: time.Second},
		}}
	}
	// Decide is deterministic per (seed, site, key); probe for a seed whose
	// first commit (Keyer key "0") draws a comfortably long delay.
	var seed int64
	var delay time.Duration
	for s := int64(1); s <= 1000; s++ {
		d := faults.NewPlan(cfg(s)).Decide("meta", "0")
		if d.Kind == faults.Delay && d.Delay >= 500*time.Millisecond {
			seed, delay = s, d.Delay
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed with a long first-commit delay in 1..1000")
	}

	s := NewStore(WithFaults(faults.NewPlan(cfg(seed)), "meta"), WithShards(16))
	for _, ws := range []string{"ws-slow", "ws-other"} {
		if err := s.CreateWorkspace(Workspace{ID: ws, Owner: "u"}); err != nil {
			t.Fatal(err)
		}
	}

	// The first write op draws key "0" and sleeps for `delay` before taking
	// its shard lock.
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := s.CommitVersion(ItemVersion{
			Workspace: "ws-slow", ItemID: "f", Path: "/f", Version: 1, Status: Added,
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the committer enter its injected sleep

	readStart := time.Now()
	if _, _, err := s.Current("ws-other", "x"); err != nil {
		t.Fatalf("current on other workspace: %v", err)
	}
	if _, _, err := s.Current("ws-slow", "f"); err != nil {
		t.Fatalf("current on slow workspace: %v", err)
	}
	if _, err := s.State("ws-other"); err != nil {
		t.Fatal(err)
	}
	readElapsed := time.Since(readStart)
	if readElapsed > delay/2 {
		t.Fatalf("reads took %v while a %v injected commit delay was in flight — readers are blocked by the sleeping committer", readElapsed, delay)
	}

	if err := <-done; err != nil {
		t.Fatalf("slow commit: %v", err)
	}
	if total := time.Since(start); total < delay {
		t.Fatalf("commit finished in %v, before its %v injected delay — fault did not fire", total, delay)
	}
}
