package metastore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stacksync/internal/faults"
)

func commitN(t *testing.T, s *Store, ws string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := s.CommitVersion(ItemVersion{
			Workspace: ws, ItemID: "item", Path: "f.txt",
			Version: uint64(i + 1), Status: Modified, Checksum: strings.Repeat("c", i+1),
		})
		if err != nil {
			t.Fatalf("commit v%d: %v", i+1, err)
		}
	}
}

// TestRecoverTornTail truncates the WAL mid-record and asserts recovery
// replays every complete transaction and drops only the torn tail.
func TestRecoverTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(WithWAL(w))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "ws", 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: cut the file mid-way through its last line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := data[:len(data)-1] // strip final newline
	lastLine := body[strings.LastIndexByte(string(body), '\n')+1:]
	torn := len(data) - 1 - len(lastLine)/2
	if err := os.Truncate(path, int64(torn)); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("recover torn wal: %v", err)
	}
	defer rec.Close()
	cur, ok, err := rec.Current("ws", "item")
	if err != nil || !ok {
		t.Fatalf("current after recovery: ok=%v err=%v", ok, err)
	}
	// Versions 1..4 were complete records; v5's record was torn.
	if cur.Version != 4 {
		t.Fatalf("recovered version = %d, want 4 (torn v5 dropped)", cur.Version)
	}

	// The torn tail must be gone from disk: appending and re-recovering must
	// not corrupt adjacent records.
	if _, err := rec.CommitVersion(ItemVersion{
		Workspace: "ws", ItemID: "item", Path: "f.txt", Version: 5, Status: Modified, Checksum: "new5",
	}); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(path)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer rec2.Close()
	cur, ok, err = rec2.Current("ws", "item")
	if err != nil || !ok || cur.Version != 5 || cur.Checksum != "new5" {
		t.Fatalf("after append+recover: %+v ok=%v err=%v", cur, ok, err)
	}
}

// TestRecoverNewlinelessCompleteTail: a record missing only its newline is
// still treated as torn — commit is defined by the terminating newline.
func TestRecoverNewlinelessCompleteTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(WithWAL(w))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	commitN(t, s, "ws", 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-1); err != nil { // drop final '\n' only
		t.Fatal(err)
	}
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	cur, ok, _ := rec.Current("ws", "item")
	if !ok || cur.Version != 2 {
		t.Fatalf("recovered version = %d (ok=%v), want 2", cur.Version, ok)
	}
}

// TestInjectedTornWrite drives the tear through the fault plan: the store is
// configured with a TornP=1 site, the first commit tears its WAL record, and
// recovery drops exactly that record.
func TestInjectedTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(faults.Config{Seed: 1, Sites: map[string]faults.SiteConfig{
		"meta": {TornP: 1},
	}})
	s := NewStore(WithWAL(w), WithFaults(plan, "meta"))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	_, err = s.CommitVersion(ItemVersion{
		Workspace: "ws", ItemID: "item", Path: "f.txt", Version: 1, Status: Added, Checksum: "c",
	})
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("commit error = %v, want ErrTornWrite", err)
	}
	_ = s.Close()

	rec, err := Recover(path)
	if err != nil {
		t.Fatalf("recover after injected tear: %v", err)
	}
	defer rec.Close()
	if _, ok, _ := rec.Current("ws", "item"); ok {
		t.Fatalf("torn commit survived recovery")
	}
	if _, err := rec.Workspace("ws"); err != nil {
		t.Fatalf("workspace record lost: %v", err)
	}
}

// TestCommitAbortInjection asserts ErrTxAborted rolls back cleanly and a
// retry of the same proposal succeeds.
func TestCommitAbortInjection(t *testing.T) {
	plan := faults.NewPlan(faults.Config{Seed: 2, Sites: map[string]faults.SiteConfig{
		"meta": {AbortP: 0.5},
	}})
	s := NewStore(WithFaults(plan, "meta"))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	aborts, commits := 0, 0
	for i := 0; i < 50; i++ {
		v := ItemVersion{
			Workspace: "ws", ItemID: "item", Path: "f.txt",
			Version: uint64(commits + 1), Status: Modified, Checksum: "c",
		}
		for {
			_, err := s.CommitBatch([]ItemVersion{v})
			if errors.Is(err, ErrTxAborted) {
				aborts++
				continue // transient: retry verbatim
			}
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			commits++
			break
		}
	}
	if commits != 50 {
		t.Fatalf("commits = %d, want 50", commits)
	}
	if aborts == 0 {
		t.Fatalf("no aborts injected at AbortP=0.5")
	}
	cur, ok, _ := s.Current("ws", "item")
	if !ok || cur.Version != 50 {
		t.Fatalf("final version = %d (ok=%v), want 50", cur.Version, ok)
	}
}

// TestCommitReplayIsIdempotent: re-submitting an already-committed proposal
// (MQ redelivery, proxy retry) re-acknowledges instead of conflicting.
func TestCommitReplayIsIdempotent(t *testing.T) {
	s := NewStore()
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	v := ItemVersion{Workspace: "ws", ItemID: "i", Path: "f", Version: 1, Status: Added, Checksum: "x", DeviceID: "d1"}
	if _, err := s.CommitVersion(v); err != nil {
		t.Fatal(err)
	}
	res, err := s.CommitBatch([]ItemVersion{v})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Committed {
		t.Fatalf("replayed proposal not re-acknowledged: %+v", res[0])
	}
	// A genuinely different proposal at the same version still conflicts.
	other := v
	other.DeviceID = "d2"
	other.Checksum = "y"
	res, err = s.CommitBatch([]ItemVersion{other})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Committed {
		t.Fatalf("conflicting proposal wrongly committed")
	}
}
