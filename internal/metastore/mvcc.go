package metastore

// MVCC read path (DESIGN §16). Every workspace keeps an immutable snapshot —
// a copy-on-write item table plus an append-only change log — published
// through one atomic pointer. Writers build the next snapshot under their
// shard lock and install it with a single pointer swap, so a CommitBatch
// becomes visible all-or-nothing; readers (State, Current, History,
// ChangesSince) load the pointer and walk structures that will never mutate
// beneath them, acquiring no lock at all. A reconnecting client replays the
// log tail ("changes since v") instead of re-scanning the workspace; once
// the requested version has been compacted away, the reply falls back to the
// full live state and says so.
//
// Immutability fine print: successive snapshots share backing arrays. A
// writer appends the next version at index len(slice) of the newest
// snapshot's chain/log slice; every published snapshot's slice header bounds
// readers to [0, len), so the append touches memory no reader of an older
// snapshot can reach, and the atomic pointer store publishing the new
// snapshot is the happens-before edge that makes the appended element
// visible to its readers. Compaction copies the retained tail into a fresh
// array, after which the old one is never extended again.

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLogRetention is the per-workspace change-log bound used when
// WithLogRetention is not given: once the log exceeds it, the oldest half is
// compacted away and the watermark advances.
const DefaultLogRetention = 4096

// WithLogRetention bounds the per-workspace change log to at most n entries
// (minimum 2): exceeding the bound compacts the log down to n/2, advancing
// the watermark. Clients whose resync version predates the watermark fall
// back to a full-state reply.
func WithLogRetention(n int) Option {
	return func(s *Store) { s.logRetention = n }
}

// snapshot is one immutable read view of a workspace. version counts every
// committed ItemVersion since workspace creation; log holds the entries
// (logStart, version] in commit order, so entry i carries workspace version
// logStart+1+i. Versions at or below logStart have been compacted away.
type snapshot struct {
	version  uint64
	logStart uint64
	items    map[string]*itemChain
	log      []ItemVersion
}

// emptySnapshot is the version-0 view every workspace starts from.
func emptySnapshot() *snapshot {
	return &snapshot{items: make(map[string]*itemChain)}
}

// live returns the latest version of every non-deleted item, sorted by
// ItemID — the full-state reply.
func (sn *snapshot) live() []ItemVersion {
	var out []ItemVersion
	for _, chain := range sn.items {
		cur := chain.current()
		if cur.Status != Deleted {
			out = append(out, cur)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ItemID < out[j].ItemID })
	return out
}

// wsState is one workspace: its immutable registration record and the
// atomically published snapshot pointer. meta never changes after creation,
// so reads need no lock anywhere in this struct.
type wsState struct {
	meta Workspace
	snap atomic.Pointer[snapshot]
}

// wsTable maps workspace ID to state. The table itself is published through
// an atomic pointer per shard and copied on workspace creation, so lookups
// are lock-free too.
type wsTable map[string]*wsState

// Changes is a ChangesSince reply: the committed entries after Since, or —
// when Since predates the compaction watermark (or the workspace has no log
// covering it) — the full live state with Full set.
type Changes struct {
	Workspace string `json:"workspace"`
	// Since echoes the requested version.
	Since uint64 `json:"since"`
	// Version is the workspace version this reply is consistent at: a
	// prefix-consistent committed snapshot, never a torn batch.
	Version uint64 `json:"version"`
	// Full reports that Items is the complete live state (sorted by ItemID)
	// rather than a log tail: the requested version was compacted away, lies
	// in the future of this replica, or the caller asked from zero.
	Full bool `json:"full,omitempty"`
	// Items is the log tail in commit order (including tombstones) when Full
	// is false, or the live state when Full is true.
	Items []ItemVersion `json:"items,omitempty"`
}

// ChangesSince returns everything committed to the workspace after version
// since, lock-free at a consistent snapshot. since == 0 always yields a full
// state reply (a cold client wants the live items, not the whole history);
// a since below the compaction watermark falls back to full state with Full
// set; a since at or above the snapshot version returns an empty tail at the
// snapshot's version.
func (s *Store) ChangesSince(workspace string, since uint64) (Changes, error) {
	w, ok := s.lookupWS(workspace)
	if !ok {
		return Changes{}, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	sn := w.snap.Load()
	c := Changes{Workspace: workspace, Since: since, Version: sn.version}
	switch {
	case since >= sn.version && since > 0:
		// Nothing new. A since from the future (a replica that has seen a
		// newer view than this one should be unreachable on a single store,
		// but routed failover makes it cheap to be defensive) degrades to
		// the full state so the caller can converge.
		if since > sn.version {
			c.Full = true
			c.Items = sn.live()
			s.inc(s.chFull)
			return c, nil
		}
		s.inc(s.chEmpty)
		return c, nil
	case since >= sn.logStart && since > 0:
		tail := sn.log[since-sn.logStart:]
		c.Items = make([]ItemVersion, len(tail))
		copy(c.Items, tail)
		s.inc(s.chTail)
		return c, nil
	default:
		// Cold start (since == 0) or compacted away: full live state.
		c.Full = true
		c.Items = sn.live()
		if since > 0 {
			s.inc(s.chFallback)
		}
		s.inc(s.chFull)
		return c, nil
	}
}

// CompactWatermark reports the workspace's compaction watermark: the highest
// version no longer served from the change log (0 = the log reaches back to
// workspace creation).
func (s *Store) CompactWatermark(workspace string) (uint64, error) {
	w, ok := s.lookupWS(workspace)
	if !ok {
		return 0, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	return w.snap.Load().logStart, nil
}

// CompactLog force-compacts the workspace's change log down to at most keep
// entries (keep < 0 is treated as 0) and returns the new watermark. The
// automatic retention policy does the same on the commit path; this exported
// form exists for operational trimming and for the test/fuzz harnesses that
// race compaction against readers.
func (s *Store) CompactLog(workspace string, keep int) (uint64, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if keep < 0 {
		keep = 0
	}
	sh := s.lockShard(s.shardIdx(workspace))
	defer sh.mu.Unlock()
	w, ok := (*sh.ws.Load())[workspace]
	if !ok {
		return 0, fmt.Errorf("metastore: %q: %w", workspace, ErrNoWorkspace)
	}
	sn := w.snap.Load()
	if len(sn.log) <= keep {
		return sn.logStart, nil
	}
	ns := &snapshot{
		version:  sn.version,
		logStart: sn.version - uint64(keep),
		items:    sn.items,
		log:      append([]ItemVersion(nil), sn.log[len(sn.log)-keep:]...),
	}
	s.noteCompaction(len(sn.log) - keep)
	s.logEntries.Add(int64(keep) - int64(len(sn.log)))
	w.snap.Store(ns)
	return ns.logStart, nil
}

// wsWrite builds one workspace's next snapshot under the shard lock: the
// write side of MVCC. commit applies Algorithm 1's precedence check against
// the working state (so later proposals of a batch see earlier winners) and
// install publishes everything committed with one pointer swap — or swaps
// nothing when nothing committed.
type wsWrite struct {
	st   *Store
	w    *wsState
	base *snapshot
	// items is nil until the first successful commit copies the base table;
	// install is a no-op while it stays nil.
	items    map[string]*itemChain
	log      []ItemVersion
	version  uint64
	appended int
}

// writeTo opens the write side of a workspace. Caller holds the shard lock.
func (sh *shard) writeTo(st *Store, workspace string) (*wsWrite, error) {
	w, ok := (*sh.ws.Load())[workspace]
	if !ok {
		return nil, fmt.Errorf("metastore: commit to %q: %w", workspace, ErrNoWorkspace)
	}
	base := w.snap.Load()
	return &wsWrite{st: st, w: w, base: base, log: base.log, version: base.version}, nil
}

// chain returns the working chain for an item.
func (wr *wsWrite) chain(itemID string) (*itemChain, bool) {
	if wr.items != nil {
		c, ok := wr.items[itemID]
		return c, ok
	}
	c, ok := wr.base.items[itemID]
	return c, ok
}

// ensureCopied copies the base item table once, on the first write.
func (wr *wsWrite) ensureCopied() {
	if wr.items != nil {
		return
	}
	wr.items = make(map[string]*itemChain, len(wr.base.items)+1)
	for id, c := range wr.base.items {
		wr.items[id] = c
	}
}

// commit applies the precedence check and append for one proposal:
//
//   - item unknown  and proposed Version == 1  → committed (store_new_object)
//   - current+1 == proposed Version            → committed (store_new_version)
//   - anything else                            → ErrVersionConflict carrying
//     the authoritative current version (or a replay re-ack, see below).
func (wr *wsWrite) commit(v ItemVersion, now func() time.Time) (ItemVersion, error) {
	if v.CommittedAt.IsZero() {
		v.CommittedAt = now()
	}
	chain, exists := wr.chain(v.ItemID)
	if !exists {
		if v.Version != 1 {
			return ItemVersion{}, fmt.Errorf("metastore: %s v%d on unknown item: %w", v.ItemID, v.Version, ErrVersionConflict)
		}
		wr.append(v, &itemChain{versions: []ItemVersion{v}})
		return v, nil
	}
	cur := chain.current()
	if v.Version != cur.Version+1 {
		// Replay detection: an at-least-once transport (MQ redelivery after
		// an instance crash, proxy retry, client retransmission) can re-submit
		// a proposal that already committed. Re-acknowledging it keeps the
		// duplicate from surfacing as a spurious conflict. Only proposals
		// carrying their writer's DeviceID can be identified as replays;
		// anonymous proposals keep strict first-committer-wins conflicts.
		if v.DeviceID != "" && v.Version >= 1 && v.Version <= cur.Version {
			prior := chain.versions[v.Version-1]
			if prior.DeviceID == v.DeviceID && prior.Checksum == v.Checksum &&
				prior.Status == v.Status && prior.Path == v.Path &&
				sameChunks(prior.Chunks, v.Chunks) {
				return prior, nil
			}
		}
		return cur, fmt.Errorf("metastore: %s proposed v%d over v%d: %w", v.ItemID, v.Version, cur.Version, ErrVersionConflict)
	}
	wr.append(v, &itemChain{versions: append(chain.versions, v)})
	return v, nil
}

// append records one committed version in the working state.
func (wr *wsWrite) append(v ItemVersion, chain *itemChain) {
	wr.ensureCopied()
	wr.items[v.ItemID] = chain
	wr.log = append(wr.log, v)
	wr.version++
	wr.appended++
}

// install publishes the working state as the workspace's next snapshot —
// the one pointer swap of the commit path — applying the retention policy
// first. Caller still holds the shard lock. A wsWrite that committed
// nothing installs nothing.
func (wr *wsWrite) install() {
	if wr.items == nil {
		return
	}
	ns := &snapshot{
		version:  wr.version,
		logStart: wr.base.logStart,
		items:    wr.items,
		log:      wr.log,
	}
	if max := wr.st.logRetention; len(ns.log) > max {
		keep := max / 2
		if keep < 1 {
			keep = 1
		}
		dropped := len(ns.log) - keep
		ns.log = append([]ItemVersion(nil), ns.log[dropped:]...)
		ns.logStart = ns.version - uint64(keep)
		wr.st.noteCompaction(dropped)
	}
	wr.st.logEntries.Add(int64(len(ns.log)) - int64(len(wr.base.log)))
	wr.st.lastInstall.Store(wr.st.now().UnixNano())
	wr.st.installs.Add(1)
	if wr.st.snapInstalls != nil {
		wr.st.snapInstalls.Inc()
	}
	wr.w.snap.Store(ns)
}

// noteCompaction records one compaction dropping n log entries.
func (s *Store) noteCompaction(n int) {
	s.compactRuns.Add(1)
	if s.compactions != nil {
		s.compactions.Inc()
		s.compactedEntries.Add(uint64(n))
	}
}
