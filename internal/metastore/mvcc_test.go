package metastore

import (
	"errors"
	"fmt"
	"testing"

	"stacksync/internal/obs"
)

// commitSeq commits n sequential versions of distinct items and returns the
// store, ready at workspace version n.
func commitSeq(t *testing.T, s *Store, ws string, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		if _, err := s.CommitVersion(ItemVersion{
			Workspace: ws, ItemID: fmt.Sprintf("it-%d", i), Path: fmt.Sprintf("/it-%d", i),
			Version: 1, Status: Added, Checksum: fmt.Sprintf("c%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChangesSinceSemantics(t *testing.T) {
	s := NewStore()
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}

	// Empty workspace, cold cursor: a Full reply with nothing in it.
	ch, err := s.ChangesSince("ws", 0)
	if err != nil || !ch.Full || ch.Version != 0 || len(ch.Items) != 0 {
		t.Fatalf("empty cold reply: %+v err=%v", ch, err)
	}

	commitSeq(t, s, "ws", 5)

	// Cold cursor: full live state at the head version.
	ch, err = s.ChangesSince("ws", 0)
	if err != nil || !ch.Full || ch.Version != 5 || len(ch.Items) != 5 {
		t.Fatalf("cold reply: %+v err=%v", ch, err)
	}

	// Warm cursor: exactly the log tail, in commit order.
	ch, err = s.ChangesSince("ws", 3)
	if err != nil || ch.Full || ch.Version != 5 || len(ch.Items) != 2 {
		t.Fatalf("warm reply: %+v err=%v", ch, err)
	}
	if ch.Items[0].ItemID != "it-4" || ch.Items[1].ItemID != "it-5" {
		t.Fatalf("tail order: %+v", ch.Items)
	}

	// Caught up: empty, not Full.
	ch, err = s.ChangesSince("ws", 5)
	if err != nil || ch.Full || len(ch.Items) != 0 || ch.Version != 5 {
		t.Fatalf("caught-up reply: %+v err=%v", ch, err)
	}

	// A cursor from the future (failover to a staler replica) degrades to a
	// Full reply instead of fabricating a tail.
	ch, err = s.ChangesSince("ws", 9)
	if err != nil || !ch.Full || ch.Version != 5 || len(ch.Items) != 5 {
		t.Fatalf("future-cursor reply: %+v err=%v", ch, err)
	}

	// Unknown workspace.
	if _, err := s.ChangesSince("ghost", 0); !errors.Is(err, ErrNoWorkspace) {
		t.Fatalf("ghost workspace: %v", err)
	}
}

func TestChangesSinceTailIsACopy(t *testing.T) {
	s := NewStore()
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	commitSeq(t, s, "ws", 3)
	ch, err := s.ChangesSince("ws", 1)
	if err != nil || len(ch.Items) != 2 {
		t.Fatalf("tail: %+v err=%v", ch, err)
	}
	// Mutating the reply must not reach the store's log.
	ch.Items[0].Checksum = "tampered"
	again, err := s.ChangesSince("ws", 1)
	if err != nil || again.Items[0].Checksum == "tampered" {
		t.Fatalf("reply aliases the internal log: %+v err=%v", again, err)
	}
}

func TestCompactionFallbackToFullState(t *testing.T) {
	s := NewStore()
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	commitSeq(t, s, "ws", 6)

	// Force-compact down to the last 2 entries: watermark moves to 4.
	wm, err := s.CompactLog("ws", 2)
	if err != nil || wm != 4 {
		t.Fatalf("compact: wm=%d err=%v", wm, err)
	}
	if got, _ := s.CompactWatermark("ws"); got != 4 {
		t.Fatalf("watermark: %d", got)
	}

	// Cursors at/above the watermark still get tails.
	ch, err := s.ChangesSince("ws", 4)
	if err != nil || ch.Full || len(ch.Items) != 2 {
		t.Fatalf("at-watermark reply: %+v err=%v", ch, err)
	}
	// A cursor below it has been compacted away: full state, flagged.
	ch, err = s.ChangesSince("ws", 3)
	if err != nil || !ch.Full || ch.Version != 6 || len(ch.Items) != 6 {
		t.Fatalf("below-watermark reply: %+v err=%v", ch, err)
	}
	// Idempotent: compacting an already-short log moves nothing.
	wm2, err := s.CompactLog("ws", 2)
	if err != nil || wm2 != 4 {
		t.Fatalf("re-compact: wm=%d err=%v", wm2, err)
	}
}

func TestAutomaticRetentionCompaction(t *testing.T) {
	s := NewStore(WithLogRetention(8))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	commitSeq(t, s, "ws", 20)
	wm, err := s.CompactWatermark("ws")
	if err != nil {
		t.Fatal(err)
	}
	if wm == 0 {
		t.Fatal("retention never advanced the watermark")
	}
	if s.Compactions() == 0 {
		t.Fatal("no compaction recorded")
	}
	// The surviving tail still serves incremental reads.
	ch, err := s.ChangesSince("ws", wm)
	if err != nil || ch.Full || uint64(len(ch.Items)) != 20-wm {
		t.Fatalf("post-compaction tail: %+v err=%v", ch, err)
	}
	// State is unaffected by log trimming.
	state, err := s.State("ws")
	if err != nil || len(state) != 20 {
		t.Fatalf("state after compaction: %d items err=%v", len(state), err)
	}
}

func TestSnapshotReadMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStore(WithRegistry(reg))
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	commitSeq(t, s, "ws", 4)
	if _, err := s.ChangesSince("ws", 2); err != nil { // tail
		t.Fatal(err)
	}
	if _, err := s.ChangesSince("ws", 0); err != nil { // full
		t.Fatal(err)
	}
	if _, err := s.ChangesSince("ws", 4); err != nil { // empty
		t.Fatal(err)
	}
	if _, err := s.CompactLog("ws", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ChangesSince("ws", 2); err != nil { // fallback (+full)
		t.Fatal(err)
	}
	checks := []struct {
		labels []string
		want   uint64
	}{
		{[]string{"result", "tail"}, 1},
		{[]string{"result", "full"}, 2},
		{[]string{"result", "empty"}, 1},
	}
	for _, c := range checks {
		if got := reg.CounterValue("metastore_changes_since_total", c.labels...); got != c.want {
			t.Errorf("changes_since_total%v = %d, want %d", c.labels, got, c.want)
		}
	}
	if got := reg.CounterValue("metastore_changes_compaction_fallback_total"); got != 1 {
		t.Errorf("fallback counter = %d, want 1", got)
	}
	if got := reg.CounterValue("metastore_snapshot_installs_total"); got != 4 {
		t.Errorf("snapshot installs = %d, want 4", got)
	}
	if got := reg.CounterValue("metastore_log_compactions_total"); got != 1 {
		t.Errorf("compactions = %d, want 1", got)
	}
	if got := reg.CounterValue("metastore_log_compacted_entries_total"); got != 3 {
		t.Errorf("compacted entries = %d, want 3", got)
	}
	if v, ok := reg.GaugeValue("metastore_log_entries"); !ok || v != 1 {
		t.Errorf("log entries gauge = %v ok=%v, want 1", v, ok)
	}
	if _, ok := reg.GaugeValue("metastore_snapshot_age_seconds"); !ok {
		t.Error("snapshot age gauge missing")
	}
}

func TestStateAtAndCommitVersionOf(t *testing.T) {
	s := NewStore()
	if err := s.CreateWorkspace(Workspace{ID: "ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	if v, err := s.CommitVersionOf("ws"); err != nil || v != 0 {
		t.Fatalf("fresh version: %d err=%v", v, err)
	}
	commitSeq(t, s, "ws", 3)
	state, v, err := s.StateAt("ws")
	if err != nil || v != 3 || len(state) != 3 {
		t.Fatalf("StateAt: %d items at v%d err=%v", len(state), v, err)
	}
	if v, err := s.CommitVersionOf("ws"); err != nil || v != 3 {
		t.Fatalf("version: %d err=%v", v, err)
	}
	if _, _, err := s.StateAt("ghost"); !errors.Is(err, ErrNoWorkspace) {
		t.Fatalf("ghost StateAt: %v", err)
	}
}
