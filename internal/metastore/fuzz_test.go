package metastore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at WAL recovery. Recovery may reject
// the log with an error, but it must never panic — and when it accepts, the
// recovered store must be fully usable: new commits append cleanly and a
// second recovery of the repaired log succeeds.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte(`{"op":"workspace","workspace":{"id":"ws","owner":"u"}}` + "\n"))
	f.Add([]byte(`{"op":"workspace","workspace":{"id":"ws","owner":"u"}}` + "\n" +
		`{"op":"version","version":{"workspace":"ws","itemId":"i","path":"/i","version":1,"status":1}}` + "\n"))
	f.Add([]byte(`{"op":"version","version":{"workspace":"ghost","itemId":"i","version":1,"status":1}}` + "\n"))
	f.Add([]byte(`{"op":"workspace","workspace":{"id":"ws","ow`)) // torn tail
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte(`{"op":"nonsense"}` + "\n" + `not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Recover(path)
		if err != nil {
			return // rejecting a hostile log is fine; panicking is not
		}
		// The recovered store must behave: a fresh workspace and commit go
		// through (tolerating collisions with whatever the input created).
		if err := s.CreateWorkspace(Workspace{ID: "fz-ws", Owner: "fz"}); err != nil && !errors.Is(err, ErrWorkspaceExists) {
			t.Fatalf("workspace create on recovered store: %v", err)
		}
		if _, err := s.CommitVersion(ItemVersion{
			Workspace: "fz-ws", ItemID: "fz-item", Path: "/fz", Version: 1, Status: Added,
		}); err != nil && !errors.Is(err, ErrVersionConflict) {
			t.Fatalf("commit on recovered store: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close recovered store: %v", err)
		}
		// Recovery truncated any torn tail and appended complete records, so
		// a second pass over the repaired log must succeed.
		s2, err := Recover(path)
		if err != nil {
			t.Fatalf("second recovery of repaired wal: %v", err)
		}
		if _, err := s2.Workspace("fz-ws"); err != nil {
			t.Fatalf("workspace lost across recoveries: %v", err)
		}
		_ = s2.Close()
	})
}
