package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a deterministic Clock whose time only moves when Advance is
// called. Goroutines blocked in Sleep or waiting on an After channel are
// released in deadline order as the clock passes their deadlines.
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
}

var _ Clock = (*Virtual)(nil)

type waiter struct {
	deadline time.Time
	ch       chan time.Time
	index    int
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].deadline.Before(h[j].deadline) }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *waiterHeap) Push(x interface{}) { w := x.(*waiter); w.index = len(*h); *h = append(*h, w) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// NewVirtual returns a Virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After returns a channel that receives the virtual time once the clock has
// advanced d past the current instant. A non-positive d fires immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	heap.Push(&v.waiters, &waiter{deadline: v.now.Add(d), ch: ch})
	return ch
}

// Sleep blocks the calling goroutine until the clock advances past d.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

// Advance moves the virtual time forward by d, releasing every waiter whose
// deadline falls within the advanced window, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	for v.waiters.Len() > 0 && !v.waiters[0].deadline.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		v.now = w.deadline
		w.ch <- v.now
	}
	v.now = target
	v.mu.Unlock()
}

// Waiters reports how many goroutines are currently blocked on the clock.
// Useful for tests that need to advance only once a worker is parked.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}
