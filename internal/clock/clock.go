// Package clock abstracts time so that day-long provisioning experiments can
// be replayed deterministically in milliseconds. Production code uses the
// wall clock; experiments use a virtual clock advanced by the harness.
package clock

import "time"

// Clock is the minimal time source used across the repository.
//
// After returns a channel that receives the (virtual) time once the given
// duration has elapsed. Sleep blocks until that moment.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// NewReal returns a wall-clock Clock.
func NewReal() Real { return Real{} }

// Now returns the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// After forwards to time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep forwards to time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }
