package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowMonotonic(t *testing.T) {
	c := NewReal()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	c := NewReal()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("real After never fired")
	}
}

func TestVirtualNowFrozen(t *testing.T) {
	start := time.Date(2014, 12, 8, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("time moved without Advance: %v", got)
	}
}

func TestVirtualAdvanceMovesNow(t *testing.T) {
	start := time.Date(2014, 12, 8, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	v.Advance(90 * time.Second)
	if got, want := v.Now(), start.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	chLate := v.After(10 * time.Second)
	chEarly := v.After(1 * time.Second)

	v.Advance(5 * time.Second)
	select {
	case tm := <-chEarly:
		if got, want := tm, time.Unix(1, 0); !got.Equal(want) {
			t.Fatalf("early waiter fired at %v, want %v", got, want)
		}
	default:
		t.Fatal("early waiter did not fire after Advance past deadline")
	}
	select {
	case <-chLate:
		t.Fatal("late waiter fired before its deadline")
	default:
	}

	v.Advance(5 * time.Second)
	select {
	case <-chLate:
	default:
		t.Fatal("late waiter did not fire at its deadline")
	}
}

func TestVirtualAfterNonPositiveFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("After(negative) did not fire immediately")
	}
}

func TestVirtualSleepWakesSleeper(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	woke := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(time.Minute)
		close(woke)
	}()
	// Wait until the sleeper is parked before advancing.
	for v.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Minute)
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper never woke")
	}
	wg.Wait()
}

func TestVirtualManyWaitersReleasedTogether(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	const n = 50
	chans := make([]<-chan time.Time, n)
	for i := 0; i < n; i++ {
		chans[i] = v.After(time.Duration(i+1) * time.Millisecond)
	}
	v.Advance(time.Second)
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Fatalf("waiter %d not released", i)
		}
	}
	if v.Waiters() != 0 {
		t.Fatalf("Waiters() = %d after releasing all", v.Waiters())
	}
}
