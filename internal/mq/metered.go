package mq

import (
	"sync"
	"sync/atomic"

	"stacksync/internal/obs"
)

// MeteredMQ wraps an MQ and accounts the payload bytes that cross it in each
// direction. The protocol-overhead experiments (Fig. 7b,c; Table 2) wrap a
// client's MQ connection with it and read the counters as "control traffic":
// everything the sync protocol exchanges that is not chunk data.
type MeteredMQ struct {
	inner MQ

	bytesUp   atomic.Uint64
	bytesDown atomic.Uint64
	msgsUp    atomic.Uint64
	msgsDown  atomic.Uint64

	mu   sync.Mutex
	subs []*meteredSub
}

var _ MQ = (*MeteredMQ)(nil)

// MQTraffic is a snapshot of metered message traffic.
type MQTraffic struct {
	BytesUp   uint64 `json:"bytesUp"`
	BytesDown uint64 `json:"bytesDown"`
	MsgsUp    uint64 `json:"msgsUp"`
	MsgsDown  uint64 `json:"msgsDown"`
}

// Total returns bytes moved in both directions.
func (t MQTraffic) Total() uint64 { return t.BytesUp + t.BytesDown }

// envelopeOverhead approximates the per-message wire cost beyond the body
// that a network capture of the paper's deployment would include: AMQP frame
// + method headers, the acknowledgement round trip, and TCP/TLS record
// framing. 350 bytes/message reproduces the per-operation control saving the
// paper measures when bundling amortizes messages (Table 2: StackSync
// 2.14 MB → 1.25 MB across batch sizes 5 → 40).
const envelopeOverhead = 350

// NewMeteredMQ wraps inner.
func NewMeteredMQ(inner MQ) *MeteredMQ { return &MeteredMQ{inner: inner} }

// Traffic returns the counters.
func (m *MeteredMQ) Traffic() MQTraffic {
	return MQTraffic{
		BytesUp:   m.bytesUp.Load(),
		BytesDown: m.bytesDown.Load(),
		MsgsUp:    m.msgsUp.Load(),
		MsgsDown:  m.msgsDown.Load(),
	}
}

// Reset zeroes the counters.
func (m *MeteredMQ) Reset() {
	m.bytesUp.Store(0)
	m.bytesDown.Store(0)
	m.msgsUp.Store(0)
	m.msgsDown.Store(0)
}

// Register exposes the traffic counters as lazily read gauges on reg
// (mq_bytes_up/mq_bytes_down/mq_msgs_up/mq_msgs_down), tagged with the given
// label pairs — typically "link", "<device>". Gauges rather than counters
// because Reset (used between experiment phases) may rewind them.
func (m *MeteredMQ) Register(reg *obs.Registry, labels ...string) {
	reg.GaugeFunc("mq_bytes_up", func() float64 { return float64(m.bytesUp.Load()) }, labels...)
	reg.GaugeFunc("mq_bytes_down", func() float64 { return float64(m.bytesDown.Load()) }, labels...)
	reg.GaugeFunc("mq_msgs_up", func() float64 { return float64(m.msgsUp.Load()) }, labels...)
	reg.GaugeFunc("mq_msgs_down", func() float64 { return float64(m.msgsDown.Load()) }, labels...)
}

// DeclareQueue forwards.
func (m *MeteredMQ) DeclareQueue(name string) error { return m.inner.DeclareQueue(name) }

// DeleteQueue forwards.
func (m *MeteredMQ) DeleteQueue(name string) error { return m.inner.DeleteQueue(name) }

// DeclareExchange forwards.
func (m *MeteredMQ) DeclareExchange(name string, kind ExchangeKind) error {
	return m.inner.DeclareExchange(name, kind)
}

// BindQueue forwards.
func (m *MeteredMQ) BindQueue(queue, exchange, key string) error {
	return m.inner.BindQueue(queue, exchange, key)
}

// UnbindQueue forwards.
func (m *MeteredMQ) UnbindQueue(queue, exchange, key string) error {
	return m.inner.UnbindQueue(queue, exchange, key)
}

// Publish counts outbound bytes then forwards.
func (m *MeteredMQ) Publish(exchange, key string, msg Message) error {
	if err := m.inner.Publish(exchange, key, msg); err != nil {
		return err
	}
	m.msgsUp.Add(1)
	m.bytesUp.Add(uint64(len(msg.Body)) + envelopeOverhead)
	return nil
}

// Subscribe wraps the subscription so deliveries count as inbound bytes.
func (m *MeteredMQ) Subscribe(queue string, prefetch int) (Subscription, error) {
	inner, err := m.inner.Subscribe(queue, prefetch)
	if err != nil {
		return nil, err
	}
	ms := &meteredSub{
		m:     m,
		inner: inner,
		ch:    make(chan Delivery, prefetch),
	}
	go ms.pump()
	m.mu.Lock()
	m.subs = append(m.subs, ms)
	m.mu.Unlock()
	return ms, nil
}

// QueueStats forwards.
func (m *MeteredMQ) QueueStats(name string) (QueueStats, error) { return m.inner.QueueStats(name) }

// Close forwards.
func (m *MeteredMQ) Close() error { return m.inner.Close() }

type meteredSub struct {
	m     *MeteredMQ
	inner Subscription
	ch    chan Delivery
}

var _ Subscription = (*meteredSub)(nil)

func (s *meteredSub) pump() {
	for d := range s.inner.Deliveries() {
		s.m.msgsDown.Add(1)
		s.m.bytesDown.Add(uint64(len(d.Body)) + envelopeOverhead)
		s.ch <- d
	}
	close(s.ch)
}

func (s *meteredSub) Deliveries() <-chan Delivery { return s.ch }

func (s *meteredSub) Cancel() error { return s.inner.Cancel() }
