package mq

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestAtLeastOnceUnderChaos is a model-based test of the broker's central
// guarantee (§3.4: "no remote invocations can be lost"): a fleet of
// consumers randomly acks, requeues, or dies mid-stream, and every published
// message must still be acked exactly once in the end, with redeliveries
// fully accounted for.
func TestAtLeastOnceUnderChaos(t *testing.T) {
	const (
		seeds     = 5
		messages  = 300
		consumers = 4
	)
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			b := NewBroker()
			defer b.Close()
			mustDeclare(t, b, "chaos")

			var mu sync.Mutex
			acked := make(map[string]int, messages)
			var wg sync.WaitGroup

			// Consumer behaviour: ack 70%, requeue 15%, drop-consumer 15%.
			consume := func(r *rand.Rand) {
				defer wg.Done()
				for {
					sub, err := b.Subscribe("chaos", 1+r.Intn(3))
					if err != nil {
						return
					}
					alive := true
					for alive {
						d, ok := <-sub.Deliveries()
						if !ok {
							return
						}
						switch x := r.Float64(); {
						case x < 0.70:
							if err := d.Ack(); err == nil {
								mu.Lock()
								acked[d.Message.ID]++
								mu.Unlock()
							}
						case x < 0.85:
							_ = d.Nack(true)
						default:
							// Die without settling: cancel requeues the
							// unacked delivery; then reincarnate.
							_ = sub.Cancel()
							alive = false
						}
					}
				}
			}
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go consume(rand.New(rand.NewSource(seed*100 + int64(c))))
			}

			for i := 0; i < messages; i++ {
				if err := b.Publish("", "chaos", Message{ID: fmt.Sprintf("m-%d-%d", seed, i)}); err != nil {
					t.Fatal(err)
				}
			}

			// Every message must eventually be acked exactly once.
			deadline := time.Now().Add(20 * time.Second)
			for {
				mu.Lock()
				done := len(acked) == messages
				mu.Unlock()
				if done {
					break
				}
				if time.Now().After(deadline) {
					mu.Lock()
					t.Fatalf("only %d/%d messages acked", len(acked), messages)
				}
				time.Sleep(time.Millisecond)
			}
			mu.Lock()
			for id, n := range acked {
				if n != 1 {
					t.Fatalf("message %s acked %d times", id, n)
				}
			}
			mu.Unlock()

			stats, err := b.QueueStats("chaos")
			if err != nil {
				t.Fatal(err)
			}
			if stats.Acked != messages {
				t.Fatalf("broker acked counter = %d, want %d", stats.Acked, messages)
			}
			// Close the broker so remaining consumer goroutines drain.
			_ = b.Close()
			wg.Wait()
			if stats.Depth != 0 {
				t.Fatalf("queue depth %d after full consumption", stats.Depth)
			}
		})
	}
}

// TestRedeliveryCountsMonotonic checks that the broker's redelivery counter
// only grows and reflects actual requeues.
func TestRedeliveryCountsMonotonic(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	sub, _ := b.Subscribe("q", 1)
	_ = b.Publish("", "q", Message{Body: []byte("x")})

	const bounces = 7
	for i := 0; i < bounces; i++ {
		d := recvDelivery(t, sub)
		if d.Redelivered != i {
			t.Fatalf("attempt %d has redelivered=%d", i, d.Redelivered)
		}
		if i < bounces-1 {
			_ = d.Nack(true)
		} else {
			_ = d.Ack()
		}
	}
	stats, _ := b.QueueStats("q")
	if stats.Redelivered != bounces-1 {
		t.Fatalf("redelivered counter = %d, want %d", stats.Redelivered, bounces-1)
	}
}
