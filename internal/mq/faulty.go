package mq

import (
	"stacksync/internal/clock"
	"stacksync/internal/faults"
)

// Faulty wraps an MQ with deterministic publish-side fault injection (the
// metered.go pattern applied to chaos): messages can be dropped, duplicated
// or delayed per the plan's decision stream, and scheduled outage windows
// silently discard everything published through this handle — the partition
// model (the broker is unreachable; redelivery and sender retry must cover).
//
// Only Publish is perturbed. Consumption stays faithful so the broker's
// ack/redelivery invariants (§3.4) remain those of the wrapped MQ.
type Faulty struct {
	inner MQ
	plan  *faults.Plan
	site  string
	clk   clock.Clock
	keys  faults.Keyer
}

var _ MQ = (*Faulty)(nil)

// NewFaulty wraps inner with fault injection at the named plan site.
func NewFaulty(inner MQ, plan *faults.Plan, site string, clk clock.Clock) *Faulty {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Faulty{inner: inner, plan: plan, site: site, clk: clk}
}

// Publish consults the plan, then forwards zero, one or two copies.
func (f *Faulty) Publish(exchange, key string, msg Message) error {
	now := f.clk.Now()
	if f.plan.InOutage(f.site, now) {
		f.plan.Note(f.site, "outage", faults.Outage, now)
		return nil // partitioned: the message never reaches the broker
	}
	k := f.keys.Next()
	switch d := f.plan.Decide(f.site, k); d.Kind {
	case faults.Drop:
		f.plan.Note(f.site, k, faults.Drop, now)
		return nil
	case faults.Duplicate:
		f.plan.Note(f.site, k, faults.Duplicate, now)
		if err := f.inner.Publish(exchange, key, msg); err != nil {
			return err
		}
		// The duplicate must carry a fresh broker-assigned id, as a network
		// retransmission would.
		dup := msg
		dup.ID = ""
		return f.inner.Publish(exchange, key, dup)
	case faults.Delay:
		f.plan.Note(f.site, k, faults.Delay, now)
		f.clk.Sleep(d.Delay)
		return f.inner.Publish(exchange, key, msg)
	default:
		return f.inner.Publish(exchange, key, msg)
	}
}

// DeclareQueue forwards.
func (f *Faulty) DeclareQueue(name string) error { return f.inner.DeclareQueue(name) }

// DeleteQueue forwards.
func (f *Faulty) DeleteQueue(name string) error { return f.inner.DeleteQueue(name) }

// DeclareExchange forwards.
func (f *Faulty) DeclareExchange(name string, kind ExchangeKind) error {
	return f.inner.DeclareExchange(name, kind)
}

// BindQueue forwards.
func (f *Faulty) BindQueue(queue, exchange, key string) error {
	return f.inner.BindQueue(queue, exchange, key)
}

// UnbindQueue forwards.
func (f *Faulty) UnbindQueue(queue, exchange, key string) error {
	return f.inner.UnbindQueue(queue, exchange, key)
}

// Subscribe forwards; deliveries are not perturbed.
func (f *Faulty) Subscribe(queue string, prefetch int) (Subscription, error) {
	return f.inner.Subscribe(queue, prefetch)
}

// QueueStats forwards.
func (f *Faulty) QueueStats(name string) (QueueStats, error) { return f.inner.QueueStats(name) }

// Close forwards.
func (f *Faulty) Close() error { return f.inner.Close() }
