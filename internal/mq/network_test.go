package mq

import (
	"errors"
	"stacksync/internal/obs"
	"testing"
	"time"
)

// newNetworkPair starts a broker + server and returns a connected client.
func newNetworkPair(t *testing.T) (*Broker, *Server, *Client) {
	t.Helper()
	b := NewBroker()
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cli.Close()
		_ = srv.Close()
		_ = b.Close()
	})
	return b, srv, cli
}

func TestNetworkDeclarePublishConsume(t *testing.T) {
	_, _, cli := newNetworkPair(t)
	if err := cli.DeclareQueue("q"); err != nil {
		t.Fatal(err)
	}
	sub, err := cli.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Publish("", "q", Message{Body: []byte("over the wire")}); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, sub)
	if string(d.Body) != "over the wire" {
		t.Fatalf("got %q", d.Body)
	}
	if err := d.Ack(); err != nil {
		t.Fatal(err)
	}
	stats, err := cli.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Acked != 1 {
		t.Fatalf("remote stats: %+v", stats)
	}
}

func TestNetworkErrorsMapToSentinels(t *testing.T) {
	_, _, cli := newNetworkPair(t)
	if err := cli.Publish("", "ghost", Message{}); !errors.Is(err, ErrQueueNotFound) {
		t.Fatalf("want ErrQueueNotFound across the wire, got %v", err)
	}
	if _, err := cli.QueueStats("ghost"); !errors.Is(err, ErrQueueNotFound) {
		t.Fatalf("stats: want ErrQueueNotFound, got %v", err)
	}
	if err := cli.DeclareExchange("ex", Direct); err != nil {
		t.Fatal(err)
	}
	if err := cli.DeclareExchange("ex", Fanout); !errors.Is(err, ErrExchangeExists) {
		t.Fatalf("want ErrExchangeExists, got %v", err)
	}
}

func TestNetworkFanoutAcrossClients(t *testing.T) {
	_, srv, cli1 := newNetworkPair(t)
	cli2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()

	if err := cli1.DeclareExchange("ws", Fanout); err != nil {
		t.Fatal(err)
	}
	for i, cli := range []*Client{cli1, cli2} {
		q := []string{"dev1", "dev2"}[i]
		if err := cli.DeclareQueue(q); err != nil {
			t.Fatal(err)
		}
		if err := cli.BindQueue(q, "ws", ""); err != nil {
			t.Fatal(err)
		}
	}
	sub1, _ := cli1.Subscribe("dev1", 1)
	sub2, _ := cli2.Subscribe("dev2", 1)
	if err := cli1.Publish("ws", "", Message{Body: []byte("commit notification")}); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []Subscription{sub1, sub2} {
		d := recvDelivery(t, sub)
		if string(d.Body) != "commit notification" {
			t.Fatalf("got %q", d.Body)
		}
		_ = d.Ack()
	}
}

func TestNetworkClientDisconnectRequeuesUnacked(t *testing.T) {
	_, srv, cli1 := newNetworkPair(t)
	if err := cli1.DeclareQueue("q"); err != nil {
		t.Fatal(err)
	}
	cli2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := cli2.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli1.Publish("", "q", Message{Body: []byte("survive crash")}); err != nil {
		t.Fatal(err)
	}
	// cli2 receives but never acks, then its connection dies.
	recvDelivery(t, sub2)
	if err := cli2.Close(); err != nil {
		t.Fatal(err)
	}
	// The message must come back for a healthy consumer.
	sub1, err := cli1.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, sub1)
	if string(d.Body) != "survive crash" || d.Redelivered != 1 {
		t.Fatalf("redelivery after disconnect: body=%q redelivered=%d", d.Body, d.Redelivered)
	}
	_ = d.Ack()
}

func TestNetworkCancelStopsDeliveries(t *testing.T) {
	_, _, cli := newNetworkPair(t)
	if err := cli.DeclareQueue("q"); err != nil {
		t.Fatal(err)
	}
	sub, err := cli.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Publish("", "q", Message{Body: []byte("after cancel")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Deliveries(); ok {
		t.Fatal("delivery after cancel")
	}
	stats, err := cli.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Depth != 1 {
		t.Fatalf("message should stay queued, depth %d", stats.Depth)
	}
}

func TestNetworkPing(t *testing.T) {
	_, _, cli := newNetworkPair(t)
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkServerCloseFailsClients(t *testing.T) {
	_, srv, cli := newNetworkPair(t)
	if err := cli.DeclareQueue("q"); err != nil {
		t.Fatal(err)
	}
	sub, err := cli.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.Deliveries():
		if ok {
			t.Fatal("unexpected delivery on dead server")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery channel not closed after server shutdown")
	}
	if err := cli.DeclareQueue("r"); err == nil {
		t.Fatal("request on dead connection succeeded")
	}
}

func TestNetworkHighThroughputManyConsumers(t *testing.T) {
	_, srv, producer := newNetworkPair(t)
	if err := producer.DeclareQueue("work"); err != nil {
		t.Fatal(err)
	}
	const consumers = 3
	const total = 300
	received := make(chan struct{}, total)
	for i := 0; i < consumers; i++ {
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		sub, err := cli.Subscribe("work", 4)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for d := range sub.Deliveries() {
				_ = d.Ack()
				received <- struct{}{}
			}
		}()
	}
	for i := 0; i < total; i++ {
		if err := producer.Publish("", "work", Message{Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		select {
		case <-received:
		case <-time.After(10 * time.Second):
			t.Fatalf("stalled after %d/%d", i, total)
		}
	}
}

// TestNetworkTraceHeadersSurvive: the obs trace headers the messaging
// middleware injects must cross the TCP frame codec intact, so a trace that
// starts on one side of a real network hop continues on the other.
func TestNetworkTraceHeadersSurvive(t *testing.T) {
	_, _, cli := newNetworkPair(t)
	if err := cli.DeclareQueue("q"); err != nil {
		t.Fatal(err)
	}
	sub, err := cli.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	headers := make(map[string]string)
	obs.TraceContext{TraceID: "trace-42", SpanID: "span-7"}.Inject(headers)
	headers[obs.HeaderPublishNanos] = "123456789"
	if err := cli.Publish("", "q", Message{Body: []byte("x"), Headers: headers}); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, sub)
	tc, ok := obs.ExtractTraceContext(d.Headers)
	if !ok || tc.TraceID != "trace-42" || tc.SpanID != "span-7" {
		t.Fatalf("trace context after round trip = %+v ok=%v", tc, ok)
	}
	if got := d.Headers[obs.HeaderPublishNanos]; got != "123456789" {
		t.Fatalf("publish timestamp header = %q", got)
	}
	if err := d.Ack(); err != nil {
		t.Fatal(err)
	}
}
