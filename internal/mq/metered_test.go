package mq

import (
	"testing"
	"time"

	"stacksync/internal/obs"
)

// TestMeteredMQAccounting pins the byte and message accounting of MeteredMQ:
// each publish counts body + envelope overhead upward, each delivery counts
// body + envelope overhead downward, and settlement (ack/nack) changes
// nothing — the meter models wire traffic, not queue state.
func TestMeteredMQAccounting(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	m := NewMeteredMQ(b)
	if err := m.DeclareQueue("q"); err != nil {
		t.Fatal(err)
	}

	bodies := []string{"alpha", "a much longer message body for the meter", ""}
	var wantUp uint64
	for _, body := range bodies {
		if err := m.Publish("", "q", Message{Body: []byte(body)}); err != nil {
			t.Fatal(err)
		}
		wantUp += uint64(len(body)) + envelopeOverhead
	}
	tr := m.Traffic()
	if tr.MsgsUp != uint64(len(bodies)) || tr.BytesUp != wantUp {
		t.Fatalf("up traffic = %d msgs / %d bytes, want %d / %d",
			tr.MsgsUp, tr.BytesUp, len(bodies), wantUp)
	}
	if tr.MsgsDown != 0 || tr.BytesDown != 0 {
		t.Fatalf("down traffic before any subscription: %+v", tr)
	}

	sub, err := m.Subscribe("q", 10)
	if err != nil {
		t.Fatal(err)
	}
	var wantDown uint64
	for i := range bodies {
		select {
		case d := <-sub.Deliveries():
			wantDown += uint64(len(d.Body)) + envelopeOverhead
			// Ack two, nack-drop one: settlement must not touch the meter.
			if i == 1 {
				_ = d.Nack(false)
			} else {
				_ = d.Ack()
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("delivery %d never arrived", i)
		}
	}
	tr = m.Traffic()
	if tr.MsgsDown != uint64(len(bodies)) || tr.BytesDown != wantDown {
		t.Fatalf("down traffic = %d msgs / %d bytes, want %d / %d",
			tr.MsgsDown, tr.BytesDown, len(bodies), wantDown)
	}
	if tr.BytesUp != wantUp {
		t.Fatalf("settlement changed up traffic: %d != %d", tr.BytesUp, wantUp)
	}
	if got, want := tr.Total(), wantUp+wantDown; got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}

	m.Reset()
	if tr = m.Traffic(); tr != (MQTraffic{}) {
		t.Fatalf("traffic after reset: %+v", tr)
	}
	if err := sub.Cancel(); err != nil {
		t.Fatal(err)
	}
}

// TestMeteredMQFailedPublishNotCounted: a publish the broker rejects must not
// inflate the meter.
func TestMeteredMQFailedPublishNotCounted(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	m := NewMeteredMQ(b)
	if err := m.Publish("no-such-exchange", "k", Message{Body: []byte("x")}); err == nil {
		t.Fatal("publish to undeclared exchange succeeded")
	}
	if tr := m.Traffic(); tr.MsgsUp != 0 || tr.BytesUp != 0 {
		t.Fatalf("failed publish was metered: %+v", tr)
	}
}

// TestMeteredMQRegister: the registry gauges read the live counters and
// follow Reset.
func TestMeteredMQRegister(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	m := NewMeteredMQ(b)
	if err := m.DeclareQueue("q"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.Register(reg, "link", "dev-0")

	if err := m.Publish("", "q", Message{Body: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	up, ok := reg.GaugeValue("mq_bytes_up", "link", "dev-0")
	if !ok || up != float64(5+envelopeOverhead) {
		t.Fatalf("mq_bytes_up = %v ok=%v, want %d", up, ok, 5+envelopeOverhead)
	}
	if msgs, _ := reg.GaugeValue("mq_msgs_up", "link", "dev-0"); msgs != 1 {
		t.Fatalf("mq_msgs_up = %v, want 1", msgs)
	}
	m.Reset()
	if up, _ = reg.GaugeValue("mq_bytes_up", "link", "dev-0"); up != 0 {
		t.Fatalf("mq_bytes_up after reset = %v", up)
	}
}
