package mq

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"stacksync/internal/clock"
)

func mustDeclare(t *testing.T, b MQ, queues ...string) {
	t.Helper()
	for _, q := range queues {
		if err := b.DeclareQueue(q); err != nil {
			t.Fatalf("DeclareQueue(%q): %v", q, err)
		}
	}
}

func recvDelivery(t *testing.T, sub Subscription) Delivery {
	t.Helper()
	select {
	case d, ok := <-sub.Deliveries():
		if !ok {
			t.Fatal("delivery channel closed")
		}
		return d
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
	panic("unreachable")
}

func expectNoDelivery(t *testing.T, sub Subscription, wait time.Duration) {
	t.Helper()
	select {
	case d, ok := <-sub.Deliveries():
		if ok {
			t.Fatalf("unexpected delivery %q", d.Body)
		}
	case <-time.After(wait):
	}
}

func TestPublishToUndeclaredQueueFails(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	err := b.Publish("", "nope", Message{Body: []byte("x")})
	if !errors.Is(err, ErrQueueNotFound) {
		t.Fatalf("expected ErrQueueNotFound, got %v", err)
	}
}

func TestBasicPublishConsumeAck(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	sub, err := b.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("", "q", Message{Body: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, sub)
	if string(d.Body) != "hello" {
		t.Fatalf("got body %q", d.Body)
	}
	if d.Redelivered != 0 {
		t.Fatalf("fresh delivery marked redelivered %d", d.Redelivered)
	}
	if err := d.Ack(); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	stats, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Acked != 1 || stats.Depth != 0 || stats.Unacked != 0 {
		t.Fatalf("stats after ack: %+v", stats)
	}
}

func TestDoubleSettleFails(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	sub, _ := b.Subscribe("q", 1)
	_ = b.Publish("", "q", Message{Body: []byte("x")})
	d := recvDelivery(t, sub)
	if err := d.Ack(); err != nil {
		t.Fatal(err)
	}
	if err := d.Ack(); !errors.Is(err, ErrAlreadySettled) {
		t.Fatalf("second Ack: got %v, want ErrAlreadySettled", err)
	}
	if err := d.Nack(true); !errors.Is(err, ErrAlreadySettled) {
		t.Fatalf("Nack after Ack: got %v, want ErrAlreadySettled", err)
	}
}

func TestPrefetchLimitsInflight(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	sub, _ := b.Subscribe("q", 2)
	for i := 0; i < 5; i++ {
		_ = b.Publish("", "q", Message{Body: []byte{byte(i)}})
	}
	d1 := recvDelivery(t, sub)
	d2 := recvDelivery(t, sub)
	expectNoDelivery(t, sub, 50*time.Millisecond)
	stats, _ := b.QueueStats("q")
	if stats.Unacked != 2 || stats.Depth != 3 {
		t.Fatalf("stats with prefetch 2: %+v", stats)
	}
	_ = d1.Ack()
	d3 := recvDelivery(t, sub)
	if d3.Body[0] != 2 {
		t.Fatalf("expected message 2 next, got %d", d3.Body[0])
	}
	_ = d2.Ack()
	_ = d3.Ack()
}

func TestRoundRobinAcrossConsumers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	subA, _ := b.Subscribe("q", 10)
	subB, _ := b.Subscribe("q", 10)
	for i := 0; i < 10; i++ {
		_ = b.Publish("", "q", Message{Body: []byte{byte(i)}})
	}
	countA, countB := 0, 0
	for i := 0; i < 5; i++ {
		da := recvDelivery(t, subA)
		db := recvDelivery(t, subB)
		countA++
		countB++
		_ = da.Ack()
		_ = db.Ack()
	}
	if countA != 5 || countB != 5 {
		t.Fatalf("round robin split %d/%d, want 5/5", countA, countB)
	}
}

func TestNackRequeueRedelivers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	sub, _ := b.Subscribe("q", 1)
	_ = b.Publish("", "q", Message{Body: []byte("retry me")})
	d := recvDelivery(t, sub)
	if err := d.Nack(true); err != nil {
		t.Fatal(err)
	}
	d2 := recvDelivery(t, sub)
	if string(d2.Body) != "retry me" || d2.Redelivered != 1 {
		t.Fatalf("redelivery: body=%q redelivered=%d", d2.Body, d2.Redelivered)
	}
	_ = d2.Ack()
}

func TestNackDropDiscards(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	sub, _ := b.Subscribe("q", 1)
	_ = b.Publish("", "q", Message{Body: []byte("drop me")})
	d := recvDelivery(t, sub)
	if err := d.Nack(false); err != nil {
		t.Fatal(err)
	}
	expectNoDelivery(t, sub, 50*time.Millisecond)
	stats, _ := b.QueueStats("q")
	if stats.Depth != 0 || stats.Unacked != 0 {
		t.Fatalf("dropped message still tracked: %+v", stats)
	}
}

func TestCancelRequeuesUnackedInOrder(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	subA, _ := b.Subscribe("q", 3)
	for i := 0; i < 3; i++ {
		_ = b.Publish("", "q", Message{Body: []byte{byte(i)}})
	}
	// Drain into A without acking, then kill A: messages must go back in
	// order for B (the §3.4 crash-redelivery property).
	for i := 0; i < 3; i++ {
		recvDelivery(t, subA)
	}
	if err := subA.Cancel(); err != nil {
		t.Fatal(err)
	}
	subB, _ := b.Subscribe("q", 3)
	for i := 0; i < 3; i++ {
		d := recvDelivery(t, subB)
		if int(d.Body[0]) != i {
			t.Fatalf("redelivery out of order: got %d at position %d", d.Body[0], i)
		}
		if d.Redelivered != 1 {
			t.Fatalf("expected redelivered=1, got %d", d.Redelivered)
		}
		_ = d.Ack()
	}
}

func TestCancelClosesChannel(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	sub, _ := b.Subscribe("q", 1)
	if err := sub.Cancel(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Deliveries(); ok {
		t.Fatal("channel still open after cancel")
	}
	if err := sub.Cancel(); err != nil {
		t.Fatalf("second Cancel should be a no-op, got %v", err)
	}
}

func TestFanoutExchangeCopiesToAllQueues(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q1", "q2", "q3")
	if err := b.DeclareExchange("ws", Fanout); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"q1", "q2", "q3"} {
		if err := b.BindQueue(q, "ws", "ignored-key"); err != nil {
			t.Fatal(err)
		}
	}
	subs := make([]Subscription, 3)
	for i, q := range []string{"q1", "q2", "q3"} {
		s, err := b.Subscribe(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	if err := b.Publish("ws", "any", Message{Body: []byte("notify")}); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		d := recvDelivery(t, s)
		if string(d.Body) != "notify" {
			t.Fatalf("queue %d got %q", i, d.Body)
		}
		_ = d.Ack()
	}
}

func TestDirectExchangeRoutesByKey(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "alpha", "beta")
	if err := b.DeclareExchange("ex", Direct); err != nil {
		t.Fatal(err)
	}
	_ = b.BindQueue("alpha", "ex", "a")
	_ = b.BindQueue("beta", "ex", "b")
	subA, _ := b.Subscribe("alpha", 1)
	subB, _ := b.Subscribe("beta", 1)
	_ = b.Publish("ex", "a", Message{Body: []byte("for-a")})
	d := recvDelivery(t, subA)
	if string(d.Body) != "for-a" {
		t.Fatalf("alpha got %q", d.Body)
	}
	_ = d.Ack()
	expectNoDelivery(t, subB, 50*time.Millisecond)
	// Unrouted key is silently dropped (AMQP default-exchange semantics
	// differ; direct exchanges drop unroutable messages).
	if err := b.Publish("ex", "zzz", Message{Body: []byte("lost")}); err != nil {
		t.Fatalf("publish with unbound key: %v", err)
	}
}

func TestUnbindStopsDelivery(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	_ = b.DeclareExchange("ws", Fanout)
	_ = b.BindQueue("q", "ws", "")
	sub, _ := b.Subscribe("q", 1)
	_ = b.Publish("ws", "", Message{Body: []byte("one")})
	d := recvDelivery(t, sub)
	_ = d.Ack()
	if err := b.UnbindQueue("q", "ws", ""); err != nil {
		t.Fatal(err)
	}
	_ = b.Publish("ws", "", Message{Body: []byte("two")})
	expectNoDelivery(t, sub, 50*time.Millisecond)
}

func TestExchangeRedeclareKindMismatch(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	if err := b.DeclareExchange("ex", Direct); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareExchange("ex", Direct); err != nil {
		t.Fatalf("same-kind redeclare should be no-op, got %v", err)
	}
	if err := b.DeclareExchange("ex", Fanout); !errors.Is(err, ErrExchangeExists) {
		t.Fatalf("kind mismatch: got %v", err)
	}
}

func TestDeleteQueueDropsBindingsAndConsumers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	_ = b.DeclareExchange("ws", Fanout)
	_ = b.BindQueue("q", "ws", "")
	sub, _ := b.Subscribe("q", 1)
	if err := b.DeleteQueue("q"); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Deliveries(); ok {
		t.Fatal("consumer channel open after queue delete")
	}
	if err := b.Publish("ws", "", Message{Body: []byte("x")}); err != nil {
		t.Fatalf("fanout publish after queue delete should drop silently: %v", err)
	}
	if _, err := b.QueueStats("q"); !errors.Is(err, ErrQueueNotFound) {
		t.Fatalf("stats for deleted queue: %v", err)
	}
}

func TestSubscribeBadPrefetch(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	if _, err := b.Subscribe("q", 0); !errors.Is(err, ErrBadPrefetch) {
		t.Fatalf("prefetch 0: %v", err)
	}
	if _, err := b.Subscribe("q", -1); !errors.Is(err, ErrBadPrefetch) {
		t.Fatalf("prefetch -1: %v", err)
	}
}

func TestCloseRejectsFurtherOps(t *testing.T) {
	b := NewBroker()
	mustDeclare(t, b, "q")
	sub, _ := b.Subscribe("q", 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Deliveries(); ok {
		t.Fatal("consumer channel open after broker close")
	}
	if err := b.Publish("", "q", Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish after close: %v", err)
	}
	if err := b.DeclareQueue("r"); !errors.Is(err, ErrClosed) {
		t.Fatalf("declare after close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestArrivalRateWithVirtualClock(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(1_000_000, 0))
	b := NewBroker(WithClock(vc))
	defer b.Close()
	mustDeclare(t, b, "q")
	// 120 messages over 60 virtual seconds = 2 msg/s.
	for i := 0; i < 60; i++ {
		_ = b.Publish("", "q", Message{})
		_ = b.Publish("", "q", Message{})
		vc.Advance(time.Second)
	}
	stats, err := b.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.ArrivalRate < 1.5 || stats.ArrivalRate > 2.5 {
		t.Fatalf("arrival rate = %.2f, want ~2.0", stats.ArrivalRate)
	}
}

func TestMessageIDAssignedWhenEmpty(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "q")
	sub, _ := b.Subscribe("q", 2)
	_ = b.Publish("", "q", Message{Body: []byte("a")})
	_ = b.Publish("", "q", Message{ID: "custom", Body: []byte("b")})
	d1 := recvDelivery(t, sub)
	d2 := recvDelivery(t, sub)
	if d1.Message.ID == "" {
		t.Fatal("broker did not assign a message ID")
	}
	if d2.Message.ID != "custom" {
		t.Fatalf("custom ID overwritten: %q", d2.Message.ID)
	}
	_ = d1.Ack()
	_ = d2.Ack()
}

func TestManyProducersManyConsumers(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	mustDeclare(t, b, "work")
	const (
		producers = 8
		consumers = 4
		perProd   = 50
	)
	total := producers * perProd
	received := make(chan string, total)
	subs := make([]Subscription, consumers)
	for i := range subs {
		sub, err := b.Subscribe("work", 1)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
		go func(s Subscription) {
			for d := range s.Deliveries() {
				received <- string(d.Body)
				_ = d.Ack()
			}
		}(sub)
	}
	for p := 0; p < producers; p++ {
		go func(p int) {
			for i := 0; i < perProd; i++ {
				_ = b.Publish("", "work", Message{Body: []byte(fmt.Sprintf("p%d-%d", p, i))})
			}
		}(p)
	}
	seen := make(map[string]bool, total)
	for i := 0; i < total; i++ {
		select {
		case msg := <-received:
			if seen[msg] {
				t.Fatalf("duplicate delivery %q", msg)
			}
			seen[msg] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %d/%d messages", i, total)
		}
	}
	for _, sub := range subs {
		_ = sub.Cancel()
	}
}
