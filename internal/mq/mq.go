// Package mq implements the messaging substrate the paper deploys as
// RabbitMQ 2.8.7: named queues with competing consumers, direct and fanout
// exchanges, explicit acknowledgements with redelivery, per-consumer
// prefetch, round-robin load balancing and optional write-ahead persistence.
//
// Two implementations satisfy the MQ interface: Broker (in-process) and
// Client (over TCP, speaking the wire protocol to a Server wrapping a
// Broker). ObjectMQ is written against MQ and works with either.
package mq

import (
	"errors"
	"time"
)

// ExchangeKind selects the routing discipline of an exchange.
type ExchangeKind int

const (
	// Direct routes a message to the queues bound with a key equal to the
	// routing key of the publication.
	Direct ExchangeKind = iota + 1
	// Fanout copies every message to all bound queues, ignoring keys. This
	// is the AMQP fanout exchange the paper uses for @MultiMethod.
	Fanout
)

// String returns the AMQP-style name of the kind.
func (k ExchangeKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Fanout:
		return "fanout"
	default:
		return "unknown"
	}
}

// ParseExchangeKind converts a wire-level kind name back to an ExchangeKind.
func ParseExchangeKind(s string) (ExchangeKind, error) {
	switch s {
	case "direct":
		return Direct, nil
	case "fanout":
		return Fanout, nil
	default:
		return 0, errors.New("mq: unknown exchange kind " + s)
	}
}

// Message is the unit published to the broker. Body is opaque to mq.
type Message struct {
	// ID identifies the message for correlation and journalling. Publish
	// assigns one when empty.
	ID string
	// Headers carry middleware metadata (codec, reply queue, method name).
	Headers map[string]string
	// Body is the serialized payload.
	Body []byte
	// Persistent messages survive broker restart when journalling is on.
	Persistent bool
}

// Delivery is a message handed to a consumer. The consumer must call exactly
// one of Ack or Nack; unacknowledged deliveries are requeued when the
// consumer is cancelled or its connection dies, which is the property §3.4
// relies on for fault tolerance ("no remote invocations can be lost").
type Delivery struct {
	Message
	// Queue is the queue the message was consumed from.
	Queue string
	// Tag uniquely identifies this delivery at the broker.
	Tag uint64
	// Redelivered counts prior delivery attempts of this message.
	Redelivered int

	settle func(ack, requeue bool) error
}

// Ack confirms successful processing; the broker forgets the message.
func (d *Delivery) Ack() error { return d.settleOnce(true, false) }

// Nack reports failed processing. With requeue the message returns to the
// front of its queue for another consumer; without, it is dropped.
func (d *Delivery) Nack(requeue bool) error { return d.settleOnce(false, requeue) }

func (d *Delivery) settleOnce(ack, requeue bool) error {
	if d.settle == nil {
		return ErrAlreadySettled
	}
	f := d.settle
	d.settle = nil
	return f(ack, requeue)
}

// QueueStats is the introspection snapshot ObjectMQ provisioners consume
// (§3.3: "adapt to message processing time in queues").
type QueueStats struct {
	Name        string  `json:"name"`
	Depth       int     `json:"depth"`       // messages waiting
	Unacked     int     `json:"unacked"`     // delivered, not yet settled
	Consumers   int     `json:"consumers"`   // active consumers
	Enqueued    uint64  `json:"enqueued"`    // lifetime publish count
	Acked       uint64  `json:"acked"`       // lifetime ack count
	Redelivered uint64  `json:"redelivered"` // lifetime redelivery count
	ArrivalRate float64 `json:"arrivalRate"` // msgs/sec over the rate window
}

// Subscription is a live consumer registration on a queue.
type Subscription interface {
	// Deliveries streams messages. The channel closes after Cancel or when
	// the broker shuts down.
	Deliveries() <-chan Delivery
	// Cancel unregisters the consumer and requeues its unacked deliveries.
	Cancel() error
}

// MQ is the broker surface ObjectMQ programs against; satisfied by the
// in-process Broker and by the TCP Client.
type MQ interface {
	DeclareQueue(name string) error
	DeleteQueue(name string) error
	DeclareExchange(name string, kind ExchangeKind) error
	BindQueue(queue, exchange, key string) error
	UnbindQueue(queue, exchange, key string) error
	Publish(exchange, key string, msg Message) error
	Subscribe(queue string, prefetch int) (Subscription, error)
	QueueStats(name string) (QueueStats, error)
	Close() error
}

// Publication is one routed message in a batch publish.
type Publication struct {
	Exchange string
	Key      string
	Message  Message
}

// BatchPublisher is an optional MQ capability: route a whole batch in one
// broker round-trip (one lock acquisition in-process). Implementations keep
// per-publication independence — a bad route fails that entry, not the batch.
type BatchPublisher interface {
	PublishBatch(pubs []Publication) error
}

// PublishAll publishes a batch through m, using its BatchPublisher fast path
// when offered and falling back to per-message Publish otherwise — wrappers
// that perturb or meter Publish (fault injection, metrics) keep seeing every
// message. Errors are joined; publications after a failure still go out.
func PublishAll(m MQ, pubs []Publication) error {
	if bp, ok := m.(BatchPublisher); ok {
		return bp.PublishBatch(pubs)
	}
	var errs []error
	for _, p := range pubs {
		if err := m.Publish(p.Exchange, p.Key, p.Message); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Errors shared by broker and client.
var (
	ErrClosed         = errors.New("mq: broker closed")
	ErrQueueNotFound  = errors.New("mq: queue not found")
	ErrExchangeExists = errors.New("mq: exchange exists with different kind")
	ErrNoExchange     = errors.New("mq: exchange not found")
	ErrAlreadySettled = errors.New("mq: delivery already settled")
	ErrBadPrefetch    = errors.New("mq: prefetch must be positive")
)

// rateWindow is the sliding window over which ArrivalRate is computed.
const rateWindow = 60 * time.Second
