package mq

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestJournalRecoveryUnderConcurrentLoad publishes persistent messages from
// many goroutines while consumers ack a random prefix, then "crashes" the
// broker and verifies recovery reflects exactly the unacked set.
func TestJournalRecoveryUnderConcurrentLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stress.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(WithJournal(j))
	mustDeclare(t, b, "q")

	const (
		producers = 4
		perProd   = 50
		toAck     = 60
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				id := fmt.Sprintf("p%d-%d", p, i)
				if err := b.Publish("", "q", Message{ID: id, Body: []byte(id), Persistent: true}); err != nil {
					t.Errorf("publish %s: %v", id, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	sub, err := b.Subscribe("q", 4)
	if err != nil {
		t.Fatal(err)
	}
	ackedIDs := make(map[string]bool, toAck)
	for i := 0; i < toAck; i++ {
		d := recvDelivery(t, sub)
		if err := d.Ack(); err != nil {
			t.Fatal(err)
		}
		ackedIDs[d.Message.ID] = true
	}
	// Crash without draining the rest.
	_ = b.Close()

	b2, err := RecoverBroker(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	stats, err := b2.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	want := producers*perProd - toAck
	if stats.Depth != want {
		t.Fatalf("recovered depth = %d, want %d", stats.Depth, want)
	}
	// Drain and verify the recovered set is exactly the complement.
	sub2, err := b2.Subscribe("q", 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, want)
	for i := 0; i < want; i++ {
		d := recvDelivery(t, sub2)
		if ackedIDs[d.Message.ID] {
			t.Fatalf("acked message %s resurrected", d.Message.ID)
		}
		if seen[d.Message.ID] {
			t.Fatalf("message %s recovered twice", d.Message.ID)
		}
		seen[d.Message.ID] = true
		_ = d.Ack()
	}
}
