package mq

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"stacksync/internal/clock"
)

// Broker is the in-process message broker. A single mutex guards all state:
// at the scale of this reproduction (tens of thousands of messages per
// second) lock contention is negligible and the simplicity buys easy
// correctness for the redelivery and round-robin invariants.
type Broker struct {
	mu        sync.Mutex
	queues    map[string]*queue
	exchanges map[string]*exchange
	journal   *Journal
	clk       clock.Clock
	nextTag   uint64
	nextMsgID uint64
	closed    bool

	// Scratch space reused under b.mu to keep the hot publish path
	// allocation-free: idBuf builds generated message IDs, routeScratch
	// holds routing targets between routeLocked and its caller.
	idBuf        []byte
	routeScratch []*queue
}

var _ MQ = (*Broker)(nil)

type exchange struct {
	kind ExchangeKind
	// bindings maps binding key -> queue name -> queue. Fanout exchanges use
	// the empty key for all bindings. Holding the *queue directly keeps the
	// routing hot path to one map walk; DeleteQueue scrubs entries so the
	// pointers never dangle.
	bindings map[string]map[string]*queue
}

type queuedMsg struct {
	msg         Message
	redelivered int
}

type inflightMsg struct {
	qm       queuedMsg
	consumer *consumer
}

type queue struct {
	name      string
	pending   msgRing // backlog deque, front = next to dispatch
	consumers []*consumer
	rr        int
	unacked   map[uint64]inflightMsg

	enqueued    uint64
	acked       uint64
	redelivered uint64
	arrivals    rateCounter
}

type consumer struct {
	queue     *queue
	ch        chan Delivery
	prefetch  int
	inflight  int
	cancelled bool
}

// BrokerOption configures a Broker.
type BrokerOption func(*Broker)

// WithClock substitutes the time source (used by virtual-time experiments).
func WithClock(c clock.Clock) BrokerOption {
	return func(b *Broker) { b.clk = c }
}

// WithJournal enables write-ahead persistence of declarations and
// persistent messages at the given path. See Journal.
func WithJournal(j *Journal) BrokerOption {
	return func(b *Broker) { b.journal = j }
}

// NewBroker returns an empty broker ready for declarations.
func NewBroker(opts ...BrokerOption) *Broker {
	b := &Broker{
		queues:    make(map[string]*queue),
		exchanges: make(map[string]*exchange),
		clk:       clock.NewReal(),
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// DeclareQueue creates the named queue. Declaring an existing queue is a
// no-op, which lets many server objects bind to the same identifier (§3).
func (b *Broker) DeclareQueue(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.queues[name]; ok {
		return nil
	}
	b.addQueueLocked(name)
	if b.journal != nil {
		return b.journal.record(journalEntry{Op: jopDeclareQueue, Queue: name})
	}
	return nil
}

func (b *Broker) addQueueLocked(name string) *queue {
	q := &queue{
		name:    name,
		unacked: make(map[uint64]inflightMsg),
	}
	b.queues[name] = q
	return q
}

// msgRing is a growable ring deque of queuedMsg values. It replaces the
// former container/list backlog: pushes reuse ring slots instead of
// allocating a node (plus a boxed message) per publish, which was most of
// the publish path's allocation budget.
type msgRing struct {
	buf  []queuedMsg
	head int // index of the front element
	n    int
}

func (r *msgRing) Len() int { return r.n }

// grow doubles the ring. Only called when full, so the live elements are
// exactly buf[head:] followed by buf[:head] — two memmoves, no per-element
// index math.
func (r *msgRing) grow() {
	newCap := 32
	if len(r.buf) > 0 {
		newCap = len(r.buf) * 2
	}
	nb := make([]queuedMsg, newCap)
	n := copy(nb, r.buf[r.head:])
	copy(nb[n:], r.buf[:r.head])
	r.buf = nb
	r.head = 0
}

func (r *msgRing) PushBack(m queuedMsg) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = m
	r.n++
}

func (r *msgRing) PushFront(m queuedMsg) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head--
	if r.head < 0 {
		r.head = len(r.buf) - 1
	}
	r.buf[r.head] = m
	r.n++
}

func (r *msgRing) PopFront() queuedMsg {
	m := r.buf[r.head]
	r.buf[r.head] = queuedMsg{} // drop body/header references for GC
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return m
}

// DeleteQueue removes the queue, dropping pending messages and closing its
// consumers' delivery channels.
func (b *Broker) DeleteQueue(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	q, ok := b.queues[name]
	if !ok {
		return ErrQueueNotFound
	}
	for _, c := range q.consumers {
		if !c.cancelled {
			c.cancelled = true
			close(c.ch)
		}
	}
	delete(b.queues, name)
	for _, ex := range b.exchanges {
		for _, set := range ex.bindings {
			delete(set, name)
		}
	}
	if b.journal != nil {
		return b.journal.record(journalEntry{Op: jopDeleteQueue, Queue: name})
	}
	return nil
}

// DeclareExchange creates an exchange. Re-declaring with the same kind is a
// no-op; with a different kind it fails.
func (b *Broker) DeclareExchange(name string, kind ExchangeKind) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if ex, ok := b.exchanges[name]; ok {
		if ex.kind != kind {
			return ErrExchangeExists
		}
		return nil
	}
	b.exchanges[name] = &exchange{kind: kind, bindings: make(map[string]map[string]*queue)}
	if b.journal != nil {
		return b.journal.record(journalEntry{Op: jopDeclareExchange, Exchange: name, Kind: kind.String()})
	}
	return nil
}

// BindQueue binds a queue to an exchange under a key. For fanout exchanges
// the key is ignored (normalized to "").
func (b *Broker) BindQueue(queueName, exchangeName, key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		return ErrNoExchange
	}
	q, ok := b.queues[queueName]
	if !ok {
		return ErrQueueNotFound
	}
	if ex.kind == Fanout {
		key = ""
	}
	set, ok := ex.bindings[key]
	if !ok {
		set = make(map[string]*queue)
		ex.bindings[key] = set
	}
	set[queueName] = q
	if b.journal != nil {
		return b.journal.record(journalEntry{Op: jopBind, Queue: queueName, Exchange: exchangeName, Key: key})
	}
	return nil
}

// UnbindQueue removes a binding; unknown bindings are ignored.
func (b *Broker) UnbindQueue(queueName, exchangeName, key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		return ErrNoExchange
	}
	if ex.kind == Fanout {
		key = ""
	}
	if set, ok := ex.bindings[key]; ok {
		delete(set, queueName)
	}
	if b.journal != nil {
		return b.journal.record(journalEntry{Op: jopUnbind, Queue: queueName, Exchange: exchangeName, Key: key})
	}
	return nil
}

// Publish routes a message. The empty exchange is the AMQP default exchange:
// it routes directly to the queue named by the routing key.
func (b *Broker) Publish(exchangeName, key string, msg Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	return b.publishLocked(exchangeName, key, msg, b.clk.Now())
}

// PublishBatch routes a whole batch under one lock acquisition — the
// batching half of the pipelined notification fanout. Each publication
// succeeds or fails independently; the joined error reports the failures.
func (b *Broker) PublishBatch(pubs []Publication) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	var errs []error
	now := b.clk.Now() // one clock read for the whole batch
	for _, p := range pubs {
		if err := b.publishLocked(p.Exchange, p.Key, p.Message, now); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (b *Broker) publishLocked(exchangeName, key string, msg Message, now time.Time) error {
	if msg.ID == "" {
		b.nextMsgID++
		b.idBuf = strconv.AppendUint(append(b.idBuf[:0], 'm'), b.nextMsgID, 10)
		msg.ID = string(b.idBuf)
	}
	targets, err := b.routeLocked(exchangeName, key)
	if err != nil {
		return err
	}
	for _, q := range targets {
		if b.journal != nil && msg.Persistent {
			// Copy before taking the address: &msg directly would make every
			// publish heap-allocate the message, journalled or not.
			jm := msg
			if err := b.journal.record(journalEntry{Op: jopPublish, Queue: q.name, Msg: &jm}); err != nil {
				return err
			}
		}
		q.pending.PushBack(queuedMsg{msg: msg})
		q.enqueued++
		q.arrivals.add(now)
		b.dispatchLocked(q)
	}
	return nil
}

// routeLocked resolves a publish to its target queues. The returned slice
// is b.routeScratch: valid only until the next routeLocked call, which is
// safe because b.mu serializes publishes and callers never retain it.
func (b *Broker) routeLocked(exchangeName, key string) ([]*queue, error) {
	targets := b.routeScratch[:0]
	if exchangeName == "" {
		q, ok := b.queues[key]
		if !ok {
			return nil, fmt.Errorf("mq: publish to %q: %w", key, ErrQueueNotFound)
		}
		targets = append(targets, q)
		b.routeScratch = targets
		return targets, nil
	}
	ex, ok := b.exchanges[exchangeName]
	if !ok {
		return nil, ErrNoExchange
	}
	if ex.kind == Fanout {
		key = ""
	}
	for _, q := range ex.bindings[key] {
		targets = append(targets, q)
	}
	b.routeScratch = targets
	return targets, nil
}

// Subscribe registers a consumer with the given prefetch (max unacked
// deliveries in flight to this consumer; must be >= 1).
func (b *Broker) Subscribe(queueName string, prefetch int) (Subscription, error) {
	if prefetch < 1 {
		return nil, ErrBadPrefetch
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	q, ok := b.queues[queueName]
	if !ok {
		return nil, ErrQueueNotFound
	}
	c := &consumer{
		queue:    q,
		ch:       make(chan Delivery, prefetch),
		prefetch: prefetch,
	}
	q.consumers = append(q.consumers, c)
	b.dispatchLocked(q)
	return &brokerSubscription{b: b, c: c}, nil
}

// dispatchLocked moves pending messages to consumers with free credit,
// round-robin. Caller holds b.mu. Sends never block: a consumer's channel
// buffer equals its prefetch and inflight < prefetch is checked first.
func (b *Broker) dispatchLocked(q *queue) {
	for q.pending.Len() > 0 {
		c := q.nextFreeConsumer()
		if c == nil {
			return
		}
		qm := q.pending.PopFront()
		b.nextTag++
		tag := b.nextTag
		q.unacked[tag] = inflightMsg{qm: qm, consumer: c}
		c.inflight++
		if qm.redelivered > 0 {
			q.redelivered++
		}
		c.ch <- Delivery{
			Message:     qm.msg,
			Queue:       q.name,
			Tag:         tag,
			Redelivered: qm.redelivered,
			settle:      b.settleFunc(q.name, tag),
		}
	}
}

func (q *queue) nextFreeConsumer() *consumer {
	n := len(q.consumers)
	for i := 0; i < n; i++ {
		c := q.consumers[(q.rr+i)%n]
		if !c.cancelled && c.inflight < c.prefetch {
			q.rr = (q.rr + i + 1) % n
			return c
		}
	}
	return nil
}

func (b *Broker) settleFunc(queueName string, tag uint64) func(ack, requeue bool) error {
	return func(ack, requeue bool) error {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.closed {
			return ErrClosed
		}
		q, ok := b.queues[queueName]
		if !ok {
			return ErrQueueNotFound
		}
		inflight, ok := q.unacked[tag]
		if !ok {
			return ErrAlreadySettled
		}
		delete(q.unacked, tag)
		inflight.consumer.inflight--
		switch {
		case ack:
			q.acked++
			if b.journal != nil && inflight.qm.msg.Persistent {
				if err := b.journal.record(journalEntry{Op: jopAck, Queue: queueName, MsgID: inflight.qm.msg.ID}); err != nil {
					return err
				}
			}
		case requeue:
			inflight.qm.redelivered++
			q.pending.PushFront(inflight.qm)
		default:
			// Dropped. Persistent messages are considered consumed.
			if b.journal != nil && inflight.qm.msg.Persistent {
				if err := b.journal.record(journalEntry{Op: jopAck, Queue: queueName, MsgID: inflight.qm.msg.ID}); err != nil {
					return err
				}
			}
		}
		b.dispatchLocked(q)
		return nil
	}
}

// QueueStats returns an introspection snapshot of the named queue.
func (b *Broker) QueueStats(name string) (QueueStats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return QueueStats{}, ErrClosed
	}
	q, ok := b.queues[name]
	if !ok {
		return QueueStats{}, ErrQueueNotFound
	}
	active := 0
	for _, c := range q.consumers {
		if !c.cancelled {
			active++
		}
	}
	return QueueStats{
		Name:        name,
		Depth:       q.pending.Len(),
		Unacked:     len(q.unacked),
		Consumers:   active,
		Enqueued:    q.enqueued,
		Acked:       q.acked,
		Redelivered: q.redelivered,
		ArrivalRate: q.arrivals.rate(b.clk.Now()),
	}, nil
}

// Queues lists the declared queue names (for the supervisor UI and tests).
func (b *Broker) Queues() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.queues))
	for name := range b.queues {
		names = append(names, name)
	}
	return names
}

// Close shuts the broker down, closing all consumer channels. Pending
// persistent messages remain in the journal for recovery.
func (b *Broker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, q := range b.queues {
		for _, c := range q.consumers {
			if !c.cancelled {
				c.cancelled = true
				close(c.ch)
			}
		}
	}
	if b.journal != nil {
		return b.journal.Close()
	}
	return nil
}

type brokerSubscription struct {
	b *Broker
	c *consumer
}

var _ Subscription = (*brokerSubscription)(nil)

func (s *brokerSubscription) Deliveries() <-chan Delivery { return s.c.ch }

// Cancel unregisters the consumer. Its unacked messages return to the front
// of the queue (in tag order) so another instance picks them up — this is
// the §3.4 crash-redelivery behaviour.
func (s *brokerSubscription) Cancel() error {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.c.cancelled {
		return nil
	}
	s.c.cancelled = true
	close(s.c.ch)
	q := s.c.queue
	// Collect this consumer's unacked deliveries sorted by tag so the
	// original order is preserved when pushed back to the front.
	var tags []uint64
	for tag, inflight := range q.unacked {
		if inflight.consumer == s.c {
			tags = append(tags, tag)
		}
	}
	sortTags(tags)
	for i := len(tags) - 1; i >= 0; i-- {
		inflight := q.unacked[tags[i]]
		delete(q.unacked, tags[i])
		inflight.qm.redelivered++
		q.pending.PushFront(inflight.qm)
	}
	s.c.inflight = 0
	// Drop the consumer from the queue's list.
	for i, c := range q.consumers {
		if c == s.c {
			q.consumers = append(q.consumers[:i], q.consumers[i+1:]...)
			break
		}
	}
	if q.rr >= len(q.consumers) {
		q.rr = 0
	}
	if !s.b.closed {
		s.b.dispatchLocked(q)
	}
	return nil
}

func sortTags(tags []uint64) {
	for i := 1; i < len(tags); i++ {
		for j := i; j > 0 && tags[j] < tags[j-1]; j-- {
			tags[j], tags[j-1] = tags[j-1], tags[j]
		}
	}
}

// rateCounter tracks arrivals in one-second buckets over rateWindow.
type rateCounter struct {
	buckets [60]uint32
	seconds [60]int64
}

func (r *rateCounter) add(now time.Time) {
	sec := now.Unix()
	i := int(((sec % 60) + 60) % 60)
	if r.seconds[i] != sec {
		r.seconds[i] = sec
		r.buckets[i] = 0
	}
	r.buckets[i]++
}

func (r *rateCounter) rate(now time.Time) float64 {
	sec := now.Unix()
	var total uint64
	for i := 0; i < 60; i++ {
		if sec-r.seconds[i] < int64(rateWindow/time.Second) && r.seconds[i] <= sec {
			total += uint64(r.buckets[i])
		}
	}
	return float64(total) / rateWindow.Seconds()
}
