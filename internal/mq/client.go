package mq

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"stacksync/internal/codec"
	"stacksync/internal/wire"
)

// Client is a network MQ implementation speaking the wire protocol to a
// Server. It satisfies the same MQ interface as the in-process Broker, so
// ObjectMQ code is agnostic to deployment.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	w       *wire.Writer

	mu       sync.Mutex
	nextSeq  uint64
	nextCons uint64
	pending  map[uint64]chan *wire.Frame
	subs     map[string]*clientSub
	closed   bool

	readerDone chan struct{}
}

var _ MQ = (*Client)(nil)

type clientSub struct {
	client     *Client
	consumerID string
	ch         chan Delivery
	cancelled  bool
}

var _ Subscription = (*clientSub)(nil)

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mq: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:       conn,
		w:          wire.NewWriter(conn),
		pending:    make(map[uint64]chan *wire.Frame),
		subs:       make(map[string]*clientSub),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	r := wire.NewReader(c.conn)
	for {
		f, err := r.Read()
		if err != nil {
			c.failAll(err)
			return
		}
		switch f.Op {
		case wire.OpDeliver:
			c.mu.Lock()
			sub, ok := c.subs[f.ConsumerID]
			if !ok || sub.cancelled {
				// Subscription raced with cancel; the server requeues the
				// message when the cancel lands.
				c.mu.Unlock()
				continue
			}
			// The send is non-blocking by construction: the server keeps at
			// most `prefetch` deliveries unacked per consumer and the channel
			// buffer is exactly `prefetch`. Sending under the mutex
			// serializes against Cancel closing the channel.
			// f.Body aliases the wire reader's buffer and is only valid
			// until the next Read; the delivery outlives it, so copy here.
			var body []byte
			if len(f.Body) > 0 {
				body = append(body, f.Body...)
			}
			sub.ch <- Delivery{
				Message: Message{
					ID:         f.MessageID,
					Headers:    f.Headers,
					Body:       body,
					Persistent: f.Persistent,
				},
				Queue:       f.Queue,
				Tag:         f.DeliveryID,
				Redelivered: f.Redelivery,
				settle:      c.settleFunc(f.DeliveryID),
			}
			c.mu.Unlock()
		default:
			c.mu.Lock()
			ch, ok := c.pending[f.Seq]
			if ok {
				delete(c.pending, f.Seq)
			}
			c.mu.Unlock()
			if ok {
				// The waiter reads the frame after the loop has moved on to
				// the next Read, so detach it from the reader's buffer.
				ch <- f.Clone()
			}
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		ch <- &wire.Frame{Op: wire.OpError, Err: err.Error()}
	}
	for id, sub := range c.subs {
		if !sub.cancelled {
			sub.cancelled = true
			close(sub.ch)
		}
		delete(c.subs, id)
	}
}

// request sends f and blocks for the matching response.
func (c *Client) request(f *wire.Frame) (*wire.Frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextSeq++
	f.Seq = c.nextSeq
	ch := make(chan *wire.Frame, 1)
	c.pending[f.Seq] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := c.w.Write(f)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, f.Seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("mq: send %v: %w", f.Op, err)
	}
	resp := <-ch
	if resp.Op == wire.OpError {
		return nil, remoteError(resp.Err)
	}
	return resp, nil
}

// remoteError maps well-known broker error strings back to sentinel errors
// so errors.Is works across the network boundary. Broker errors may carry
// wrapped context ("mq: publish to \"q\": mq: queue not found"), so the
// sentinel is matched as a suffix.
func remoteError(msg string) error {
	for _, sentinel := range []error{
		ErrQueueNotFound, ErrExchangeExists, ErrNoExchange, ErrAlreadySettled, ErrBadPrefetch, ErrClosed,
	} {
		if strings.HasSuffix(msg, sentinel.Error()) {
			if msg == sentinel.Error() {
				return sentinel
			}
			return fmt.Errorf("%s: %w", strings.TrimSuffix(msg, ": "+sentinel.Error()), sentinel)
		}
	}
	return errors.New(msg)
}

// DeclareQueue creates the named queue on the remote broker.
func (c *Client) DeclareQueue(name string) error {
	_, err := c.request(&wire.Frame{Op: wire.OpDeclareQueue, Queue: name})
	return err
}

// DeleteQueue removes the named queue on the remote broker.
func (c *Client) DeleteQueue(name string) error {
	_, err := c.request(&wire.Frame{Op: wire.OpDeleteQueue, Queue: name})
	return err
}

// DeclareExchange creates an exchange on the remote broker.
func (c *Client) DeclareExchange(name string, kind ExchangeKind) error {
	_, err := c.request(&wire.Frame{Op: wire.OpDeclareExchange, Exchange: name, Kind: kind.String()})
	return err
}

// BindQueue binds a queue to an exchange on the remote broker.
func (c *Client) BindQueue(queue, exchangeName, key string) error {
	_, err := c.request(&wire.Frame{Op: wire.OpBindQueue, Queue: queue, Exchange: exchangeName, Key: key})
	return err
}

// UnbindQueue removes a binding on the remote broker.
func (c *Client) UnbindQueue(queue, exchangeName, key string) error {
	_, err := c.request(&wire.Frame{Op: wire.OpUnbindQueue, Queue: queue, Exchange: exchangeName, Key: key})
	return err
}

// Publish routes a message on the remote broker.
func (c *Client) Publish(exchangeName, key string, msg Message) error {
	_, err := c.request(&wire.Frame{
		Op:         wire.OpPublish,
		Exchange:   exchangeName,
		Key:        key,
		MessageID:  msg.ID,
		Headers:    msg.Headers,
		Body:       msg.Body,
		Persistent: msg.Persistent,
	})
	return err
}

// Subscribe registers a consumer on the remote queue.
func (c *Client) Subscribe(queueName string, prefetch int) (Subscription, error) {
	if prefetch < 1 {
		return nil, ErrBadPrefetch
	}
	c.mu.Lock()
	c.nextCons++
	id := "c" + strconv.FormatUint(c.nextCons, 10)
	sub := &clientSub{client: c, consumerID: id, ch: make(chan Delivery, prefetch)}
	c.subs[id] = sub
	c.mu.Unlock()
	if _, err := c.request(&wire.Frame{Op: wire.OpSubscribe, Queue: queueName, ConsumerID: id, Prefetch: prefetch}); err != nil {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
		return nil, err
	}
	return sub, nil
}

// QueueStats fetches a queue snapshot from the remote broker.
func (c *Client) QueueStats(name string) (QueueStats, error) {
	resp, err := c.request(&wire.Frame{Op: wire.OpQueueStats, Queue: name})
	if err != nil {
		return QueueStats{}, err
	}
	var stats QueueStats
	if err := (codec.JSON{}).Unmarshal(resp.Stats, &stats); err != nil {
		return QueueStats{}, fmt.Errorf("mq: decode stats: %w", err)
	}
	return stats, nil
}

// Ping round-trips a heartbeat frame.
func (c *Client) Ping() error {
	_, err := c.request(&wire.Frame{Op: wire.OpPing})
	return err
}

// Close tears down the connection. The server requeues unacked deliveries.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

func (c *Client) settleFunc(deliveryID uint64) func(ack, requeue bool) error {
	return func(ack, requeue bool) error {
		f := &wire.Frame{Op: wire.OpAck, DeliveryID: deliveryID}
		if !ack {
			f.Op = wire.OpNack
			f.Requeue = requeue
		}
		_, err := c.request(f)
		return err
	}
}

func (s *clientSub) Deliveries() <-chan Delivery { return s.ch }

// Cancel unregisters the consumer on the server; its unacked deliveries are
// requeued there.
func (s *clientSub) Cancel() error {
	s.client.mu.Lock()
	if s.cancelled {
		s.client.mu.Unlock()
		return nil
	}
	s.cancelled = true
	delete(s.client.subs, s.consumerID)
	closed := s.client.closed
	close(s.ch)
	s.client.mu.Unlock()
	if closed {
		return nil
	}
	_, err := s.client.request(&wire.Frame{Op: wire.OpCancel, ConsumerID: s.consumerID})
	return err
}
