package mq

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"stacksync/internal/codec"
)

// Journal is a write-ahead log of broker declarations and persistent
// messages. It is the property §3.4 appeals to: "the messaging system can be
// instrumented to store all the messages present in the queues, so that when
// the system is restarted, the unprocessed messages can be recovered."
//
// Format: one JSON object per line. Replay reconstructs queues, exchanges,
// bindings, and every persistent message published but not yet acked.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	buf  []byte // reusable encode buffer, guarded by mu
}

type journalOp string

const (
	jopDeclareQueue    journalOp = "declq"
	jopDeleteQueue     journalOp = "delq"
	jopDeclareExchange journalOp = "declx"
	jopBind            journalOp = "bind"
	jopUnbind          journalOp = "unbind"
	jopPublish         journalOp = "pub"
	jopAck             journalOp = "ack"
)

type journalEntry struct {
	Op       journalOp `json:"op"`
	Queue    string    `json:"queue,omitempty"`
	Exchange string    `json:"exchange,omitempty"`
	Kind     string    `json:"kind,omitempty"`
	Key      string    `json:"key,omitempty"`
	MsgID    string    `json:"msgId,omitempty"`
	Msg      *Message  `json:"msg,omitempty"`
}

// OpenJournal opens (creating if needed) the journal at path for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mq: open journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, nil
}

func (j *Journal) record(e journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("mq: journal closed")
	}
	// Append-style encode into the journal's reused buffer: one line per
	// record, same JSON format as ever, no fresh slice per entry.
	line, err := (codec.JSON{}).MarshalAppend(j.buf[:0], e)
	if err != nil {
		return fmt.Errorf("mq: marshal journal entry: %w", err)
	}
	j.buf = append(line, '\n')
	if _, err := j.w.Write(j.buf); err != nil {
		return fmt.Errorf("mq: append journal: %w", err)
	}
	// Flush per record: the journal exists to survive crashes.
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("mq: flush journal: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	flushErr := j.w.Flush()
	closeErr := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return fmt.Errorf("mq: flush journal on close: %w", flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("mq: close journal: %w", closeErr)
	}
	return nil
}

// RecoverBroker replays the journal at path into a fresh Broker that
// continues journalling to the same file. Unacked persistent messages are
// re-enqueued on their queues in publication order.
func RecoverBroker(path string, opts ...BrokerOption) (*Broker, error) {
	entries, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	j, err := OpenJournal(path)
	if err != nil {
		return nil, err
	}
	b := NewBroker(opts...)
	b.journal = nil // replay without re-recording
	if err := replay(b, entries); err != nil {
		_ = j.Close()
		return nil, err
	}
	b.mu.Lock()
	b.journal = j
	b.mu.Unlock()
	return b, nil
}

func readJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("mq: open journal for recovery: %w", err)
	}
	defer f.Close()
	var entries []journalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), MaxJournalLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn final line after a crash is expected; stop there.
			break
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return nil, fmt.Errorf("mq: scan journal: %w", err)
	}
	return entries, nil
}

// MaxJournalLine caps a single journal record (a message body plus framing).
const MaxJournalLine = 32 << 20

func replay(b *Broker, entries []journalEntry) error {
	acked := make(map[string]map[string]int) // queue -> msgID -> ack count
	for _, e := range entries {
		if e.Op == jopAck {
			m := acked[e.Queue]
			if m == nil {
				m = make(map[string]int)
				acked[e.Queue] = m
			}
			m[e.MsgID]++
		}
	}
	for _, e := range entries {
		switch e.Op {
		case jopDeclareQueue:
			if err := b.DeclareQueue(e.Queue); err != nil {
				return err
			}
		case jopDeleteQueue:
			if err := b.DeleteQueue(e.Queue); err != nil && !errors.Is(err, ErrQueueNotFound) {
				return err
			}
		case jopDeclareExchange:
			kind, err := ParseExchangeKind(e.Kind)
			if err != nil {
				return err
			}
			if err := b.DeclareExchange(e.Exchange, kind); err != nil {
				return err
			}
		case jopBind:
			if err := b.BindQueue(e.Queue, e.Exchange, e.Key); err != nil && !errors.Is(err, ErrQueueNotFound) && !errors.Is(err, ErrNoExchange) {
				return err
			}
		case jopUnbind:
			if err := b.UnbindQueue(e.Queue, e.Exchange, e.Key); err != nil && !errors.Is(err, ErrNoExchange) {
				return err
			}
		case jopPublish:
			if e.Msg == nil {
				continue
			}
			if m := acked[e.Queue]; m != nil && m[e.Msg.ID] > 0 {
				m[e.Msg.ID]--
				continue
			}
			// Republish directly onto the target queue, bypassing exchanges
			// (the journal records post-routing placements).
			if err := b.Publish("", e.Queue, *e.Msg); err != nil && !errors.Is(err, ErrQueueNotFound) {
				return err
			}
		case jopAck:
			// handled in the first pass
		}
	}
	return nil
}
