package mq

import (
	"fmt"
	"testing"
)

func BenchmarkPublishConsumeAck(b *testing.B) {
	br := NewBroker()
	defer br.Close()
	if err := br.DeclareQueue("bench"); err != nil {
		b.Fatal(err)
	}
	sub, err := br.Subscribe("bench", 32)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for d := range sub.Deliveries() {
			_ = d.Ack()
		}
	}()
	payload := make([]byte, 1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish("", "bench", Message{Body: payload}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = sub.Cancel()
	<-done
}

func BenchmarkFanoutPublish(b *testing.B) {
	for _, queues := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			br := NewBroker()
			defer br.Close()
			if err := br.DeclareExchange("fan", Fanout); err != nil {
				b.Fatal(err)
			}
			for q := 0; q < queues; q++ {
				name := fmt.Sprintf("q%d", q)
				if err := br.DeclareQueue(name); err != nil {
					b.Fatal(err)
				}
				if err := br.BindQueue(name, "fan", ""); err != nil {
					b.Fatal(err)
				}
			}
			payload := make([]byte, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := br.Publish("fan", "", Message{Body: payload}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNetworkRoundTrip(b *testing.B) {
	br := NewBroker()
	defer br.Close()
	srv, err := NewServer(br, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	if err := cli.DeclareQueue("rt"); err != nil {
		b.Fatal(err)
	}
	sub, err := cli.Subscribe("rt", 1)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Publish("", "rt", Message{Body: payload}); err != nil {
			b.Fatal(err)
		}
		d := <-sub.Deliveries()
		if err := d.Ack(); err != nil {
			b.Fatal(err)
		}
	}
}
