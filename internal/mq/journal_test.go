package mq

import (
	"os"
	"path/filepath"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "broker.journal")
}

func TestJournalRecoversPendingPersistentMessages(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(WithJournal(j))
	mustDeclare(t, b, "q")
	for i := 0; i < 3; i++ {
		if err := b.Publish("", "q", Message{ID: string(rune('a' + i)), Body: []byte{byte(i)}, Persistent: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Consume and ack only the first message, then "crash".
	sub, _ := b.Subscribe("q", 1)
	d := recvDelivery(t, sub)
	if err := d.Ack(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := RecoverBroker(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	stats, err := b2.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Depth != 2 {
		t.Fatalf("recovered depth = %d, want 2 (one of three was acked)", stats.Depth)
	}
	sub2, _ := b2.Subscribe("q", 2)
	d1 := recvDelivery(t, sub2)
	d2 := recvDelivery(t, sub2)
	if d1.Body[0] != 1 || d2.Body[0] != 2 {
		t.Fatalf("recovered wrong messages: %v %v", d1.Body, d2.Body)
	}
	_ = d1.Ack()
	_ = d2.Ack()
}

func TestJournalDoesNotPersistTransientMessages(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(WithJournal(j))
	mustDeclare(t, b, "q")
	if err := b.Publish("", "q", Message{Body: []byte("transient")}); err != nil {
		t.Fatal(err)
	}
	_ = b.Close()

	b2, err := RecoverBroker(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	stats, err := b2.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Depth != 0 {
		t.Fatalf("transient message survived restart: depth %d", stats.Depth)
	}
}

func TestJournalRecoversTopology(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(WithJournal(j))
	mustDeclare(t, b, "q1", "q2")
	if err := b.DeclareExchange("ws", Fanout); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q1", "ws", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.BindQueue("q2", "ws", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteQueue("q2"); err != nil {
		t.Fatal(err)
	}
	_ = b.Close()

	b2, err := RecoverBroker(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	// q1 still bound to ws; q2 gone.
	sub, err := b2.Subscribe("q1", 1)
	if err != nil {
		t.Fatalf("q1 not recovered: %v", err)
	}
	if _, err := b2.QueueStats("q2"); err == nil {
		t.Fatal("deleted queue q2 resurrected by recovery")
	}
	if err := b2.Publish("ws", "", Message{Body: []byte("post-recovery")}); err != nil {
		t.Fatal(err)
	}
	d := recvDelivery(t, sub)
	if string(d.Body) != "post-recovery" {
		t.Fatalf("got %q", d.Body)
	}
	_ = d.Ack()
}

func TestRecoverBrokerMissingJournalStartsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-created.journal")
	b, err := RecoverBroker(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if queues := b.Queues(); len(queues) != 0 {
		t.Fatalf("fresh recovery has queues: %v", queues)
	}
}

func TestRecoverToleratesTornTail(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(WithJournal(j))
	mustDeclare(t, b, "q")
	if err := b.Publish("", "q", Message{ID: "keep", Body: []byte("k"), Persistent: true}); err != nil {
		t.Fatal(err)
	}
	_ = b.Close()
	// Simulate a crash mid-append: garbage partial JSON at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"pub","queue":"q","msg":{"id":"to`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	b2, err := RecoverBroker(path)
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer b2.Close()
	stats, err := b2.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Depth != 1 {
		t.Fatalf("depth = %d, want 1 (intact prefix)", stats.Depth)
	}
}

func TestRecoveredBrokerKeepsJournalling(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(WithJournal(j))
	mustDeclare(t, b, "q")
	_ = b.Close()

	b2, err := RecoverBroker(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Publish("", "q", Message{ID: "second-gen", Body: []byte("x"), Persistent: true}); err != nil {
		t.Fatal(err)
	}
	_ = b2.Close()

	b3, err := RecoverBroker(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	stats, err := b3.QueueStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Depth != 1 {
		t.Fatalf("second-generation message lost: depth %d", stats.Depth)
	}
}
