package mq

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"stacksync/internal/codec"
	"stacksync/internal/wire"
)

// Server exposes a Broker over TCP using the wire protocol, playing the role
// of the RabbitMQ daemon in the paper's testbed. Each connection multiplexes
// requests and delivery streams for any number of consumers.
type Server struct {
	broker *Broker
	ln     net.Listener

	mu        sync.Mutex
	conns     map[*serverConn]struct{}
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// NewServer starts serving broker on the given address ("127.0.0.1:0" picks
// a free port). Callers stop it with Close.
func NewServer(broker *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mq: listen %s: %w", addr, err)
	}
	s := &Server{
		broker: broker,
		ln:     ln,
		conns:  make(map[*serverConn]struct{}),
		done:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes all connections and waits for handlers.
// It does not close the underlying broker.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			_ = c.conn.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				log.Printf("mq server: accept: %v", err)
				return
			}
		}
		sc := &serverConn{
			srv:       s,
			conn:      conn,
			w:         wire.NewWriter(conn),
			subs:      make(map[string]*serverSub),
			unsettled: make(map[uint64]*Delivery),
		}
		s.mu.Lock()
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.serve()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
		}()
	}
}

type serverConn struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex
	w       *wire.Writer

	mu        sync.Mutex
	subs      map[string]*serverSub
	unsettled map[uint64]*Delivery
}

type serverSub struct {
	sub  Subscription
	done chan struct{}
}

func (c *serverConn) serve() {
	defer c.cleanup()
	r := wire.NewReader(c.conn)
	for {
		f, err := r.Read()
		if err != nil {
			return // connection gone; cleanup requeues unacked
		}
		if err := c.handle(f); err != nil {
			c.reply(&wire.Frame{Op: wire.OpError, Seq: f.Seq, Err: err.Error()})
		}
	}
}

func (c *serverConn) cleanup() {
	c.mu.Lock()
	subs := make([]*serverSub, 0, len(c.subs))
	for _, ss := range c.subs {
		subs = append(subs, ss)
	}
	c.subs = map[string]*serverSub{}
	c.unsettled = map[uint64]*Delivery{}
	c.mu.Unlock()
	for _, ss := range subs {
		_ = ss.sub.Cancel() // requeues this connection's unacked messages
		<-ss.done
	}
	_ = c.conn.Close()
}

func (c *serverConn) reply(f *wire.Frame) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.w.Write(f); err != nil {
		// The read loop will notice the broken connection and clean up.
		_ = c.conn.Close()
	}
}

func (c *serverConn) handle(f *wire.Frame) error {
	b := c.srv.broker
	switch f.Op {
	case wire.OpPing:
		c.reply(&wire.Frame{Op: wire.OpPong, Seq: f.Seq})
		return nil
	case wire.OpDeclareQueue:
		if err := b.DeclareQueue(f.Queue); err != nil {
			return err
		}
	case wire.OpDeleteQueue:
		if err := b.DeleteQueue(f.Queue); err != nil {
			return err
		}
	case wire.OpDeclareExchange:
		kind, err := ParseExchangeKind(f.Kind)
		if err != nil {
			return err
		}
		if err := b.DeclareExchange(f.Exchange, kind); err != nil {
			return err
		}
	case wire.OpBindQueue:
		if err := b.BindQueue(f.Queue, f.Exchange, f.Key); err != nil {
			return err
		}
	case wire.OpUnbindQueue:
		if err := b.UnbindQueue(f.Queue, f.Exchange, f.Key); err != nil {
			return err
		}
	case wire.OpPublish:
		// f.Body aliases the wire reader's buffer and is only valid until
		// the next Read; the broker retains messages, so this is the one
		// copy on the server's ingest path.
		var body []byte
		if len(f.Body) > 0 {
			body = append(body, f.Body...)
		}
		msg := Message{ID: f.MessageID, Headers: f.Headers, Body: body, Persistent: f.Persistent}
		if err := b.Publish(f.Exchange, f.Key, msg); err != nil {
			return err
		}
	case wire.OpSubscribe:
		return c.subscribe(f)
	case wire.OpCancel:
		return c.cancel(f)
	case wire.OpAck:
		return c.settle(f, true, false)
	case wire.OpNack:
		return c.settle(f, false, f.Requeue)
	case wire.OpQueueStats:
		stats, err := b.QueueStats(f.Queue)
		if err != nil {
			return err
		}
		raw, err := (codec.JSON{}).MarshalAppend(nil, stats)
		if err != nil {
			return fmt.Errorf("mq: marshal stats: %w", err)
		}
		c.reply(&wire.Frame{Op: wire.OpStatsReply, Seq: f.Seq, Stats: raw})
		return nil
	default:
		return fmt.Errorf("mq: server: unexpected frame %v", f.Op)
	}
	c.reply(&wire.Frame{Op: wire.OpOK, Seq: f.Seq})
	return nil
}

func (c *serverConn) subscribe(f *wire.Frame) error {
	c.mu.Lock()
	if _, exists := c.subs[f.ConsumerID]; exists {
		c.mu.Unlock()
		return fmt.Errorf("mq: consumer %q already subscribed", f.ConsumerID)
	}
	c.mu.Unlock()
	sub, err := c.srv.broker.Subscribe(f.Queue, f.Prefetch)
	if err != nil {
		return err
	}
	ss := &serverSub{sub: sub, done: make(chan struct{})}
	c.mu.Lock()
	c.subs[f.ConsumerID] = ss
	c.mu.Unlock()
	consumerID := f.ConsumerID
	go func() {
		defer close(ss.done)
		for d := range sub.Deliveries() {
			d := d
			c.mu.Lock()
			c.unsettled[d.Tag] = &d
			c.mu.Unlock()
			c.reply(&wire.Frame{
				Op:         wire.OpDeliver,
				ConsumerID: consumerID,
				Queue:      d.Queue,
				DeliveryID: d.Tag,
				MessageID:  d.Message.ID,
				Headers:    d.Message.Headers,
				Body:       d.Message.Body,
				Persistent: d.Message.Persistent,
				Redelivery: d.Redelivered,
			})
		}
	}()
	c.reply(&wire.Frame{Op: wire.OpOK, Seq: f.Seq})
	return nil
}

func (c *serverConn) cancel(f *wire.Frame) error {
	c.mu.Lock()
	ss, ok := c.subs[f.ConsumerID]
	if ok {
		delete(c.subs, f.ConsumerID)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("mq: unknown consumer %q", f.ConsumerID)
	}
	if err := ss.sub.Cancel(); err != nil {
		return err
	}
	<-ss.done
	c.reply(&wire.Frame{Op: wire.OpOK, Seq: f.Seq})
	return nil
}

func (c *serverConn) settle(f *wire.Frame, ack, requeue bool) error {
	c.mu.Lock()
	d, ok := c.unsettled[f.DeliveryID]
	if ok {
		delete(c.unsettled, f.DeliveryID)
	}
	c.mu.Unlock()
	if !ok {
		return ErrAlreadySettled
	}
	var err error
	if ack {
		err = d.Ack()
	} else {
		err = d.Nack(requeue)
	}
	if err != nil && !errors.Is(err, ErrAlreadySettled) {
		return err
	}
	c.reply(&wire.Frame{Op: wire.OpOK, Seq: f.Seq})
	return nil
}
