package codec

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Binary is the compact reflection codec — the paper's Kryo analogue. Every
// value is a one-byte type tag followed by a varint-framed payload:
//
//	nil/false/true   tag only
//	int              zigzag varint
//	uint             uvarint
//	float            8-byte big-endian IEEE 754
//	string/bytes     uvarint length + raw bytes
//	list             uvarint count + elements
//	map              uvarint count + alternating key/value
//	struct           uvarint field count, then per exported field (in
//	                 declaration order) a uvarint byte length + encoding
//	marshaled        uvarint length + encoding.BinaryMarshaler output
//
// The per-field byte length is what buys schema evolution: a decoder built
// against an older struct skips unknown trailing fields, and missing
// trailing fields decode as zero values — the same append-only contract
// JSON gives us, at a fraction of the size. Types implementing
// encoding.BinaryMarshaler/BinaryUnmarshaler (notably time.Time) use their
// own representation. Only exported fields travel, matching JSON and gob.
type Binary struct{}

var _ Codec = Binary{}

// Name returns "bin".
func (Binary) Name() string { return "bin" }

const (
	bNil = iota + 1
	bFalse
	bTrue
	bInt
	bUint
	bFloat
	bString
	bBytes
	bList
	bMap
	bStruct
	bMarshaled
)

// maxDepth bounds encode and decode recursion: cyclic values fail instead
// of hanging, and fuzzed deeply-nested input fails instead of exhausting
// the stack.
const maxDepth = 1000

var errTooDeep = errors.New("codec: binary value nesting too deep")

var (
	binaryMarshalerType   = reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem()
	binaryUnmarshalerType = reflect.TypeOf((*encoding.BinaryUnmarshaler)(nil)).Elem()
)

// fieldCache maps a struct type to the indices of its exported fields.
var fieldCache sync.Map // reflect.Type -> []int

func exportedFields(t reflect.Type) []int {
	if cached, ok := fieldCache.Load(t); ok {
		return cached.([]int)
	}
	var idx []int
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).IsExported() {
			idx = append(idx, i)
		}
	}
	fieldCache.Store(t, idx)
	return idx
}

// MarshalAppend appends the binary encoding of v to dst.
func (Binary) MarshalAppend(dst []byte, v any) ([]byte, error) {
	return appendValue(dst, reflect.ValueOf(v), 0)
}

func appendValue(dst []byte, v reflect.Value, depth int) ([]byte, error) {
	if depth > maxDepth {
		return dst, errTooDeep
	}
	if !v.IsValid() {
		return append(dst, bNil), nil
	}
	t := v.Type()
	switch v.Kind() {
	case reflect.Interface, reflect.Pointer:
		if v.IsNil() {
			return append(dst, bNil), nil
		}
		if v.Kind() == reflect.Pointer && t.Implements(binaryMarshalerType) {
			return appendMarshaled(dst, v)
		}
		return appendValue(dst, v.Elem(), depth+1)
	}
	if t.Implements(binaryMarshalerType) {
		return appendMarshaled(dst, v)
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(dst, bTrue), nil
		}
		return append(dst, bFalse), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		dst = append(dst, bInt)
		return binary.AppendVarint(dst, v.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		dst = append(dst, bUint)
		return binary.AppendUvarint(dst, v.Uint()), nil
	case reflect.Float32, reflect.Float64:
		dst = append(dst, bFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Float())), nil
	case reflect.String:
		s := v.String()
		dst = append(dst, bString)
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...), nil
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			dst = append(dst, bBytes)
			dst = binary.AppendUvarint(dst, uint64(v.Len()))
			return append(dst, v.Bytes()...), nil
		}
		fallthrough
	case reflect.Array:
		n := v.Len()
		dst = append(dst, bList)
		dst = binary.AppendUvarint(dst, uint64(n))
		var err error
		for i := 0; i < n; i++ {
			if dst, err = appendValue(dst, v.Index(i), depth+1); err != nil {
				return dst, err
			}
		}
		return dst, nil
	case reflect.Map:
		dst = append(dst, bMap)
		dst = binary.AppendUvarint(dst, uint64(v.Len()))
		iter := v.MapRange()
		var err error
		for iter.Next() {
			if dst, err = appendValue(dst, iter.Key(), depth+1); err != nil {
				return dst, err
			}
			if dst, err = appendValue(dst, iter.Value(), depth+1); err != nil {
				return dst, err
			}
		}
		return dst, nil
	case reflect.Struct:
		fields := exportedFields(t)
		dst = append(dst, bStruct)
		dst = binary.AppendUvarint(dst, uint64(len(fields)))
		for _, fi := range fields {
			var err error
			if dst, err = appendLengthPrefixed(dst, v.Field(fi), depth+1); err != nil {
				return dst, err
			}
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("codec: binary cannot encode %s", t)
	}
}

// appendLengthPrefixed encodes v prefixed by its byte length. Field
// encodings are almost always under 128 bytes, so a single placeholder byte
// is reserved and patched in place; longer encodings shift right to make
// room for the wider varint.
func appendLengthPrefixed(dst []byte, v reflect.Value, depth int) ([]byte, error) {
	lenPos := len(dst)
	dst = append(dst, 0)
	start := len(dst)
	dst, err := appendValue(dst, v, depth)
	if err != nil {
		return dst, err
	}
	n := len(dst) - start
	if n < 0x80 {
		dst[lenPos] = byte(n)
		return dst, nil
	}
	var tmp [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(tmp[:], uint64(n))
	dst = append(dst, tmp[1:w]...) // grow by the extra varint width
	copy(dst[start+w-1:], dst[start:start+n])
	copy(dst[lenPos:], tmp[:w])
	return dst, nil
}

func appendMarshaled(dst []byte, v reflect.Value) ([]byte, error) {
	data, err := v.Interface().(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return dst, fmt.Errorf("codec: binary marshal %s: %w", v.Type(), err)
	}
	dst = append(dst, bMarshaled)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	return append(dst, data...), nil
}

// Unmarshal decodes binary data into v, which must be a non-nil pointer.
// Decoded values never alias data.
func (Binary) Unmarshal(data []byte, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return errors.New("codec: binary unmarshal target must be a non-nil pointer")
	}
	rest, err := decodeValue(data, rv.Elem(), 0)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("codec: %d trailing bytes after binary value", len(rest))
	}
	return nil
}

var errShortValue = errors.New("codec: truncated binary value")

// uvarint decodes a uvarint, rejecting truncated and overlong encodings.
func uvarint(data []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("codec: malformed varint: %w", errShortValue)
	}
	return x, data[n:], nil
}

// lengthPrefix reads a uvarint length and checks it against the remaining
// input, so corrupt lengths fail before any allocation sized by them.
func lengthPrefix(data []byte) (int, []byte, error) {
	x, rest, err := uvarint(data)
	if err != nil {
		return 0, nil, err
	}
	if x > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("codec: binary length %d exceeds %d remaining bytes", x, len(rest))
	}
	return int(x), rest, nil
}

func decodeValue(data []byte, v reflect.Value, depth int) ([]byte, error) {
	if len(data) == 0 {
		return nil, errShortValue
	}
	return decodeTagged(data[0], data[1:], v, depth)
}

func decodeTagged(tag byte, data []byte, v reflect.Value, depth int) ([]byte, error) {
	if depth > maxDepth {
		return nil, errTooDeep
	}
	t := v.Type()
	if tag == bNil {
		v.Set(reflect.Zero(t))
		return data, nil
	}
	if v.Kind() == reflect.Pointer {
		if v.IsNil() {
			v.Set(reflect.New(t.Elem()))
		}
		if tag == bMarshaled && t.Implements(binaryUnmarshalerType) {
			return decodeMarshaled(data, v)
		}
		return decodeTagged(tag, data, v.Elem(), depth+1)
	}
	if tag == bMarshaled {
		if v.CanAddr() && reflect.PointerTo(t).Implements(binaryUnmarshalerType) {
			return decodeMarshaled(data, v.Addr())
		}
		return nil, fmt.Errorf("codec: cannot decode marshaled value into %s", t)
	}
	if v.Kind() == reflect.Interface {
		if t.NumMethod() != 0 {
			return nil, fmt.Errorf("codec: cannot decode into non-empty interface %s", t)
		}
		g, rest, err := decodeGeneric(tag, data, depth)
		if err != nil {
			return nil, err
		}
		v.Set(reflect.ValueOf(g))
		return rest, nil
	}

	switch tag {
	case bFalse, bTrue:
		if v.Kind() != reflect.Bool {
			return nil, decodeMismatch(tag, t)
		}
		v.SetBool(tag == bTrue)
		return data, nil
	case bInt, bUint:
		return decodeNumeric(tag, data, v)
	case bFloat:
		if len(data) < 8 {
			return nil, errShortValue
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(data))
		switch v.Kind() {
		case reflect.Float32, reflect.Float64:
			v.SetFloat(f)
		default:
			return nil, decodeMismatch(tag, t)
		}
		return data[8:], nil
	case bString, bBytes:
		n, rest, err := lengthPrefix(data)
		if err != nil {
			return nil, err
		}
		raw, rest := rest[:n], rest[n:]
		switch {
		case v.Kind() == reflect.String:
			v.SetString(string(raw))
		case v.Kind() == reflect.Slice && t.Elem().Kind() == reflect.Uint8:
			v.SetBytes(append([]byte(nil), raw...))
		case v.Kind() == reflect.Array && t.Elem().Kind() == reflect.Uint8:
			if n != v.Len() {
				return nil, fmt.Errorf("codec: %d bytes into [%d]byte", n, v.Len())
			}
			reflect.Copy(v, reflect.ValueOf(raw))
		default:
			return nil, decodeMismatch(tag, t)
		}
		return rest, nil
	case bList:
		return decodeList(data, v, depth)
	case bMap:
		return decodeMap(data, v, depth)
	case bStruct:
		return decodeStruct(data, v, depth)
	default:
		return nil, fmt.Errorf("codec: unknown binary tag %d", tag)
	}
}

func decodeMismatch(tag byte, t reflect.Type) error {
	return fmt.Errorf("codec: binary tag %d cannot decode into %s", tag, t)
}

// decodeNumeric handles the int/uint tags with lenient cross-decoding: an
// encoder that widened or re-signed a field stays readable as long as the
// value fits the target.
func decodeNumeric(tag byte, data []byte, v reflect.Value) ([]byte, error) {
	var (
		i    int64
		u    uint64
		rest []byte
	)
	if tag == bInt {
		var n int
		i, n = binary.Varint(data)
		if n <= 0 {
			return nil, fmt.Errorf("codec: malformed varint: %w", errShortValue)
		}
		rest = data[n:]
		u = uint64(i)
	} else {
		var err error
		u, rest, err = uvarint(data)
		if err != nil {
			return nil, err
		}
		i = int64(u)
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if tag == bUint && u > math.MaxInt64 {
			return nil, fmt.Errorf("codec: %d overflows %s", u, v.Type())
		}
		if v.OverflowInt(i) {
			return nil, fmt.Errorf("codec: %d overflows %s", i, v.Type())
		}
		v.SetInt(i)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if tag == bInt && i < 0 {
			return nil, fmt.Errorf("codec: %d into unsigned %s", i, v.Type())
		}
		if v.OverflowUint(u) {
			return nil, fmt.Errorf("codec: %d overflows %s", u, v.Type())
		}
		v.SetUint(u)
	case reflect.Float32, reflect.Float64:
		if tag == bInt {
			v.SetFloat(float64(i))
		} else {
			v.SetFloat(float64(u))
		}
	default:
		return nil, decodeMismatch(tag, v.Type())
	}
	return rest, nil
}

func decodeList(data []byte, v reflect.Value, depth int) ([]byte, error) {
	count, data, err := lengthPrefix(data) // each element is >= 1 byte
	if err != nil {
		return nil, err
	}
	t := v.Type()
	switch v.Kind() {
	case reflect.Slice:
		v.Set(reflect.MakeSlice(t, count, count))
	case reflect.Array:
		if count > v.Len() {
			return nil, fmt.Errorf("codec: %d elements into %s", count, t)
		}
		v.Set(reflect.Zero(t))
	default:
		return nil, decodeMismatch(bList, t)
	}
	for i := 0; i < count; i++ {
		if data, err = decodeValue(data, v.Index(i), depth+1); err != nil {
			return nil, err
		}
	}
	return data, nil
}

func decodeMap(data []byte, v reflect.Value, depth int) ([]byte, error) {
	count, data, err := lengthPrefix(data) // each pair is >= 2 bytes, so count can't exceed len
	if err != nil {
		return nil, err
	}
	t := v.Type()
	if v.Kind() != reflect.Map {
		return nil, decodeMismatch(bMap, t)
	}
	v.Set(reflect.MakeMapWithSize(t, count))
	key := reflect.New(t.Key()).Elem()
	val := reflect.New(t.Elem()).Elem()
	for i := 0; i < count; i++ {
		if data, err = decodeValue(data, key, depth+1); err != nil {
			return nil, err
		}
		if data, err = decodeValue(data, val, depth+1); err != nil {
			return nil, err
		}
		v.SetMapIndex(key, val)
	}
	return data, nil
}

func decodeStruct(data []byte, v reflect.Value, depth int) ([]byte, error) {
	count, data, err := lengthPrefix(data)
	if err != nil {
		return nil, err
	}
	t := v.Type()
	if v.Kind() != reflect.Struct {
		return nil, decodeMismatch(bStruct, t)
	}
	v.Set(reflect.Zero(t)) // missing trailing fields decode as zero
	fields := exportedFields(t)
	for i := 0; i < count; i++ {
		var n int
		if n, data, err = lengthPrefix(data); err != nil {
			return nil, err
		}
		field, rest := data[:n], data[n:]
		if i < len(fields) {
			left, err := decodeValue(field, v.Field(fields[i]), depth+1)
			if err != nil {
				return nil, err
			}
			if len(left) != 0 {
				return nil, fmt.Errorf("codec: %d stray bytes inside field %s", len(left), t.Field(fields[i]).Name)
			}
		}
		// Fields beyond the ones this build knows are skipped: that is the
		// append-only schema-evolution contract.
		data = rest
	}
	return data, nil
}

func decodeMarshaled(data []byte, ptr reflect.Value) ([]byte, error) {
	n, rest, err := lengthPrefix(data)
	if err != nil {
		return nil, err
	}
	um := ptr.Interface().(encoding.BinaryUnmarshaler)
	// BinaryUnmarshaler implementations may retain their input; hand over a
	// copy so the no-aliasing contract holds.
	if err := um.UnmarshalBinary(append([]byte(nil), rest[:n]...)); err != nil {
		return nil, fmt.Errorf("codec: binary unmarshal %s: %w", ptr.Type().Elem(), err)
	}
	return rest[n:], nil
}

// decodeGeneric decodes a value into its natural Go shape for interface{}
// targets: nil, bool, int64, uint64, float64, string, []byte, []any,
// map[any]any; struct and marshaled payloads surface as []any and []byte.
func decodeGeneric(tag byte, data []byte, depth int) (any, []byte, error) {
	if depth > maxDepth {
		return nil, nil, errTooDeep
	}
	switch tag {
	case bNil:
		return nil, data, nil
	case bFalse:
		return false, data, nil
	case bTrue:
		return true, data, nil
	case bInt:
		i, n := binary.Varint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("codec: malformed varint: %w", errShortValue)
		}
		return i, data[n:], nil
	case bUint:
		u, rest, err := uvarint(data)
		return u, rest, err
	case bFloat:
		if len(data) < 8 {
			return nil, nil, errShortValue
		}
		return math.Float64frombits(binary.BigEndian.Uint64(data)), data[8:], nil
	case bString:
		n, rest, err := lengthPrefix(data)
		if err != nil {
			return nil, nil, err
		}
		return string(rest[:n]), rest[n:], nil
	case bBytes, bMarshaled:
		n, rest, err := lengthPrefix(data)
		if err != nil {
			return nil, nil, err
		}
		return append([]byte(nil), rest[:n]...), rest[n:], nil
	case bList:
		count, rest, err := lengthPrefix(data)
		if err != nil {
			return nil, nil, err
		}
		out := make([]any, count)
		for i := range out {
			if len(rest) == 0 {
				return nil, nil, errShortValue
			}
			if out[i], rest, err = decodeGeneric(rest[0], rest[1:], depth+1); err != nil {
				return nil, nil, err
			}
		}
		return out, rest, nil
	case bMap:
		count, rest, err := lengthPrefix(data)
		if err != nil {
			return nil, nil, err
		}
		out := make(map[any]any, count)
		for i := 0; i < count; i++ {
			var k, v any
			if len(rest) == 0 {
				return nil, nil, errShortValue
			}
			if k, rest, err = decodeGeneric(rest[0], rest[1:], depth+1); err != nil {
				return nil, nil, err
			}
			if len(rest) == 0 {
				return nil, nil, errShortValue
			}
			if v, rest, err = decodeGeneric(rest[0], rest[1:], depth+1); err != nil {
				return nil, nil, err
			}
			kt := reflect.TypeOf(k)
			if kt != nil && !kt.Comparable() {
				return nil, nil, fmt.Errorf("codec: uncomparable generic map key %T", k)
			}
			out[k] = v
		}
		return out, rest, nil
	case bStruct:
		count, rest, err := lengthPrefix(data)
		if err != nil {
			return nil, nil, err
		}
		out := make([]any, count)
		for i := range out {
			var n int
			if n, rest, err = lengthPrefix(rest); err != nil {
				return nil, nil, err
			}
			field := rest[:n]
			if len(field) == 0 {
				return nil, nil, errShortValue
			}
			g, left, err := decodeGeneric(field[0], field[1:], depth+1)
			if err != nil {
				return nil, nil, err
			}
			if len(left) != 0 {
				return nil, nil, fmt.Errorf("codec: %d stray bytes inside generic field", len(left))
			}
			out[i] = g
			rest = rest[n:]
		}
		return out, rest, nil
	default:
		return nil, nil, fmt.Errorf("codec: unknown binary tag %d", tag)
	}
}
