package codec

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"testing"
	"time"
)

// conformanceValue is the kitchen-sink payload every codec must round-trip.
type conformanceValue struct {
	S       string
	I       int
	I8      int8
	I64     int64
	U       uint64
	F       float64
	B       bool
	Bytes   []byte
	List    []string
	Ints    []int
	Map     map[string]int
	Nested  inner
	PtrSet  *inner
	PtrNil  *inner
	When    time.Time
	Arr     [3]int
	ByteArr [4]byte
}

type inner struct {
	Name  string
	Count int
}

func sample() conformanceValue {
	return conformanceValue{
		S:       "héllo wörld",
		I:       -42,
		I8:      -8,
		I64:     math.MaxInt64,
		U:       math.MaxUint64,
		F:       3.14159,
		B:       true,
		Bytes:   []byte{0, 1, 2, 0xB2, 0xFF},
		List:    []string{"a", "", "c"},
		Ints:    []int{-1, 0, 1 << 40},
		Map:     map[string]int{"x": 1, "y": -2},
		Nested:  inner{Name: "n", Count: 7},
		PtrSet:  &inner{Name: "p", Count: 9},
		When:    time.Date(2014, 12, 8, 9, 30, 0, 123456789, time.UTC),
		Arr:     [3]int{5, 6, 7},
		ByteArr: [4]byte{9, 8, 7, 6},
	}
}

func allCodecs() []Codec { return []Codec{JSON{}, Gob{}, Binary{}} }

// TestConformance is the cross-codec contract suite: every codec must
// round-trip the same payloads under the same buffer-ownership rules.
func TestConformance(t *testing.T) {
	for _, c := range allCodecs() {
		t.Run(c.Name(), func(t *testing.T) {
			t.Run("round-trip", func(t *testing.T) {
				in := sample()
				data, err := c.MarshalAppend(nil, in)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				var out conformanceValue
				if err := c.Unmarshal(data, &out); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if !in.When.Equal(out.When) {
					t.Fatalf("time drift: %v != %v", out.When, in.When)
				}
				in.When, out.When = time.Time{}, time.Time{}
				if !reflect.DeepEqual(in, out) {
					t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", in, out)
				}
			})

			t.Run("append-semantics", func(t *testing.T) {
				// MarshalAppend must extend dst, not replace it.
				prefix := []byte("prefix:")
				data, err := c.MarshalAppend(prefix, inner{Name: "a", Count: 1})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.HasPrefix(data, prefix) {
					t.Fatalf("dst prefix lost: %q", data)
				}
				var out inner
				if err := c.Unmarshal(data[len(prefix):], &out); err != nil {
					t.Fatal(err)
				}
				if out.Name != "a" || out.Count != 1 {
					t.Fatalf("got %+v", out)
				}
			})

			t.Run("no-aliasing", func(t *testing.T) {
				// Decoded values must not alias the input buffer: clobbering
				// it after Unmarshal must not change the result.
				in := inner{Name: "alias-check", Count: 3}
				data, err := c.MarshalAppend(nil, in)
				if err != nil {
					t.Fatal(err)
				}
				type holder struct {
					Name  string
					Count int
				}
				var out holder
				if err := c.Unmarshal(data, &out); err != nil {
					t.Fatal(err)
				}
				for i := range data {
					data[i] = 0xAA
				}
				if out.Name != "alias-check" || out.Count != 3 {
					t.Fatalf("decoded value aliased input: %+v", out)
				}
			})

			t.Run("buffer-reuse", func(t *testing.T) {
				// The same backing buffer must be reusable across calls once
				// the previous encoding is consumed (the journal's pattern).
				var buf []byte
				for i := 0; i < 3; i++ {
					var err error
					buf, err = c.MarshalAppend(buf[:0], inner{Name: "r", Count: i})
					if err != nil {
						t.Fatal(err)
					}
					var out inner
					if err := c.Unmarshal(buf, &out); err != nil {
						t.Fatal(err)
					}
					if out.Count != i {
						t.Fatalf("iteration %d decoded %+v", i, out)
					}
				}
			})

			t.Run("empty-struct", func(t *testing.T) {
				// struct{}{} is the placeholder argument of no-arg calls; it
				// must travel under every codec (gob rejects it natively).
				data, err := c.MarshalAppend(nil, struct{}{})
				if err != nil {
					t.Fatalf("marshal struct{}{}: %v", err)
				}
				var out struct{}
				if err := c.Unmarshal(data, &out); err != nil {
					t.Fatalf("unmarshal struct{}{}: %v", err)
				}
			})

			t.Run("scalars", func(t *testing.T) {
				data, err := c.MarshalAppend(nil, 12345)
				if err != nil {
					t.Fatal(err)
				}
				var n int
				if err := c.Unmarshal(data, &n); err != nil {
					t.Fatal(err)
				}
				if n != 12345 {
					t.Fatalf("got %d", n)
				}
			})
		})
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{"": "json", "json": "json", "gob": "gob", "bin": "bin"} {
		c, err := ByName(name)
		if err != nil || c.Name() != want {
			t.Fatalf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("protobuf"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestBinarySchemaEvolution exercises the append-only evolution contract:
// old readers skip unknown trailing fields, new readers zero missing ones.
func TestBinarySchemaEvolution(t *testing.T) {
	type v1 struct {
		A string
		B int
	}
	type v2 struct {
		A string
		B int
		C []string
		D *inner
	}
	c := Binary{}

	newData, err := c.MarshalAppend(nil, v2{A: "x", B: 2, C: []string{"c"}, D: &inner{Name: "d"}})
	if err != nil {
		t.Fatal(err)
	}
	var old v1
	if err := c.Unmarshal(newData, &old); err != nil {
		t.Fatalf("old reader rejected new data: %v", err)
	}
	if old.A != "x" || old.B != 2 {
		t.Fatalf("old reader decoded %+v", old)
	}

	oldData, err := c.MarshalAppend(nil, v1{A: "y", B: 3})
	if err != nil {
		t.Fatal(err)
	}
	newer := v2{C: []string{"stale"}, D: &inner{Name: "stale"}}
	if err := c.Unmarshal(oldData, &newer); err != nil {
		t.Fatalf("new reader rejected old data: %v", err)
	}
	if newer.A != "y" || newer.B != 3 || newer.C != nil || newer.D != nil {
		t.Fatalf("missing fields not zeroed: %+v", newer)
	}
}

// TestBinaryMalformed feeds truncated and corrupt input; every case must
// fail cleanly, never panic or over-allocate.
func TestBinaryMalformed(t *testing.T) {
	c := Binary{}
	good, err := c.MarshalAppend(nil, sample())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"unknown-tag":      {0xEE},
		"truncated-varint": {bUint, 0x80, 0x80, 0x80},
		"overlong-varint":  {bUint, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		"huge-string":      {bString, 0xFF, 0xFF, 0xFF, 0x7F, 'x'},
		"huge-list":        {bList, 0xFF, 0xFF, 0xFF, 0x7F, bNil},
		"short-float":      {bFloat, 1, 2, 3},
		"trailing-bytes":   append(append([]byte(nil), good...), 0x00),
	}
	for i := 1; i < len(good); i += 97 {
		cases["truncated-"+string(rune('a'+i%26))] = good[:i]
	}
	for name, data := range cases {
		var out conformanceValue
		if err := c.Unmarshal(data, &out); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
}

// TestBinaryGenericDecode covers interface{} targets.
func TestBinaryGenericDecode(t *testing.T) {
	c := Binary{}
	data, err := c.MarshalAppend(nil, []any{int64(-5), "s", true, nil, []byte{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var out any
	if err := c.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	want := []any{int64(-5), "s", true, nil, []byte{1, 2}}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %#v want %#v", out, want)
	}
}

// TestBinaryCycleFails ensures cyclic values error out instead of hanging.
func TestBinaryCycleFails(t *testing.T) {
	type node struct {
		Next *node
	}
	n := &node{}
	n.Next = n
	if _, err := (Binary{}).MarshalAppend(nil, n); err == nil {
		t.Fatal("cyclic value encoded")
	}
}

// TestBinaryLongField exercises the >127-byte length-prefix patch path.
func TestBinaryLongField(t *testing.T) {
	type big struct {
		Blob []byte
		Tail string
	}
	in := big{Blob: bytes.Repeat([]byte{0x5A}, 1<<15), Tail: "end"}
	data, err := Binary{}.MarshalAppend(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out big
	if err := (Binary{}).Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Blob, in.Blob) || out.Tail != "end" {
		t.Fatal("long-field round trip failed")
	}
}

// TestBinaryCompact sanity-checks the size win over JSON on a typical
// request payload — the codec exists to shrink and speed the hot path.
func TestBinaryCompact(t *testing.T) {
	v := sample()
	jdata, _ := JSON{}.MarshalAppend(nil, v)
	bdata, _ := Binary{}.MarshalAppend(nil, v)
	if len(bdata) >= len(jdata) {
		t.Fatalf("binary (%d bytes) not smaller than JSON (%d bytes)", len(bdata), len(jdata))
	}
}

func TestDefaultFollowsEnv(t *testing.T) {
	// Default is process-wide (sync.Once): assert it against whatever the
	// environment says rather than mutating it. The CI codec matrix runs
	// this test under each STACKSYNC_CODEC value, which is exactly what
	// pins "the env var really selects the codec".
	name := os.Getenv(EnvVar)
	want := "json"
	if name != "" {
		want = name
	}
	if got := Default().Name(); got != want {
		t.Fatalf("Default() = %q, %s = %q", got, EnvVar, name)
	}
}
