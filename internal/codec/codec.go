// Package codec defines the v2 serialization API shared by ObjectMQ
// argument marshalling, the mq journal and wire-adjacent layers: an
// append-style encoder that composes with pooled buffers instead of
// allocating a fresh slice per value. The paper's implementation swaps
// between Kryo, Java serialization and JSON; here JSON, gob and a compact
// length-prefixed binary format (the Kryo analogue) are provided, selected
// per message via the "codec" header so mixed fleets interoperate.
//
// # Buffer ownership
//
// MarshalAppend appends the encoding of v to dst (which may be nil) and
// returns the extended slice, exactly like the standard library's
// strconv.AppendInt family: the returned slice may share dst's backing
// array or may be a reallocation, and the codec retains neither. The caller
// owns the result and may reuse dst's backing array once the returned slice
// is no longer needed.
//
// Unmarshal never retains data, and no decoded value aliases data (byte
// slices in the result are copies). Callers may therefore decode straight
// out of pooled or reused network buffers and recycle them immediately
// after Unmarshal returns.
package codec

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sync"
)

// Codec serializes call arguments, results and journal records.
type Codec interface {
	// Name is the wire identity carried in the "codec" message header.
	Name() string
	// MarshalAppend appends the encoding of v to dst and returns the
	// extended slice (see the package comment for the ownership contract).
	MarshalAppend(dst []byte, v any) ([]byte, error)
	// Unmarshal decodes data into v without retaining or aliasing data.
	Unmarshal(data []byte, v any) error
}

// JSON encodes values as JSON. It is the default: readable on the wire and
// tolerant of schema evolution.
type JSON struct{}

var _ Codec = JSON{}

// Name returns "json".
func (JSON) Name() string { return "json" }

// MarshalAppend appends the JSON encoding of v to dst.
func (JSON) MarshalAppend(dst []byte, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return dst, err
	}
	return append(dst, data...), nil
}

// Unmarshal decodes JSON into v.
func (JSON) Unmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// Gob encodes values with encoding/gob: the Go-native reflection transport.
// Types with unexported fields or interfaces must be registered by the
// caller via gob.Register. Structs with no exported fields (which gob
// rejects) encode as zero bytes, so placeholder arguments like struct{}{}
// travel under every codec.
type Gob struct{}

var _ Codec = Gob{}

// Name returns "gob".
func (Gob) Name() string { return "gob" }

// noGobFields reports whether v is a struct value gob cannot represent
// because it exports no fields (e.g. struct{}{}).
func noGobFields(t reflect.Type) bool {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return false
	}
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).IsExported() {
			return false
		}
	}
	return true
}

// MarshalAppend appends the gob encoding of v to dst.
func (Gob) MarshalAppend(dst []byte, v any) ([]byte, error) {
	if v != nil && noGobFields(reflect.TypeOf(v)) {
		return dst, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return dst, fmt.Errorf("codec: gob encode: %w", err)
	}
	return append(dst, buf.Bytes()...), nil
}

// Unmarshal decodes gob data into v.
func (Gob) Unmarshal(data []byte, v any) error {
	if len(data) == 0 && v != nil && noGobFields(reflect.TypeOf(v)) {
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("codec: gob decode: %w", err)
	}
	return nil
}

// ByName resolves a codec from its wire name. The empty name is JSON, the
// historical envelope default.
func ByName(name string) (Codec, error) {
	switch name {
	case "json", "":
		return JSON{}, nil
	case "gob":
		return Gob{}, nil
	case "bin":
		return Binary{}, nil
	default:
		return nil, fmt.Errorf("codec: unknown codec %q", name)
	}
}

// EnvVar names the environment variable Default consults.
const EnvVar = "STACKSYNC_CODEC"

var defaultOnce = sync.OnceValue(func() Codec {
	name := os.Getenv(EnvVar)
	c, err := ByName(name)
	if err != nil {
		// An unknown name must not silently fall back to JSON: the CI codec
		// matrix relies on the env var actually selecting the codec.
		panic("codec: invalid " + EnvVar + "=" + name)
	}
	return c
})

// Default returns the process-wide default codec: JSON, unless the
// STACKSYNC_CODEC environment variable selects another (json, gob or bin —
// an unknown value panics on first use rather than silently testing the
// wrong codec). The CI codec matrix uses this to run the full omq/mq test
// surface under each codec.
func Default() Codec { return defaultOnce() }
