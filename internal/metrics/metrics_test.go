package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentile(t *testing.T) {
	values := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.5, 3}, {0.8, 4}, {0.95, 5}, {1, 5},
	}
	for _, tt := range tests {
		if got := Percentile(values, tt.p); got != tt.want {
			t.Fatalf("Percentile(%.2f) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p = math.Abs(math.Mod(p, 1))
		got := Percentile(vals, p)
		sorted := append([]float64{}, vals...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFFullResolution(t *testing.T) {
	pts := CDF([]float64{1, 2, 2, 3}, nil)
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("CDF points = %+v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("CDF[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestCDFProbes(t *testing.T) {
	pts := CDF([]float64{10, 20, 30, 40}, []float64{5, 20, 35, 100})
	wantFracs := []float64{0, 0.5, 0.75, 1}
	for i, p := range pts {
		if p.Fraction != wantFracs[i] {
			t.Fatalf("probe %v fraction = %v, want %v", p.Value, p.Fraction, wantFracs[i])
		}
	}
	if CDF(nil, []float64{1}) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestBoxplotFiveNumbers(t *testing.T) {
	b := NewBoxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if b.Min != 1 || b.Max != 10 || b.N != 10 {
		t.Fatalf("boxplot extremes: %+v", b)
	}
	if b.Median != 5 {
		t.Fatalf("median = %v", b.Median)
	}
	if b.Q1 != 3 || b.Q3 != 8 {
		t.Fatalf("quartiles: Q1=%v Q3=%v", b.Q1, b.Q3)
	}
	if math.Abs(b.Mean-5.5) > 1e-12 {
		t.Fatalf("mean = %v", b.Mean)
	}
	if b.Outliers != 0 {
		t.Fatalf("outliers = %d", b.Outliers)
	}
}

func TestBoxplotDetectsOutliers(t *testing.T) {
	values := []float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 100}
	b := NewBoxplot(values)
	if b.Outliers != 1 {
		t.Fatalf("outliers = %d, want 1 (%+v)", b.Outliers, b)
	}
	if b.UpperWhisker >= 100 {
		t.Fatalf("whisker includes the outlier: %v", b.UpperWhisker)
	}
	if b.Max != 100 {
		t.Fatalf("max = %v", b.Max)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	if b := NewBoxplot(nil); b.N != 0 || b.Mean != 0 {
		t.Fatalf("empty boxplot: %+v", b)
	}
}

func TestSkewness(t *testing.T) {
	symmetric := []float64{1, 2, 3, 4, 5}
	if s := Skewness(symmetric); math.Abs(s) > 1e-9 {
		t.Fatalf("symmetric skewness = %v", s)
	}
	rightSkewed := []float64{1, 1, 1, 1, 2, 2, 3, 10, 20}
	if s := Skewness(rightSkewed); s <= 0.5 {
		t.Fatalf("right-skewed skewness = %v", s)
	}
	if s := Skewness([]float64{1}); s != 0 {
		t.Fatalf("tiny sample skewness = %v", s)
	}
	if s := Skewness([]float64{3, 3, 3, 3}); s != 0 {
		t.Fatalf("zero-variance skewness = %v", s)
	}
}

func TestRecorderStatistics(t *testing.T) {
	r := NewRecorder()
	for _, ms := range []int{10, 20, 30, 40, 50} {
		r.Observe(time.Duration(ms) * time.Millisecond)
	}
	if r.Count() != 5 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.Mean(); math.Abs(got-0.03) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	// Sample variance of {.01,.02,.03,.04,.05} = 2.5e-4.
	if got := r.Variance(); math.Abs(got-2.5e-4) > 1e-9 {
		t.Fatalf("variance = %v", got)
	}
	if got := r.Percentile(0.95); got != 0.05 {
		t.Fatalf("p95 = %v", got)
	}
	b := r.Boxplot()
	if b.N != 5 || b.Median != 0.03 {
		t.Fatalf("boxplot: %+v", b)
	}
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 || r.Variance() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.ObserveSeconds(0.001)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", r.Count())
	}
	if math.Abs(r.Mean()-0.001) > 1e-12 {
		t.Fatalf("mean = %v", r.Mean())
	}
}

func TestRecorderSamplesIsCopy(t *testing.T) {
	r := NewRecorder()
	r.ObserveSeconds(1)
	s := r.Samples()
	s[0] = 999
	if r.Samples()[0] != 1 {
		t.Fatal("Samples leaked internal state")
	}
}

// TestReservoirRecorderExactMoments: with sampling enabled, Count/Mean/
// Variance still reflect every observation exactly while the raw buffer is
// bounded by the capacity.
func TestReservoirRecorderExactMoments(t *testing.T) {
	const n, capacity = 10000, 128
	r := NewReservoirRecorder(capacity)
	exact := NewRecorder()
	for i := 0; i < n; i++ {
		v := float64(i%100) / 1000 // 0..0.099s sawtooth
		r.ObserveSeconds(v)
		exact.ObserveSeconds(v)
	}
	if r.Count() != n {
		t.Fatalf("count = %d, want %d (total observations, not reservoir size)", r.Count(), n)
	}
	if got := len(r.Samples()); got != capacity {
		t.Fatalf("reservoir holds %d samples, want %d", got, capacity)
	}
	if math.Abs(r.Mean()-exact.Mean()) > 1e-12 {
		t.Fatalf("mean = %v, exact %v", r.Mean(), exact.Mean())
	}
	if math.Abs(r.Variance()-exact.Variance()) > 1e-12 {
		t.Fatalf("variance = %v, exact %v", r.Variance(), exact.Variance())
	}
}

// TestReservoirRecorderUniform: the reservoir is an unbiased sample — over a
// uniform input stream its median estimate lands near the true median.
func TestReservoirRecorderUniform(t *testing.T) {
	r := NewReservoirRecorder(512)
	const n = 50000
	for i := 0; i < n; i++ {
		r.ObserveSeconds(float64(i) / n) // uniform on [0, 1)
	}
	if med := r.Percentile(0.5); math.Abs(med-0.5) > 0.08 {
		t.Fatalf("reservoir median = %v, want ~0.5", med)
	}
	// Deterministic: the same stream reproduces the same reservoir.
	r2 := NewReservoirRecorder(512)
	for i := 0; i < n; i++ {
		r2.ObserveSeconds(float64(i) / n)
	}
	a, b := r.Samples(), r2.Samples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir not deterministic at slot %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestReservoirRecorderBelowCapacity: until the buffer fills, the recorder
// behaves exactly like the unbounded one.
func TestReservoirRecorderBelowCapacity(t *testing.T) {
	r := NewReservoirRecorder(100)
	for i := 1; i <= 10; i++ {
		r.ObserveSeconds(float64(i))
	}
	if got := r.Percentile(0.5); got != 5 {
		t.Fatalf("median = %v, want 5 (all samples retained below capacity)", got)
	}
	if got := len(r.Samples()); got != 10 {
		t.Fatalf("samples = %d, want 10", got)
	}
}
