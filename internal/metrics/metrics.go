// Package metrics provides the summary statistics the evaluation section
// reports: percentiles, CDF series (Fig. 7a), boxplot five-number summaries
// (Fig. 7e, 8f) and streaming mean/variance recorders for response times.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Percentile returns the p-th percentile (0..1) of values using nearest-rank
// on a sorted copy. An empty input yields 0.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64 `json:"value"`
	Fraction float64 `json:"fraction"`
}

// CDF computes the empirical CDF of values sampled at the given probe
// points; with nil probes it returns one point per distinct value.
func CDF(values []float64, probes []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	if probes == nil {
		var out []CDFPoint
		for i, v := range sorted {
			if i+1 < len(sorted) && sorted[i+1] == v {
				continue
			}
			out = append(out, CDFPoint{Value: v, Fraction: float64(i+1) / n})
		}
		return out
	}
	out := make([]CDFPoint, len(probes))
	for i, p := range probes {
		idx := sort.SearchFloat64s(sorted, math.Nextafter(p, math.Inf(1)))
		out[i] = CDFPoint{Value: p, Fraction: float64(idx) / n}
	}
	return out
}

// Boxplot is the five-number summary plus mean, as in the paper's boxplots.
type Boxplot struct {
	Min          float64 `json:"min"`
	Q1           float64 `json:"q1"`
	Median       float64 `json:"median"`
	Q3           float64 `json:"q3"`
	Max          float64 `json:"max"`
	Mean         float64 `json:"mean"`
	UpperWhisker float64 `json:"upperWhisker"` // largest value <= Q3 + 1.5*IQR
	LowerWhisker float64 `json:"lowerWhisker"` // smallest value >= Q1 - 1.5*IQR
	Outliers     int     `json:"outliers"`     // count beyond the whiskers
	N            int     `json:"n"`
}

// NewBoxplot summarizes values.
func NewBoxplot(values []float64) Boxplot {
	if len(values) == 0 {
		return Boxplot{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	b := Boxplot{
		Min:    sorted[0],
		Q1:     Percentile(sorted, 0.25),
		Median: Percentile(sorted, 0.50),
		Q3:     Percentile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		N:      len(sorted),
	}
	iqr := b.Q3 - b.Q1
	hi := b.Q3 + 1.5*iqr
	lo := b.Q1 - 1.5*iqr
	b.UpperWhisker = b.Min
	b.LowerWhisker = b.Max
	for _, v := range sorted {
		if v <= hi && v > b.UpperWhisker {
			b.UpperWhisker = v
		}
		if v >= lo && v < b.LowerWhisker {
			b.LowerWhisker = v
		}
		if v > hi || v < lo {
			b.Outliers++
		}
	}
	return b
}

// Skewness returns the sample skewness of values (0 for n < 3 or zero
// variance). Fig. 7(e) reads right-skew off the UPDATE distribution.
func Skewness(values []float64) float64 {
	n := float64(len(values))
	if n < 3 {
		return 0
	}
	var mean float64
	for _, v := range values {
		mean += v
	}
	mean /= n
	var m2, m3 float64
	for _, v := range values {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Recorder accumulates duration samples concurrently. Mean and variance are
// always exact (Welford's online algorithm over every observation); the raw
// samples kept for percentiles/boxplots are either complete (the default,
// exact mode) or a fixed-size uniform reservoir (NewReservoirRecorder), so
// long soaks get bounded memory while quantile estimates stay unbiased.
type Recorder struct {
	mu      sync.Mutex
	samples []float64 // seconds; all of them, or the reservoir
	n       uint64    // total observations (>= len(samples))
	mean    float64
	m2      float64
	cap     int    // reservoir capacity; 0 = exact mode (keep everything)
	rng     uint64 // xorshift64 state for reservoir replacement
}

// NewRecorder returns an empty recorder that keeps every sample.
func NewRecorder() *Recorder { return &Recorder{} }

// NewReservoirRecorder returns a recorder that keeps at most capacity raw
// samples, maintained as a uniform random reservoir (Vitter's Algorithm R):
// after n observations every sample has probability capacity/n of being in
// the buffer. Count, Mean and Variance still reflect every observation
// exactly; Percentile, Samples and Boxplot are estimates drawn from the
// reservoir. The replacement sequence is seeded deterministically, so equal
// observation sequences yield equal reservoirs.
func NewReservoirRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		return NewRecorder()
	}
	return &Recorder{cap: capacity, rng: 0x9E3779B97F4A7C15}
}

// Observe adds one duration sample.
func (r *Recorder) Observe(d time.Duration) { r.ObserveSeconds(d.Seconds()) }

// ObserveSeconds adds one sample expressed in seconds.
func (r *Recorder) ObserveSeconds(s float64) {
	r.mu.Lock()
	r.n++
	delta := s - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (s - r.mean)
	switch {
	case r.cap == 0 || len(r.samples) < r.cap:
		r.samples = append(r.samples, s)
	default:
		// Algorithm R: the new sample displaces a random slot with
		// probability cap/n, keeping the reservoir uniform.
		if j := r.nextUint64() % r.n; j < uint64(r.cap) {
			r.samples[j] = s
		}
	}
	r.mu.Unlock()
}

// nextUint64 steps the xorshift64 generator. Callers hold r.mu.
func (r *Recorder) nextUint64() uint64 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

// Count returns the total number of observations (not the reservoir size).
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.n)
}

// Mean returns the exact sample mean in seconds over all observations.
func (r *Recorder) Mean() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mean
}

// Variance returns the exact sample variance in seconds² over all
// observations.
func (r *Recorder) Variance() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Percentile returns the p-th percentile in seconds (estimated from the
// reservoir when sampling is enabled).
func (r *Recorder) Percentile(p float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Percentile(r.samples, p)
}

// Samples returns a copy of the retained samples in seconds: every
// observation in exact mode, the current reservoir otherwise.
func (r *Recorder) Samples() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(r.samples))
	copy(out, r.samples)
	return out
}

// Boxplot summarizes the retained samples.
func (r *Recorder) Boxplot() Boxplot { return NewBoxplot(r.Samples()) }

// Reset discards all samples (the reservoir capacity and RNG state persist).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.n = 0
	r.mean = 0
	r.m2 = 0
	r.mu.Unlock()
}
