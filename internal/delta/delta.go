// Package delta implements rsync-style delta encoding (librsync's role in
// Dropbox per [1], §2): the receiver publishes block signatures (rolling
// Adler-32-style checksum + SHA-1) of the version it holds; the sender
// scans the new version with a rolling window, emitting copy instructions
// for matched blocks and literal bytes for the rest.
//
// The paper identifies delta encoding as why Dropbox beats StackSync's
// fixed 512 KB chunking on UPDATE traffic (Fig. 7d); this package is the
// corresponding extension for StackSync, exercised by the ablation bench.
package delta

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultBlockSize is the signature block size (rsync's default is 2 KB
// for files of this population).
const DefaultBlockSize = 2048

// BlockSig is the signature of one block of the basis file.
type BlockSig struct {
	// Index is the block's position in the basis (Index*BlockSize offset).
	Index uint32 `json:"index"`
	// Weak is the rolling checksum (cheap, collision-prone filter).
	Weak uint32 `json:"weak"`
	// Strong is the SHA-1 of the block (verifies weak matches).
	Strong [sha1.Size]byte `json:"strong"`
}

// Signature describes a basis file for delta computation.
type Signature struct {
	BlockSize int        `json:"blockSize"`
	FileSize  int64      `json:"fileSize"`
	Blocks    []BlockSig `json:"blocks"`
}

// WireSize estimates the bytes a signature occupies in transit (what the
// paper measures as part of Dropbox's update traffic).
func (s *Signature) WireSize() int64 {
	// 4B weak + 20B strong + 4B index per block, plus a small header.
	return int64(len(s.Blocks))*28 + 16
}

// NewSignature computes the signature of basis.
func NewSignature(basis []byte, blockSize int) *Signature {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	sig := &Signature{BlockSize: blockSize, FileSize: int64(len(basis))}
	for i := 0; i*blockSize < len(basis); i++ {
		start := i * blockSize
		end := start + blockSize
		if end > len(basis) {
			end = len(basis)
		}
		block := basis[start:end]
		sig.Blocks = append(sig.Blocks, BlockSig{
			Index:  uint32(i),
			Weak:   weakSum(block),
			Strong: sha1.Sum(block),
		})
	}
	return sig
}

// weakSum is the Adler-32-style rolling checksum rsync uses: two 16-bit
// sums over the window, combinable under byte rotation.
func weakSum(p []byte) uint32 {
	var a, b uint32
	for i, c := range p {
		a += uint32(c)
		b += uint32(len(p)-i) * uint32(c)
	}
	return (a & 0xffff) | (b << 16)
}

// roll updates a weak sum when the window slides one byte: out leaves,
// in enters, n is the window length.
func roll(sum uint32, out, in byte, n int) uint32 {
	a := sum & 0xffff
	b := sum >> 16
	a = (a - uint32(out) + uint32(in)) & 0xffff
	b = (b - uint32(n)*uint32(out) + a) & 0xffff
	return a | (b << 16)
}

// OpKind distinguishes delta instructions.
type OpKind byte

const (
	// OpCopy references a block range of the basis.
	OpCopy OpKind = 1
	// OpLiteral carries raw bytes absent from the basis.
	OpLiteral OpKind = 2
)

// Op is one delta instruction.
type Op struct {
	Kind OpKind `json:"kind"`
	// BlockIndex and BlockCount define a copy range (OpCopy).
	BlockIndex uint32 `json:"blockIndex,omitempty"`
	BlockCount uint32 `json:"blockCount,omitempty"`
	// Data carries literal bytes (OpLiteral).
	Data []byte `json:"data,omitempty"`
}

// Delta is the instruction stream transforming a basis into the target.
type Delta struct {
	BlockSize  int   `json:"blockSize"`
	TargetSize int64 `json:"targetSize"`
	Ops        []Op  `json:"ops"`
}

// LiteralBytes totals the raw data carried by the delta — the part that
// actually travels beyond bookkeeping.
func (d *Delta) LiteralBytes() int64 {
	var n int64
	for _, op := range d.Ops {
		if op.Kind == OpLiteral {
			n += int64(len(op.Data))
		}
	}
	return n
}

// WireSize estimates the transmitted size of the delta.
func (d *Delta) WireSize() int64 {
	var n int64 = 16
	for _, op := range d.Ops {
		if op.Kind == OpLiteral {
			n += 5 + int64(len(op.Data))
		} else {
			n += 9
		}
	}
	return n
}

// Compute scans target against the basis signature and produces a delta.
func Compute(sig *Signature, target []byte) *Delta {
	blockSize := sig.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	d := &Delta{BlockSize: blockSize, TargetSize: int64(len(target))}
	// Index full-size blocks by weak sum. The (possibly short) final block
	// only matches at the very end of the target.
	byWeak := make(map[uint32][]BlockSig, len(sig.Blocks))
	var tail *BlockSig
	for i, b := range sig.Blocks {
		isTail := i == len(sig.Blocks)-1 && sig.FileSize%int64(blockSize) != 0
		if isTail {
			t := b
			tail = &t
			continue
		}
		byWeak[b.Weak] = append(byWeak[b.Weak], b)
	}

	var literal []byte
	flushLiteral := func() {
		if len(literal) > 0 {
			d.Ops = append(d.Ops, Op{Kind: OpLiteral, Data: literal})
			literal = nil
		}
	}
	emitCopy := func(index uint32) {
		// Extend the previous copy when contiguous.
		if n := len(d.Ops); n > 0 {
			last := &d.Ops[n-1]
			if last.Kind == OpCopy && last.BlockIndex+last.BlockCount == index {
				last.BlockCount++
				return
			}
		}
		d.Ops = append(d.Ops, Op{Kind: OpCopy, BlockIndex: index, BlockCount: 1})
	}

	pos := 0
	var sum uint32
	haveSum := false
	for pos < len(target) {
		remaining := len(target) - pos
		// Tail match: the basis' short final block at the target's end.
		if tail != nil && remaining == int(sig.FileSize%int64(blockSize)) {
			window := target[pos:]
			if weakSum(window) == tail.Weak && sha1.Sum(window) == tail.Strong {
				flushLiteral()
				emitCopy(tail.Index)
				pos = len(target)
				break
			}
		}
		if remaining < blockSize {
			literal = append(literal, target[pos:]...)
			pos = len(target)
			break
		}
		if !haveSum {
			sum = weakSum(target[pos : pos+blockSize])
			haveSum = true
		}
		if candidates, ok := byWeak[sum]; ok {
			strong := sha1.Sum(target[pos : pos+blockSize])
			matched := false
			for _, c := range candidates {
				if c.Strong == strong {
					flushLiteral()
					emitCopy(c.Index)
					pos += blockSize
					haveSum = false
					matched = true
					break
				}
			}
			if matched {
				continue
			}
		}
		// Slide one byte.
		literal = append(literal, target[pos])
		if pos+blockSize < len(target) {
			sum = roll(sum, target[pos], target[pos+blockSize], blockSize)
		} else {
			haveSum = false
		}
		pos++
	}
	flushLiteral()
	return d
}

// Errors returned by Apply.
var (
	ErrBadDelta = errors.New("delta: malformed delta")
)

// Apply reconstructs the target from the basis and a delta.
func Apply(basis []byte, d *Delta) ([]byte, error) {
	blockSize := d.BlockSize
	if blockSize <= 0 {
		return nil, fmt.Errorf("%w: block size %d", ErrBadDelta, d.BlockSize)
	}
	out := make([]byte, 0, d.TargetSize)
	for _, op := range d.Ops {
		switch op.Kind {
		case OpLiteral:
			out = append(out, op.Data...)
		case OpCopy:
			start := int(op.BlockIndex) * blockSize
			end := start + int(op.BlockCount)*blockSize
			if start > len(basis) {
				return nil, fmt.Errorf("%w: copy past basis end", ErrBadDelta)
			}
			if end > len(basis) {
				end = len(basis) // final short block
			}
			out = append(out, basis[start:end]...)
		default:
			return nil, fmt.Errorf("%w: op kind %d", ErrBadDelta, op.Kind)
		}
	}
	if int64(len(out)) != d.TargetSize {
		return nil, fmt.Errorf("%w: reconstructed %d bytes, want %d", ErrBadDelta, len(out), d.TargetSize)
	}
	return out, nil
}

// Marshal encodes a delta compactly (binary, not JSON) for transmission.
func (d *Delta) Marshal() []byte {
	buf := make([]byte, 0, d.WireSize())
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(d.BlockSize))
	buf = append(buf, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(d.TargetSize))
	buf = append(buf, tmp[:]...)
	for _, op := range d.Ops {
		buf = append(buf, byte(op.Kind))
		switch op.Kind {
		case OpCopy:
			binary.BigEndian.PutUint32(tmp[:4], op.BlockIndex)
			buf = append(buf, tmp[:4]...)
			binary.BigEndian.PutUint32(tmp[:4], op.BlockCount)
			buf = append(buf, tmp[:4]...)
		case OpLiteral:
			binary.BigEndian.PutUint32(tmp[:4], uint32(len(op.Data)))
			buf = append(buf, tmp[:4]...)
			buf = append(buf, op.Data...)
		}
	}
	return buf
}

// Unmarshal decodes a delta produced by Marshal.
func Unmarshal(data []byte) (*Delta, error) {
	if len(data) < 12 {
		return nil, ErrBadDelta
	}
	d := &Delta{
		BlockSize:  int(binary.BigEndian.Uint32(data[:4])),
		TargetSize: int64(binary.BigEndian.Uint64(data[4:12])),
	}
	pos := 12
	for pos < len(data) {
		kind := OpKind(data[pos])
		pos++
		switch kind {
		case OpCopy:
			if pos+8 > len(data) {
				return nil, ErrBadDelta
			}
			d.Ops = append(d.Ops, Op{
				Kind:       OpCopy,
				BlockIndex: binary.BigEndian.Uint32(data[pos : pos+4]),
				BlockCount: binary.BigEndian.Uint32(data[pos+4 : pos+8]),
			})
			pos += 8
		case OpLiteral:
			if pos+4 > len(data) {
				return nil, ErrBadDelta
			}
			n := int(binary.BigEndian.Uint32(data[pos : pos+4]))
			pos += 4
			if pos+n > len(data) {
				return nil, ErrBadDelta
			}
			d.Ops = append(d.Ops, Op{Kind: OpLiteral, Data: append([]byte{}, data[pos:pos+n]...)})
			pos += n
		default:
			return nil, fmt.Errorf("%w: op kind %d", ErrBadDelta, kind)
		}
	}
	return d, nil
}
