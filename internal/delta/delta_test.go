package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func roundTrip(t *testing.T, basis, target []byte, blockSize int) *Delta {
	t.Helper()
	sig := NewSignature(basis, blockSize)
	d := Compute(sig, target)
	got, err := Apply(basis, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return d
}

func TestIdenticalFilesTransferNoLiterals(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	basis := randBytes(r, 100_000)
	d := roundTrip(t, basis, basis, 2048)
	if lit := d.LiteralBytes(); lit != 0 {
		t.Fatalf("identical files carried %d literal bytes", lit)
	}
	// Contiguous copies coalesce into one op.
	if len(d.Ops) != 1 {
		t.Fatalf("expected a single coalesced copy, got %d ops", len(d.Ops))
	}
}

func TestAppendTransfersOnlyTail(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	basis := randBytes(r, 64*1024)
	tail := randBytes(r, 500)
	target := append(append([]byte{}, basis...), tail...)
	d := roundTrip(t, basis, target, 2048)
	if lit := d.LiteralBytes(); lit > 4096 {
		t.Fatalf("append of 500B transferred %d literal bytes", lit)
	}
}

func TestPrependResynchronizes(t *testing.T) {
	// The scenario where fixed-size chunking re-uploads everything: the
	// rolling window must resynchronize after the insertion, keeping
	// literals near the insertion size (§5.2.2's delta-encoding advantage).
	r := rand.New(rand.NewSource(3))
	basis := randBytes(r, 256*1024)
	target := append(randBytes(r, 300), basis...)
	d := roundTrip(t, basis, target, 2048)
	if lit := d.LiteralBytes(); lit > 8192 {
		t.Fatalf("prepend of 300B transferred %d literal bytes", lit)
	}
}

func TestMiddleEditTransfersAffectedBlocksOnly(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	basis := randBytes(r, 512*1024)
	target := append([]byte{}, basis...)
	copy(target[250_000:250_200], randBytes(r, 200))
	d := roundTrip(t, basis, target, 2048)
	if lit := d.LiteralBytes(); lit > 3*2048 {
		t.Fatalf("200B middle edit transferred %d literal bytes", lit)
	}
}

func TestCompletelyDifferentFilesAreAllLiteral(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	basis := randBytes(r, 50_000)
	target := randBytes(r, 60_000)
	d := roundTrip(t, basis, target, 2048)
	if lit := d.LiteralBytes(); lit != 60_000 {
		t.Fatalf("unrelated files: literal %d, want full 60000", lit)
	}
}

func TestEmptyEdgeCases(t *testing.T) {
	roundTrip(t, nil, nil, 2048)
	roundTrip(t, nil, []byte("from nothing"), 2048)
	roundTrip(t, []byte("to nothing"), nil, 2048)
	roundTrip(t, []byte("short"), []byte("short"), 2048)
}

func TestShortTailBlockMatches(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	basis := randBytes(r, 2048*3+777) // final short block
	d := roundTrip(t, basis, basis, 2048)
	if lit := d.LiteralBytes(); lit != 0 {
		t.Fatalf("tail block not matched: %d literal bytes", lit)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(basis, target []byte, seed int64) bool {
		sig := NewSignature(basis, 64)
		d := Compute(sig, target)
		got, err := Apply(basis, d)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedSuffixProperty(t *testing.T) {
	// Derived targets (edit a copy of the basis) must transfer less literal
	// data than the whole file whenever a few whole blocks survive.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		n := 20_000 + r.Intn(80_000)
		basis := randBytes(r, n)
		target := append([]byte{}, basis...)
		// A handful of point edits.
		for e := 0; e < 3; e++ {
			pos := r.Intn(len(target))
			target[pos] ^= 0xFF
		}
		d := roundTrip(t, basis, target, 1024)
		if d.LiteralBytes() >= int64(n)/2 {
			t.Fatalf("3 point edits on %dB transferred %d literals", n, d.LiteralBytes())
		}
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	basis := randBytes(r, 100_000)
	target := append(randBytes(r, 100), basis...)
	sig := NewSignature(basis, 2048)
	d := Compute(sig, target)

	encoded := d.Marshal()
	if int64(len(encoded)) > d.WireSize()+16 {
		t.Fatalf("encoding (%d) larger than WireSize estimate (%d)", len(encoded), d.WireSize())
	}
	decoded, err := Unmarshal(encoded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Apply(basis, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("marshalled delta does not reconstruct the target")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		append(make([]byte, 12), 99),            // unknown op kind
		append(make([]byte, 12), 1, 0, 0),       // truncated copy
		append(make([]byte, 12), 2, 0, 0, 1, 0), // literal length beyond data
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestApplyRejectsCorruptDelta(t *testing.T) {
	basis := []byte("0123456789")
	if _, err := Apply(basis, &Delta{BlockSize: 0}); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := Apply(basis, &Delta{
		BlockSize: 4, TargetSize: 4,
		Ops: []Op{{Kind: OpCopy, BlockIndex: 99, BlockCount: 1}},
	}); err == nil {
		t.Fatal("copy past basis accepted")
	}
	if _, err := Apply(basis, &Delta{
		BlockSize: 4, TargetSize: 99,
		Ops: []Op{{Kind: OpLiteral, Data: []byte("x")}},
	}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestWeakSumRollEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := randBytes(r, 4096)
	const n = 256
	sum := weakSum(data[:n])
	for i := 1; i+n <= len(data); i++ {
		sum = roll(sum, data[i-1], data[i+n-1], n)
		if want := weakSum(data[i : i+n]); sum != want {
			t.Fatalf("rolled sum diverged at offset %d: %08x vs %08x", i, sum, want)
		}
	}
}

func TestSignatureWireSizeScales(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	small := NewSignature(randBytes(r, 10_000), 2048)
	big := NewSignature(randBytes(r, 1_000_000), 2048)
	if small.WireSize() >= big.WireSize() {
		t.Fatal("signature size does not scale with file size")
	}
	if len(big.Blocks) != 489 { // ceil(1e6/2048)
		t.Fatalf("block count = %d", len(big.Blocks))
	}
}
