package delta

import (
	"math/rand"
	"testing"
)

// BenchmarkSignature measures signature computation over an 8 MB basis —
// the receiver-side cost of delta sync.
func BenchmarkSignature(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	basis := make([]byte, 8<<20)
	r.Read(basis)
	b.SetBytes(int64(len(basis)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSignature(basis, DefaultBlockSize)
	}
}

// BenchmarkComputeSmallEdit measures delta computation for a point edit on
// an 8 MB file — the sender-side cost when nearly everything matches.
func BenchmarkComputeSmallEdit(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	basis := make([]byte, 8<<20)
	r.Read(basis)
	target := append([]byte{}, basis...)
	copy(target[4<<20:4<<20+256], make([]byte, 256))
	sig := NewSignature(basis, DefaultBlockSize)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compute(sig, target)
	}
}

// BenchmarkComputeUnrelated measures the worst case: no blocks match and
// the rolling window slides over every byte.
func BenchmarkComputeUnrelated(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	basis := make([]byte, 1<<20)
	r.Read(basis)
	target := make([]byte, 1<<20)
	r.Read(target)
	sig := NewSignature(basis, DefaultBlockSize)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compute(sig, target)
	}
}

// BenchmarkApply measures patch application.
func BenchmarkApply(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	basis := make([]byte, 8<<20)
	r.Read(basis)
	target := append(append([]byte{}, []byte("prefix")...), basis...)
	sig := NewSignature(basis, DefaultBlockSize)
	d := Compute(sig, target)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(basis, d); err != nil {
			b.Fatal(err)
		}
	}
}
