package benchhist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The static dashboard: dev/bench/data.js + index.html in the
// buildpacks/pack window.BENCHMARK_DATA style. data.js is derived from the
// history file alone (lastUpdate is the newest record's timestamp, not the
// generation time), so `make dashboard` is deterministic: same history,
// byte-identical output.

// dashCommit is the per-entry commit block of data.js.
type dashCommit struct {
	ID        string `json:"id"`
	Dirty     bool   `json:"dirty"`
	Host      string `json:"host,omitempty"`
	GoVersion string `json:"goVersion,omitempty"`
}

// dashBench is one measured value of a data.js entry.
type dashBench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Dir   string  `json:"dir,omitempty"`
}

// dashEntry is one benchmark run of a suite series.
type dashEntry struct {
	Commit  dashCommit  `json:"commit"`
	Date    int64       `json:"date"` // unix ms, BENCHMARK_DATA convention
	Benches []dashBench `json:"benches"`
}

// dashData is the window.BENCHMARK_DATA payload.
type dashData struct {
	LastUpdate int64                  `json:"lastUpdate"`
	RepoURL    string                 `json:"repoUrl"`
	Entries    map[string][]dashEntry `json:"entries"`
}

// WriteDashboard renders the history as a static dashboard under outDir:
// data.js holding the full series and index.html rendering one chart per
// metric, grouped by suite. Records appear in append order.
func WriteDashboard(outDir string, h *History) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("benchhist: create dashboard dir: %w", err)
	}
	data := dashData{
		RepoURL: "stacksync",
		Entries: make(map[string][]dashEntry),
	}
	for _, rec := range h.Records {
		if ms := rec.TakenAt.UnixMilli(); ms > data.LastUpdate {
			data.LastUpdate = ms
		}
		entry := dashEntry{
			Commit: dashCommit{
				ID: rec.Commit, Dirty: rec.Dirty,
				Host: rec.Host, GoVersion: rec.GoVersion,
			},
			Date: rec.TakenAt.UnixMilli(),
		}
		for _, m := range rec.Metrics {
			entry.Benches = append(entry.Benches, dashBench{
				Name: m.Name, Value: m.Value, Unit: m.Unit, Dir: m.Dir,
			})
		}
		data.Entries[rec.Suite] = append(data.Entries[rec.Suite], entry)
	}
	payload, err := json.MarshalIndent(&data, "", "  ")
	if err != nil {
		return fmt.Errorf("benchhist: encode dashboard data: %w", err)
	}
	js := append([]byte("window.BENCHMARK_DATA = "), payload...)
	js = append(js, '\n')
	if err := os.WriteFile(filepath.Join(outDir, "data.js"), js, 0o644); err != nil {
		return fmt.Errorf("benchhist: write data.js: %w", err)
	}
	if err := os.WriteFile(filepath.Join(outDir, "index.html"), []byte(dashboardHTML), 0o644); err != nil {
		return fmt.Errorf("benchhist: write index.html: %w", err)
	}
	return nil
}

// dashboardHTML is the static chart page. It renders every metric series of
// window.BENCHMARK_DATA as an inline SVG line chart — no external assets,
// so the page works from a file:// URL and its bytes never change unless
// this constant does.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>stacksync benchmark history</title>
<style>
  body { font: 14px/1.4 -apple-system, "Segoe UI", Roboto, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a2e; }
  h1 { font-size: 1.4rem; }
  h2 { font-size: 1.1rem; border-bottom: 1px solid #d8d8e4; padding-bottom: .3rem; margin-top: 2rem; }
  .meta { color: #667; }
  .charts { display: grid; grid-template-columns: repeat(auto-fill, minmax(21rem, 1fr)); gap: 1rem; }
  .chart { border: 1px solid #d8d8e4; border-radius: 6px; padding: .6rem .8rem .2rem; }
  .chart h3 { font-size: .85rem; margin: 0 0 .2rem; font-weight: 600; word-break: break-all; }
  .chart .unit { color: #667; font-weight: 400; }
  .chart .gated { color: #7a4ec7; font-weight: 400; }
  svg { width: 100%; height: 9rem; }
  .line { fill: none; stroke: #4a6fd4; stroke-width: 1.5; }
  .dot { fill: #4a6fd4; }
  .dot.dirty { fill: #c75e4e; }
  .axis { stroke: #c8c8d8; stroke-width: 1; }
  .lbl { font-size: 9px; fill: #667; }
</style>
</head>
<body>
<h1>stacksync benchmark history</h1>
<p class="meta" id="meta"></p>
<div id="root"></div>
<script src="data.js"></script>
<script>
(function () {
  var data = window.BENCHMARK_DATA;
  if (!data) { document.getElementById('root').textContent = 'no data.js found'; return; }
  document.getElementById('meta').textContent =
    'last update ' + new Date(data.lastUpdate).toISOString() + ' · red points: dirty working tree';

  function fmt(v) {
    if (v === 0) return '0';
    var a = Math.abs(v);
    if (a >= 1e6) return (v / 1e6).toFixed(1) + 'M';
    if (a >= 1e3) return (v / 1e3).toFixed(1) + 'k';
    if (a < 0.01) return v.toExponential(1);
    return +v.toFixed(3) + '';
  }

  function chart(series) {
    var W = 360, H = 150, L = 46, R = 8, T = 10, B = 24;
    var vals = series.points.map(function (p) { return p.value; });
    var min = Math.min.apply(null, vals), max = Math.max.apply(null, vals);
    if (min === max) { min -= 1; max += 1; }
    var pad = (max - min) * 0.08; min -= pad; max += pad;
    var x = function (i) {
      return series.points.length < 2 ? (L + W - R) / 2
        : L + (W - L - R) * i / (series.points.length - 1);
    };
    var y = function (v) { return T + (H - T - B) * (1 - (v - min) / (max - min)); };
    var s = '<svg viewBox="0 0 ' + W + ' ' + H + '" preserveAspectRatio="none">';
    s += '<line class="axis" x1="' + L + '" y1="' + (H - B) + '" x2="' + (W - R) + '" y2="' + (H - B) + '"/>';
    s += '<line class="axis" x1="' + L + '" y1="' + T + '" x2="' + L + '" y2="' + (H - B) + '"/>';
    s += '<text class="lbl" x="' + (L - 4) + '" y="' + (y(max - pad) + 3) + '" text-anchor="end">' + fmt(max - pad) + '</text>';
    s += '<text class="lbl" x="' + (L - 4) + '" y="' + (y(min + pad) + 3) + '" text-anchor="end">' + fmt(min + pad) + '</text>';
    var path = series.points.map(function (p, i) {
      return (i ? 'L' : 'M') + x(i).toFixed(1) + ' ' + y(p.value).toFixed(1);
    }).join(' ');
    if (series.points.length > 1) s += '<path class="line" d="' + path + '"/>';
    series.points.forEach(function (p, i) {
      s += '<circle class="dot' + (p.dirty ? ' dirty' : '') + '" cx="' + x(i).toFixed(1) +
        '" cy="' + y(p.value).toFixed(1) + '" r="2.5"><title>' +
        p.commit.slice(0, 12) + ' · ' + new Date(p.date).toISOString() + ' · ' +
        p.value + ' ' + series.unit + '</title></circle>';
    });
    var first = series.points[0], last = series.points[series.points.length - 1];
    s += '<text class="lbl" x="' + L + '" y="' + (H - 8) + '">' + first.commit.slice(0, 8) + '</text>';
    s += '<text class="lbl" x="' + (W - R) + '" y="' + (H - 8) + '" text-anchor="end">' + last.commit.slice(0, 8) + '</text>';
    return s + '</svg>';
  }

  var root = document.getElementById('root');
  Object.keys(data.entries).sort().forEach(function (suite) {
    var entries = data.entries[suite];
    var order = [], bySeries = {};
    entries.forEach(function (e) {
      (e.benches || []).forEach(function (b) {
        var key = b.name + ' ' + b.unit;
        if (!bySeries[key]) {
          bySeries[key] = { name: b.name, unit: b.unit, dir: b.dir, points: [] };
          order.push(key);
        }
        if (b.dir) bySeries[key].dir = b.dir;
        bySeries[key].points.push({
          value: b.value, date: e.date,
          commit: e.commit.id, dirty: e.commit.dirty
        });
      });
    });
    var h2 = document.createElement('h2');
    h2.textContent = suite + ' · ' + entries.length + ' run(s)';
    root.appendChild(h2);
    var grid = document.createElement('div');
    grid.className = 'charts';
    order.forEach(function (key) {
      var series = bySeries[key];
      var div = document.createElement('div');
      div.className = 'chart';
      var gated = series.dir ? ' <span class="gated">gated · ' + series.dir + ' is better</span>' : '';
      div.innerHTML = '<h3>' + series.name + ' <span class="unit">' + series.unit + '</span>' + gated + '</h3>' + chart(series);
      grid.appendChild(div);
    });
    root.appendChild(grid);
  });
})();
</script>
</body>
</html>
`
