package benchhist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// MicroSuite is the suite name of the Go microbenchmark series.
const MicroSuite = "micro"

// GateSpec marks one (benchmark, unit) pair as gated with a direction.
type GateSpec struct {
	Name string
	Unit string
	Dir  string
}

// MicroGates is the gated subset of the microbenchmark suite — the same
// metrics benchcmp.sh guarded before the gate moved to Go, with ns/op left
// ungated (the 1-iteration default is too noisy for wall-clock gating; the
// derived throughput/latency metrics are what the evaluation reports).
var MicroGates = []GateSpec{
	{"BenchmarkFig7eSyncTime", "ADD-median-ms", DirLower},
	{"BenchmarkFig7eSyncTime", "REMOVE-median-ms", DirLower},
	{"BenchmarkMQPublishThroughput/batch", "msgs/s", DirHigher},
	{"BenchmarkMQPublishThroughput/batch", "allocs/op", DirLower},
	{"BenchmarkWireFrameCodec/binary", "frames/s", DirHigher},
	{"BenchmarkWireFrameCodec/binary", "allocs/op", DirLower},
	{"BenchmarkPublishDisabledTracer/routed-headers", "allocs/op", DirLower},
	{"BenchmarkCommitParallelWorkspaces/shards=16", "commits/s", DirHigher},
	{"BenchmarkReadWriteMix/readers=0", "commits/s", DirHigher},
	{"BenchmarkReadWriteMix/readers=256", "commits/s", DirHigher},
	{"BenchmarkTransferPipeline/pipelined", "MB/s", DirHigher},
	{"BenchmarkMultiInstanceCommit/instances=4", "commits/min", DirHigher},
	{"BenchmarkFleetObs", "scrapes/s", DirHigher},
	{"BenchmarkFleetObs", "allocs/op", DirLower},
}

// gateDir returns the gate direction for a metric key, or "" if ungated.
func gateDir(specs []GateSpec, name, unit string) string {
	for _, s := range specs {
		if s.Name == name && s.Unit == unit {
			return s.Dir
		}
	}
	return ""
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// ParseGoBench extracts metrics from `go test -bench` output: one "ns/op"
// metric per benchmark plus every extra ReportMetric/custom pair, with the
// -<GOMAXPROCS> name suffix stripped. Gate directions are applied from
// specs. Non-benchmark lines (PASS, ok, logs) are ignored.
func ParseGoBench(r io.Reader, specs []GateSpec) ([]Metric, error) {
	var out []Metric
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the trailing -<procs> suffix go test appends to the name.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		fields := strings.Fields(m[3])
		// Fields come in (value, unit) pairs: "909109554 ns/op 15.33 ADD-median-ms".
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchhist: parse bench value %q for %s: %w", fields[i], name, err)
			}
			unit := fields[i+1]
			out = append(out, Metric{Name: name, Unit: unit, Value: v, Dir: gateDir(specs, name, unit)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchhist: scan bench output: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchhist: no benchmark lines in input")
	}
	return out, nil
}

// Provenance identifies the run environment of a record.
type Provenance struct {
	Commit     string
	Dirty      bool
	GoVersion  string
	GOMAXPROCS int
	Host       string
}

// CollectProvenance gathers the provenance of a run from the git repository
// at dir and the current process. Outside a repository the commit is
// "unknown" and the tree is conservatively reported dirty, so such runs
// never become gate baselines.
func CollectProvenance(dir string) Provenance {
	p := Provenance{
		Commit:     "unknown",
		Dirty:      true,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if host, err := os.Hostname(); err == nil {
		p.Host = host
	}
	rev := exec.Command("git", "rev-parse", "HEAD")
	rev.Dir = dir
	if out, err := rev.Output(); err == nil {
		p.Commit = strings.TrimSpace(string(out))
		status := exec.Command("git", "status", "--porcelain")
		status.Dir = dir
		if sout, serr := status.Output(); serr == nil {
			p.Dirty = len(strings.TrimSpace(string(sout))) > 0
		}
	}
	return p
}

// NewMicroRecord assembles a micro-suite record from parsed metrics.
func NewMicroRecord(prov Provenance, takenAt time.Time, benchtime string, metrics []Metric) Record {
	return Record{
		Schema:     SchemaVersion,
		Suite:      MicroSuite,
		Commit:     prov.Commit,
		Dirty:      prov.Dirty,
		TakenAt:    takenAt.UTC(),
		GoVersion:  prov.GoVersion,
		GOMAXPROCS: prov.GOMAXPROCS,
		Host:       prov.Host,
		Benchtime:  benchtime,
		Metrics:    metrics,
	}
}
