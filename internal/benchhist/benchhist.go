// Package benchhist is the continuous benchmark history: an append-only
// JSON-lines series of per-commit benchmark and scenario records, a
// trend-aware regression gate over it, and a static dashboard generator.
//
// Every run of the microbenchmark suite (scripts/benchsnap.sh) or the
// scenario matrix (experiments -run matrix) appends one Record — keyed by
// commit SHA and stamped with provenance (dirty flag, go version,
// GOMAXPROCS, host) — to dev/bench/history.jsonl. The gate then compares
// each gated metric of the newest record against the rolling median of the
// last K clean (non-dirty) runs, so a single noisy 1-iteration snapshot
// neither hides a real regression nor fails a healthy commit the way the
// old newest-two diff of benchcmp.sh could. The dashboard generator renders
// the whole series as dev/bench/data.js + index.html in the
// buildpacks/pack window.BENCHMARK_DATA style.
package benchhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// SchemaVersion is the record format version written by this package.
const SchemaVersion = 1

// Metric direction: which way "better" points. A metric with an empty Dir
// is informational only; a directed metric is gated.
const (
	DirLower  = "lower"  // lower is better (latency, ns/op)
	DirHigher = "higher" // higher is better (throughput)
)

// Metric is one measured value of a record. Name identifies the benchmark
// or scenario measurement (e.g. "BenchmarkTransferPipeline/pipelined" or
// "scenario ops"); Unit disambiguates multiple values of one benchmark
// ("ns/op", "MB/s", "p99-ms"). Name+Unit is the series key across records.
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	// Dir marks the metric as gated and says which direction is better
	// ("lower" or "higher"); empty means informational.
	Dir string `json:"dir,omitempty"`
}

// Gated reports whether the metric participates in the regression gate.
func (m Metric) Gated() bool { return m.Dir == DirLower || m.Dir == DirHigher }

// Key returns the series key of the metric.
func (m Metric) Key() string { return m.Name + " " + m.Unit }

// Record is one history entry: one benchmark or scenario run on one commit.
type Record struct {
	Schema int `json:"schema"`
	// Suite groups records into independent series: "micro" for the Go
	// microbenchmarks, "scenario/<name>" for matrix scenarios.
	Suite string `json:"suite"`
	// Commit is the git SHA the run was taken at ("unknown" outside a
	// repository; "legacy-BENCH_<n>" for imported pre-history snapshots).
	Commit string `json:"commit"`
	// Dirty is true when the working tree had uncommitted changes — such
	// runs are recorded but never used as gate baselines.
	Dirty      bool      `json:"dirty"`
	TakenAt    time.Time `json:"takenAt"`
	GoVersion  string    `json:"goVersion,omitempty"`
	GOMAXPROCS int       `json:"gomaxprocs,omitempty"`
	Host       string    `json:"host,omitempty"`
	// Benchtime echoes go test's -benchtime for micro records.
	Benchtime string   `json:"benchtime,omitempty"`
	Metrics   []Metric `json:"metrics"`
}

// Metric returns the record's metric with the given name and unit.
func (r *Record) Metric(name, unit string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name && m.Unit == unit {
			return m, true
		}
	}
	return Metric{}, false
}

// ParseRecord decodes one history line. It rejects records without a suite
// or with a non-positive schema so a truncated or foreign JSON object is
// not silently mistaken for an empty run.
func ParseRecord(line []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return Record{}, fmt.Errorf("benchhist: parse record: %w", err)
	}
	if r.Schema <= 0 {
		return Record{}, fmt.Errorf("benchhist: record missing schema version")
	}
	if r.Suite == "" {
		return Record{}, fmt.Errorf("benchhist: record missing suite")
	}
	return r, nil
}

// History is the decoded contents of a history file.
type History struct {
	// Records in file (append) order.
	Records []Record
	// Skipped counts undecodable lines (e.g. a torn tail after a crash
	// mid-append); they are tolerated so one bad write cannot brick the
	// whole series, but surfaced so the corruption is visible.
	Skipped int
}

// Suites returns the distinct suite names in file order of first appearance.
func (h *History) Suites() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range h.Records {
		if !seen[r.Suite] {
			seen[r.Suite] = true
			out = append(out, r.Suite)
		}
	}
	return out
}

// Suite returns the records of one suite in append order.
func (h *History) Suite(name string) []Record {
	var out []Record
	for _, r := range h.Records {
		if r.Suite == name {
			out = append(out, r)
		}
	}
	return out
}

// Latest returns the newest record overall (by append order), if any.
func (h *History) Latest() (Record, bool) {
	if len(h.Records) == 0 {
		return Record{}, false
	}
	return h.Records[len(h.Records)-1], true
}

// ReadHistory loads a JSON-lines history file. A missing file is an empty
// history, not an error — the first append creates it.
func ReadHistory(path string) (*History, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &History{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("benchhist: open history: %w", err)
	}
	defer f.Close()

	h := &History{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			h.Skipped++
			continue
		}
		h.Records = append(h.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchhist: read history: %w", err)
	}
	return h, nil
}

// Append writes one record as a single JSON line at the end of the history
// file, creating the file (and its directory) on first use.
func Append(path string, rec Record) error {
	if rec.Schema == 0 {
		rec.Schema = SchemaVersion
	}
	if rec.Suite == "" {
		return fmt.Errorf("benchhist: refusing to append record without suite")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("benchhist: create history dir: %w", err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("benchhist: encode record: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("benchhist: open history: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("benchhist: append record: %w", err)
	}
	return nil
}

// median returns the middle value of vs (mean of the two middle values for
// even lengths). Empty input yields 0.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
