package benchhist

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// series builds a suite history from metric values: one clean record per
// value, all carrying a single gated metric, plus helpers to perturb it.
func seriesRecords(t *testing.T, suite, dir string, values []float64) []Record {
	t.Helper()
	recs := make([]Record, len(values))
	for i, v := range values {
		recs[i] = Record{
			Schema:  SchemaVersion,
			Suite:   suite,
			Commit:  "commit-" + string(rune('a'+i)),
			TakenAt: time.Date(2026, 8, 1, 0, i, 0, 0, time.UTC),
			Metrics: []Metric{{Name: "bench", Unit: "ops/s", Value: v, Dir: dir}},
		}
	}
	return recs
}

func TestGateVerdicts(t *testing.T) {
	cases := []struct {
		name       string
		dir        string
		values     []float64 // append order; last = newest under judgement
		dirty      []int     // indices flagged dirty
		wantStatus string
		wantFail   bool
	}{
		{
			// Steady noise well inside the 20% band around the median.
			name: "steady noise passes", dir: DirHigher,
			values:     []float64{100, 104, 97, 101, 99, 102, 98},
			wantStatus: StatusOK,
		},
		{
			// A real step regression: throughput drops 40% and stays there.
			name: "step regression fails", dir: DirHigher,
			values:     []float64{100, 102, 99, 101, 100, 60},
			wantStatus: StatusRegression, wantFail: true,
		},
		{
			// Latency direction: newest is >20% above the rolling median.
			name: "latency step regression fails", dir: DirLower,
			values:     []float64{10, 10.4, 9.8, 10.1, 13},
			wantStatus: StatusRegression, wantFail: true,
		},
		{
			// A single outlier spike in the *baseline* must not fail the
			// healthy newest run: the previous-snapshot diff would have
			// compared 100 against the 55 outlier and (for lower-is-better
			// metrics, or inverted for higher) misfired; the median absorbs
			// it.
			name: "single baseline outlier passes", dir: DirHigher,
			values:     []float64{100, 103, 98, 101, 55, 100},
			wantStatus: StatusOK,
		},
		{
			// Symmetric trap: one anomalously *good* previous run must not
			// mask that the newest matches the normal trend (newest-two diff
			// on 180 -> 100 would flag a phantom 44% regression).
			name: "single lucky outlier passes", dir: DirHigher,
			values:     []float64{100, 103, 98, 101, 180, 100},
			wantStatus: StatusOK,
		},
		{
			// Improvements always pass, however large.
			name: "improvement passes", dir: DirLower,
			values:     []float64{10, 10.2, 9.9, 10.1, 4},
			wantStatus: StatusOK,
		},
		{
			// Dirty runs are excluded from the baseline: counting the three
			// dirty 30s would drag the median to 30 and hide the newest
			// regression against the clean ~100 regime.
			name: "dirty runs excluded from baseline", dir: DirHigher,
			values:     []float64{100, 30, 30, 30, 99, 70},
			dirty:      []int{1, 2, 3},
			wantStatus: StatusRegression, wantFail: true,
		},
		{
			// Regression hidden from a newest-two diff: the previous run
			// already slipped to 82 (within 20% of it, 70 would pass a
			// pairwise gate) but the rolling median still sees 100.
			name: "slow drift caught by median", dir: DirHigher,
			values:     []float64{100, 101, 99, 100, 82, 70},
			wantStatus: StatusRegression, wantFail: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs := seriesRecords(t, "s", tc.dir, tc.values)
			for _, i := range tc.dirty {
				recs[i].Dirty = true
			}
			rep, err := GateSuite(&History{Records: recs}, "s", GateConfig{})
			if err != nil {
				t.Fatalf("GateSuite: %v", err)
			}
			if len(rep.Verdicts) != 1 {
				t.Fatalf("got %d verdicts, want 1: %+v", len(rep.Verdicts), rep.Verdicts)
			}
			if got := rep.Verdicts[0].Status; got != tc.wantStatus {
				t.Errorf("status = %s, want %s (verdict %+v)", got, tc.wantStatus, rep.Verdicts[0])
			}
			if rep.Failed != tc.wantFail {
				t.Errorf("Failed = %v, want %v", rep.Failed, tc.wantFail)
			}
		})
	}
}

func TestGateMissingMetricFails(t *testing.T) {
	recs := seriesRecords(t, "s", DirHigher, []float64{100, 101, 99})
	// The newest record dropped the gated metric entirely (e.g. the
	// benchmark was silently removed from benchsnap's pattern).
	recs = append(recs, Record{
		Schema: SchemaVersion, Suite: "s", Commit: "commit-x",
		TakenAt: time.Date(2026, 8, 1, 1, 0, 0, 0, time.UTC),
		Metrics: []Metric{{Name: "other", Unit: "ops/s", Value: 5, Dir: DirHigher}},
	})
	rep, err := GateSuite(&History{Records: recs}, "s", GateConfig{})
	if err != nil {
		t.Fatalf("GateSuite: %v", err)
	}
	if !rep.Failed {
		t.Fatalf("gate passed despite missing gated metric: %+v", rep.Verdicts)
	}
	var missing *Verdict
	for i := range rep.Verdicts {
		if rep.Verdicts[i].Status == StatusMissing {
			missing = &rep.Verdicts[i]
		}
	}
	if missing == nil {
		t.Fatalf("no MISSING verdict: %+v", rep.Verdicts)
	}
	if missing.Name != "bench" {
		t.Errorf("missing verdict names %q, want bench", missing.Name)
	}
	// The replacement metric had no baseline: recorded as new, not failed.
	if rep.Verdicts[0].Status != StatusNew {
		t.Errorf("new metric status = %s, want %s", rep.Verdicts[0].Status, StatusNew)
	}
}

func TestGateVacuousAndWindow(t *testing.T) {
	// A single record gates vacuously.
	recs := seriesRecords(t, "s", DirHigher, []float64{100})
	rep, err := GateSuite(&History{Records: recs}, "s", GateConfig{})
	if err != nil {
		t.Fatalf("GateSuite: %v", err)
	}
	if !rep.Vacuous || rep.Failed {
		t.Fatalf("single record: vacuous=%v failed=%v, want true/false", rep.Vacuous, rep.Failed)
	}

	// The window bounds the baseline: with Window=3 the ancient fast runs
	// must age out, so a newest value near the recent (slower) regime passes.
	vals := []float64{200, 200, 200, 100, 101, 99, 98}
	rep, err = GateSuite(&History{Records: seriesRecords(t, "s", DirHigher, vals)}, "s", GateConfig{Window: 3})
	if err != nil {
		t.Fatalf("GateSuite: %v", err)
	}
	if rep.Failed {
		t.Fatalf("windowed gate failed against aged-out baseline: %+v", rep.Verdicts)
	}
	if got := rep.Verdicts[0].Samples; got != 3 {
		t.Errorf("baseline samples = %d, want 3", got)
	}

	// All-dirty history gates vacuously.
	recs = seriesRecords(t, "s", DirHigher, []float64{100, 101, 50})
	recs[0].Dirty, recs[1].Dirty = true, true
	rep, err = GateSuite(&History{Records: recs}, "s", GateConfig{})
	if err != nil {
		t.Fatalf("GateSuite: %v", err)
	}
	if !rep.Vacuous || rep.Failed {
		t.Fatalf("all-dirty baseline: vacuous=%v failed=%v, want true/false", rep.Vacuous, rep.Failed)
	}

	// Unknown suite errors.
	if _, err := GateSuite(&History{Records: recs}, "nope", GateConfig{}); err == nil {
		t.Fatal("GateSuite on unknown suite succeeded")
	}
}

func TestGateReportPrint(t *testing.T) {
	recs := seriesRecords(t, "s", DirHigher, []float64{100, 101, 99, 60})
	rep, err := GateSuite(&History{Records: recs}, "s", GateConfig{})
	if err != nil {
		t.Fatalf("GateSuite: %v", err)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, StatusRegression) || !strings.Contains(out, "median") {
		t.Errorf("report output missing expected fields:\n%s", out)
	}
}
