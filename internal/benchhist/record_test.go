package benchhist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestAppendReadHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "history.jsonl")
	recs := []Record{
		{
			Suite: MicroSuite, Commit: "aaa", TakenAt: time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC),
			GoVersion: "go1.24.0", GOMAXPROCS: 8, Host: "host-a", Benchtime: "1x",
			Metrics: []Metric{{Name: "BenchmarkX", Unit: "ns/op", Value: 123}},
		},
		{
			Suite: "scenario/fanout", Commit: "bbb", Dirty: true,
			TakenAt: time.Date(2026, 8, 1, 11, 0, 0, 0, time.UTC),
			Metrics: []Metric{{Name: "fanout", Unit: "ops/s", Value: 42, Dir: DirHigher}},
		},
	}
	for _, r := range recs {
		if err := Append(path, r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	h, err := ReadHistory(path)
	if err != nil {
		t.Fatalf("ReadHistory: %v", err)
	}
	if h.Skipped != 0 || len(h.Records) != 2 {
		t.Fatalf("got %d records (%d skipped), want 2/0", len(h.Records), h.Skipped)
	}
	for i := range recs {
		recs[i].Schema = SchemaVersion // Append stamps it
		if !reflect.DeepEqual(h.Records[i], recs[i]) {
			t.Errorf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, h.Records[i], recs[i])
		}
	}
	if got := h.Suites(); !reflect.DeepEqual(got, []string{MicroSuite, "scenario/fanout"}) {
		t.Errorf("Suites() = %v", got)
	}
	if latest, ok := h.Latest(); !ok || latest.Commit != "bbb" {
		t.Errorf("Latest() = %+v, %v", latest, ok)
	}
}

func TestReadHistoryToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := Append(path, Record{Suite: "s", Commit: "aaa", Metrics: []Metric{{Name: "m", Unit: "u", Value: 1}}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Simulate a crash mid-append: a truncated JSON line at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"suite":"s","comm`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	h, err := ReadHistory(path)
	if err != nil {
		t.Fatalf("ReadHistory: %v", err)
	}
	if len(h.Records) != 1 || h.Skipped != 1 {
		t.Fatalf("got %d records, %d skipped; want 1 record, 1 skipped", len(h.Records), h.Skipped)
	}
}

func TestReadHistoryMissingFile(t *testing.T) {
	h, err := ReadHistory(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatalf("ReadHistory on absent file: %v", err)
	}
	if len(h.Records) != 0 || h.Skipped != 0 {
		t.Fatalf("absent file not empty: %+v", h)
	}
}

func TestParseRecordRejectsForeignJSON(t *testing.T) {
	for _, bad := range []string{
		`{}`,                        // no schema, no suite
		`{"schema":1}`,              // no suite
		`{"suite":"s"}`,             // no schema
		`[1,2,3]`,                   // wrong shape
		`{"schema":-1,"suite":"s"}`, // bogus schema
		`not json at all`,
	} {
		if _, err := ParseRecord([]byte(bad)); err == nil {
			t.Errorf("ParseRecord(%q) succeeded, want error", bad)
		}
	}
}

func TestParseGoBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
BenchmarkFig7eSyncTime-8   	       1	909109554 ns/op	        15.33 ADD-median-ms	         0.2352 REMOVE-median-ms
BenchmarkMQPublishThroughput/batch-8  	       1	     82488 ns/op	    775870 msgs/s
PASS
ok  	stacksync	12.3s
`
	ms, err := ParseGoBench(strings.NewReader(input), MicroGates)
	if err != nil {
		t.Fatalf("ParseGoBench: %v", err)
	}
	want := []Metric{
		{Name: "BenchmarkFig7eSyncTime", Unit: "ns/op", Value: 909109554},
		{Name: "BenchmarkFig7eSyncTime", Unit: "ADD-median-ms", Value: 15.33, Dir: DirLower},
		{Name: "BenchmarkFig7eSyncTime", Unit: "REMOVE-median-ms", Value: 0.2352, Dir: DirLower},
		{Name: "BenchmarkMQPublishThroughput/batch", Unit: "ns/op", Value: 82488},
		{Name: "BenchmarkMQPublishThroughput/batch", Unit: "msgs/s", Value: 775870, Dir: DirHigher},
	}
	if !reflect.DeepEqual(ms, want) {
		t.Errorf("metrics mismatch:\n got %+v\nwant %+v", ms, want)
	}

	if _, err := ParseGoBench(strings.NewReader("PASS\n"), nil); err == nil {
		t.Error("ParseGoBench on benchless input succeeded, want error")
	}
}

func TestSnapshotRoundTripAndImport(t *testing.T) {
	dir := t.TempDir()
	rec := NewMicroRecord(Provenance{
		Commit: "deadbeef", Dirty: false, GoVersion: "go1.24.0", GOMAXPROCS: 4, Host: "h",
	}, time.Date(2026, 8, 2, 9, 0, 0, 0, time.UTC), "1x", []Metric{
		{Name: "BenchmarkTransferPipeline/pipelined", Unit: "ns/op", Value: 74717781},
		{Name: "BenchmarkTransferPipeline/pipelined", Unit: "MB/s", Value: 14.72, Dir: DirHigher},
	})
	snapPath := filepath.Join(dir, "BENCH_1.json")
	if err := WriteSnapshot(snapPath, rec); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// A legacy snapshot without provenance alongside it.
	legacy := `{"takenAt":"2026-08-01T00:00:00Z","benchtime":"1x","benchmarks":[
	  {"name":"BenchmarkTransferPipeline/pipelined","iterations":1,"nsPerOp":90000000,"MB/s":12.5}]}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_2.json"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	histPath := filepath.Join(dir, "history.jsonl")
	n, err := ImportSnapshots(histPath, dir)
	if err != nil {
		t.Fatalf("ImportSnapshots: %v", err)
	}
	if n != 2 {
		t.Fatalf("imported %d, want 2", n)
	}
	// Idempotent: a second import finds everything already present.
	if n, err = ImportSnapshots(histPath, dir); err != nil || n != 0 {
		t.Fatalf("re-import: n=%d err=%v, want 0/nil", n, err)
	}
	h, err := ReadHistory(histPath)
	if err != nil {
		t.Fatalf("ReadHistory: %v", err)
	}
	if len(h.Records) != 2 {
		t.Fatalf("history holds %d records, want 2", len(h.Records))
	}
	got := h.Records[0]
	if got.Commit != "deadbeef" || got.Dirty || got.Host != "h" {
		t.Errorf("snapshot provenance lost on import: %+v", got)
	}
	if m, ok := got.Metric("BenchmarkTransferPipeline/pipelined", "MB/s"); !ok || m.Dir != DirHigher || m.Value != 14.72 {
		t.Errorf("gated metric lost on import: %+v ok=%v", m, ok)
	}
	leg := h.Records[1]
	if leg.Commit != "legacy-BENCH_2" || leg.Dirty {
		t.Errorf("legacy snapshot provenance: %+v", leg)
	}
}

func FuzzParseRecord(f *testing.F) {
	f.Add([]byte(`{"schema":1,"suite":"micro","commit":"abc","metrics":[{"name":"b","unit":"ns/op","value":1.5,"dir":"lower"}]}`))
	f.Add([]byte(`{"schema":1,"suite":"s"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"schema":9999999999999999999999,"suite":"s"}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		// Every accepted record must survive a marshal/parse round trip.
		out, merr := json.Marshal(rec)
		if merr != nil {
			t.Fatalf("accepted record does not re-marshal: %v (%+v)", merr, rec)
		}
		again, perr := ParseRecord(out)
		if perr != nil {
			t.Fatalf("re-marshalled record rejected: %v\nline: %q", perr, out)
		}
		if again.Suite != rec.Suite || again.Commit != rec.Commit || len(again.Metrics) != len(rec.Metrics) {
			t.Fatalf("round trip drifted: %+v vs %+v", rec, again)
		}
	})
}
