package benchhist

import (
	"encoding/json"

	"stacksync/internal/obs"
)

// AdminStatus adapts a history file onto the obs.Admin /benchz provider. The
// file is re-read on every request, so a long-lived admin endpoint reflects
// records appended after it started serving.
func AdminStatus(path string) func() obs.BenchStatus {
	return func() obs.BenchStatus {
		st := obs.BenchStatus{HistoryPath: path}
		h, err := ReadHistory(path)
		if err != nil {
			st.Err = err.Error()
			return st
		}
		st.Records = len(h.Records)
		st.Skipped = h.Skipped
		st.Suites = h.Suites()
		if latest, ok := h.Latest(); ok {
			if raw, err := json.Marshal(latest); err == nil {
				st.Latest = raw
			}
		}
		return st
	}
}
