package benchhist

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAdminStatus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	status := AdminStatus(path)

	// Absent history: empty status, no error.
	st := status()
	if st.Err != "" || st.Records != 0 {
		t.Fatalf("absent history status = %+v", st)
	}

	for _, r := range []Record{
		{Suite: MicroSuite, Commit: "aaa", TakenAt: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
			Metrics: []Metric{{Name: "b", Unit: "ns/op", Value: 1}}},
		{Suite: "scenario/zipf", Commit: "bbb", TakenAt: time.Date(2026, 8, 1, 1, 0, 0, 0, time.UTC),
			Metrics: []Metric{{Name: "zipf", Unit: "ops/s", Value: 2, Dir: DirHigher}}},
	} {
		if err := Append(path, r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	// Re-read per call: both records visible without rebuilding the provider.
	st = status()
	if st.Records != 2 || st.Skipped != 0 {
		t.Fatalf("status = %+v, want 2 records", st)
	}
	if len(st.Suites) != 2 || st.Suites[0] != MicroSuite {
		t.Errorf("suites = %v", st.Suites)
	}
	if !strings.Contains(string(st.Latest), `"bbb"`) {
		t.Errorf("latest record = %s, want commit bbb", st.Latest)
	}
}
