package benchhist

import (
	"fmt"
	"io"
	"time"
)

// GateConfig tunes the trend-aware regression gate.
type GateConfig struct {
	// Window is the rolling baseline size K: gated metrics of the newest
	// record are compared against the median of their values over the last
	// K clean (non-dirty) prior runs (default 5).
	Window int
	// Threshold is the relative regression bound (default 0.20): a
	// lower-is-better metric fails above median*(1+Threshold), a
	// higher-is-better one below median*(1-Threshold).
	Threshold float64
}

func (c *GateConfig) applyDefaults() {
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.20
	}
}

// Verdict statuses.
const (
	StatusOK = "ok"
	// StatusRegression: the newest value is beyond the threshold vs the
	// rolling median.
	StatusRegression = "REGRESSION"
	// StatusMissing: a gated metric present in the baseline window is
	// absent from the newest record — silently dropping a benchmark from
	// the snapshot pattern must not disable its gate.
	StatusMissing = "MISSING"
	// StatusNew: no clean baseline yet; recorded but not judged.
	StatusNew = "new"
)

// Verdict is the gate's judgement of one gated metric.
type Verdict struct {
	Name     string  `json:"name"`
	Unit     string  `json:"unit"`
	Dir      string  `json:"dir"`
	Value    float64 `json:"value"`    // newest value (0 when missing)
	Baseline float64 `json:"baseline"` // rolling median of the window
	// Samples is the number of clean prior runs the baseline median is
	// drawn from.
	Samples int    `json:"samples"`
	Status  string `json:"status"`
}

// Report is the gate's result over one suite.
type Report struct {
	Suite     string    `json:"suite"`
	Commit    string    `json:"commit"`
	TakenAt   time.Time `json:"takenAt"`
	Dirty     bool      `json:"dirty"`
	Window    int       `json:"window"`
	Threshold float64   `json:"threshold"`
	Verdicts  []Verdict `json:"verdicts"`
	// Vacuous is true when the suite has no prior records to gate against.
	Vacuous bool `json:"vacuous"`
	Failed  bool `json:"failed"`
}

// GateSuite judges the newest record of a suite against the rolling median
// of the last cfg.Window clean prior runs. With fewer than two records of
// the suite the gate passes vacuously. The newest record itself may be
// dirty — it is judged all the same, it just won't serve as a baseline for
// later runs.
func GateSuite(h *History, suite string, cfg GateConfig) (*Report, error) {
	cfg.applyDefaults()
	recs := h.Suite(suite)
	if len(recs) == 0 {
		return nil, fmt.Errorf("benchhist: no records for suite %q", suite)
	}
	newest := recs[len(recs)-1]
	rep := &Report{
		Suite:     suite,
		Commit:    newest.Commit,
		TakenAt:   newest.TakenAt,
		Dirty:     newest.Dirty,
		Window:    cfg.Window,
		Threshold: cfg.Threshold,
	}
	prior := recs[:len(recs)-1]
	if len(prior) == 0 {
		rep.Vacuous = true
		return rep, nil
	}

	// The baseline window: the last cfg.Window clean prior runs.
	var window []Record
	for i := len(prior) - 1; i >= 0 && len(window) < cfg.Window; i-- {
		if prior[i].Dirty {
			continue
		}
		window = append(window, prior[i])
	}
	if len(window) == 0 {
		// Only dirty history behind us: nothing trustworthy to gate against.
		rep.Vacuous = true
		return rep, nil
	}

	// Judge every gated metric of the newest record.
	judged := make(map[string]bool)
	for _, m := range newest.Metrics {
		if !m.Gated() {
			continue
		}
		judged[m.Key()] = true
		var base []float64
		for _, r := range window {
			if bm, ok := r.Metric(m.Name, m.Unit); ok {
				base = append(base, bm.Value)
			}
		}
		v := Verdict{Name: m.Name, Unit: m.Unit, Dir: m.Dir, Value: m.Value, Samples: len(base)}
		if len(base) == 0 {
			v.Status = StatusNew
		} else {
			v.Baseline = median(base)
			v.Status = StatusOK
			if v.Baseline != 0 {
				switch m.Dir {
				case DirLower:
					if m.Value > v.Baseline*(1+cfg.Threshold) {
						v.Status = StatusRegression
					}
				case DirHigher:
					if m.Value < v.Baseline*(1-cfg.Threshold) {
						v.Status = StatusRegression
					}
				}
			}
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}

	// A gated metric present anywhere in the baseline window but absent
	// from the newest record fails the gate.
	missingSeen := make(map[string]bool)
	for _, r := range window {
		for _, m := range r.Metrics {
			if !m.Gated() || judged[m.Key()] || missingSeen[m.Key()] {
				continue
			}
			missingSeen[m.Key()] = true
			var base []float64
			for _, wr := range window {
				if bm, ok := wr.Metric(m.Name, m.Unit); ok {
					base = append(base, bm.Value)
				}
			}
			rep.Verdicts = append(rep.Verdicts, Verdict{
				Name: m.Name, Unit: m.Unit, Dir: m.Dir,
				Baseline: median(base), Samples: len(base),
				Status: StatusMissing,
			})
		}
	}

	for _, v := range rep.Verdicts {
		if v.Status == StatusRegression || v.Status == StatusMissing {
			rep.Failed = true
		}
	}
	return rep, nil
}

// Print writes the report in the benchcmp.sh style.
func (rep *Report) Print(w io.Writer) {
	dirty := ""
	if rep.Dirty {
		dirty = " (dirty tree)"
	}
	fmt.Fprintf(w, "gate %s @ %s%s — median of last %d clean runs, threshold %.0f%%\n",
		rep.Suite, shortCommit(rep.Commit), dirty, rep.Window, rep.Threshold*100)
	if rep.Vacuous {
		fmt.Fprintf(w, "  no clean baseline yet — gate passes vacuously\n")
		return
	}
	for _, v := range rep.Verdicts {
		switch v.Status {
		case StatusMissing:
			fmt.Fprintf(w, "  %-10s %s %s: present in %d baseline run(s), absent now\n",
				v.Status, v.Name, v.Unit, v.Samples)
		case StatusNew:
			fmt.Fprintf(w, "  %-10s %s %s: %g (no baseline yet)\n", v.Status, v.Name, v.Unit, v.Value)
		default:
			fmt.Fprintf(w, "  %-10s %s %s: %.6g vs median %.6g over %d run(s) (%s is better)\n",
				v.Status, v.Name, v.Unit, v.Value, v.Baseline, v.Samples, v.Dir)
		}
	}
}

func shortCommit(c string) string {
	if len(c) > 12 {
		return c[:12]
	}
	return c
}
