package benchhist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func dashHistory() *History {
	return &History{Records: []Record{
		{
			Schema: SchemaVersion, Suite: MicroSuite, Commit: "aaa111",
			TakenAt: time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC), Host: "h1",
			Metrics: []Metric{
				{Name: "BenchmarkX", Unit: "ns/op", Value: 100},
				{Name: "BenchmarkX", Unit: "MB/s", Value: 10, Dir: DirHigher},
			},
		},
		{
			Schema: SchemaVersion, Suite: MicroSuite, Commit: "bbb222", Dirty: true,
			TakenAt: time.Date(2026, 8, 2, 10, 0, 0, 0, time.UTC), Host: "h1",
			Metrics: []Metric{
				{Name: "BenchmarkX", Unit: "ns/op", Value: 90},
				{Name: "BenchmarkX", Unit: "MB/s", Value: 11, Dir: DirHigher},
			},
		},
		{
			Schema: SchemaVersion, Suite: "scenario/fanout", Commit: "bbb222",
			TakenAt: time.Date(2026, 8, 2, 10, 5, 0, 0, time.UTC),
			Metrics: []Metric{{Name: "fanout", Unit: "ops/s", Value: 42, Dir: DirHigher}},
		},
	}}
}

func TestWriteDashboard(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dev", "bench")
	if err := WriteDashboard(dir, dashHistory()); err != nil {
		t.Fatalf("WriteDashboard: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "data.js"))
	if err != nil {
		t.Fatalf("read data.js: %v", err)
	}
	js := string(data)
	if !strings.HasPrefix(js, "window.BENCHMARK_DATA = {") {
		t.Errorf("data.js missing BENCHMARK_DATA prefix:\n%.80s", js)
	}
	for _, want := range []string{`"micro"`, `"scenario/fanout"`, `"aaa111"`, `"MB/s"`, `"dir": "higher"`, `"dirty": true`} {
		if !strings.Contains(js, want) {
			t.Errorf("data.js missing %s", want)
		}
	}
	// lastUpdate derives from the newest record, not the wall clock.
	wantUpdate := fmt.Sprintf(`"lastUpdate": %d`, time.Date(2026, 8, 2, 10, 5, 0, 0, time.UTC).UnixMilli())
	if !strings.Contains(js, wantUpdate) {
		t.Errorf("lastUpdate not derived from history (want %s):\n%.200s", wantUpdate, js)
	}
	html, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatalf("read index.html: %v", err)
	}
	if !strings.Contains(string(html), "data.js") {
		t.Error("index.html does not load data.js")
	}

	// Determinism: regenerating from the same history is byte-identical.
	if err := WriteDashboard(dir, dashHistory()); err != nil {
		t.Fatalf("WriteDashboard (again): %v", err)
	}
	again, err := os.ReadFile(filepath.Join(dir, "data.js"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != js {
		t.Error("regenerated data.js differs — dashboard not deterministic")
	}
}
