package benchhist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The BENCH_<n>.json snapshot format predates the history file and is kept
// for humans: one pretty-printed file per benchsnap run at the repo root.
// Snapshots written by this package carry the same provenance as the
// history record; pre-history snapshots (takenAt/benchtime only) import
// with Commit "legacy-BENCH_<n>" and are treated as clean — they were the
// gate baselines before the history existed.

// snapshot is the on-disk BENCH_<n>.json shape.
type snapshot struct {
	TakenAt    time.Time        `json:"takenAt"`
	Benchtime  string           `json:"benchtime"`
	Commit     string           `json:"commit,omitempty"`
	Dirty      *bool            `json:"dirty,omitempty"`
	GoVersion  string           `json:"goVersion,omitempty"`
	GOMAXPROCS int              `json:"gomaxprocs,omitempty"`
	Host       string           `json:"host,omitempty"`
	Benchmarks []map[string]any `json:"benchmarks"`
}

// WriteSnapshot renders a micro record as a BENCH_<n>.json file: the legacy
// benchmarks array (nsPerOp plus extra metric keys per benchmark) with the
// record's provenance alongside.
func WriteSnapshot(path string, rec Record) error {
	snap := snapshot{
		TakenAt:    rec.TakenAt,
		Benchtime:  rec.Benchtime,
		Commit:     rec.Commit,
		Dirty:      &rec.Dirty,
		GoVersion:  rec.GoVersion,
		GOMAXPROCS: rec.GOMAXPROCS,
		Host:       rec.Host,
	}
	order := []string{}
	byName := make(map[string]map[string]any)
	for _, m := range rec.Metrics {
		b, ok := byName[m.Name]
		if !ok {
			b = map[string]any{"name": m.Name}
			byName[m.Name] = b
			order = append(order, m.Name)
		}
		key := m.Unit
		if key == "ns/op" {
			key = "nsPerOp"
		}
		b[key] = m.Value
	}
	for _, name := range order {
		snap.Benchmarks = append(snap.Benchmarks, byName[name])
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return fmt.Errorf("benchhist: encode snapshot: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readSnapshot decodes one BENCH_<n>.json file into a micro record. n is
// the snapshot index used for the legacy commit placeholder.
func readSnapshot(path string, n int) (Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Record{}, fmt.Errorf("benchhist: parse snapshot %s: %w", path, err)
	}
	rec := Record{
		Schema:     SchemaVersion,
		Suite:      MicroSuite,
		Commit:     snap.Commit,
		TakenAt:    snap.TakenAt,
		GoVersion:  snap.GoVersion,
		GOMAXPROCS: snap.GOMAXPROCS,
		Host:       snap.Host,
		Benchtime:  snap.Benchtime,
	}
	if rec.Commit == "" {
		rec.Commit = fmt.Sprintf("legacy-BENCH_%d", n)
	}
	if snap.Dirty != nil {
		rec.Dirty = *snap.Dirty
	}
	for _, b := range snap.Benchmarks {
		name, _ := b["name"].(string)
		if name == "" {
			continue
		}
		// Deterministic metric order: nsPerOp first, extras sorted.
		keys := make([]string, 0, len(b))
		for k := range b {
			if k == "name" || k == "iterations" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if (keys[i] == "nsPerOp") != (keys[j] == "nsPerOp") {
				return keys[i] == "nsPerOp"
			}
			return keys[i] < keys[j]
		})
		for _, k := range keys {
			v, ok := b[k].(float64)
			if !ok {
				continue
			}
			unit := k
			if unit == "nsPerOp" {
				unit = "ns/op"
			}
			rec.Metrics = append(rec.Metrics, Metric{
				Name: name, Unit: unit, Value: v, Dir: gateDir(MicroGates, name, unit),
			})
		}
	}
	return rec, nil
}

// ImportSnapshots appends every BENCH_<n>.json at rootDir (in ascending n)
// that is not already in the history — matched by suite + takenAt — so the
// pre-history snapshot series seeds the gate baseline exactly once. It
// returns the number of records imported.
func ImportSnapshots(historyPath, rootDir string) (int, error) {
	hist, err := ReadHistory(historyPath)
	if err != nil {
		return 0, err
	}
	have := make(map[time.Time]bool)
	for _, r := range hist.Suite(MicroSuite) {
		have[r.TakenAt.UTC()] = true
	}
	paths, err := filepath.Glob(filepath.Join(rootDir, "BENCH_*.json"))
	if err != nil {
		return 0, err
	}
	type numbered struct {
		n    int
		path string
	}
	var snaps []numbered
	for _, p := range paths {
		base := strings.TrimSuffix(filepath.Base(p), ".json")
		n, err := strconv.Atoi(strings.TrimPrefix(base, "BENCH_"))
		if err != nil {
			continue
		}
		snaps = append(snaps, numbered{n: n, path: p})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].n < snaps[j].n })
	imported := 0
	for _, s := range snaps {
		rec, err := readSnapshot(s.path, s.n)
		if err != nil {
			return imported, err
		}
		if have[rec.TakenAt.UTC()] {
			continue
		}
		if err := Append(historyPath, rec); err != nil {
			return imported, err
		}
		have[rec.TakenAt.UTC()] = true
		imported++
	}
	return imported, nil
}
