// Package chunker splits files into content-addressed chunks (paper §4.1).
// StackSync operates below the file level: files are cut into chunks, each
// identified by the SHA-1 of its content, so only modified chunks travel to
// the Storage back-end. Both fixed-size chunking (the default, 512 KB) and
// content-defined chunking are provided; the paper keeps the fixed chunker
// despite the boundary-shifting problem because of its lower CPU cost.
package chunker

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// DefaultChunkSize is the paper's fixed chunk size (512 KB).
const DefaultChunkSize = 512 * 1024

// Chunk is one content-addressed piece of a file.
type Chunk struct {
	// Fingerprint is the hex SHA-1 of Data — 20 bytes, as in §4.1.
	Fingerprint string
	// Data is the raw (uncompressed) chunk content.
	Data []byte
}

// Size returns the chunk length in bytes.
func (c Chunk) Size() int { return len(c.Data) }

// Fingerprint computes the hex SHA-1 of data.
func Fingerprint(data []byte) string {
	sum := sha1.Sum(data)
	return hex.EncodeToString(sum[:])
}

// Chunker cuts a byte stream into chunks.
type Chunker interface {
	// Split consumes r entirely and returns its chunks in order. An empty
	// input yields no chunks.
	Split(r io.Reader) ([]Chunk, error)
	// Name identifies the strategy for logs and experiment labels.
	Name() string
}

// Fixed is the static chunker: every chunk is exactly Size bytes except the
// final one.
type Fixed struct {
	// ChunkSize is the cut length; DefaultChunkSize when zero.
	ChunkSize int
}

var _ Chunker = Fixed{}

// NewFixed returns a Fixed chunker with the paper's 512 KB default.
func NewFixed() Fixed { return Fixed{ChunkSize: DefaultChunkSize} }

// Name returns "fixed".
func (f Fixed) Name() string { return "fixed" }

// Split cuts r into ChunkSize pieces.
func (f Fixed) Split(r io.Reader) ([]Chunk, error) {
	size := f.ChunkSize
	if size <= 0 {
		size = DefaultChunkSize
	}
	var chunks []Chunk
	for {
		buf := make([]byte, size)
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			data := buf[:n]
			chunks = append(chunks, Chunk{Fingerprint: Fingerprint(data), Data: data})
		}
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return chunks, nil
		}
		if err != nil {
			return nil, fmt.Errorf("chunker: read: %w", err)
		}
	}
}

// SplitBytes is a convenience wrapper over Split for in-memory content.
func SplitBytes(c Chunker, data []byte) ([]Chunk, error) {
	return c.Split(bytesReader(data))
}

// Reassemble concatenates chunks back into the original content and verifies
// every fingerprint, returning an error on corruption.
func Reassemble(chunks []Chunk) ([]byte, error) {
	total := 0
	for _, c := range chunks {
		total += len(c.Data)
	}
	out := make([]byte, 0, total)
	for i, c := range chunks {
		if Fingerprint(c.Data) != c.Fingerprint {
			return nil, fmt.Errorf("chunker: chunk %d fingerprint mismatch", i)
		}
		out = append(out, c.Data...)
	}
	return out, nil
}

// Fingerprints projects the fingerprint list of a chunk sequence.
func Fingerprints(chunks []Chunk) []string {
	fps := make([]string, len(chunks))
	for i, c := range chunks {
		fps[i] = c.Fingerprint
	}
	return fps
}

// Diff partitions chunks into those already known (per the has predicate —
// typically the client's local fingerprint database, giving the per-user
// deduplication of §4.1) and the new ones that must be uploaded.
func Diff(chunks []Chunk, has func(fingerprint string) bool) (known, fresh []Chunk) {
	seen := make(map[string]bool, len(chunks))
	for _, c := range chunks {
		if has(c.Fingerprint) || seen[c.Fingerprint] {
			known = append(known, c)
			continue
		}
		seen[c.Fingerprint] = true
		fresh = append(fresh, c)
	}
	return known, fresh
}

type sliceReader struct {
	data []byte
	off  int
}

func bytesReader(data []byte) io.Reader { return &sliceReader{data: data} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
