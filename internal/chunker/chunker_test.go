package chunker

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestFixedSplitSizes(t *testing.T) {
	tests := []struct {
		name      string
		dataLen   int
		chunkSize int
		wantLens  []int
	}{
		{"empty", 0, 10, nil},
		{"exact multiple", 30, 10, []int{10, 10, 10}},
		{"remainder", 25, 10, []int{10, 10, 5}},
		{"smaller than chunk", 3, 10, []int{3}},
		{"single byte chunks", 4, 1, []int{1, 1, 1, 1}},
	}
	r := rand.New(rand.NewSource(1))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			data := randomBytes(r, tt.dataLen)
			chunks, err := SplitBytes(Fixed{ChunkSize: tt.chunkSize}, data)
			if err != nil {
				t.Fatal(err)
			}
			if len(chunks) != len(tt.wantLens) {
				t.Fatalf("got %d chunks, want %d", len(chunks), len(tt.wantLens))
			}
			for i, want := range tt.wantLens {
				if chunks[i].Size() != want {
					t.Fatalf("chunk %d size = %d, want %d", i, chunks[i].Size(), want)
				}
			}
		})
	}
}

func TestFixedDefaultSize(t *testing.T) {
	data := make([]byte, DefaultChunkSize+100)
	chunks, err := SplitBytes(NewFixed(), data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 || chunks[0].Size() != DefaultChunkSize || chunks[1].Size() != 100 {
		t.Fatalf("default split: %d chunks, sizes %v", len(chunks), []int{chunks[0].Size(), chunks[len(chunks)-1].Size()})
	}
}

func TestReassembleIdentityProperty(t *testing.T) {
	chunkers := []Chunker{
		Fixed{ChunkSize: 64},
		CDC{Min: 32, Avg: 128, Max: 512, Window: 16},
	}
	for _, c := range chunkers {
		c := c
		f := func(data []byte) bool {
			chunks, err := SplitBytes(c, data)
			if err != nil {
				return false
			}
			out, err := Reassemble(chunks)
			if err != nil {
				return false
			}
			return bytes.Equal(out, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestReassembleDetectsCorruption(t *testing.T) {
	chunks, err := SplitBytes(Fixed{ChunkSize: 8}, []byte("the quick brown fox jumps"))
	if err != nil {
		t.Fatal(err)
	}
	chunks[1].Data[0] ^= 0xFF
	if _, err := Reassemble(chunks); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	a := Fingerprint([]byte("chunk A"))
	if a != Fingerprint([]byte("chunk A")) {
		t.Fatal("fingerprint not deterministic")
	}
	if a == Fingerprint([]byte("chunk B")) {
		t.Fatal("distinct content collided")
	}
	if len(a) != 40 {
		t.Fatalf("SHA-1 hex length = %d, want 40", len(a))
	}
}

func TestFixedBoundaryShiftingProblem(t *testing.T) {
	// Prepending one byte to a file shifts every fixed-chunk boundary, so
	// no fingerprint survives — the §4.1 boundary-shifting problem that
	// makes UPDATE traffic heavy in Fig. 7(d).
	r := rand.New(rand.NewSource(2))
	data := randomBytes(r, 64*1024)
	before, _ := SplitBytes(Fixed{ChunkSize: 4096}, data)
	after, _ := SplitBytes(Fixed{ChunkSize: 4096}, append([]byte{0x42}, data...))
	beforeSet := make(map[string]bool)
	for _, c := range before {
		beforeSet[c.Fingerprint] = true
	}
	shared := 0
	for _, c := range after[:len(after)-1] { // last partial chunk may match by luck
		if beforeSet[c.Fingerprint] {
			shared++
		}
	}
	if shared != 0 {
		t.Fatalf("fixed chunking unexpectedly preserved %d chunks after prepend", shared)
	}
}

func TestCDCSurvivesPrepend(t *testing.T) {
	// Content-defined boundaries resynchronize after an insertion, so most
	// chunks keep their fingerprints.
	r := rand.New(rand.NewSource(3))
	data := randomBytes(r, 256*1024)
	c := CDC{Min: 2048, Avg: 8192, Max: 32768, Window: 32}
	before, err := SplitBytes(c, data)
	if err != nil {
		t.Fatal(err)
	}
	after, err := SplitBytes(c, append([]byte("INSERTED"), data...))
	if err != nil {
		t.Fatal(err)
	}
	beforeSet := make(map[string]bool)
	for _, ch := range before {
		beforeSet[ch.Fingerprint] = true
	}
	shared := 0
	for _, ch := range after {
		if beforeSet[ch.Fingerprint] {
			shared++
		}
	}
	if shared < len(before)/2 {
		t.Fatalf("CDC preserved only %d/%d chunks after prepend", shared, len(before))
	}
}

func TestCDCRespectsSizeBounds(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := randomBytes(r, 512*1024)
	c := CDC{Min: 1024, Avg: 4096, Max: 16384, Window: 32}
	chunks, err := SplitBytes(c, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("suspiciously few chunks: %d", len(chunks))
	}
	for i, ch := range chunks {
		if i < len(chunks)-1 && ch.Size() < 1024 {
			t.Fatalf("chunk %d below min: %d", i, ch.Size())
		}
		if ch.Size() > 16384 {
			t.Fatalf("chunk %d above max: %d", i, ch.Size())
		}
	}
	// Average should be loosely near Avg (within a factor of 4 either way).
	avg := len(data) / len(chunks)
	if avg < 1024 || avg > 16384 {
		t.Fatalf("observed average chunk size %d outside [min,max]", avg)
	}
}

func TestCDCDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := randomBytes(r, 128*1024)
	c := NewCDC()
	a, err := SplitBytes(c, data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SplitBytes(c, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic chunk count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Fingerprint != b[i].Fingerprint {
			t.Fatalf("chunk %d fingerprint differs between runs", i)
		}
	}
}

func TestDiffPartitionsKnownAndFresh(t *testing.T) {
	mk := func(s string) Chunk {
		return Chunk{Fingerprint: Fingerprint([]byte(s)), Data: []byte(s)}
	}
	known := map[string]bool{Fingerprint([]byte("old")): true}
	chunks := []Chunk{mk("old"), mk("new1"), mk("new1"), mk("new2")}
	gotKnown, fresh := Diff(chunks, func(fp string) bool { return known[fp] })
	if len(gotKnown) != 2 { // "old" + duplicate "new1"
		t.Fatalf("known = %d, want 2", len(gotKnown))
	}
	if len(fresh) != 2 { // first "new1" + "new2"
		t.Fatalf("fresh = %d, want 2", len(fresh))
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	payloads := [][]byte{
		nil,
		[]byte("hello"),
		bytes.Repeat([]byte("abcd"), 10_000),
		randomBytes(r, 50_000),
	}
	for _, comp := range []Compression{None, Gzip, Flate} {
		for i, p := range payloads {
			enc, err := Compress(p, comp)
			if err != nil {
				t.Fatalf("%v payload %d: %v", comp, i, err)
			}
			dec, err := Decompress(enc, comp)
			if err != nil {
				t.Fatalf("%v payload %d decompress: %v", comp, i, err)
			}
			if !bytes.Equal(dec, p) {
				t.Fatalf("%v payload %d: round trip mismatch", comp, i)
			}
		}
	}
}

func TestGzipShrinksRedundantData(t *testing.T) {
	data := bytes.Repeat([]byte("stacksync"), 10_000)
	enc, err := Compress(data, Gzip)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(data)/10 {
		t.Fatalf("gzip barely compressed: %d -> %d", len(data), len(enc))
	}
}

func TestParseCompression(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Compression
		ok   bool
	}{
		{"gzip", Gzip, true},
		{"none", None, true},
		{"", None, true},
		{"flate", Flate, true},
		{"bzip2", 0, false},
	} {
		got, err := ParseCompression(tt.in)
		if (err == nil) != tt.ok || got != tt.want {
			t.Fatalf("ParseCompression(%q) = %v, %v", tt.in, got, err)
		}
	}
}
