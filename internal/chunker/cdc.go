package chunker

import (
	"fmt"
	"io"
)

// CDC is a content-defined chunker using a rolling (buzhash-style) hash over
// a sliding window. Cut points depend only on local content, so inserting
// bytes near the start of a file shifts only nearby boundaries — avoiding
// the boundary-shifting problem of fixed chunking (§4.1, [20,21]).
type CDC struct {
	// Min, Avg, Max bound chunk sizes. A boundary is declared when the
	// rolling hash matches a mask derived from Avg, subject to Min/Max.
	Min, Avg, Max int
	// Window is the rolling-hash window width (default 48 bytes).
	Window int
}

var _ Chunker = CDC{}

// NewCDC returns a content-defined chunker tuned so the expected chunk size
// matches the paper's 512 KB fixed chunks, keeping traffic volumes
// comparable in the ablation experiments.
func NewCDC() CDC {
	return CDC{
		Min:    128 * 1024,
		Avg:    512 * 1024,
		Max:    1024 * 1024,
		Window: 48,
	}
}

// Name returns "cdc".
func (c CDC) Name() string { return "cdc" }

// gear is a fixed pseudo-random substitution table for the rolling hash,
// generated from a small xorshift PRNG so the package stays deterministic.
var gear = buildGear()

func buildGear() [256]uint64 {
	var t [256]uint64
	state := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		t[i] = state
	}
	return t
}

func (c CDC) params() (minSize, avgSize, maxSize, window int) {
	minSize, avgSize, maxSize, window = c.Min, c.Avg, c.Max, c.Window
	if avgSize <= 0 {
		avgSize = DefaultChunkSize
	}
	if minSize <= 0 {
		minSize = avgSize / 4
	}
	if maxSize <= 0 {
		maxSize = avgSize * 2
	}
	if window <= 0 {
		window = 48
	}
	if minSize < window {
		minSize = window
	}
	if maxSize < minSize {
		maxSize = minSize
	}
	return minSize, avgSize, maxSize, window
}

// mask returns a bit mask with log2(avg) low bits set, so a random hash
// matches with probability 1/avg — yielding avg-sized chunks on average.
func mask(avg int) uint64 {
	bits := 0
	for v := avg; v > 1; v >>= 1 {
		bits++
	}
	return (uint64(1) << bits) - 1
}

// Split reads r fully and cuts it at content-defined boundaries.
func (c CDC) Split(r io.Reader) ([]Chunk, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("chunker: read: %w", err)
	}
	minSize, avgSize, maxSize, window := c.params()
	m := mask(avgSize)
	var chunks []Chunk
	start := 0
	var hash uint64
	for i := 0; i < len(data); i++ {
		hash = (hash << 1) + gear[data[i]]
		if i-start+1 >= window {
			hash -= gear[data[i-window+1]] << (window - 1)
		}
		length := i - start + 1
		if (length >= minSize && hash&m == m) || length >= maxSize {
			piece := data[start : i+1]
			chunks = append(chunks, Chunk{Fingerprint: Fingerprint(piece), Data: piece})
			start = i + 1
			hash = 0
		}
	}
	if start < len(data) {
		piece := data[start:]
		chunks = append(chunks, Chunk{Fingerprint: Fingerprint(piece), Data: piece})
	}
	return chunks, nil
}
