package chunker

import (
	"math/rand"
	"testing"
)

func benchData(n int) []byte {
	r := rand.New(rand.NewSource(42))
	b := make([]byte, n)
	r.Read(b)
	return b
}

// BenchmarkFixedSplit measures the paper's default chunking throughput —
// the cheapness argument for keeping static chunking (§4.1).
func BenchmarkFixedSplit(b *testing.B) {
	data := benchData(8 << 20)
	c := NewFixed()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitBytes(c, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCDCSplit measures content-defined chunking throughput — the
// CPU-cost side of the fixed-vs-CDC ablation.
func BenchmarkCDCSplit(b *testing.B) {
	data := benchData(8 << 20)
	c := NewCDC()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitBytes(c, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGzipChunk measures per-chunk compression cost.
func BenchmarkGzipChunk(b *testing.B) {
	data := benchData(DefaultChunkSize)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, Gzip); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprint measures SHA-1 fingerprinting of a default chunk.
func BenchmarkFingerprint(b *testing.B) {
	data := benchData(DefaultChunkSize)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Fingerprint(data)
	}
}
