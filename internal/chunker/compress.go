package chunker

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"fmt"
	"io"
)

// Compression selects the algorithm applied to chunks before transmission.
// The paper compresses every chunk with Gzip or Bzip2 (§4.1); gzip and a
// raw-DEFLATE variant are provided, plus None for ablation runs.
type Compression int

const (
	// None disables compression.
	None Compression = iota + 1
	// Gzip is the default algorithm.
	Gzip
	// Flate is raw DEFLATE (smaller framing than gzip).
	Flate
)

// String names the compression for logs and headers.
func (c Compression) String() string {
	switch c {
	case None:
		return "none"
	case Gzip:
		return "gzip"
	case Flate:
		return "flate"
	default:
		return "unknown"
	}
}

// ParseCompression resolves a compression name.
func ParseCompression(s string) (Compression, error) {
	switch s {
	case "none", "":
		return None, nil
	case "gzip":
		return Gzip, nil
	case "flate":
		return Flate, nil
	default:
		return 0, fmt.Errorf("chunker: unknown compression %q", s)
	}
}

// Compress encodes data with the selected algorithm.
func Compress(data []byte, c Compression) ([]byte, error) {
	switch c {
	case None:
		return data, nil
	case Gzip:
		var buf bytes.Buffer
		w := gzip.NewWriter(&buf)
		if _, err := w.Write(data); err != nil {
			return nil, fmt.Errorf("chunker: gzip write: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("chunker: gzip close: %w", err)
		}
		return buf.Bytes(), nil
	case Flate:
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, fmt.Errorf("chunker: flate writer: %w", err)
		}
		if _, err := w.Write(data); err != nil {
			return nil, fmt.Errorf("chunker: flate write: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("chunker: flate close: %w", err)
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("chunker: unknown compression %d", c)
	}
}

// Decompress reverses Compress.
func Decompress(data []byte, c Compression) ([]byte, error) {
	switch c {
	case None:
		return data, nil
	case Gzip:
		r, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("chunker: gzip reader: %w", err)
		}
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("chunker: gunzip: %w", err)
		}
		return out, nil
	case Flate:
		r := flate.NewReader(bytes.NewReader(data))
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("chunker: inflate: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("chunker: unknown compression %d", c)
	}
}
