// Package wire implements the framed protocol spoken between mq network
// clients and the mq TCP server. It plays the role AMQP framing plays
// between RabbitMQ and its clients in the paper's deployment.
//
// Two frame encodings share the stream and are distinguished by the first
// byte of each frame:
//
//	binary (v2): 0xB2 marker, uvarint payload length, then a stream of
//	  (field id, varint-framed value) pairs with hot header keys interned
//	  to one byte. The frame header and the message body are written as two
//	  scatter/gather vectors (net.Buffers), so a publish performs zero
//	  payload copies after encode.
//	legacy JSON: 4-byte big-endian payload length followed by a
//	  JSON-encoded Frame. Since MaxFrameSize is 16 MiB, the first length
//	  byte is always 0x00 or 0x01 — it can never collide with 0xB2.
//
// Readers auto-detect the encoding per frame, so mixed fleets (and the
// fuzz cross-checks) interoperate; Writers emit binary unless constructed
// with FormatJSON. The hard size cap protects both ends from corrupt peers.
//
// # Buffer ownership
//
// Reader.Read returns a frame that is only valid until the next Read on
// the same Reader: Body and Stats alias an internal buffer that the next
// frame overwrites (Headers and string fields are fresh copies). Callers
// that retain a frame — or its Body — past the next Read must copy first;
// Frame.Clone does a deep copy. Writer.Write never retains f or f.Body.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrameSize is the largest frame either side will accept (16 MiB); large
// enough for a compressed 512 KB chunk plus headers with ample margin.
const MaxFrameSize = 16 << 20

// binaryMarker is the first byte of every binary (v2) frame. Legacy JSON
// frames start with the high byte of a 4-byte big-endian length, which the
// MaxFrameSize cap keeps at 0x00 or 0x01.
const binaryMarker = 0xB2

// Frame operation codes. Values are part of the protocol; never renumber.
type Op int

const (
	OpDeclareQueue Op = iota + 1
	OpDeleteQueue
	OpDeclareExchange
	OpBindQueue
	OpUnbindQueue
	OpPublish
	OpSubscribe
	OpCancel
	OpAck
	OpNack
	OpDeliver
	OpOK
	OpError
	OpQueueStats
	OpStatsReply
	OpPing
	OpPong
)

// String returns the protocol name of the op code.
func (o Op) String() string {
	switch o {
	case OpDeclareQueue:
		return "declare-queue"
	case OpDeleteQueue:
		return "delete-queue"
	case OpDeclareExchange:
		return "declare-exchange"
	case OpBindQueue:
		return "bind-queue"
	case OpUnbindQueue:
		return "unbind-queue"
	case OpPublish:
		return "publish"
	case OpSubscribe:
		return "subscribe"
	case OpCancel:
		return "cancel"
	case OpAck:
		return "ack"
	case OpNack:
		return "nack"
	case OpDeliver:
		return "deliver"
	case OpOK:
		return "ok"
	case OpError:
		return "error"
	case OpQueueStats:
		return "queue-stats"
	case OpStatsReply:
		return "stats-reply"
	case OpPing:
		return "ping"
	case OpPong:
		return "pong"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Frame is the unit of exchange on the wire. Which fields are meaningful
// depends on Op; unused fields are omitted from the encoding.
type Frame struct {
	Op  Op     `json:"op"`
	Seq uint64 `json:"seq,omitempty"` // request/response correlation

	Queue    string `json:"queue,omitempty"`
	Exchange string `json:"exchange,omitempty"`
	Kind     string `json:"kind,omitempty"` // exchange kind for declare
	Key      string `json:"key,omitempty"`  // routing/binding key

	ConsumerID string `json:"consumerId,omitempty"`
	Prefetch   int    `json:"prefetch,omitempty"`
	DeliveryID uint64 `json:"deliveryId,omitempty"`
	Requeue    bool   `json:"requeue,omitempty"`

	MessageID  string            `json:"messageId,omitempty"`
	Headers    map[string]string `json:"headers,omitempty"`
	Body       []byte            `json:"body,omitempty"`
	Persistent bool              `json:"persistent,omitempty"`
	Redelivery int               `json:"redelivery,omitempty"`

	Err   string `json:"err,omitempty"`
	Stats []byte `json:"stats,omitempty"` // JSON-encoded mq.QueueStats
}

// Clone returns a deep copy of f, safe to retain past the next Read on the
// Reader that produced it.
func (f *Frame) Clone() *Frame {
	nf := *f
	if f.Body != nil {
		nf.Body = append([]byte(nil), f.Body...)
	}
	if f.Stats != nil {
		nf.Stats = append([]byte(nil), f.Stats...)
	}
	if f.Headers != nil {
		nf.Headers = make(map[string]string, len(f.Headers))
		for k, v := range f.Headers {
			nf.Headers[k] = v
		}
	}
	return &nf
}

// Binary field ids. Part of the protocol: append-only, never renumber.
// fBody is always the last field of a frame so the body bytes can be
// written (and read) as one contiguous tail.
const (
	fOp = iota + 1
	fSeq
	fQueue
	fExchange
	fKind
	fKey
	fConsumerID
	fPrefetch
	fDeliveryID
	fRequeue
	fMessageID
	fHeaders
	fPersistent
	fRedelivery
	fErr
	fStats
	fBody
)

// internedKeys interns the header keys hot on the publish path (codec
// negotiation, trace context, routing stamps) to a single byte on the
// wire. Ids are part of the protocol: append-only, never renumber. Id 0
// escapes to a length-prefixed literal key, so unknown keys always travel.
// The strings mirror omq/obs constants; wire stays dependency-free, and a
// drifted name only costs bytes, never correctness.
var internedKeys = []string{
	1: "codec",
	2: "x-obs-trace",
	3: "x-obs-span",
	4: "x-obs-pub",
	5: "x-route-epoch",
	6: "x-route-key",
}

var internedKeyID = func() map[string]byte {
	m := make(map[string]byte, len(internedKeys))
	for id, k := range internedKeys {
		if k != "" {
			m[k] = byte(id)
		}
	}
	return m
}()

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrShortFrame    = errors.New("wire: truncated frame")
)

// Format selects the encoding a Writer emits.
type Format int

const (
	// FormatBinary is the compact varint encoding (the default).
	FormatBinary Format = iota
	// FormatJSON is the legacy length-prefixed JSON encoding, kept for
	// fallback and fuzz cross-checks.
	FormatJSON
)

// maxPrefix is the space reserved at the front of an encode buffer for the
// right-aligned marker byte + uvarint payload length.
const maxPrefix = 1 + binary.MaxVarintLen32

// encodeBufPool recycles frame-encode buffers across writers and frames;
// the body is never copied into them, so they stay small.
var encodeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// maxPooledBuf bounds the capacity of buffers returned to the pool so one
// giant frame doesn't pin its memory forever.
const maxPooledBuf = 1 << 16

func putEncodeBuf(bp *[]byte, b []byte) {
	if cap(b) <= maxPooledBuf {
		*bp = b[:0]
		encodeBufPool.Put(bp)
	}
}

// Writer encodes frames onto an io.Writer. Not safe for concurrent use;
// callers serialize writes. Write never retains the frame or its body.
type Writer struct {
	w      io.Writer
	format Format
	vecs   [2][]byte
}

// NewWriter returns a Writer emitting binary frames to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// NewWriterFormat returns a Writer emitting frames in the given format.
func NewWriterFormat(w io.Writer, format Format) *Writer {
	return &Writer{w: w, format: format}
}

// Write encodes and sends a single frame. In binary format the encoded
// header and the frame body go out as two scatter/gather vectors
// (net.Buffers → writev on TCP): the body is never copied after encode.
func (fw *Writer) Write(f *Frame) error {
	if fw.format == FormatJSON {
		return fw.writeJSON(f)
	}
	bp := encodeBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = buf[:maxPrefix] // reserve prefix space (pool buffers have cap >= maxPrefix)
	buf = appendFields(buf, f)
	total := (len(buf) - maxPrefix) + len(f.Body)
	if total > MaxFrameSize {
		putEncodeBuf(bp, buf)
		return ErrFrameTooLarge
	}
	// Right-align marker + length against the fields.
	var pre [maxPrefix]byte
	pre[0] = binaryMarker
	w := 1 + binary.PutUvarint(pre[1:], uint64(total))
	start := maxPrefix - w
	copy(buf[start:], pre[:w])

	var err error
	if len(f.Body) == 0 {
		_, err = fw.w.Write(buf[start:])
	} else {
		fw.vecs[0], fw.vecs[1] = buf[start:], f.Body
		nb := net.Buffers(fw.vecs[:])
		_, err = nb.WriteTo(fw.w)
		fw.vecs[0], fw.vecs[1] = nil, nil
	}
	putEncodeBuf(bp, buf)
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

func (fw *Writer) writeJSON(f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("wire: marshal frame: %w", err)
	}
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	bp := encodeBufPool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, werr := fw.w.Write(buf)
	putEncodeBuf(bp, buf)
	if werr != nil {
		return fmt.Errorf("wire: write frame: %w", werr)
	}
	return nil
}

// appendFields encodes every present field except the body bytes; for a
// non-empty body it emits the field id and length so the raw bytes can
// follow as a separate write vector.
func appendFields(b []byte, f *Frame) []byte {
	b = append(b, fOp)
	b = binary.AppendVarint(b, int64(f.Op))
	b = appendUintField(b, fSeq, f.Seq)
	b = appendStrField(b, fQueue, f.Queue)
	b = appendStrField(b, fExchange, f.Exchange)
	b = appendStrField(b, fKind, f.Kind)
	b = appendStrField(b, fKey, f.Key)
	b = appendStrField(b, fConsumerID, f.ConsumerID)
	if f.Prefetch != 0 {
		b = append(b, fPrefetch)
		b = binary.AppendVarint(b, int64(f.Prefetch))
	}
	b = appendUintField(b, fDeliveryID, f.DeliveryID)
	if f.Requeue {
		b = append(b, fRequeue)
	}
	b = appendStrField(b, fMessageID, f.MessageID)
	if len(f.Headers) > 0 {
		b = append(b, fHeaders)
		b = binary.AppendUvarint(b, uint64(len(f.Headers)))
		for k, v := range f.Headers {
			if id, ok := internedKeyID[k]; ok {
				b = append(b, id)
			} else {
				b = append(b, 0)
				b = binary.AppendUvarint(b, uint64(len(k)))
				b = append(b, k...)
			}
			b = binary.AppendUvarint(b, uint64(len(v)))
			b = append(b, v...)
		}
	}
	if f.Persistent {
		b = append(b, fPersistent)
	}
	if f.Redelivery != 0 {
		b = append(b, fRedelivery)
		b = binary.AppendVarint(b, int64(f.Redelivery))
	}
	b = appendStrField(b, fErr, f.Err)
	if len(f.Stats) > 0 {
		b = append(b, fStats)
		b = binary.AppendUvarint(b, uint64(len(f.Stats)))
		b = append(b, f.Stats...)
	}
	if len(f.Body) > 0 {
		b = append(b, fBody)
		b = binary.AppendUvarint(b, uint64(len(f.Body)))
	}
	return b
}

func appendStrField(b []byte, id byte, s string) []byte {
	if s == "" {
		return b
	}
	b = append(b, id)
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendUintField(b []byte, id byte, v uint64) []byte {
	if v == 0 {
		return b
	}
	b = append(b, id)
	return binary.AppendUvarint(b, v)
}

// Reader decodes frames from an io.Reader. Not safe for concurrent use.
//
// The returned *Frame, its Body and its Stats are only valid until the
// next Read: they alias buffers the Reader reuses frame-to-frame (the
// fixed per-message allocation the v2 protocol removes). Copy — or
// Frame.Clone — before retaining.
type Reader struct {
	r       *bufio.Reader
	payload []byte
	frame   Frame
}

// NewReader returns a Reader consuming frames from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read decodes the next frame, auto-detecting binary vs legacy JSON
// encoding from its first byte. It returns io.EOF when the stream ends
// cleanly on a frame boundary and ErrShortFrame when it ends mid-frame.
// See the Reader doc for the returned frame's lifetime.
func (fr *Reader) Read() (*Frame, error) {
	first, err := fr.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	if first == binaryMarker {
		return fr.readBinary()
	}
	return fr.readJSON(first)
}

// grow returns the payload buffer sized to n, reusing the previous
// allocation when possible and letting one oversized frame's buffer go
// once traffic shrinks again.
func (fr *Reader) grow(n int) []byte {
	if cap(fr.payload) < n || (cap(fr.payload) > 4<<20 && n < 1<<20) {
		fr.payload = make([]byte, n)
	}
	fr.payload = fr.payload[:n]
	return fr.payload
}

func (fr *Reader) readJSON(first byte) (*Frame, error) {
	var lb [4]byte
	lb[0] = first
	if _, err := io.ReadFull(fr.r, lb[1:]); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortFrame
		}
		return nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := fr.grow(int(n))
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortFrame
		}
		return nil, fmt.Errorf("wire: read frame payload: %w", err)
	}
	fr.frame = Frame{}
	if err := json.Unmarshal(payload, &fr.frame); err != nil {
		return nil, fmt.Errorf("wire: unmarshal frame: %w", err)
	}
	return &fr.frame, nil
}

func (fr *Reader) readBinary() (*Frame, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortFrame
		}
		return nil, fmt.Errorf("wire: malformed frame length: %w", err)
	}
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := fr.grow(int(n))
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortFrame
		}
		return nil, fmt.Errorf("wire: read frame payload: %w", err)
	}
	if err := parseBinary(payload, &fr.frame); err != nil {
		return nil, err
	}
	return &fr.frame, nil
}

var errMalformed = errors.New("wire: malformed binary frame")

// ruvarint decodes a uvarint from data, rejecting truncated or overlong
// encodings.
func ruvarint(data []byte) (uint64, []byte, error) {
	x, w := binary.Uvarint(data)
	if w <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", errMalformed)
	}
	return x, data[w:], nil
}

func rvarint(data []byte) (int64, []byte, error) {
	x, w := binary.Varint(data)
	if w <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", errMalformed)
	}
	return x, data[w:], nil
}

// rbytes decodes a length-prefixed byte run, bounds-checked against the
// remaining payload.
func rbytes(data []byte) ([]byte, []byte, error) {
	n, rest, err := ruvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: length %d exceeds %d remaining", errMalformed, n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// parseBinary decodes a binary frame payload into f. Body and Stats alias
// payload; everything else is copied out.
func parseBinary(payload []byte, f *Frame) error {
	*f = Frame{}
	data := payload
	for len(data) > 0 {
		id := data[0]
		data = data[1:]
		var err error
		switch id {
		case fOp:
			var v int64
			if v, data, err = rvarint(data); err != nil {
				return err
			}
			f.Op = Op(v)
		case fSeq:
			if f.Seq, data, err = ruvarint(data); err != nil {
				return err
			}
		case fQueue:
			if f.Queue, data, err = rstring(data); err != nil {
				return err
			}
		case fExchange:
			if f.Exchange, data, err = rstring(data); err != nil {
				return err
			}
		case fKind:
			if f.Kind, data, err = rstring(data); err != nil {
				return err
			}
		case fKey:
			if f.Key, data, err = rstring(data); err != nil {
				return err
			}
		case fConsumerID:
			if f.ConsumerID, data, err = rstring(data); err != nil {
				return err
			}
		case fPrefetch:
			var v int64
			if v, data, err = rvarint(data); err != nil {
				return err
			}
			f.Prefetch = int(v)
		case fDeliveryID:
			if f.DeliveryID, data, err = ruvarint(data); err != nil {
				return err
			}
		case fRequeue:
			f.Requeue = true
		case fMessageID:
			if f.MessageID, data, err = rstring(data); err != nil {
				return err
			}
		case fHeaders:
			if f.Headers, data, err = rheaders(data); err != nil {
				return err
			}
		case fPersistent:
			f.Persistent = true
		case fRedelivery:
			var v int64
			if v, data, err = rvarint(data); err != nil {
				return err
			}
			f.Redelivery = int(v)
		case fErr:
			if f.Err, data, err = rstring(data); err != nil {
				return err
			}
		case fStats:
			if f.Stats, data, err = rbytes(data); err != nil {
				return err
			}
		case fBody:
			if f.Body, data, err = rbytes(data); err != nil {
				return err
			}
			if len(data) != 0 {
				return fmt.Errorf("%w: %d bytes after body", errMalformed, len(data))
			}
		default:
			return fmt.Errorf("%w: unknown field %d", errMalformed, id)
		}
	}
	return nil
}

func rstring(data []byte) (string, []byte, error) {
	raw, rest, err := rbytes(data)
	if err != nil {
		return "", nil, err
	}
	return string(raw), rest, nil
}

func rheaders(data []byte) (map[string]string, []byte, error) {
	count, data, err := ruvarint(data)
	if err != nil {
		return nil, nil, err
	}
	// Each entry is at least 2 bytes (key id + value length).
	if count > uint64(len(data))/2+1 {
		return nil, nil, fmt.Errorf("%w: header count %d exceeds payload", errMalformed, count)
	}
	m := make(map[string]string, count)
	for i := uint64(0); i < count; i++ {
		if len(data) == 0 {
			return nil, nil, fmt.Errorf("%w: truncated headers", errMalformed)
		}
		id := data[0]
		data = data[1:]
		var k string
		if id == 0 {
			if k, data, err = rstring(data); err != nil {
				return nil, nil, err
			}
		} else if int(id) < len(internedKeys) && internedKeys[id] != "" {
			k = internedKeys[id]
		} else {
			return nil, nil, fmt.Errorf("%w: unknown interned header key %d", errMalformed, id)
		}
		var v string
		if v, data, err = rstring(data); err != nil {
			return nil, nil, err
		}
		m[k] = v
	}
	return m, data, nil
}
