// Package wire implements the length-prefixed frame protocol spoken between
// mq network clients and the mq TCP server. It plays the role AMQP framing
// plays between RabbitMQ and its clients in the paper's deployment.
//
// A frame is: 4-byte big-endian payload length, followed by that many bytes
// of JSON-encoded Frame. Frames are small (bodies are base64 inside JSON),
// and the hard size cap protects both ends from corrupt peers.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize is the largest frame either side will accept (16 MiB); large
// enough for a compressed 512 KB chunk plus headers with ample margin.
const MaxFrameSize = 16 << 20

// Frame operation codes. Values are part of the protocol; never renumber.
type Op int

const (
	OpDeclareQueue Op = iota + 1
	OpDeleteQueue
	OpDeclareExchange
	OpBindQueue
	OpUnbindQueue
	OpPublish
	OpSubscribe
	OpCancel
	OpAck
	OpNack
	OpDeliver
	OpOK
	OpError
	OpQueueStats
	OpStatsReply
	OpPing
	OpPong
)

// String returns the protocol name of the op code.
func (o Op) String() string {
	switch o {
	case OpDeclareQueue:
		return "declare-queue"
	case OpDeleteQueue:
		return "delete-queue"
	case OpDeclareExchange:
		return "declare-exchange"
	case OpBindQueue:
		return "bind-queue"
	case OpUnbindQueue:
		return "unbind-queue"
	case OpPublish:
		return "publish"
	case OpSubscribe:
		return "subscribe"
	case OpCancel:
		return "cancel"
	case OpAck:
		return "ack"
	case OpNack:
		return "nack"
	case OpDeliver:
		return "deliver"
	case OpOK:
		return "ok"
	case OpError:
		return "error"
	case OpQueueStats:
		return "queue-stats"
	case OpStatsReply:
		return "stats-reply"
	case OpPing:
		return "ping"
	case OpPong:
		return "pong"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Frame is the unit of exchange on the wire. Which fields are meaningful
// depends on Op; unused fields are omitted from the encoding.
type Frame struct {
	Op  Op     `json:"op"`
	Seq uint64 `json:"seq,omitempty"` // request/response correlation

	Queue    string `json:"queue,omitempty"`
	Exchange string `json:"exchange,omitempty"`
	Kind     string `json:"kind,omitempty"` // exchange kind for declare
	Key      string `json:"key,omitempty"`  // routing/binding key

	ConsumerID string `json:"consumerId,omitempty"`
	Prefetch   int    `json:"prefetch,omitempty"`
	DeliveryID uint64 `json:"deliveryId,omitempty"`
	Requeue    bool   `json:"requeue,omitempty"`

	MessageID  string            `json:"messageId,omitempty"`
	Headers    map[string]string `json:"headers,omitempty"`
	Body       []byte            `json:"body,omitempty"`
	Persistent bool              `json:"persistent,omitempty"`
	Redelivery int               `json:"redelivery,omitempty"`

	Err   string `json:"err,omitempty"`
	Stats []byte `json:"stats,omitempty"` // JSON-encoded mq.QueueStats
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrShortFrame    = errors.New("wire: truncated frame")
)

// Writer encodes frames onto an io.Writer. Not safe for concurrent use;
// callers serialize writes.
type Writer struct {
	w   *bufio.Writer
	buf [4]byte
}

// NewWriter returns a Writer emitting frames to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write encodes and flushes a single frame.
func (fw *Writer) Write(f *Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("wire: marshal frame: %w", err)
	}
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(fw.buf[:], uint32(len(payload)))
	if _, err := fw.w.Write(fw.buf[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := fw.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame payload: %w", err)
	}
	if err := fw.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush frame: %w", err)
	}
	return nil
}

// Reader decodes frames from an io.Reader. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf [4]byte
}

// NewReader returns a Reader consuming frames from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read decodes the next frame. It returns io.EOF when the stream ends
// cleanly on a frame boundary and ErrShortFrame when it ends mid-frame.
func (fr *Reader) Read() (*Frame, error) {
	if _, err := io.ReadFull(fr.r, fr.buf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortFrame
		}
		return nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(fr.buf[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortFrame
		}
		return nil, fmt.Errorf("wire: read frame payload: %w", err)
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return nil, fmt.Errorf("wire: unmarshal frame: %w", err)
	}
	return &f, nil
}
