package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// normalizeFrame folds the empty/nil asymmetry JSON's omitempty introduces:
// a frame decoded from a payload that spelled out empty maps or arrays loses
// them on re-encode, which is fine — the two forms mean the same thing.
func normalizeFrame(f *Frame) {
	if len(f.Headers) == 0 {
		f.Headers = nil
	}
	if len(f.Body) == 0 {
		f.Body = nil
	}
	if len(f.Stats) == 0 {
		f.Stats = nil
	}
}

// FuzzFrameCodec feeds arbitrary bytes to the frame reader. Whatever decodes
// must survive a re-encode/re-decode round trip unchanged, and nothing may
// panic — a corrupt or malicious peer gets an error, never a crash.
func FuzzFrameCodec(f *testing.F) {
	var pub bytes.Buffer
	_ = NewWriter(&pub).Write(&Frame{
		Op: OpPublish, Seq: 7, Exchange: "ex", Key: "k",
		Headers:    map[string]string{"codec": "json"},
		Body:       []byte("payload"),
		Persistent: true,
	})
	f.Add(pub.Bytes())
	var ping bytes.Buffer
	_ = NewWriter(&ping).Write(&Frame{Op: OpPing, Seq: 1})
	f.Add(ping.Bytes())
	f.Add([]byte{0, 0, 0})                       // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})   // over-limit length prefix
	f.Add([]byte{0, 0, 0, 2, '{', '}', 0, 0, 0}) // empty frame + torn tail

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			fr, err := r.Read()
			if err != nil {
				// Any decode error is acceptable on arbitrary input; a frame
				// alongside one is not.
				if fr != nil {
					t.Fatalf("Read returned frame %+v with error %v", fr, err)
				}
				return
			}
			var rt bytes.Buffer
			if err := NewWriter(&rt).Write(fr); err != nil {
				t.Fatalf("re-encode of decoded frame failed: %v (frame %+v)", err, fr)
			}
			back, err := NewReader(&rt).Read()
			if err != nil {
				t.Fatalf("re-decode failed: %v (frame %+v)", err, fr)
			}
			normalizeFrame(fr)
			normalizeFrame(back)
			if !reflect.DeepEqual(fr, back) {
				t.Fatalf("round trip diverged:\n decoded:   %+v\n re-decoded: %+v", fr, back)
			}
		}
	})
}
