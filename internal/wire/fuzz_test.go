package wire

import (
	"bytes"
	"reflect"
	"testing"
	"unicode/utf8"
)

// normalizeFrame folds the empty/nil asymmetry JSON's omitempty introduces:
// a frame decoded from a payload that spelled out empty maps or arrays loses
// them on re-encode, which is fine — the two forms mean the same thing.
func normalizeFrame(f *Frame) {
	if len(f.Headers) == 0 {
		f.Headers = nil
	}
	if len(f.Body) == 0 {
		f.Body = nil
	}
	if len(f.Stats) == 0 {
		f.Stats = nil
	}
}

// utf8Clean reports whether every string field of f is valid UTF-8, i.e.
// whether the frame survives a JSON encode byte-for-byte.
func utf8Clean(f *Frame) bool {
	for _, s := range []string{f.Queue, f.Exchange, f.Kind, f.Key, f.ConsumerID, f.MessageID, f.Err} {
		if !utf8.ValidString(s) {
			return false
		}
	}
	for k, v := range f.Headers {
		if !utf8.ValidString(k) || !utf8.ValidString(v) {
			return false
		}
	}
	return true
}

// FuzzFrameCodec feeds arbitrary bytes to the frame reader. Whatever decodes
// must survive a re-encode/re-decode round trip unchanged, and nothing may
// panic — a corrupt or malicious peer gets an error, never a crash.
func FuzzFrameCodec(f *testing.F) {
	var pub bytes.Buffer
	_ = NewWriter(&pub).Write(&Frame{
		Op: OpPublish, Seq: 7, Exchange: "ex", Key: "k",
		Headers:    map[string]string{"codec": "json"},
		Body:       []byte("payload"),
		Persistent: true,
	})
	f.Add(pub.Bytes())
	var ping bytes.Buffer
	_ = NewWriter(&ping).Write(&Frame{Op: OpPing, Seq: 1})
	f.Add(ping.Bytes())
	var legacy bytes.Buffer
	_ = NewWriterFormat(&legacy, FormatJSON).Write(&Frame{
		Op: OpDeliver, Queue: "q", DeliveryID: 3, Body: []byte("legacy"),
	})
	f.Add(legacy.Bytes())
	var mixed bytes.Buffer // legacy then binary on one stream
	_ = NewWriterFormat(&mixed, FormatJSON).Write(&Frame{Op: OpPing, Seq: 1})
	_ = NewWriter(&mixed).Write(&Frame{Op: OpPong, Seq: 1})
	f.Add(mixed.Bytes())
	f.Add([]byte{0, 0, 0})                                                                                    // truncated legacy header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})                                                                // over-limit legacy length prefix
	f.Add([]byte{0, 0, 0, 2, '{', '}', 0, 0, 0})                                                              // empty frame + torn tail
	f.Add([]byte{binaryMarker})                                                                               // marker with no length
	f.Add([]byte{binaryMarker, 0x80})                                                                         // truncated length varint
	f.Add([]byte{binaryMarker, 0x02, fSeq, 0x80})                                                             // truncated field varint
	f.Add([]byte{binaryMarker, 0x01, 0x63})                                                                   // unknown field id
	f.Add([]byte{binaryMarker, 0x04, fBody, 0x01, 'x', fSeq})                                                 // bytes after body
	f.Add([]byte{binaryMarker, 0xff, 0xff, 0xff, 0xff, 0x7f})                                                 // over-limit binary length
	f.Add([]byte{binaryMarker, 0x05, fHeaders, 0x01, 0x63, 0x01, 'v'})                                        // unknown interned key
	f.Add([]byte{binaryMarker, 0x0c, fSeq, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) // overlong varint

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			fr, err := r.Read()
			if err != nil {
				// Any decode error is acceptable on arbitrary input; a frame
				// alongside one is not.
				if fr != nil {
					t.Fatalf("Read returned frame %+v with error %v", fr, err)
				}
				return
			}
			// Clone first: fr aliases r's buffer, which the next Read (and
			// the nested readers below) would otherwise clobber.
			got := fr.Clone()
			// Whatever decoded must survive re-encode/re-decode in BOTH
			// formats, and the two must agree — the cross-check that keeps
			// binary and legacy JSON framing semantically identical. The
			// JSON leg only applies to UTF-8-clean frames: binary framing
			// carries arbitrary bytes in string fields, but json.Marshal
			// substitutes U+FFFD for invalid sequences.
			formats := []Format{FormatBinary}
			if utf8Clean(got) {
				formats = append(formats, FormatJSON)
			}
			for _, format := range formats {
				var rt bytes.Buffer
				if err := NewWriterFormat(&rt, format).Write(got); err != nil {
					t.Fatalf("re-encode (format %d) failed: %v (frame %+v)", format, err, got)
				}
				back, err := NewReader(&rt).Read()
				if err != nil {
					t.Fatalf("re-decode (format %d) failed: %v (frame %+v)", format, err, got)
				}
				back = back.Clone()
				normalizeFrame(got)
				normalizeFrame(back)
				if !reflect.DeepEqual(got, back) {
					t.Fatalf("round trip (format %d) diverged:\n decoded:   %+v\n re-decoded: %+v", format, got, back)
				}
			}
		}
	})
}
