package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	tests := []struct {
		name  string
		frame Frame
	}{
		{"empty publish", Frame{Op: OpPublish}},
		{"publish with body", Frame{
			Op: OpPublish, Seq: 7, Exchange: "workspace.fanout", Key: "ws1",
			MessageID: "m-1", Body: []byte("hello"), Persistent: true,
			Headers: map[string]string{"codec": "json"},
		}},
		{"deliver", Frame{
			Op: OpDeliver, Queue: "sync.requests", ConsumerID: "c1",
			DeliveryID: 42, Body: []byte{0, 1, 2, 255}, Redelivery: 2,
		}},
		{"error reply", Frame{Op: OpError, Seq: 3, Err: "queue not found"}},
		{"stats", Frame{Op: OpStatsReply, Stats: []byte(`{"depth":3}`)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := NewWriter(&buf).Write(&tt.frame); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := NewReader(&buf).Read()
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if got.Op != tt.frame.Op || got.Seq != tt.frame.Seq ||
				got.Queue != tt.frame.Queue || got.Exchange != tt.frame.Exchange ||
				got.Key != tt.frame.Key || got.MessageID != tt.frame.MessageID ||
				!bytes.Equal(got.Body, tt.frame.Body) ||
				got.Persistent != tt.frame.Persistent ||
				got.DeliveryID != tt.frame.DeliveryID ||
				got.Err != tt.frame.Err {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tt.frame)
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint64, queue, key string, body []byte, persistent bool) bool {
		in := Frame{Op: OpPublish, Seq: seq, Queue: queue, Key: key, Body: body, Persistent: persistent}
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(&in); err != nil {
			return false
		}
		out, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		return out.Seq == in.Seq && out.Queue == in.Queue && out.Key == in.Key &&
			bytes.Equal(out.Body, in.Body) && out.Persistent == in.Persistent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.Write(&Frame{Op: OpPing, Seq: uint64(i)}); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	r := NewReader(&buf)
	for i := 0; i < 100; i++ {
		f, err := r.Read()
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d out of order: seq %d", i, f.Seq)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(&Frame{Op: OpPublish, Body: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	// Cut the stream mid-payload.
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := NewReader(bytes.NewReader(cut)).Read(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("expected ErrShortFrame, got %v", err)
	}
	// Cut mid-header.
	if _, err := NewReader(bytes.NewReader(cut[:2])).Read(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("expected ErrShortFrame on short header, got %v", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	// Hand-craft a header claiming a payload larger than the cap.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := NewReader(bytes.NewReader(hdr)).Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{
		OpDeclareQueue, OpDeleteQueue, OpDeclareExchange, OpBindQueue, OpUnbindQueue,
		OpPublish, OpSubscribe, OpCancel, OpAck, OpNack, OpDeliver, OpOK, OpError,
		OpQueueStats, OpStatsReply, OpPing, OpPong,
	}
	seen := make(map[string]bool, len(ops))
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d has empty or duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if got := Op(99).String(); got != "op(99)" {
		t.Fatalf("unknown op string = %q", got)
	}
}
