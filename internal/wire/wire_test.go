package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	tests := []struct {
		name  string
		frame Frame
	}{
		{"empty publish", Frame{Op: OpPublish}},
		{"publish with body", Frame{
			Op: OpPublish, Seq: 7, Exchange: "workspace.fanout", Key: "ws1",
			MessageID: "m-1", Body: []byte("hello"), Persistent: true,
			Headers: map[string]string{"codec": "json"},
		}},
		{"deliver", Frame{
			Op: OpDeliver, Queue: "sync.requests", ConsumerID: "c1",
			DeliveryID: 42, Body: []byte{0, 1, 2, 255}, Redelivery: 2,
		}},
		{"error reply", Frame{Op: OpError, Seq: 3, Err: "queue not found"}},
		{"stats", Frame{Op: OpStatsReply, Stats: []byte(`{"depth":3}`)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := NewWriter(&buf).Write(&tt.frame); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := NewReader(&buf).Read()
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if got.Op != tt.frame.Op || got.Seq != tt.frame.Seq ||
				got.Queue != tt.frame.Queue || got.Exchange != tt.frame.Exchange ||
				got.Key != tt.frame.Key || got.MessageID != tt.frame.MessageID ||
				!bytes.Equal(got.Body, tt.frame.Body) ||
				got.Persistent != tt.frame.Persistent ||
				got.DeliveryID != tt.frame.DeliveryID ||
				got.Err != tt.frame.Err {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tt.frame)
			}
		})
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint64, queue, key string, body []byte, persistent bool) bool {
		in := Frame{Op: OpPublish, Seq: seq, Queue: queue, Key: key, Body: body, Persistent: persistent}
		var buf bytes.Buffer
		if err := NewWriter(&buf).Write(&in); err != nil {
			return false
		}
		out, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		return out.Seq == in.Seq && out.Queue == in.Queue && out.Key == in.Key &&
			bytes.Equal(out.Body, in.Body) && out.Persistent == in.Persistent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.Write(&Frame{Op: OpPing, Seq: uint64(i)}); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	r := NewReader(&buf)
	for i := 0; i < 100; i++ {
		f, err := r.Read()
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if f.Seq != uint64(i) {
			t.Fatalf("frame %d out of order: seq %d", i, f.Seq)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(&Frame{Op: OpPublish, Body: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	// Cut the stream mid-payload.
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := NewReader(bytes.NewReader(cut)).Read(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("expected ErrShortFrame, got %v", err)
	}
	// Cut mid-header.
	if _, err := NewReader(bytes.NewReader(cut[:2])).Read(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("expected ErrShortFrame on short header, got %v", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	// Hand-craft a header claiming a payload larger than the cap.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := NewReader(bytes.NewReader(hdr)).Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{
		OpDeclareQueue, OpDeleteQueue, OpDeclareExchange, OpBindQueue, OpUnbindQueue,
		OpPublish, OpSubscribe, OpCancel, OpAck, OpNack, OpDeliver, OpOK, OpError,
		OpQueueStats, OpStatsReply, OpPing, OpPong,
	}
	seen := make(map[string]bool, len(ops))
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d has empty or duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if got := Op(99).String(); got != "op(99)" {
		t.Fatalf("unknown op string = %q", got)
	}
}

// TestFormatInterop pins the mixed-fleet story: a JSON writer's frames and a
// binary writer's frames decode identically from the same stream, because the
// reader auto-detects per frame.
func TestFormatInterop(t *testing.T) {
	frame := Frame{
		Op: OpPublish, Seq: 9, Exchange: "ex", Key: "route",
		MessageID: "m-9", Body: []byte("mixed"), Persistent: true,
		Headers: map[string]string{"codec": "bin", "x-custom": "v"},
	}
	var buf bytes.Buffer
	if err := NewWriterFormat(&buf, FormatJSON).Write(&frame); err != nil {
		t.Fatal(err)
	}
	if err := NewWriter(&buf).Write(&frame); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < 2; i++ {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != frame.Op || got.Seq != frame.Seq || got.Exchange != frame.Exchange ||
			got.Key != frame.Key || got.MessageID != frame.MessageID ||
			!bytes.Equal(got.Body, frame.Body) || !got.Persistent ||
			got.Headers["codec"] != "bin" || got.Headers["x-custom"] != "v" {
			t.Fatalf("frame %d mismatch: %+v", i, got)
		}
	}
}

// TestReaderReusesBuffer pins the documented aliasing contract: the frame
// returned by Read (and its Body) is only valid until the next Read, and
// Clone detaches it.
func TestReaderReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(&Frame{Op: OpDeliver, Body: []byte("first-payload")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&Frame{Op: OpDeliver, Body: []byte("second")}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	f1, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	kept := f1.Body // aliases the reader's buffer
	saved := f1.Clone()
	f2, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f2.Body, []byte("second")) {
		t.Fatalf("second frame body = %q", f2.Body)
	}
	if bytes.Equal(kept, []byte("first-payload")) {
		t.Fatal("aliased body survived the next Read; buffer is not being reused")
	}
	if !bytes.Equal(saved.Body, []byte("first-payload")) {
		t.Fatalf("Clone did not detach: %q", saved.Body)
	}
}

// TestInternedHeaderKeys checks that hot header keys encode to a single byte
// and unknown keys still round-trip via the literal escape.
func TestInternedHeaderKeys(t *testing.T) {
	interned := Frame{Op: OpPublish, Headers: map[string]string{"codec": "bin"}}
	literal := Frame{Op: OpPublish, Headers: map[string]string{"x-totally-custom-key": "bin"}}
	var bi, bl bytes.Buffer
	if err := NewWriter(&bi).Write(&interned); err != nil {
		t.Fatal(err)
	}
	if err := NewWriter(&bl).Write(&literal); err != nil {
		t.Fatal(err)
	}
	// The literal key spells out its 20 bytes; the interned key costs 1.
	if bl.Len() <= bi.Len()+10 {
		t.Fatalf("interned key not compact: interned=%d literal=%d", bi.Len(), bl.Len())
	}
	for _, buf := range []*bytes.Buffer{&bi, &bl} {
		f, err := NewReader(buf).Read()
		if err != nil {
			t.Fatal(err)
		}
		if f.Headers["codec"] != "bin" && f.Headers["x-totally-custom-key"] != "bin" {
			t.Fatalf("headers lost: %v", f.Headers)
		}
	}
}

// TestMalformedBinary feeds hand-corrupted binary frames and expects clean
// errors, never panics or silent acceptance.
func TestMalformedBinary(t *testing.T) {
	frame := func(payload ...byte) []byte {
		b := []byte{binaryMarker, byte(len(payload))}
		return append(b, payload...)
	}
	cases := map[string][]byte{
		"unknown field id":    frame(0x63),
		"zero field id":       frame(0x00),
		"truncated varint":    frame(fSeq, 0x80),
		"overlong varint":     frame(fSeq, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80),
		"string over payload": frame(fQueue, 0x20, 'q'),
		"bytes after body":    frame(fBody, 0x01, 'x', fSeq, 0x01),
		"header count lie":    frame(fHeaders, 0x7f),
		"bad interned key":    frame(fHeaders, 0x01, 0x63, 0x01, 'v'),
		"truncated headers":   frame(fHeaders, 0x02, 0x01, 0x01, 'v'),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := NewReader(bytes.NewReader(data)).Read(); err == nil {
				t.Fatalf("malformed frame %x accepted", data)
			}
		})
	}
	// An over-limit binary length prefix is rejected before allocation.
	huge := append([]byte{binaryMarker}, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := NewReader(bytes.NewReader(huge)).Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
}

// TestWriterRejectsOversizedFrame checks the cap applies on the encode side
// for both formats.
func TestWriterRejectsOversizedFrame(t *testing.T) {
	f := &Frame{Op: OpPublish, Body: make([]byte, MaxFrameSize+1)}
	if err := NewWriter(io.Discard).Write(f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("binary: expected ErrFrameTooLarge, got %v", err)
	}
	if err := NewWriterFormat(io.Discard, FormatJSON).Write(f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("json: expected ErrFrameTooLarge, got %v", err)
	}
}

// TestBinaryJSONCrossCheck round-trips the same frames through both formats
// and requires identical decodes.
func TestBinaryJSONCrossCheck(t *testing.T) {
	frames := []Frame{
		{Op: OpPublish, Seq: 1, Exchange: "e", Key: "k", Body: []byte("b"), Persistent: true},
		{Op: OpDeliver, Queue: "q", ConsumerID: "c", DeliveryID: 5, Redelivery: 3, Body: []byte{0xB2, 0x00}},
		{Op: OpNack, DeliveryID: 9, Requeue: true},
		{Op: OpError, Seq: 2, Err: "boom"},
		{Op: OpSubscribe, Queue: "q", Prefetch: 64},
		{Op: OpStatsReply, Seq: 4, Stats: []byte(`{"depth":1}`)},
		{Op: OpPublish, Headers: map[string]string{"codec": "gob", "x-route-key": "w7", "weird": "☃"}},
	}
	for i, in := range frames {
		var jb, bb bytes.Buffer
		if err := NewWriterFormat(&jb, FormatJSON).Write(&in); err != nil {
			t.Fatal(err)
		}
		if err := NewWriter(&bb).Write(&in); err != nil {
			t.Fatal(err)
		}
		fromJSON, err := NewReader(&jb).Read()
		if err != nil {
			t.Fatalf("frame %d json: %v", i, err)
		}
		j := fromJSON.Clone()
		fromBin, err := NewReader(&bb).Read()
		if err != nil {
			t.Fatalf("frame %d bin: %v", i, err)
		}
		b := fromBin.Clone()
		normalizeFrame(j)
		normalizeFrame(b)
		if !reflect.DeepEqual(j, b) {
			t.Fatalf("frame %d diverged:\n json: %+v\n bin:  %+v", i, j, b)
		}
	}
}
