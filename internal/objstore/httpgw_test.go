package objstore

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"
)

func newGateway(t *testing.T, token string) *HTTPStore {
	t.Helper()
	srv := httptest.NewServer(NewHandler(NewMemory(), token))
	t.Cleanup(srv.Close)
	return NewHTTPStore(srv.URL, token)
}

func TestHTTPStoreConformance(t *testing.T) {
	s := newGateway(t, "")

	if err := s.Put("nope", "k", []byte("v")); !errors.Is(err, ErrNoContainer) {
		t.Fatalf("put without container: %v", err)
	}
	if err := s.EnsureContainer("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("c", "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get absent: %v", err)
	}
	ok, err := s.Exists("c", "absent")
	if err != nil || ok {
		t.Fatalf("exists absent: %v %v", ok, err)
	}

	payload := []byte{0, 1, 2, 254, 255, 'x'}
	if err := s.Put("c", "bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("c", "bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get: %v %v", got, err)
	}
	ok, err = s.Exists("c", "bin")
	if err != nil || !ok {
		t.Fatalf("exists: %v %v", ok, err)
	}
	if err := s.Put("c", "second", []byte("2")); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List("c")
	if err != nil || len(keys) != 2 || keys[0] != "bin" || keys[1] != "second" {
		t.Fatalf("list: %v %v", keys, err)
	}
	if err := s.Delete("c", "bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("c", "bin"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	// Empty container listing.
	if err := s.EnsureContainer("empty"); err != nil {
		t.Fatal(err)
	}
	keys, err = s.List("empty")
	if err != nil || len(keys) != 0 {
		t.Fatalf("empty list: %v %v", keys, err)
	}
}

func TestHTTPStoreTokenAuth(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMemory(), "secret"))
	t.Cleanup(srv.Close)

	good := NewHTTPStore(srv.URL, "secret")
	if err := good.EnsureContainer("c"); err != nil {
		t.Fatal(err)
	}
	bad := NewHTTPStore(srv.URL, "wrong")
	if err := bad.EnsureContainer("c"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong token: %v", err)
	}
	none := NewHTTPStore(srv.URL, "")
	if _, err := none.Get("c", "k"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("missing token: %v", err)
	}
}

func TestHTTPHandlerRejectsBadRoutes(t *testing.T) {
	s := newGateway(t, "")
	// Reaching under /v1 with a bad method.
	if err := s.EnsureContainer("c"); err != nil {
		t.Fatal(err)
	}
	resp, err := s.do("POST", s.url("c", "k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
	resp2, err := s.do("GET", s.base+"/other", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("bad path status = %d, want 404", resp2.StatusCode)
	}
}

func TestHTTPStoreKeysWithSpecialCharacters(t *testing.T) {
	s := newGateway(t, "")
	if err := s.EnsureContainer("c"); err != nil {
		t.Fatal(err)
	}
	key := "weird key/with? things#"
	if err := s.Put("c", key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("c", key)
	if err != nil || string(got) != "v" {
		t.Fatalf("special key round trip: %q %v", got, err)
	}
}
