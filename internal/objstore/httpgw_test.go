package objstore

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
)

func newGateway(t *testing.T, token string) *HTTPStore {
	t.Helper()
	srv := httptest.NewServer(NewHandler(NewMemory(), token))
	t.Cleanup(srv.Close)
	return NewHTTPStore(srv.URL, token)
}

// The full contract (incl. batch ops and ctx cancellation) runs through the
// storetest suite in conformance_test.go; these tests cover gateway-specific
// wire behaviour.

func TestHTTPStoreRoundTrip(t *testing.T) {
	s := newGateway(t, "")

	if err := s.Put(ctx, "nope", "k", []byte("v")); !errors.Is(err, ErrNoContainer) {
		t.Fatalf("put without container: %v", err)
	}
	if err := s.EnsureContainer(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "c", "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get absent: %v", err)
	}
	ok, err := s.Exists(ctx, "c", "absent")
	if err != nil || ok {
		t.Fatalf("exists absent: %v %v", ok, err)
	}

	payload := []byte{0, 1, 2, 254, 255, 'x'}
	if err := s.Put(ctx, "c", "bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "c", "bin")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get: %v %v", got, err)
	}
	ok, err = s.Exists(ctx, "c", "bin")
	if err != nil || !ok {
		t.Fatalf("exists: %v %v", ok, err)
	}
	if err := s.Put(ctx, "c", "second", []byte("2")); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List(ctx, "c")
	if err != nil || len(keys) != 2 || keys[0] != "bin" || keys[1] != "second" {
		t.Fatalf("list: %v %v", keys, err)
	}
	if err := s.Delete(ctx, "c", "bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "c", "bin"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	// Empty container listing.
	if err := s.EnsureContainer(ctx, "empty"); err != nil {
		t.Fatal(err)
	}
	keys, err = s.List(ctx, "empty")
	if err != nil || len(keys) != 0 {
		t.Fatalf("empty list: %v %v", keys, err)
	}
}

// TestHTTPStoreBatchRoundTrip moves binary payloads through the multi
// routes and checks the partial-result reconstruction on misses.
func TestHTTPStoreBatchRoundTrip(t *testing.T) {
	s := newGateway(t, "")
	if err := s.EnsureContainer(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	objs := []Object{
		{Key: "a", Data: []byte{0, 255, 1, 254}},
		{Key: "b", Data: []byte("plain")},
		{Key: "empty", Data: nil},
	}
	if err := s.PutMulti(ctx, "c", objs); err != nil {
		t.Fatal(err)
	}
	data, err := s.GetMulti(ctx, "c", []string{"b", "a", "empty", "missing"})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("batch miss error = %v", err)
	}
	if string(data[0]) != "plain" || !bytes.Equal(data[1], objs[0].Data) {
		t.Fatalf("batch data = %q", data)
	}
	if data[2] == nil || len(data[2]) != 0 {
		t.Fatalf("empty object = %v", data[2])
	}
	if data[3] != nil {
		t.Fatalf("missing object = %v, want nil", data[3])
	}
	present, err := s.ExistsMulti(ctx, "c", []string{"a", "missing", "empty"})
	if err != nil || !present[0] || present[1] || !present[2] {
		t.Fatalf("batch exists = %v, %v", present, err)
	}
}

// TestHTTPErrorMappingUniform: the gateway names the sentinel in a response
// header, so errors.Is classification is identical to local backends even
// where status codes collide (object-miss vs container-miss are both 404).
func TestHTTPErrorMappingUniform(t *testing.T) {
	s := newGateway(t, "")
	if err := s.EnsureContainer(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	// Exists against a missing container must be ErrNoContainer, not a
	// silent false — the header disambiguates the two 404s on HEAD.
	if _, err := s.Exists(ctx, "nope", "k"); !errors.Is(err, ErrNoContainer) {
		t.Fatalf("exists without container: %v", err)
	}
	if _, err := s.GetMulti(ctx, "nope", []string{"k"}); !errors.Is(err, ErrNoContainer) {
		t.Fatalf("getmulti without container: %v", err)
	}
	if err := s.Delete(ctx, "nope", "k"); !errors.Is(err, ErrNoContainer) {
		t.Fatalf("delete without container: %v", err)
	}
	if _, err := s.Get(ctx, "c", "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get absent object: %v", err)
	}
}

// TestHTTPStoreHonorsContext: a canceled context aborts the request and the
// context error survives errors.Is through the transport wrapping.
func TestHTTPStoreHonorsContext(t *testing.T) {
	s := newGateway(t, "")
	if err := s.EnsureContainer(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Put(canceled, "c", "k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("put with canceled ctx: %v", err)
	}
	if _, err := s.GetMulti(canceled, "c", []string{"k"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("getmulti with canceled ctx: %v", err)
	}
}

func TestHTTPStoreTokenAuth(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewMemory(), "secret"))
	t.Cleanup(srv.Close)

	good := NewHTTPStore(srv.URL, "secret")
	if err := good.EnsureContainer(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	bad := NewHTTPStore(srv.URL, "wrong")
	if err := bad.EnsureContainer(ctx, "c"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong token: %v", err)
	}
	none := NewHTTPStore(srv.URL, "")
	if _, err := none.Get(ctx, "c", "k"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("missing token: %v", err)
	}
	if err := none.PutMulti(ctx, "c", []Object{{Key: "k"}}); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("missing token batch: %v", err)
	}
}

func TestHTTPHandlerRejectsBadRoutes(t *testing.T) {
	s := newGateway(t, "")
	// POST on an object path is not a route.
	if err := s.EnsureContainer(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	resp, err := s.do(ctx, "POST", s.url("c", "k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
	resp2, err := s.do(ctx, "GET", s.base+"/other", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("bad path status = %d, want 404", resp2.StatusCode)
	}
	// POST on a container with an unknown multi op.
	resp3, err := s.do(ctx, "POST", s.url("c", "")+"?multi=zap", bytes.NewReader([]byte("[]")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != 400 {
		t.Fatalf("unknown multi op status = %d, want 400", resp3.StatusCode)
	}
}

func TestHTTPStoreKeysWithSpecialCharacters(t *testing.T) {
	s := newGateway(t, "")
	if err := s.EnsureContainer(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	key := "weird key/with? things#"
	if err := s.Put(ctx, "c", key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "c", key)
	if err != nil || string(got) != "v" {
		t.Fatalf("special key round trip: %q %v", got, err)
	}
}
