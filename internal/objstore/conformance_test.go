package objstore_test

import (
	"net/http/httptest"
	"testing"

	"stacksync/internal/clock"
	"stacksync/internal/faults"
	"stacksync/internal/objstore"
	"stacksync/internal/objstore/storetest"
)

// TestStoreConformance pins the redesigned Store contract across every
// implementation in this package: the two backends, every wrapper (each
// configured so operations succeed — zero-cost simulation, a no-fault plan,
// a fully granted token), and the remote gateway pair. The client's
// breakerStore runs the same suite from its own package.
func TestStoreConformance(t *testing.T) {
	factories := map[string]func(t *testing.T) objstore.Store{
		"memory": func(t *testing.T) objstore.Store { return objstore.NewMemory() },
		"disk": func(t *testing.T) objstore.Store {
			d, err := objstore.NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"metered": func(t *testing.T) objstore.Store {
			return objstore.NewMetered(objstore.NewMemory())
		},
		"simulated": func(t *testing.T) objstore.Store {
			return objstore.NewSimulated(objstore.NewMemory(), clock.NewReal(), 0, 0)
		},
		"faulty": func(t *testing.T) objstore.Store {
			return objstore.NewFaulty(objstore.NewMemory(), faults.NewPlan(faults.Config{}), "objstore", nil)
		},
		"tokenauth": func(t *testing.T) objstore.Store {
			auth := objstore.NewTokenAuth(objstore.NewMemory())
			for _, c := range append([]string{storetest.MissingContainer}, storetest.Containers...) {
				auth.Grant("suite-token", c)
			}
			return auth.WithToken("suite-token")
		},
		"http": func(t *testing.T) objstore.Store {
			srv := httptest.NewServer(objstore.NewHandler(objstore.NewMemory(), "gw-token"))
			t.Cleanup(srv.Close)
			return objstore.NewHTTPStore(srv.URL, "gw-token")
		},
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) { storetest.Run(t, mk) })
	}
}
