// Package storetest pins down the objstore.Store contract as an executable
// conformance suite. Every Store implementation — backends, wrappers, and
// the client's resilience layer — runs the same suite, so sentinel errors,
// idempotent content-addressed puts, context cancellation and batch/single
// equivalence behave identically no matter how the store is composed.
package storetest

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"stacksync/internal/objstore"
)

// Containers are the container names the suite creates. Auth-gating
// wrappers (TokenAuth and friends) must pre-grant access to all of them,
// plus MissingContainer: the suite probes MissingContainer to assert
// ErrNoContainer, which an unauthorized view would mask with
// ErrUnauthorized.
var Containers = []string{"stc-a", "stc-b"}

// MissingContainer is probed but never created.
const MissingContainer = "stc-missing"

// Run exercises the full Store contract against a fresh store from mk.
// Implementations with per-operation side effects (metering, simulated
// latency) must be configured so operations succeed; fault injectors must
// use a no-fault plan.
func Run(t *testing.T, mk func(t *testing.T) objstore.Store) {
	t.Helper()
	t.Run("sentinels", func(t *testing.T) { runSentinels(t, mk(t)) })
	t.Run("roundtrip", func(t *testing.T) { runRoundtrip(t, mk(t)) })
	t.Run("batch", func(t *testing.T) { runBatch(t, mk(t)) })
	t.Run("cancellation", func(t *testing.T) { runCancellation(t, mk(t)) })
}

func runSentinels(t *testing.T, s objstore.Store) {
	ctx := context.Background()
	// Every operation against a missing container fails with ErrNoContainer.
	if err := s.Put(ctx, MissingContainer, "k", []byte("v")); !errors.Is(err, objstore.ErrNoContainer) {
		t.Fatalf("put without container: %v", err)
	}
	if _, err := s.Get(ctx, MissingContainer, "k"); !errors.Is(err, objstore.ErrNoContainer) {
		t.Fatalf("get without container: %v", err)
	}
	if _, err := s.Exists(ctx, MissingContainer, "k"); !errors.Is(err, objstore.ErrNoContainer) {
		t.Fatalf("exists without container: %v", err)
	}
	if err := s.Delete(ctx, MissingContainer, "k"); !errors.Is(err, objstore.ErrNoContainer) {
		t.Fatalf("delete without container: %v", err)
	}
	if _, err := s.List(ctx, MissingContainer); !errors.Is(err, objstore.ErrNoContainer) {
		t.Fatalf("list without container: %v", err)
	}
	if err := s.PutMulti(ctx, MissingContainer, []objstore.Object{{Key: "k", Data: []byte("v")}}); !errors.Is(err, objstore.ErrNoContainer) {
		t.Fatalf("putmulti without container: %v", err)
	}
	if _, err := s.ExistsMulti(ctx, MissingContainer, []string{"k"}); !errors.Is(err, objstore.ErrNoContainer) {
		t.Fatalf("existsmulti without container: %v", err)
	}

	if err := s.EnsureContainer(ctx, Containers[0]); err != nil {
		t.Fatal(err)
	}
	// Absent objects: ErrNotFound on Get, a false answer (no error) on Exists.
	if _, err := s.Get(ctx, Containers[0], "absent"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("get absent: %v", err)
	}
	ok, err := s.Exists(ctx, Containers[0], "absent")
	if err != nil || ok {
		t.Fatalf("exists absent = %v, %v", ok, err)
	}
	// Deleting a missing object is a no-op, not an error.
	if err := s.Delete(ctx, Containers[0], "absent"); err != nil {
		t.Fatalf("delete absent: %v", err)
	}
}

func runRoundtrip(t *testing.T, s objstore.Store) {
	ctx := context.Background()
	c := Containers[0]
	if err := s.EnsureContainer(ctx, c); err != nil {
		t.Fatal(err)
	}
	// Re-ensuring is idempotent.
	if err := s.EnsureContainer(ctx, c); err != nil {
		t.Fatalf("re-ensure: %v", err)
	}

	payload := []byte("chunk-content")
	if err := s.Put(ctx, c, "abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, c, "abc123")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("get = %q, %v", got, err)
	}
	ok, err := s.Exists(ctx, c, "abc123")
	if err != nil || !ok {
		t.Fatalf("exists = %v, %v", ok, err)
	}

	// Content-addressed puts are idempotent: re-putting the key succeeds.
	if err := s.Put(ctx, c, "abc123", payload); err != nil {
		t.Fatalf("re-put: %v", err)
	}

	// List is sorted.
	if err := s.Put(ctx, c, "zzz", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, c, "aaa", []byte("a")); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aaa", "abc123", "zzz"}
	if len(keys) != 3 || keys[0] != want[0] || keys[1] != want[1] || keys[2] != want[2] {
		t.Fatalf("list = %v, want %v", keys, want)
	}

	// Delete removes; re-delete is a no-op.
	if err := s.Delete(ctx, c, "abc123"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, c, "abc123"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if err := s.Delete(ctx, c, "abc123"); err != nil {
		t.Fatalf("double delete: %v", err)
	}

	// Containers are isolated.
	if err := s.EnsureContainer(ctx, Containers[1]); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Exists(ctx, Containers[1], "aaa"); ok {
		t.Fatal("object leaked across containers")
	}
}

func runBatch(t *testing.T, s objstore.Store) {
	ctx := context.Background()
	c := Containers[0]
	if err := s.EnsureContainer(ctx, c); err != nil {
		t.Fatal(err)
	}

	// Empty batches are no-ops.
	if err := s.PutMulti(ctx, c, nil); err != nil {
		t.Fatalf("empty putmulti: %v", err)
	}
	if data, err := s.GetMulti(ctx, c, nil); err != nil || len(data) != 0 {
		t.Fatalf("empty getmulti = %v, %v", data, err)
	}
	if present, err := s.ExistsMulti(ctx, c, nil); err != nil || len(present) != 0 {
		t.Fatalf("empty existsmulti = %v, %v", present, err)
	}

	// Batch puts land like single puts.
	objs := []objstore.Object{
		{Key: "b1", Data: []byte("one")},
		{Key: "b2", Data: []byte("two")},
		{Key: "b3", Data: []byte{}}, // empty objects are legal
	}
	if err := s.PutMulti(ctx, c, objs); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		got, err := s.Get(ctx, c, o.Key)
		if err != nil || !bytes.Equal(got, o.Data) {
			t.Fatalf("get %s after putmulti = %q, %v", o.Key, got, err)
		}
	}
	// Re-putting the batch is idempotent.
	if err := s.PutMulti(ctx, c, objs); err != nil {
		t.Fatalf("re-putmulti: %v", err)
	}

	// ExistsMulti aligns with its keys and agrees with Exists.
	present, err := s.ExistsMulti(ctx, c, []string{"b1", "nope", "b3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(present) != 3 || !present[0] || present[1] || !present[2] {
		t.Fatalf("existsmulti = %v, want [true false true]", present)
	}

	// GetMulti of present keys: aligned data, nil error. Present empty
	// objects come back as empty non-nil slices.
	data, err := s.GetMulti(ctx, c, []string{"b2", "b1", "b3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3 || string(data[0]) != "two" || string(data[1]) != "one" {
		t.Fatalf("getmulti = %q", data)
	}
	if data[2] == nil || len(data[2]) != 0 {
		t.Fatalf("empty object came back as %v", data[2])
	}

	// GetMulti with misses: partial results survive, the error wraps
	// ErrNotFound, and the missing entry is nil.
	data, err = s.GetMulti(ctx, c, []string{"b1", "missing", "b2"})
	if !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("getmulti miss error = %v", err)
	}
	if len(data) != 3 || string(data[0]) != "one" || data[1] != nil || string(data[2]) != "two" {
		t.Fatalf("getmulti partial = %q", data)
	}

	// Single-element batches are equivalent to single operations.
	if err := s.PutMulti(ctx, c, []objstore.Object{{Key: "solo", Data: []byte("s")}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, c, "solo")
	if err != nil || string(got) != "s" {
		t.Fatalf("single-batch put round trip = %q, %v", got, err)
	}
	if _, err := s.GetMulti(ctx, c, []string{"missing"}); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("single-batch miss = %v, want ErrNotFound like Get", err)
	}
}

func runCancellation(t *testing.T, s objstore.Store) {
	live := context.Background()
	c := Containers[0]
	if err := s.EnsureContainer(live, c); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(live, c, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	check := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s with canceled ctx: %v, want context.Canceled", op, err)
		}
	}
	check("ensure", s.EnsureContainer(ctx, c))
	check("put", s.Put(ctx, c, "k2", []byte("v")))
	_, err := s.Get(ctx, c, "k")
	check("get", err)
	_, err = s.Exists(ctx, c, "k")
	check("exists", err)
	check("delete", s.Delete(ctx, c, "k"))
	_, err = s.List(ctx, c)
	check("list", err)
	check("putmulti", s.PutMulti(ctx, c, []objstore.Object{{Key: "k3", Data: []byte("v")}}))
	_, err = s.GetMulti(ctx, c, []string{"k"})
	check("getmulti", err)
	_, err = s.ExistsMulti(ctx, c, []string{"k"})
	check("existsmulti", err)

	// The store still works after the canceled calls.
	if got, err := s.Get(live, c, "k"); err != nil || string(got) != "v" {
		t.Fatalf("store broken after cancellation: %q, %v", got, err)
	}
}
