package objstore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"stacksync/internal/clock"
)

// storeFactories lets every conformance test run against all backends.
func storeFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"memory": func() Store { return NewMemory() },
		"disk": func() Store {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"metered-memory": func() Store { return NewMetered(NewMemory()) },
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()

			// Operations against a missing container fail.
			if err := s.Put("nope", "k", []byte("v")); !errors.Is(err, ErrNoContainer) {
				t.Fatalf("put without container: %v", err)
			}
			if _, err := s.Get("nope", "k"); !errors.Is(err, ErrNoContainer) {
				t.Fatalf("get without container: %v", err)
			}
			if _, err := s.List("nope"); !errors.Is(err, ErrNoContainer) {
				t.Fatalf("list without container: %v", err)
			}

			if err := s.EnsureContainer("u1"); err != nil {
				t.Fatal(err)
			}
			if err := s.EnsureContainer("u1"); err != nil {
				t.Fatalf("re-ensure: %v", err)
			}

			// Missing object.
			if _, err := s.Get("u1", "absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("get absent: %v", err)
			}
			ok, err := s.Exists("u1", "absent")
			if err != nil || ok {
				t.Fatalf("exists absent = %v, %v", ok, err)
			}

			// Put / Get round trip.
			payload := []byte("chunk-content")
			if err := s.Put("u1", "abc123", payload); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("u1", "abc123")
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("get = %q, %v", got, err)
			}
			ok, err = s.Exists("u1", "abc123")
			if err != nil || !ok {
				t.Fatalf("exists = %v, %v", ok, err)
			}

			// Overwrite is idempotent for content-addressed data.
			if err := s.Put("u1", "abc123", payload); err != nil {
				t.Fatalf("re-put: %v", err)
			}

			// List is sorted.
			if err := s.Put("u1", "zzz", []byte("z")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("u1", "aaa", []byte("a")); err != nil {
				t.Fatal(err)
			}
			keys, err := s.List("u1")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"aaa", "abc123", "zzz"}
			if len(keys) != 3 || keys[0] != want[0] || keys[1] != want[1] || keys[2] != want[2] {
				t.Fatalf("list = %v, want %v", keys, want)
			}

			// Delete removes; re-delete is a no-op.
			if err := s.Delete("u1", "abc123"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("u1", "abc123"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("get after delete: %v", err)
			}
			if err := s.Delete("u1", "abc123"); err != nil {
				t.Fatalf("double delete: %v", err)
			}

			// Containers are isolated.
			if err := s.EnsureContainer("u2"); err != nil {
				t.Fatal(err)
			}
			if ok, _ := s.Exists("u2", "aaa"); ok {
				t.Fatal("object leaked across containers")
			}
		})
	}
}

func TestMemoryGetReturnsCopy(t *testing.T) {
	m := NewMemory()
	_ = m.EnsureContainer("c")
	_ = m.Put("c", "k", []byte("original"))
	got, _ := m.Get("c", "k")
	got[0] = 'X'
	again, _ := m.Get("c", "k")
	if string(again) != "original" {
		t.Fatalf("internal state mutated through returned slice: %q", again)
	}
}

func TestMemoryPutCopiesInput(t *testing.T) {
	m := NewMemory()
	_ = m.EnsureContainer("c")
	buf := []byte("original")
	_ = m.Put("c", "k", buf)
	buf[0] = 'X'
	got, _ := m.Get("c", "k")
	if string(got) != "original" {
		t.Fatalf("store aliased caller's buffer: %q", got)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = d1.EnsureContainer("c")
	if err := d1.Put("c", "deadbeef", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get("c", "deadbeef")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("after reopen: %q, %v", got, err)
	}
}

func TestDiskSanitizesHostileKeys(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_ = d.EnsureContainer("c")
	if err := d.Put("c", "../../etc/passwd", []byte("nope")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("c", "../../etc/passwd")
	if err != nil || string(got) != "nope" {
		t.Fatalf("hostile key round trip: %q, %v", got, err)
	}
	keys, _ := d.List("c")
	if len(keys) != 1 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestMeteredCountsTraffic(t *testing.T) {
	m := NewMetered(NewMemory())
	_ = m.EnsureContainer("c")
	_ = m.Put("c", "k1", make([]byte, 1000))
	_ = m.Put("c", "k2", make([]byte, 500))
	if _, err := m.Get("c", "k1"); err != nil {
		t.Fatal(err)
	}
	_, _ = m.Exists("c", "k1")
	_ = m.Delete("c", "k2")
	tr := m.Traffic()
	if tr.Puts != 2 || tr.Gets != 1 || tr.Deletes != 1 {
		t.Fatalf("request counts: %+v", tr)
	}
	if tr.BytesUp != 1500 || tr.BytesDown != 1000 {
		t.Fatalf("byte counts: %+v", tr)
	}
	if tr.Total() != 2500 {
		t.Fatalf("total = %d", tr.Total())
	}
	m.Reset()
	if m.Traffic().Total() != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestMeteredTrafficProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := NewMetered(NewMemory())
		_ = m.EnsureContainer("c")
		var up uint64
		for i, s := range sizes {
			data := make([]byte, int(s)%4096)
			_ = m.Put("c", string(rune('a'+i%26)), data)
			up += uint64(len(data))
		}
		return m.Traffic().BytesUp == up
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedLatencyModel(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	inner := NewMemory()
	_ = inner.EnsureContainer("c")                               // set up without paying virtual latency
	s := NewSimulated(inner, vc, 10*time.Millisecond, 1_000_000) // 1 MB/s
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Put("c", "k", make([]byte, 500_000)) // 10ms + 500ms
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		select {
		case <-done:
			// 10ms request + 500KB/1MBps = 510ms of virtual time paid.
			if got := vc.Now().Sub(time.Unix(0, 0)); got < 510*time.Millisecond {
				t.Fatalf("put paid only %v of virtual time", got)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("simulated put never completed")
		}
		if vc.Waiters() > 0 {
			vc.Advance(100 * time.Millisecond)
		} else {
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSimulatedZeroCostPassthrough(t *testing.T) {
	s := NewSimulated(NewMemory(), clock.NewReal(), 0, 0)
	_ = s.EnsureContainer("c")
	if err := s.Put("c", "k", []byte("fast")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("c", "k")
	if err != nil || string(got) != "fast" {
		t.Fatalf("passthrough: %q, %v", got, err)
	}
}

func TestTokenAuthEnforcesGrants(t *testing.T) {
	auth := NewTokenAuth(NewMemory())
	auth.Grant("alice-token", "alice")
	alice := auth.WithToken("alice-token")
	mallory := auth.WithToken("mallory-token")

	if err := alice.EnsureContainer("alice"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Put("alice", "k", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if _, err := mallory.Get("alice", "k"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("mallory read alice's data: %v", err)
	}
	if err := mallory.Put("alice", "k2", []byte("spam")); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("mallory wrote to alice's container: %v", err)
	}
	// Grants added later are visible to existing views.
	auth.Grant("mallory-token", "mallory")
	if err := mallory.EnsureContainer("mallory"); err != nil {
		t.Fatalf("granted container still denied: %v", err)
	}
}
