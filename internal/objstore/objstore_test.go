package objstore

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"stacksync/internal/clock"
)

// The cross-implementation contract lives in the storetest conformance
// suite (see conformance_test.go). The tests here cover backend- and
// wrapper-specific behaviour the shared suite cannot: aliasing, crash
// persistence, accounting and the latency model.

var ctx = context.Background()

func TestMemoryGetReturnsCopy(t *testing.T) {
	m := NewMemory()
	_ = m.EnsureContainer(ctx, "c")
	_ = m.Put(ctx, "c", "k", []byte("original"))
	got, _ := m.Get(ctx, "c", "k")
	got[0] = 'X'
	again, _ := m.Get(ctx, "c", "k")
	if string(again) != "original" {
		t.Fatalf("internal state mutated through returned slice: %q", again)
	}
}

func TestMemoryPutCopiesInput(t *testing.T) {
	m := NewMemory()
	_ = m.EnsureContainer(ctx, "c")
	buf := []byte("original")
	_ = m.Put(ctx, "c", "k", buf)
	buf[0] = 'X'
	got, _ := m.Get(ctx, "c", "k")
	if string(got) != "original" {
		t.Fatalf("store aliased caller's buffer: %q", got)
	}
}

func TestMemoryPutMultiCopiesInput(t *testing.T) {
	m := NewMemory()
	_ = m.EnsureContainer(ctx, "c")
	buf := []byte("original")
	_ = m.PutMulti(ctx, "c", []Object{{Key: "k", Data: buf}})
	buf[0] = 'X'
	got, _ := m.Get(ctx, "c", "k")
	if string(got) != "original" {
		t.Fatalf("store aliased caller's batch buffer: %q", got)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = d1.EnsureContainer(ctx, "c")
	if err := d1.Put(ctx, "c", "deadbeef", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get(ctx, "c", "deadbeef")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("after reopen: %q, %v", got, err)
	}
}

func TestDiskSanitizesHostileKeys(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_ = d.EnsureContainer(ctx, "c")
	if err := d.Put(ctx, "c", "../../etc/passwd", []byte("nope")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(ctx, "c", "../../etc/passwd")
	if err != nil || string(got) != "nope" {
		t.Fatalf("hostile key round trip: %q, %v", got, err)
	}
	keys, _ := d.List(ctx, "c")
	if len(keys) != 1 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestMeteredCountsTraffic(t *testing.T) {
	m := NewMetered(NewMemory())
	_ = m.EnsureContainer(ctx, "c")
	_ = m.Put(ctx, "c", "k1", make([]byte, 1000))
	_ = m.Put(ctx, "c", "k2", make([]byte, 500))
	if _, err := m.Get(ctx, "c", "k1"); err != nil {
		t.Fatal(err)
	}
	_, _ = m.Exists(ctx, "c", "k1")
	_ = m.Delete(ctx, "c", "k2")
	tr := m.Traffic()
	if tr.Puts != 2 || tr.Gets != 1 || tr.Deletes != 1 {
		t.Fatalf("request counts: %+v", tr)
	}
	if tr.BytesUp != 1500 || tr.BytesDown != 1000 {
		t.Fatalf("byte counts: %+v", tr)
	}
	if tr.Total() != 2500 {
		t.Fatalf("total = %d", tr.Total())
	}
	m.Reset()
	if m.Traffic().Total() != 0 {
		t.Fatal("reset did not zero counters")
	}
}

// TestMeteredBatchChargesPerObject: a batch of n objects must meter exactly
// like n single operations, so traffic experiments stay comparable whether
// or not the client batches.
func TestMeteredBatchChargesPerObject(t *testing.T) {
	m := NewMetered(NewMemory())
	_ = m.EnsureContainer(ctx, "c")
	if err := m.PutMulti(ctx, "c", []Object{
		{Key: "k1", Data: make([]byte, 1000)},
		{Key: "k2", Data: make([]byte, 500)},
		{Key: "k3", Data: make([]byte, 250)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.GetMulti(ctx, "c", []string{"k1", "k2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExistsMulti(ctx, "c", []string{"k1", "k2", "k3", "k4"}); err != nil {
		t.Fatal(err)
	}
	tr := m.Traffic()
	if tr.Puts != 3 || tr.BytesUp != 1750 {
		t.Fatalf("batch put accounting: %+v", tr)
	}
	if tr.Gets != 2 || tr.BytesDown != 1500 {
		t.Fatalf("batch get accounting: %+v", tr)
	}
	// EnsureContainer (1) + the four probed keys.
	if tr.OtherRequests != 5 {
		t.Fatalf("batch exists accounting: %+v", tr)
	}
	// A miss still charges its get request, but moves no bytes.
	_, _ = m.GetMulti(ctx, "c", []string{"k1", "missing"})
	tr = m.Traffic()
	if tr.Gets != 4 || tr.BytesDown != 2500 {
		t.Fatalf("partial batch get accounting: %+v", tr)
	}
}

func TestMeteredTrafficProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := NewMetered(NewMemory())
		_ = m.EnsureContainer(ctx, "c")
		var up uint64
		for i, s := range sizes {
			data := make([]byte, int(s)%4096)
			_ = m.Put(ctx, "c", string(rune('a'+i%26)), data)
			up += uint64(len(data))
		}
		return m.Traffic().BytesUp == up
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedLatencyModel(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	inner := NewMemory()
	_ = inner.EnsureContainer(ctx, "c")                          // set up without paying virtual latency
	s := NewSimulated(inner, vc, 10*time.Millisecond, 1_000_000) // 1 MB/s
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Put(ctx, "c", "k", make([]byte, 500_000)) // 10ms + 500ms
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		select {
		case <-done:
			// 10ms request + 500KB/1MBps = 510ms of virtual time paid.
			if got := vc.Now().Sub(time.Unix(0, 0)); got < 510*time.Millisecond {
				t.Fatalf("put paid only %v of virtual time", got)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("simulated put never completed")
		}
		if vc.Waiters() > 0 {
			vc.Advance(100 * time.Millisecond)
		} else {
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSimulatedBatchPaysPerObject: a batch must pay the same simulated time
// as its per-object loop — batching does not cheat the network model; only
// parallel batches overlap their cost.
func TestSimulatedBatchPaysPerObject(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	inner := NewMemory()
	_ = inner.EnsureContainer(ctx, "c")
	s := NewSimulated(inner, vc, 10*time.Millisecond, 1_000_000) // 1 MB/s
	done := make(chan struct{})
	go func() {
		defer close(done)
		// 3 objects: 3×10ms requests + (100k+200k+300k)/1MBps = 630ms total.
		_ = s.PutMulti(ctx, "c", []Object{
			{Key: "a", Data: make([]byte, 100_000)},
			{Key: "b", Data: make([]byte, 200_000)},
			{Key: "c", Data: make([]byte, 300_000)},
		})
		// Probe batch: 2×10ms.
		_, _ = s.ExistsMulti(ctx, "c", []string{"a", "b"})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		select {
		case <-done:
			if got := vc.Now().Sub(time.Unix(0, 0)); got < 650*time.Millisecond {
				t.Fatalf("batch paid only %v of virtual time, want >= 650ms", got)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("simulated batch never completed")
		}
		if vc.Waiters() > 0 {
			vc.Advance(100 * time.Millisecond)
		} else {
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSimulatedZeroCostPassthrough(t *testing.T) {
	s := NewSimulated(NewMemory(), clock.NewReal(), 0, 0)
	_ = s.EnsureContainer(ctx, "c")
	if err := s.Put(ctx, "c", "k", []byte("fast")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "c", "k")
	if err != nil || string(got) != "fast" {
		t.Fatalf("passthrough: %q, %v", got, err)
	}
}

func TestTokenAuthEnforcesGrants(t *testing.T) {
	auth := NewTokenAuth(NewMemory())
	auth.Grant("alice-token", "alice")
	alice := auth.WithToken("alice-token")
	mallory := auth.WithToken("mallory-token")

	if err := alice.EnsureContainer(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := alice.Put(ctx, "alice", "k", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if _, err := mallory.Get(ctx, "alice", "k"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("mallory read alice's data: %v", err)
	}
	if err := mallory.Put(ctx, "alice", "k2", []byte("spam")); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("mallory wrote to alice's container: %v", err)
	}
	if _, err := mallory.GetMulti(ctx, "alice", []string{"k"}); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("mallory batch-read alice's data: %v", err)
	}
	if _, err := mallory.ExistsMulti(ctx, "alice", []string{"k"}); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("mallory batch-probed alice's container: %v", err)
	}
	// Grants added later are visible to existing views.
	auth.Grant("mallory-token", "mallory")
	if err := mallory.EnsureContainer(ctx, "mallory"); err != nil {
		t.Fatalf("granted container still denied: %v", err)
	}
}
