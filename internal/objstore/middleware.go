package objstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"stacksync/internal/clock"
	"stacksync/internal/faults"
	"stacksync/internal/obs"
)

// Traffic is a snapshot of bytes and requests through a Metered store. The
// protocol-overhead experiments (Fig. 7b–d, Table 2) read these counters as
// "storage traffic". Batch operations charge per object — PutMulti of n
// objects counts n puts — so traffic numbers stay comparable whether the
// client batches or not.
type Traffic struct {
	Puts          uint64 `json:"puts"`
	Gets          uint64 `json:"gets"`
	Deletes       uint64 `json:"deletes"`
	BytesUp       uint64 `json:"bytesUp"`
	BytesDown     uint64 `json:"bytesDown"`
	OtherRequests uint64 `json:"otherRequests"`
}

// Total returns all bytes moved in either direction.
func (t Traffic) Total() uint64 { return t.BytesUp + t.BytesDown }

// Metered wraps a Store and counts requests and payload bytes.
type Metered struct {
	inner Store

	mu sync.Mutex
	t  Traffic
}

var _ Store = (*Metered)(nil)

// NewMetered wraps inner with traffic accounting.
func NewMetered(inner Store) *Metered { return &Metered{inner: inner} }

// Traffic returns the current counters.
func (m *Metered) Traffic() Traffic {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Reset zeroes the counters.
func (m *Metered) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = Traffic{}
}

// Register exposes the traffic counters as lazily read gauges on reg
// (objstore_bytes_up/objstore_bytes_down/objstore_puts/objstore_gets),
// tagged with the given label pairs. Gauges rather than counters because
// Reset (used between experiment phases) may rewind them.
func (m *Metered) Register(reg *obs.Registry, labels ...string) {
	read := func(f func(Traffic) uint64) func() float64 {
		return func() float64 { return float64(f(m.Traffic())) }
	}
	reg.GaugeFunc("objstore_bytes_up", read(func(t Traffic) uint64 { return t.BytesUp }), labels...)
	reg.GaugeFunc("objstore_bytes_down", read(func(t Traffic) uint64 { return t.BytesDown }), labels...)
	reg.GaugeFunc("objstore_puts", read(func(t Traffic) uint64 { return t.Puts }), labels...)
	reg.GaugeFunc("objstore_gets", read(func(t Traffic) uint64 { return t.Gets }), labels...)
}

// EnsureContainer forwards and counts a control request.
func (m *Metered) EnsureContainer(ctx context.Context, container string) error {
	m.count(func(t *Traffic) { t.OtherRequests++ })
	return m.inner.EnsureContainer(ctx, container)
}

// Put forwards and accounts uploaded bytes.
func (m *Metered) Put(ctx context.Context, container, key string, data []byte) error {
	m.count(func(t *Traffic) { t.Puts++; t.BytesUp += uint64(len(data)) })
	return m.inner.Put(ctx, container, key, data)
}

// Get forwards and accounts downloaded bytes.
func (m *Metered) Get(ctx context.Context, container, key string) ([]byte, error) {
	data, err := m.inner.Get(ctx, container, key)
	m.count(func(t *Traffic) {
		t.Gets++
		t.BytesDown += uint64(len(data))
	})
	return data, err
}

// Exists forwards and counts a control request.
func (m *Metered) Exists(ctx context.Context, container, key string) (bool, error) {
	m.count(func(t *Traffic) { t.OtherRequests++ })
	return m.inner.Exists(ctx, container, key)
}

// Delete forwards and counts.
func (m *Metered) Delete(ctx context.Context, container, key string) error {
	m.count(func(t *Traffic) { t.Deletes++ })
	return m.inner.Delete(ctx, container, key)
}

// List forwards and counts a control request.
func (m *Metered) List(ctx context.Context, container string) ([]string, error) {
	m.count(func(t *Traffic) { t.OtherRequests++ })
	return m.inner.List(ctx, container)
}

// PutMulti forwards the batch and charges one put per object.
func (m *Metered) PutMulti(ctx context.Context, container string, objects []Object) error {
	m.count(func(t *Traffic) {
		for _, o := range objects {
			t.Puts++
			t.BytesUp += uint64(len(o.Data))
		}
	})
	return m.inner.PutMulti(ctx, container, objects)
}

// GetMulti forwards the batch and charges one get per key plus the bytes
// actually returned (partial results are charged for what arrived).
func (m *Metered) GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error) {
	data, err := m.inner.GetMulti(ctx, container, keys)
	m.count(func(t *Traffic) {
		t.Gets += uint64(len(keys))
		for _, d := range data {
			t.BytesDown += uint64(len(d))
		}
	})
	return data, err
}

// ExistsMulti forwards the batch and charges one control request per key.
func (m *Metered) ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error) {
	m.count(func(t *Traffic) { t.OtherRequests += uint64(len(keys)) })
	return m.inner.ExistsMulti(ctx, container, keys)
}

func (m *Metered) count(f func(*Traffic)) {
	m.mu.Lock()
	f(&m.t)
	m.mu.Unlock()
}

// Simulated wraps a Store with a latency and bandwidth model so sync-time
// experiments reproduce the storage-bound shape of Fig. 7(e,f) without the
// paper's Swift cluster: each request pays PerRequest, and each payload pays
// size/BytesPerSecond. Batch operations pay per object — the model treats a
// batch as a pipelined sequence of requests on one connection — so batching
// alone buys nothing in simulated time; parallel batches across the client's
// transfer workers overlap their sleeps, which is exactly the paper's
// transfer-parallelism lever.
type Simulated struct {
	inner Store
	clk   clock.Clock
	// PerRequest is the fixed round-trip cost of any storage request.
	PerRequest time.Duration
	// BytesPerSecond is the modelled transfer bandwidth (0 = infinite).
	BytesPerSecond float64
}

var _ Store = (*Simulated)(nil)

// NewSimulated wraps inner with the given latency model.
func NewSimulated(inner Store, clk clock.Clock, perRequest time.Duration, bytesPerSecond float64) *Simulated {
	return &Simulated{inner: inner, clk: clk, PerRequest: perRequest, BytesPerSecond: bytesPerSecond}
}

func (s *Simulated) pay(n int) {
	d := s.cost(n)
	if d > 0 {
		s.clk.Sleep(d)
	}
}

func (s *Simulated) cost(n int) time.Duration {
	d := s.PerRequest
	if s.BytesPerSecond > 0 && n > 0 {
		d += time.Duration(float64(n) / s.BytesPerSecond * float64(time.Second))
	}
	return d
}

// EnsureContainer pays one request.
func (s *Simulated) EnsureContainer(ctx context.Context, container string) error {
	s.pay(0)
	return s.inner.EnsureContainer(ctx, container)
}

// Put pays request + upload time.
func (s *Simulated) Put(ctx context.Context, container, key string, data []byte) error {
	s.pay(len(data))
	return s.inner.Put(ctx, container, key, data)
}

// Get pays request + download time.
func (s *Simulated) Get(ctx context.Context, container, key string) ([]byte, error) {
	data, err := s.inner.Get(ctx, container, key)
	s.pay(len(data))
	return data, err
}

// Exists pays one request.
func (s *Simulated) Exists(ctx context.Context, container, key string) (bool, error) {
	s.pay(0)
	return s.inner.Exists(ctx, container, key)
}

// Delete pays one request.
func (s *Simulated) Delete(ctx context.Context, container, key string) error {
	s.pay(0)
	return s.inner.Delete(ctx, container, key)
}

// List pays one request.
func (s *Simulated) List(ctx context.Context, container string) ([]string, error) {
	s.pay(0)
	return s.inner.List(ctx, container)
}

// PutMulti pays request + upload time per object, then forwards the batch.
func (s *Simulated) PutMulti(ctx context.Context, container string, objects []Object) error {
	var d time.Duration
	for _, o := range objects {
		d += s.cost(len(o.Data))
	}
	if d > 0 {
		s.clk.Sleep(d)
	}
	return s.inner.PutMulti(ctx, container, objects)
}

// GetMulti forwards the batch, then pays request + download time per object
// actually returned (absent keys still pay their probe request).
func (s *Simulated) GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error) {
	data, err := s.inner.GetMulti(ctx, container, keys)
	var d time.Duration
	for i := range keys {
		n := 0
		if i < len(data) {
			n = len(data[i])
		}
		d += s.cost(n)
	}
	if d > 0 {
		s.clk.Sleep(d)
	}
	return data, err
}

// ExistsMulti pays one request per key, then forwards the batch.
func (s *Simulated) ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error) {
	if d := s.cost(0) * time.Duration(len(keys)); d > 0 {
		s.clk.Sleep(d)
	}
	return s.inner.ExistsMulti(ctx, container, keys)
}

// ErrInjected marks a fault-injected storage failure. It is transient by
// definition: retrying the operation may succeed once the injected fault (or
// outage window) has passed.
var ErrInjected = errors.New("objstore: injected fault")

// Faulty wraps a Store with deterministic fault injection: per-operation
// transient errors and latency spikes from the plan's decision stream, plus
// scheduled outage windows during which every request fails — the model of a
// Swift cluster that is slow, flaky or unreachable. Batch operations fall
// back to per-object singles so every object rolls its own fault decision, a
// mid-batch fault leaves the idempotent prefix applied, and the decision
// stream advances exactly as it would without batching.
type Faulty struct {
	inner Store
	plan  *faults.Plan
	site  string
	clk   clock.Clock
	keys  faults.Keyer
}

var _ Store = (*Faulty)(nil)

// NewFaulty wraps inner with fault injection at the named plan site.
func NewFaulty(inner Store, plan *faults.Plan, site string, clk clock.Clock) *Faulty {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Faulty{inner: inner, plan: plan, site: site, clk: clk}
}

// inject rolls one decision; it returns a non-nil error when the operation
// must fail, and sleeps first when a latency spike was drawn.
func (f *Faulty) inject(op string) error {
	now := f.clk.Now()
	if f.plan.InOutage(f.site, now) {
		f.plan.Note(f.site, op, faults.Outage, now)
		return fmt.Errorf("objstore: %s during outage: %w", op, ErrInjected)
	}
	k := f.keys.Next()
	switch d := f.plan.Decide(f.site, k); d.Kind {
	case faults.Error:
		f.plan.Note(f.site, k, faults.Error, now)
		return fmt.Errorf("objstore: %s: %w", op, ErrInjected)
	case faults.Delay:
		f.plan.Note(f.site, k, faults.Delay, now)
		f.clk.Sleep(d.Delay)
	}
	return nil
}

// EnsureContainer injects then forwards.
func (f *Faulty) EnsureContainer(ctx context.Context, container string) error {
	if err := ctxErr(ctx, "ensure", container); err != nil {
		return err
	}
	if err := f.inject("ensure"); err != nil {
		return err
	}
	return f.inner.EnsureContainer(ctx, container)
}

// Put injects then forwards.
func (f *Faulty) Put(ctx context.Context, container, key string, data []byte) error {
	if err := ctxErr(ctx, "put", container); err != nil {
		return err
	}
	if err := f.inject("put"); err != nil {
		return err
	}
	return f.inner.Put(ctx, container, key, data)
}

// Get injects then forwards.
func (f *Faulty) Get(ctx context.Context, container, key string) ([]byte, error) {
	if err := ctxErr(ctx, "get", container); err != nil {
		return nil, err
	}
	if err := f.inject("get"); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, container, key)
}

// Exists injects then forwards.
func (f *Faulty) Exists(ctx context.Context, container, key string) (bool, error) {
	if err := ctxErr(ctx, "exists", container); err != nil {
		return false, err
	}
	if err := f.inject("exists"); err != nil {
		return false, err
	}
	return f.inner.Exists(ctx, container, key)
}

// Delete injects then forwards.
func (f *Faulty) Delete(ctx context.Context, container, key string) error {
	if err := ctxErr(ctx, "delete", container); err != nil {
		return err
	}
	if err := f.inject("delete"); err != nil {
		return err
	}
	return f.inner.Delete(ctx, container, key)
}

// List injects then forwards.
func (f *Faulty) List(ctx context.Context, container string) ([]string, error) {
	if err := ctxErr(ctx, "list", container); err != nil {
		return nil, err
	}
	if err := f.inject("list"); err != nil {
		return nil, err
	}
	return f.inner.List(ctx, container)
}

// PutMulti injects per object via the per-object fallback.
func (f *Faulty) PutMulti(ctx context.Context, container string, objects []Object) error {
	return putMultiSeq(ctx, f, container, objects)
}

// GetMulti injects per object via the per-object fallback.
func (f *Faulty) GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error) {
	return getMultiSeq(ctx, f, container, keys)
}

// ExistsMulti injects per object via the per-object fallback.
func (f *Faulty) ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error) {
	return existsMultiSeq(ctx, f, container, keys)
}

// authTable is the shared token -> containers grant map.
type authTable struct {
	mu     sync.RWMutex
	grants map[string]map[string]bool
}

// TokenAuth wraps a Store and rejects requests whose container is not
// covered by the presented token — the stand-in for Swift's auth service
// (clients authenticate separately against storage, §4.1). Batch operations
// check the grant once: the whole batch targets one container.
type TokenAuth struct {
	inner Store
	table *authTable
	token string
}

// NewTokenAuth wraps inner with an empty grant table.
func NewTokenAuth(inner Store) *TokenAuth {
	return &TokenAuth{inner: inner, table: &authTable{grants: make(map[string]map[string]bool)}}
}

// Grant allows token to access container.
func (a *TokenAuth) Grant(token, container string) {
	a.table.mu.Lock()
	defer a.table.mu.Unlock()
	set, ok := a.table.grants[token]
	if !ok {
		set = make(map[string]bool)
		a.table.grants[token] = set
	}
	set[container] = true
}

// WithToken returns a Store view authenticated as token; grants added later
// are visible to existing views.
func (a *TokenAuth) WithToken(token string) Store {
	return &TokenAuth{inner: a.inner, table: a.table, token: token}
}

func (a *TokenAuth) check(container string) error {
	a.table.mu.RLock()
	defer a.table.mu.RUnlock()
	if set, ok := a.table.grants[a.token]; ok && set[container] {
		return nil
	}
	return fmt.Errorf("objstore: token %q on %q: %w", a.token, container, ErrUnauthorized)
}

var _ Store = (*TokenAuth)(nil)

// EnsureContainer checks the grant then forwards.
func (a *TokenAuth) EnsureContainer(ctx context.Context, container string) error {
	if err := a.check(container); err != nil {
		return err
	}
	return a.inner.EnsureContainer(ctx, container)
}

// Put checks the grant then forwards.
func (a *TokenAuth) Put(ctx context.Context, container, key string, data []byte) error {
	if err := a.check(container); err != nil {
		return err
	}
	return a.inner.Put(ctx, container, key, data)
}

// Get checks the grant then forwards.
func (a *TokenAuth) Get(ctx context.Context, container, key string) ([]byte, error) {
	if err := a.check(container); err != nil {
		return nil, err
	}
	return a.inner.Get(ctx, container, key)
}

// Exists checks the grant then forwards.
func (a *TokenAuth) Exists(ctx context.Context, container, key string) (bool, error) {
	if err := a.check(container); err != nil {
		return false, err
	}
	return a.inner.Exists(ctx, container, key)
}

// Delete checks the grant then forwards.
func (a *TokenAuth) Delete(ctx context.Context, container, key string) error {
	if err := a.check(container); err != nil {
		return err
	}
	return a.inner.Delete(ctx, container, key)
}

// List checks the grant then forwards.
func (a *TokenAuth) List(ctx context.Context, container string) ([]string, error) {
	if err := a.check(container); err != nil {
		return nil, err
	}
	return a.inner.List(ctx, container)
}

// PutMulti checks the grant once then forwards the batch.
func (a *TokenAuth) PutMulti(ctx context.Context, container string, objects []Object) error {
	if err := a.check(container); err != nil {
		return err
	}
	return a.inner.PutMulti(ctx, container, objects)
}

// GetMulti checks the grant once then forwards the batch.
func (a *TokenAuth) GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error) {
	if err := a.check(container); err != nil {
		return nil, err
	}
	return a.inner.GetMulti(ctx, container, keys)
}

// ExistsMulti checks the grant once then forwards the batch.
func (a *TokenAuth) ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error) {
	if err := a.check(container); err != nil {
		return nil, err
	}
	return a.inner.ExistsMulti(ctx, container, keys)
}
