// Package objstore is the Storage back-end substrate (paper: OpenStack
// Swift). StackSync clients PUT and GET immutable, content-addressed chunks
// in per-user containers; the SyncService never touches data flows, only
// metadata — the decoupling at the core of the architecture (§4).
//
// The Store API is context-aware and batch-first: every method takes a
// context.Context, and PutMulti/GetMulti/ExistsMulti move many chunks per
// round trip. Batch calls are the client's transfer-pipeline primitive:
// ExistsMulti is the server-assisted dedup probe (skip uploading chunks the
// container already holds), PutMulti/GetMulti amortize per-request overhead
// across a worker pool.
//
// Backends: Memory and Disk. Wrappers add per-request accounting (Metered,
// used by the traffic experiments), a latency/bandwidth model (Simulated,
// used by the sync-time experiments), deterministic fault injection (Faulty)
// and token authentication (TokenAuth). Wrappers charge batch operations
// per object, so the paper's traffic and sync-time experiments stay accurate
// under batching.
package objstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by stores.
var (
	ErrNotFound     = errors.New("objstore: object not found")
	ErrNoContainer  = errors.New("objstore: container not found")
	ErrUnauthorized = errors.New("objstore: unauthorized")
)

// Object pairs a key with its payload for batch puts.
type Object struct {
	Key  string
	Data []byte
}

// Store is the object-storage surface the client uses. Keys are chunk
// fingerprints; containers isolate users (per-user deduplication only,
// §4.1).
//
// Contract, pinned down by the storetest conformance suite:
//   - Operations against a missing container fail with ErrNoContainer.
//   - Get of an absent key fails with ErrNotFound; Exists reports false.
//   - Content-addressed puts are idempotent: re-putting a key succeeds.
//   - A canceled context fails every operation with the context's error.
//   - Batch operations are equivalent to their per-object loops, except for
//     GetMulti's partial-result semantics below.
type Store interface {
	// EnsureContainer creates the container if missing.
	EnsureContainer(ctx context.Context, container string) error
	// Put stores data under key. Content-addressed writes are idempotent.
	Put(ctx context.Context, container, key string, data []byte) error
	// Get retrieves the object or ErrNotFound.
	Get(ctx context.Context, container, key string) ([]byte, error)
	// Exists reports whether key is present.
	Exists(ctx context.Context, container, key string) (bool, error)
	// Delete removes the object; deleting a missing object is a no-op.
	Delete(ctx context.Context, container, key string) error
	// List returns the sorted keys of a container.
	List(ctx context.Context, container string) ([]string, error)

	// PutMulti stores every object. Puts are idempotent, so a failed batch
	// may have applied a prefix; retrying the whole batch is always safe.
	PutMulti(ctx context.Context, container string, objects []Object) error
	// GetMulti returns object data aligned with keys. Present keys yield
	// non-nil slices (empty objects yield empty non-nil slices); absent keys
	// yield nil entries and contribute ErrNotFound to the returned error, so
	// callers get the partial results alongside errors.Is-able misses. Any
	// other failure aborts the batch.
	GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error)
	// ExistsMulti reports presence aligned with keys.
	ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error)
}

// opErr decorates an error with the failing operation and object.
func opErr(op, container, key string, err error) error {
	if key == "" {
		return fmt.Errorf("objstore: %s %s: %w", op, container, err)
	}
	return fmt.Errorf("objstore: %s %s/%s: %w", op, container, key, err)
}

// ctxErr reports a canceled or expired context as the operation's error.
func ctxErr(ctx context.Context, op, container string) error {
	if err := ctx.Err(); err != nil {
		return opErr(op, container, "", err)
	}
	return nil
}

// putMultiSeq implements PutMulti as a per-object loop, re-checking the
// context between objects. Wrappers that need per-object semantics (fault
// injection, accounting) build on it.
func putMultiSeq(ctx context.Context, s Store, container string, objects []Object) error {
	for _, o := range objects {
		if err := ctxErr(ctx, "putmulti", container); err != nil {
			return err
		}
		if err := s.Put(ctx, container, o.Key, o.Data); err != nil {
			return err
		}
	}
	return nil
}

// getMultiSeq implements GetMulti as a per-object loop with the interface's
// partial-result contract: misses accumulate, other errors abort.
func getMultiSeq(ctx context.Context, s Store, container string, keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	var errs []error
	for i, k := range keys {
		if err := ctxErr(ctx, "getmulti", container); err != nil {
			return out, err
		}
		data, err := s.Get(ctx, container, k)
		switch {
		case err == nil:
			out[i] = data
		case errors.Is(err, ErrNotFound):
			errs = append(errs, err)
		default:
			return out, err
		}
	}
	return out, errors.Join(errs...)
}

// existsMultiSeq implements ExistsMulti as a per-object loop.
func existsMultiSeq(ctx context.Context, s Store, container string, keys []string) ([]bool, error) {
	out := make([]bool, len(keys))
	for i, k := range keys {
		if err := ctxErr(ctx, "existsmulti", container); err != nil {
			return nil, err
		}
		ok, err := s.Exists(ctx, container, k)
		if err != nil {
			return nil, err
		}
		out[i] = ok
	}
	return out, nil
}

// Memory is an in-process Store.
type Memory struct {
	mu         sync.RWMutex
	containers map[string]map[string][]byte
}

var _ Store = (*Memory)(nil)

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{containers: make(map[string]map[string][]byte)}
}

// EnsureContainer creates the container if missing.
func (m *Memory) EnsureContainer(ctx context.Context, container string) error {
	if err := ctxErr(ctx, "ensure", container); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.containers[container]; !ok {
		m.containers[container] = make(map[string][]byte)
	}
	return nil
}

// Put stores a copy of data under key.
func (m *Memory) Put(ctx context.Context, container, key string, data []byte) error {
	if err := ctxErr(ctx, "put", container); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.putLocked(container, key, data)
}

func (m *Memory) putLocked(container, key string, data []byte) error {
	c, ok := m.containers[container]
	if !ok {
		return opErr("put", container, key, ErrNoContainer)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c[key] = cp
	return nil
}

// Get returns a copy of the stored object.
func (m *Memory) Get(ctx context.Context, container, key string) ([]byte, error) {
	if err := ctxErr(ctx, "get", container); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.getLocked(container, key)
}

func (m *Memory) getLocked(container, key string) ([]byte, error) {
	c, ok := m.containers[container]
	if !ok {
		return nil, opErr("get", container, key, ErrNoContainer)
	}
	data, ok := c[key]
	if !ok {
		return nil, opErr("get", container, key, ErrNotFound)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports presence of key.
func (m *Memory) Exists(ctx context.Context, container, key string) (bool, error) {
	if err := ctxErr(ctx, "exists", container); err != nil {
		return false, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.containers[container]
	if !ok {
		return false, opErr("exists", container, key, ErrNoContainer)
	}
	_, ok = c[key]
	return ok, nil
}

// Delete removes key; missing keys are ignored.
func (m *Memory) Delete(ctx context.Context, container, key string) error {
	if err := ctxErr(ctx, "delete", container); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.containers[container]
	if !ok {
		return opErr("delete", container, key, ErrNoContainer)
	}
	delete(c, key)
	return nil
}

// List returns the sorted keys in container.
func (m *Memory) List(ctx context.Context, container string) ([]string, error) {
	if err := ctxErr(ctx, "list", container); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.containers[container]
	if !ok {
		return nil, opErr("list", container, "", ErrNoContainer)
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// PutMulti stores every object under one lock acquisition.
func (m *Memory) PutMulti(ctx context.Context, container string, objects []Object) error {
	if err := ctxErr(ctx, "putmulti", container); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, o := range objects {
		if err := m.putLocked(container, o.Key, o.Data); err != nil {
			return err
		}
	}
	return nil
}

// GetMulti reads every key under one lock acquisition.
func (m *Memory) GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error) {
	if err := ctxErr(ctx, "getmulti", container); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([][]byte, len(keys))
	var errs []error
	for i, k := range keys {
		data, err := m.getLocked(container, k)
		switch {
		case err == nil:
			out[i] = data
		case errors.Is(err, ErrNotFound):
			errs = append(errs, err)
		default:
			return out, err
		}
	}
	return out, errors.Join(errs...)
}

// ExistsMulti probes every key under one lock acquisition.
func (m *Memory) ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error) {
	if err := ctxErr(ctx, "existsmulti", container); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.containers[container]
	if !ok {
		return nil, opErr("existsmulti", container, "", ErrNoContainer)
	}
	out := make([]bool, len(keys))
	for i, k := range keys {
		_, out[i] = c[k]
	}
	return out, nil
}
