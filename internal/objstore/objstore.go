// Package objstore is the Storage back-end substrate (paper: OpenStack
// Swift). StackSync clients PUT and GET immutable, content-addressed chunks
// in per-user containers; the SyncService never touches data flows, only
// metadata — the decoupling at the core of the architecture (§4).
//
// Backends: Memory and Disk. Wrappers add per-request accounting (Metered,
// used by the traffic experiments), a latency/bandwidth model (Simulated,
// used by the sync-time experiments) and token authentication (TokenAuth).
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by stores.
var (
	ErrNotFound     = errors.New("objstore: object not found")
	ErrNoContainer  = errors.New("objstore: container not found")
	ErrUnauthorized = errors.New("objstore: unauthorized")
)

// Store is the object-storage surface the client uses. Keys are chunk
// fingerprints; containers isolate users (per-user deduplication only,
// §4.1).
type Store interface {
	// EnsureContainer creates the container if missing.
	EnsureContainer(container string) error
	// Put stores data under key. Content-addressed writes are idempotent.
	Put(container, key string, data []byte) error
	// Get retrieves the object or ErrNotFound.
	Get(container, key string) ([]byte, error)
	// Exists reports whether key is present.
	Exists(container, key string) (bool, error)
	// Delete removes the object; deleting a missing object is a no-op.
	Delete(container, key string) error
	// List returns the sorted keys of a container.
	List(container string) ([]string, error)
}

// Memory is an in-process Store.
type Memory struct {
	mu         sync.RWMutex
	containers map[string]map[string][]byte
}

var _ Store = (*Memory)(nil)

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{containers: make(map[string]map[string][]byte)}
}

// EnsureContainer creates the container if missing.
func (m *Memory) EnsureContainer(container string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.containers[container]; !ok {
		m.containers[container] = make(map[string][]byte)
	}
	return nil
}

// Put stores a copy of data under key.
func (m *Memory) Put(container, key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.containers[container]
	if !ok {
		return fmt.Errorf("objstore: put %s/%s: %w", container, key, ErrNoContainer)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c[key] = cp
	return nil
}

// Get returns a copy of the stored object.
func (m *Memory) Get(container, key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.containers[container]
	if !ok {
		return nil, fmt.Errorf("objstore: get %s/%s: %w", container, key, ErrNoContainer)
	}
	data, ok := c[key]
	if !ok {
		return nil, fmt.Errorf("objstore: get %s/%s: %w", container, key, ErrNotFound)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports presence of key.
func (m *Memory) Exists(container, key string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.containers[container]
	if !ok {
		return false, fmt.Errorf("objstore: exists %s/%s: %w", container, key, ErrNoContainer)
	}
	_, ok = c[key]
	return ok, nil
}

// Delete removes key; missing keys are ignored.
func (m *Memory) Delete(container, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.containers[container]
	if !ok {
		return fmt.Errorf("objstore: delete %s/%s: %w", container, key, ErrNoContainer)
	}
	delete(c, key)
	return nil
}

// List returns the sorted keys in container.
func (m *Memory) List(container string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.containers[container]
	if !ok {
		return nil, fmt.Errorf("objstore: list %s: %w", container, ErrNoContainer)
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}
