package objstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Disk is a filesystem-backed Store: one directory per container, one file
// per object. Keys are chunk fingerprints (hex), so they are always safe
// path components; other keys are sanitized.
type Disk struct {
	root string
}

var _ Store = (*Disk)(nil)

// NewDisk roots a store at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: create root: %w", err)
	}
	return &Disk{root: dir}, nil
}

func safeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

func (d *Disk) containerPath(container string) string {
	return filepath.Join(d.root, safeName(container))
}

func (d *Disk) objectPath(container, key string) string {
	return filepath.Join(d.containerPath(container), safeName(key))
}

// EnsureContainer creates the container directory if missing.
func (d *Disk) EnsureContainer(container string) error {
	if err := os.MkdirAll(d.containerPath(container), 0o755); err != nil {
		return fmt.Errorf("objstore: ensure container %s: %w", container, err)
	}
	return nil
}

// Put writes the object atomically (temp file + rename).
func (d *Disk) Put(container, key string, data []byte) error {
	dir := d.containerPath(container)
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("objstore: put %s/%s: %w", container, key, ErrNoContainer)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("objstore: put %s/%s: %w", container, key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("objstore: put %s/%s: %w", container, key, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("objstore: put %s/%s: %w", container, key, err)
	}
	if err := os.Rename(tmpName, d.objectPath(container, key)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("objstore: put %s/%s: %w", container, key, err)
	}
	return nil
}

// Get reads the object.
func (d *Disk) Get(container, key string) ([]byte, error) {
	if _, err := os.Stat(d.containerPath(container)); err != nil {
		return nil, fmt.Errorf("objstore: get %s/%s: %w", container, key, ErrNoContainer)
	}
	data, err := os.ReadFile(d.objectPath(container, key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("objstore: get %s/%s: %w", container, key, ErrNotFound)
		}
		return nil, fmt.Errorf("objstore: get %s/%s: %w", container, key, err)
	}
	return data, nil
}

// Exists reports object presence.
func (d *Disk) Exists(container, key string) (bool, error) {
	if _, err := os.Stat(d.containerPath(container)); err != nil {
		return false, fmt.Errorf("objstore: exists %s/%s: %w", container, key, ErrNoContainer)
	}
	if _, err := os.Stat(d.objectPath(container, key)); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("objstore: exists %s/%s: %w", container, key, err)
	}
	return true, nil
}

// Delete removes the object file; missing objects are ignored.
func (d *Disk) Delete(container, key string) error {
	if _, err := os.Stat(d.containerPath(container)); err != nil {
		return fmt.Errorf("objstore: delete %s/%s: %w", container, key, ErrNoContainer)
	}
	if err := os.Remove(d.objectPath(container, key)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("objstore: delete %s/%s: %w", container, key, err)
	}
	return nil
}

// List returns the sorted object keys of a container.
func (d *Disk) List(container string) ([]string, error) {
	entries, err := os.ReadDir(d.containerPath(container))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("objstore: list %s: %w", container, ErrNoContainer)
		}
		return nil, fmt.Errorf("objstore: list %s: %w", container, err)
	}
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".put-") {
			continue
		}
		keys = append(keys, e.Name())
	}
	sort.Strings(keys)
	return keys, nil
}
