package objstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Disk is a filesystem-backed Store: one directory per container, one file
// per object. Keys are chunk fingerprints (hex), so they are always safe
// path components; other keys are sanitized.
type Disk struct {
	root string
}

var _ Store = (*Disk)(nil)

// NewDisk roots a store at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: create root: %w", err)
	}
	return &Disk{root: dir}, nil
}

func safeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

func (d *Disk) containerPath(container string) string {
	return filepath.Join(d.root, safeName(container))
}

func (d *Disk) objectPath(container, key string) string {
	return filepath.Join(d.containerPath(container), safeName(key))
}

// EnsureContainer creates the container directory if missing.
func (d *Disk) EnsureContainer(ctx context.Context, container string) error {
	if err := ctxErr(ctx, "ensure", container); err != nil {
		return err
	}
	if err := os.MkdirAll(d.containerPath(container), 0o755); err != nil {
		return fmt.Errorf("objstore: ensure container %s: %w", container, err)
	}
	return nil
}

// Put writes the object atomically (temp file + rename).
func (d *Disk) Put(ctx context.Context, container, key string, data []byte) error {
	if err := ctxErr(ctx, "put", container); err != nil {
		return err
	}
	dir := d.containerPath(container)
	if _, err := os.Stat(dir); err != nil {
		return opErr("put", container, key, ErrNoContainer)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return opErr("put", container, key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return opErr("put", container, key, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return opErr("put", container, key, err)
	}
	if err := os.Rename(tmpName, d.objectPath(container, key)); err != nil {
		_ = os.Remove(tmpName)
		return opErr("put", container, key, err)
	}
	return nil
}

// Get reads the object.
func (d *Disk) Get(ctx context.Context, container, key string) ([]byte, error) {
	if err := ctxErr(ctx, "get", container); err != nil {
		return nil, err
	}
	if _, err := os.Stat(d.containerPath(container)); err != nil {
		return nil, opErr("get", container, key, ErrNoContainer)
	}
	data, err := os.ReadFile(d.objectPath(container, key))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, opErr("get", container, key, ErrNotFound)
		}
		return nil, opErr("get", container, key, err)
	}
	return data, nil
}

// Exists reports object presence.
func (d *Disk) Exists(ctx context.Context, container, key string) (bool, error) {
	if err := ctxErr(ctx, "exists", container); err != nil {
		return false, err
	}
	if _, err := os.Stat(d.containerPath(container)); err != nil {
		return false, opErr("exists", container, key, ErrNoContainer)
	}
	if _, err := os.Stat(d.objectPath(container, key)); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, opErr("exists", container, key, err)
	}
	return true, nil
}

// Delete removes the object file; missing objects are ignored.
func (d *Disk) Delete(ctx context.Context, container, key string) error {
	if err := ctxErr(ctx, "delete", container); err != nil {
		return err
	}
	if _, err := os.Stat(d.containerPath(container)); err != nil {
		return opErr("delete", container, key, ErrNoContainer)
	}
	if err := os.Remove(d.objectPath(container, key)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return opErr("delete", container, key, err)
	}
	return nil
}

// List returns the sorted object keys of a container.
func (d *Disk) List(ctx context.Context, container string) ([]string, error) {
	if err := ctxErr(ctx, "list", container); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(d.containerPath(container))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, opErr("list", container, "", ErrNoContainer)
		}
		return nil, opErr("list", container, "", err)
	}
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".put-") {
			continue
		}
		keys = append(keys, e.Name())
	}
	sort.Strings(keys)
	return keys, nil
}

// PutMulti writes each object atomically, re-checking ctx between files.
func (d *Disk) PutMulti(ctx context.Context, container string, objects []Object) error {
	return putMultiSeq(ctx, d, container, objects)
}

// GetMulti reads each object, re-checking ctx between files.
func (d *Disk) GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error) {
	return getMultiSeq(ctx, d, container, keys)
}

// ExistsMulti stats each object, re-checking ctx between files.
func (d *Disk) ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error) {
	return existsMultiSeq(ctx, d, container, keys)
}
