package objstore

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
)

// HTTP gateway: exposes a Store over a Swift-flavoured REST API so that
// clients on other machines reach the Storage back-end directly (the
// decoupled data flow of §4). Routes:
//
//	PUT    /v1/{container}             create container
//	GET    /v1/{container}             list objects (newline-separated)
//	PUT    /v1/{container}/{object}    store object (body = content)
//	GET    /v1/{container}/{object}    fetch object
//	HEAD   /v1/{container}/{object}    existence check
//	DELETE /v1/{container}/{object}    delete object
//
// An optional bearer token (X-Auth-Token, as in Swift) gates all routes.

// Handler serves a Store over HTTP.
type Handler struct {
	store Store
	// token, when non-empty, must match the X-Auth-Token header.
	token string
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps store; token "" disables authentication.
func NewHandler(store Store, token string) *Handler {
	return &Handler{store: store, token: token}
}

// ServeHTTP dispatches gateway requests.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.token != "" && r.Header.Get("X-Auth-Token") != h.token {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/")
	if !ok || rest == "" {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	container, object, hasObject := strings.Cut(rest, "/")
	if container == "" {
		http.Error(w, "container required", http.StatusBadRequest)
		return
	}
	var err error
	switch {
	case !hasObject && r.Method == http.MethodPut:
		err = h.store.EnsureContainer(container)
		if err == nil {
			w.WriteHeader(http.StatusCreated)
		}
	case !hasObject && r.Method == http.MethodGet:
		var keys []string
		keys, err = h.store.List(container)
		if err == nil {
			sort.Strings(keys)
			w.Header().Set("Content-Type", "text/plain")
			_, _ = io.WriteString(w, strings.Join(keys, "\n"))
		}
	case hasObject && r.Method == http.MethodPut:
		var body []byte
		body, err = io.ReadAll(r.Body)
		if err == nil {
			err = h.store.Put(container, object, body)
		}
		if err == nil {
			w.WriteHeader(http.StatusCreated)
		}
	case hasObject && r.Method == http.MethodGet:
		var data []byte
		data, err = h.store.Get(container, object)
		if err == nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		}
	case hasObject && r.Method == http.MethodHead:
		var exists bool
		exists, err = h.store.Exists(container, object)
		if err == nil && !exists {
			w.WriteHeader(http.StatusNotFound)
			return
		}
	case hasObject && r.Method == http.MethodDelete:
		err = h.store.Delete(container, object)
		if err == nil {
			w.WriteHeader(http.StatusNoContent)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
	}
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoContainer):
		return http.StatusNotFound
	case errors.Is(err, ErrUnauthorized):
		return http.StatusForbidden
	default:
		return http.StatusInternalServerError
	}
}

// HTTPStore is a Store backed by a remote gateway.
type HTTPStore struct {
	base   string
	token  string
	client *http.Client
}

var _ Store = (*HTTPStore)(nil)

// NewHTTPStore points at a gateway base URL (e.g. "http://host:8080").
func NewHTTPStore(baseURL, token string) *HTTPStore {
	return &HTTPStore{
		base:   strings.TrimSuffix(baseURL, "/"),
		token:  token,
		client: &http.Client{},
	}
}

func (s *HTTPStore) url(container, object string) string {
	u := s.base + "/v1/" + url.PathEscape(container)
	if object != "" {
		u += "/" + url.PathEscape(object)
	}
	return u
}

func (s *HTTPStore) do(method, u string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, u, body)
	if err != nil {
		return nil, fmt.Errorf("objstore: build request: %w", err)
	}
	if s.token != "" {
		req.Header.Set("X-Auth-Token", s.token)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("objstore: %s %s: %w", method, u, err)
	}
	return resp, nil
}

func (s *HTTPStore) checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	switch resp.StatusCode {
	case http.StatusNotFound:
		if strings.Contains(string(msg), "container") {
			return fmt.Errorf("objstore: remote: %s: %w", strings.TrimSpace(string(msg)), ErrNoContainer)
		}
		return fmt.Errorf("objstore: remote: %s: %w", strings.TrimSpace(string(msg)), ErrNotFound)
	case http.StatusUnauthorized, http.StatusForbidden:
		return fmt.Errorf("objstore: remote: %w", ErrUnauthorized)
	default:
		return fmt.Errorf("objstore: remote status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// EnsureContainer creates the remote container.
func (s *HTTPStore) EnsureContainer(container string) error {
	resp, err := s.do(http.MethodPut, s.url(container, ""), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return s.checkStatus(resp)
}

// Put stores an object remotely.
func (s *HTTPStore) Put(container, key string, data []byte) error {
	resp, err := s.do(http.MethodPut, s.url(container, key), strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return s.checkStatus(resp)
}

// Get fetches an object remotely.
func (s *HTTPStore) Get(container, key string) ([]byte, error) {
	resp, err := s.do(http.MethodGet, s.url(container, key), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := s.checkStatus(resp); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("objstore: read body: %w", err)
	}
	return data, nil
}

// Exists checks object presence remotely.
func (s *HTTPStore) Exists(container, key string) (bool, error) {
	resp, err := s.do(http.MethodHead, s.url(container, key), nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return false, nil
	}
	if err := s.checkStatus(resp); err != nil {
		return false, err
	}
	return true, nil
}

// Delete removes an object remotely.
func (s *HTTPStore) Delete(container, key string) error {
	resp, err := s.do(http.MethodDelete, s.url(container, key), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return s.checkStatus(resp)
}

// List enumerates a remote container.
func (s *HTTPStore) List(container string) ([]string, error) {
	resp, err := s.do(http.MethodGet, s.url(container, ""), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := s.checkStatus(resp); err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("objstore: read list: %w", err)
	}
	if len(body) == 0 {
		return nil, nil
	}
	return strings.Split(string(body), "\n"), nil
}
