package objstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
)

// HTTP gateway: exposes a Store over a Swift-flavoured REST API so that
// clients on other machines reach the Storage back-end directly (the
// decoupled data flow of §4). Routes:
//
//	PUT    /v1/{container}                  create container
//	GET    /v1/{container}                  list objects (newline-separated)
//	POST   /v1/{container}?multi=put        batch store (JSON [{key,data}])
//	POST   /v1/{container}?multi=get        batch fetch (JSON [keys] -> [{key,found,data}])
//	POST   /v1/{container}?multi=exists     batch probe (JSON [keys] -> [bool])
//	PUT    /v1/{container}/{object}         store object (body = content)
//	GET    /v1/{container}/{object}         fetch object
//	HEAD   /v1/{container}/{object}         existence check
//	DELETE /v1/{container}/{object}         delete object
//
// An optional bearer token (X-Auth-Token, as in Swift) gates all routes.
// Error responses carry an X-Objstore-Error header naming the sentinel
// ("not-found", "no-container", "unauthorized") so HTTPStore maps remote
// failures onto the same errors.Is-able values local backends return.

// errHeader is the response header carrying the sentinel error kind.
const errHeader = "X-Objstore-Error"

// maxBatchBody bounds a batch request body read by the gateway (64 MB).
const maxBatchBody = 64 << 20

// gwObject is the JSON wire form of one batch object ([]byte marshals as
// base64).
type gwObject struct {
	Key  string `json:"key"`
	Data []byte `json:"data,omitempty"`
}

// gwGetResult is one entry of a multi=get response.
type gwGetResult struct {
	Key   string `json:"key"`
	Found bool   `json:"found"`
	Data  []byte `json:"data,omitempty"`
}

// Handler serves a Store over HTTP.
type Handler struct {
	store Store
	// token, when non-empty, must match the X-Auth-Token header.
	token string
}

var _ http.Handler = (*Handler)(nil)

// NewHandler wraps store; token "" disables authentication.
func NewHandler(store Store, token string) *Handler {
	return &Handler{store: store, token: token}
}

// ServeHTTP dispatches gateway requests.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.token != "" && r.Header.Get("X-Auth-Token") != h.token {
		w.Header().Set(errHeader, "unauthorized")
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/")
	if !ok || rest == "" {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	container, object, hasObject := strings.Cut(rest, "/")
	if container == "" {
		http.Error(w, "container required", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	var err error
	switch {
	case !hasObject && r.Method == http.MethodPost:
		h.serveBatch(w, r, container)
		return
	case !hasObject && r.Method == http.MethodPut:
		err = h.store.EnsureContainer(ctx, container)
		if err == nil {
			w.WriteHeader(http.StatusCreated)
		}
	case !hasObject && r.Method == http.MethodGet:
		var keys []string
		keys, err = h.store.List(ctx, container)
		if err == nil {
			sort.Strings(keys)
			w.Header().Set("Content-Type", "text/plain")
			_, _ = io.WriteString(w, strings.Join(keys, "\n"))
		}
	case hasObject && r.Method == http.MethodPut:
		var body []byte
		body, err = io.ReadAll(r.Body)
		if err == nil {
			err = h.store.Put(ctx, container, object, body)
		}
		if err == nil {
			w.WriteHeader(http.StatusCreated)
		}
	case hasObject && r.Method == http.MethodGet:
		var data []byte
		data, err = h.store.Get(ctx, container, object)
		if err == nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		}
	case hasObject && r.Method == http.MethodHead:
		var exists bool
		exists, err = h.store.Exists(ctx, container, object)
		if err == nil && !exists {
			w.Header().Set(errHeader, "not-found")
			w.WriteHeader(http.StatusNotFound)
			return
		}
	case hasObject && r.Method == http.MethodDelete:
		err = h.store.Delete(ctx, container, object)
		if err == nil {
			w.WriteHeader(http.StatusNoContent)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err != nil {
		writeError(w, err)
	}
}

// serveBatch dispatches the multi=put/get/exists routes.
func (h *Handler) serveBatch(w http.ResponseWriter, r *http.Request, container string) {
	ctx := r.Context()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBody))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	switch r.URL.Query().Get("multi") {
	case "put":
		var objs []gwObject
		if err := json.Unmarshal(body, &objs); err != nil {
			http.Error(w, "decode batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		batch := make([]Object, len(objs))
		for i, o := range objs {
			batch[i] = Object{Key: o.Key, Data: o.Data}
		}
		if err := h.store.PutMulti(ctx, container, batch); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case "get":
		var keys []string
		if err := json.Unmarshal(body, &keys); err != nil {
			http.Error(w, "decode batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		data, err := h.store.GetMulti(ctx, container, keys)
		if err != nil && !errors.Is(err, ErrNotFound) {
			// Misses are encoded per entry; anything else aborts the batch.
			writeError(w, err)
			return
		}
		results := make([]gwGetResult, len(keys))
		for i, k := range keys {
			results[i] = gwGetResult{Key: k, Found: i < len(data) && data[i] != nil}
			if results[i].Found {
				results[i].Data = data[i]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(results)
	case "exists":
		var keys []string
		if err := json.Unmarshal(body, &keys); err != nil {
			http.Error(w, "decode batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		present, err := h.store.ExistsMulti(ctx, container, keys)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(present)
	default:
		http.Error(w, "unknown batch operation", http.StatusBadRequest)
	}
}

// writeError maps a store error onto a status code and sentinel header.
func writeError(w http.ResponseWriter, err error) {
	status, kind := statusFor(err)
	if kind != "" {
		w.Header().Set(errHeader, kind)
	}
	http.Error(w, err.Error(), status)
}

// statusFor returns the HTTP status and sentinel kind of a store error.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, ErrNoContainer):
		return http.StatusNotFound, "no-container"
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, "not-found"
	case errors.Is(err, ErrUnauthorized):
		return http.StatusForbidden, "unauthorized"
	default:
		return http.StatusInternalServerError, ""
	}
}

// sentinelFor inverts statusFor on the client side: header first (our own
// gateway), then status-code heuristics (foreign Swift-like gateways).
func sentinelFor(resp *http.Response, msg string) error {
	switch resp.Header.Get(errHeader) {
	case "no-container":
		return ErrNoContainer
	case "not-found":
		return ErrNotFound
	case "unauthorized":
		return ErrUnauthorized
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		if strings.Contains(msg, "container") {
			return ErrNoContainer
		}
		return ErrNotFound
	case http.StatusUnauthorized, http.StatusForbidden:
		return ErrUnauthorized
	}
	return nil
}

// HTTPStore is a Store backed by a remote gateway.
type HTTPStore struct {
	base   string
	token  string
	client *http.Client
}

var _ Store = (*HTTPStore)(nil)

// NewHTTPStore points at a gateway base URL (e.g. "http://host:8080").
func NewHTTPStore(baseURL, token string) *HTTPStore {
	return &HTTPStore{
		base:   strings.TrimSuffix(baseURL, "/"),
		token:  token,
		client: &http.Client{},
	}
}

func (s *HTTPStore) url(container, object string) string {
	u := s.base + "/v1/" + url.PathEscape(container)
	if object != "" {
		u += "/" + url.PathEscape(object)
	}
	return u
}

// do issues one request bound to ctx; canceling the context aborts the
// request mid-flight and surfaces the context's error to errors.Is.
func (s *HTTPStore) do(ctx context.Context, method, u string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return nil, fmt.Errorf("objstore: build request: %w", err)
	}
	if s.token != "" {
		req.Header.Set("X-Auth-Token", s.token)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("objstore: %s %s: %w", method, u, err)
	}
	return resp, nil
}

// checkStatus maps non-2xx responses onto the objstore sentinel errors so
// errors.Is behaves identically across local and remote backends.
func (s *HTTPStore) checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	trimmed := strings.TrimSpace(string(msg))
	if sentinel := sentinelFor(resp, trimmed); sentinel != nil {
		return fmt.Errorf("objstore: remote: %s: %w", trimmed, sentinel)
	}
	return fmt.Errorf("objstore: remote status %d: %s", resp.StatusCode, trimmed)
}

// EnsureContainer creates the remote container.
func (s *HTTPStore) EnsureContainer(ctx context.Context, container string) error {
	resp, err := s.do(ctx, http.MethodPut, s.url(container, ""), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return s.checkStatus(resp)
}

// Put stores an object remotely.
func (s *HTTPStore) Put(ctx context.Context, container, key string, data []byte) error {
	resp, err := s.do(ctx, http.MethodPut, s.url(container, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return s.checkStatus(resp)
}

// Get fetches an object remotely.
func (s *HTTPStore) Get(ctx context.Context, container, key string) ([]byte, error) {
	resp, err := s.do(ctx, http.MethodGet, s.url(container, key), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := s.checkStatus(resp); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("objstore: read body: %w", err)
	}
	return data, nil
}

// Exists checks object presence remotely. A plain not-found is a false
// answer, not an error; a missing container is ErrNoContainer, as locally.
func (s *HTTPStore) Exists(ctx context.Context, container, key string) (bool, error) {
	resp, err := s.do(ctx, http.MethodHead, s.url(container, key), nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && resp.Header.Get(errHeader) != "no-container" {
		return false, nil
	}
	if err := s.checkStatus(resp); err != nil {
		return false, err
	}
	return true, nil
}

// Delete removes an object remotely.
func (s *HTTPStore) Delete(ctx context.Context, container, key string) error {
	resp, err := s.do(ctx, http.MethodDelete, s.url(container, key), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return s.checkStatus(resp)
}

// List enumerates a remote container.
func (s *HTTPStore) List(ctx context.Context, container string) ([]string, error) {
	resp, err := s.do(ctx, http.MethodGet, s.url(container, ""), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := s.checkStatus(resp); err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("objstore: read list: %w", err)
	}
	if len(body) == 0 {
		return nil, nil
	}
	return strings.Split(string(body), "\n"), nil
}

// postBatch issues one multi=<op> request and decodes the JSON response.
func (s *HTTPStore) postBatch(ctx context.Context, container, op string, payload, out any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("objstore: encode batch: %w", err)
	}
	resp, err := s.do(ctx, http.MethodPost, s.url(container, "")+"?multi="+op, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := s.checkStatus(resp); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("objstore: decode batch: %w", err)
	}
	return nil
}

// PutMulti ships the whole batch in one round trip.
func (s *HTTPStore) PutMulti(ctx context.Context, container string, objects []Object) error {
	payload := make([]gwObject, len(objects))
	for i, o := range objects {
		payload[i] = gwObject{Key: o.Key, Data: o.Data}
	}
	return s.postBatch(ctx, container, "put", payload, nil)
}

// GetMulti fetches the whole batch in one round trip, reconstructing the
// partial-result contract from the per-entry found flags.
func (s *HTTPStore) GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error) {
	var results []gwGetResult
	if err := s.postBatch(ctx, container, "get", keys, &results); err != nil {
		return nil, err
	}
	if len(results) != len(keys) {
		return nil, fmt.Errorf("objstore: remote batch returned %d results for %d keys", len(results), len(keys))
	}
	out := make([][]byte, len(keys))
	var errs []error
	for i, r := range results {
		if !r.Found {
			errs = append(errs, opErr("getmulti", container, keys[i], ErrNotFound))
			continue
		}
		out[i] = r.Data
		if out[i] == nil {
			out[i] = []byte{}
		}
	}
	return out, errors.Join(errs...)
}

// ExistsMulti probes the whole batch in one round trip.
func (s *HTTPStore) ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error) {
	var present []bool
	if err := s.postBatch(ctx, container, "exists", keys, &present); err != nil {
		return nil, err
	}
	if len(present) != len(keys) {
		return nil, fmt.Errorf("objstore: remote batch returned %d results for %d keys", len(present), len(keys))
	}
	return present, nil
}
