package client

import (
	"bytes"
	"errors"
	"testing"
)

func TestMoveFilePropagatesWithoutDataTransfer(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")

	payload := bytes.Repeat([]byte("payload-"), 500)
	if err := a.PutFile("old/name.bin", payload); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("old/name.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	// Commits are asynchronous: wait for the mover's own ack before building
	// the rename on top of it.
	if err := a.WaitForVersion("old/name.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}

	trafficBefore := r.storage.Traffic()
	if err := a.MoveFile("old/name.bin", "new/name.bin"); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("new/name.bin", 2, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("new/name.bin", 2, syncWait); err != nil {
		t.Fatal(err)
	}
	// The old path is gone on both devices.
	if _, ok := a.Version("old/name.bin"); ok {
		t.Fatal("old path still live on mover")
	}
	if _, ok := b.Version("old/name.bin"); ok {
		t.Fatal("old path still live on receiver")
	}
	got, ok := b.FileContent("new/name.bin")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("content lost in move")
	}
	// Rename is metadata-only: no storage traffic in either direction.
	trafficAfter := r.storage.Traffic()
	if trafficAfter.BytesUp != trafficBefore.BytesUp {
		t.Fatalf("move uploaded %d bytes", trafficAfter.BytesUp-trafficBefore.BytesUp)
	}
	if trafficAfter.BytesDown != trafficBefore.BytesDown {
		t.Fatalf("move downloaded %d bytes", trafficAfter.BytesDown-trafficBefore.BytesDown)
	}
}

func TestMoveFileErrors(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	if err := a.MoveFile("ghost.txt", "anywhere.txt"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("move of missing file: %v", err)
	}
	if err := a.PutFile("a.txt", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := a.PutFile("b.txt", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("a.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("b.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.MoveFile("a.txt", "b.txt"); err == nil {
		t.Fatal("move onto existing destination accepted")
	}
}

func TestMoveThenEditContinuesChain(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")
	if err := a.PutFile("doc.txt", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("doc.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.MoveFile("doc.txt", "renamed.txt"); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("renamed.txt", 2, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.PutFile("renamed.txt", []byte("v3 content")); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("renamed.txt", 3, syncWait); err != nil {
		t.Fatal(err)
	}
	got, _ := b.FileContent("renamed.txt")
	if !bytes.Equal(got, []byte("v3 content")) {
		t.Fatalf("post-move edit diverged: %q", got)
	}
}
