package client

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"stacksync/internal/omq"
)

func TestPutBatchCommitsAllItemsAtomically(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")

	changes := make([]Change, 10)
	for i := range changes {
		changes[i] = Change{
			Path:    fmt.Sprintf("batch/f%02d.txt", i),
			Content: []byte(fmt.Sprintf("bundled content %d", i)),
		}
	}
	if err := a.PutBatch(changes); err != nil {
		t.Fatal(err)
	}
	for i := range changes {
		if err := b.WaitForVersion(changes[i].Path, 1, syncWait); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		got, _ := b.FileContent(changes[i].Path)
		if !bytes.Equal(got, changes[i].Content) {
			t.Fatalf("item %d diverged", i)
		}
	}
	// One commitRequest produced all ten items: the metadata store must
	// show every item at version 1 (no partial commits, no conflicts).
	state, err := r.meta.State("ws")
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 10 {
		t.Fatalf("state has %d items", len(state))
	}
}

func TestPutBatchMixedPutsAndDeletes(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	if err := a.PutFile("old.txt", []byte("to be deleted")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("old.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.PutBatch([]Change{
		{Path: "new.txt", Content: []byte("created in batch")},
		{Path: "old.txt", Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("new.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForGone("old.txt", syncWait); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchDeleteOfMissingFileFails(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	err := a.PutBatch([]Change{
		{Path: "exists.txt", Content: []byte("x")},
		{Path: "never-was.txt", Delete: true},
	})
	if !errors.Is(err, ErrNoFile) {
		t.Fatalf("batch with bad delete: %v", err)
	}
}

func TestPutBatchBeforeStartFails(t *testing.T) {
	r := newRig(t)
	b, err := omq.NewBroker(r.mq)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	c, err := NewClient(Config{
		UserID: "alice", DeviceID: "d", WorkspaceID: "ws",
		Broker: b, Storage: r.storage,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutBatch([]Change{{Path: "x", Content: []byte("y")}}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("batch before start: %v", err)
	}
}

func TestBatchConflictStillResolvedPerItem(t *testing.T) {
	// Two devices race batches touching the same path: the loser's item
	// conflicts while its other items commit, matching Algorithm 1's
	// per-object processing.
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")
	if err := a.PutFile("contested.txt", []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("contested.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("contested.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}

	if err := a.PutBatch([]Change{
		{Path: "contested.txt", Content: []byte("from A")},
		{Path: "a-only.txt", Content: []byte("A's private file")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.PutBatch([]Change{
		{Path: "contested.txt", Content: []byte("from B")},
		{Path: "b-only.txt", Content: []byte("B's private file")},
	}); err != nil {
		t.Fatal(err)
	}

	// Non-contested items always land.
	for _, dev := range []*Client{a, b} {
		if err := dev.WaitForVersion("a-only.txt", 1, syncWait); err != nil {
			t.Fatal(err)
		}
		if err := dev.WaitForVersion("b-only.txt", 1, syncWait); err != nil {
			t.Fatal(err)
		}
		if err := dev.WaitForVersion("contested.txt", 2, syncWait); err != nil {
			t.Fatal(err)
		}
	}
	ca, _ := a.FileContent("contested.txt")
	cb, _ := b.FileContent("contested.txt")
	if !bytes.Equal(ca, cb) {
		t.Fatalf("devices diverged on contested path: %q vs %q", ca, cb)
	}
}
