package client

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// watchRig couples two directory watchers to two devices in one workspace.
func watchRig(t *testing.T) (*rig, *DirWatcher, string, *DirWatcher, string) {
	t.Helper()
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")
	dirA := t.TempDir()
	dirB := t.TempDir()
	wa, err := NewDirWatcher(a, dirA, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewDirWatcher(b, dirB, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return r, wa, dirA, wb, dirB
}

// pump drives both watchers until cond holds or the deadline passes.
func pump(t *testing.T, cond func() bool, watchers ...*DirWatcher) {
	t.Helper()
	deadline := time.Now().Add(syncWait)
	for time.Now().Before(deadline) {
		for _, w := range watchers {
			if err := w.SyncOnce(); err != nil {
				t.Logf("sync once: %v", err)
			}
		}
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestWatcherPropagatesCreateToOtherDisk(t *testing.T) {
	_, wa, dirA, wb, dirB := watchRig(t)
	if err := os.WriteFile(filepath.Join(dirA, "report.txt"), []byte("quarterly"), 0o644); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dirB, "report.txt")
	pump(t, func() bool {
		data, err := os.ReadFile(target)
		return err == nil && bytes.Equal(data, []byte("quarterly"))
	}, wa, wb)
}

func TestWatcherPropagatesModify(t *testing.T) {
	_, wa, dirA, wb, dirB := watchRig(t)
	src := filepath.Join(dirA, "doc.txt")
	if err := os.WriteFile(src, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dirB, "doc.txt")
	pump(t, func() bool {
		data, err := os.ReadFile(dst)
		return err == nil && bytes.Equal(data, []byte("v1"))
	}, wa, wb)

	if err := os.WriteFile(src, []byte("v2 content"), 0o644); err != nil {
		t.Fatal(err)
	}
	pump(t, func() bool {
		data, err := os.ReadFile(dst)
		return err == nil && bytes.Equal(data, []byte("v2 content"))
	}, wa, wb)
}

func TestWatcherPropagatesDelete(t *testing.T) {
	_, wa, dirA, wb, dirB := watchRig(t)
	src := filepath.Join(dirA, "temp.txt")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dirB, "temp.txt")
	pump(t, func() bool {
		_, err := os.Stat(dst)
		return err == nil
	}, wa, wb)

	if err := os.Remove(src); err != nil {
		t.Fatal(err)
	}
	pump(t, func() bool {
		_, err := os.Stat(dst)
		return os.IsNotExist(err)
	}, wa, wb)
}

func TestWatcherHandlesSubdirectories(t *testing.T) {
	_, wa, dirA, wb, dirB := watchRig(t)
	sub := filepath.Join(dirA, "projects", "go")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "main.go"), []byte("package main"), 0o644); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dirB, "projects", "go", "main.go")
	pump(t, func() bool {
		data, err := os.ReadFile(target)
		return err == nil && bytes.Equal(data, []byte("package main"))
	}, wa, wb)
}

func TestWatcherIgnoresDotfiles(t *testing.T) {
	r, wa, dirA, _, _ := watchRig(t)
	if err := os.WriteFile(filepath.Join(dirA, ".editor-swap"), []byte("tmp"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := wa.SyncOnce(); err != nil {
			t.Fatal(err)
		}
	}
	state, err := r.meta.State("ws")
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 0 {
		t.Fatalf("dotfile committed: %+v", state)
	}
}

func TestWatcherNoFeedbackLoop(t *testing.T) {
	// Applying a remote change to disk must not re-commit it.
	r, wa, dirA, wb, _ := watchRig(t)
	if err := os.WriteFile(filepath.Join(dirA, "f.txt"), []byte("once"), 0o644); err != nil {
		t.Fatal(err)
	}
	pump(t, func() bool {
		state, err := r.meta.State("ws")
		return err == nil && len(state) == 1 && state[0].Version == 1
	}, wa, wb)
	// Keep pumping; version must stay 1.
	for i := 0; i < 20; i++ {
		_ = wa.SyncOnce()
		_ = wb.SyncOnce()
	}
	state, err := r.meta.State("ws")
	if err != nil {
		t.Fatal(err)
	}
	if state[0].Version != 1 {
		t.Fatalf("feedback loop: version climbed to %d", state[0].Version)
	}
}

func TestWatcherBackgroundLoop(t *testing.T) {
	_, wa, dirA, wb, dirB := watchRig(t)
	wa.Start()
	wb.Start()
	defer wa.Stop()
	defer wb.Stop()
	if err := os.WriteFile(filepath.Join(dirA, "auto.txt"), []byte("hands free"), 0o644); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dirB, "auto.txt")
	deadline := time.Now().Add(syncWait)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(target); err == nil && bytes.Equal(data, []byte("hands free")) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background watchers never converged")
}

func TestWatcherRejectsNonDirectory(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirWatcher(a, file, time.Second); err == nil {
		t.Fatal("non-directory accepted")
	}
	if _, err := NewDirWatcher(a, filepath.Join(t.TempDir(), "missing"), time.Second); err == nil {
		t.Fatal("missing directory accepted")
	}
}
