package client

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"stacksync/internal/chunker"
	"stacksync/internal/objstore"
	"stacksync/internal/obs"
)

// Transfer pipeline defaults. The batch-first Store API only pays off when
// the client actually batches and overlaps requests; these bound how hard it
// does so.
const (
	defaultTransferWorkers = 4
	defaultTransferBatch   = 16
	defaultChunkCacheBytes = 16 << 20
)

// transferByteBuckets are histogram bounds for per-batch transfer sizes,
// 1 KB .. 16 MB (observations are bytes, not seconds).
var transferByteBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// transferMetrics backs the data-path series of one device.
type transferMetrics struct {
	batchPuts     *obs.Counter // objects shipped through PutMulti
	batchGets     *obs.Counter // objects requested through GetMulti
	batchProbes   *obs.Counter // objects probed through ExistsMulti
	dedupSkipped  *obs.Counter // uploads skipped because the server had the chunk
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	flightShared  *obs.Counter // uploads coalesced onto an in-flight leader
	uploadBytes   *obs.Histogram
	downloadBytes *obs.Histogram
}

// transferMetricNames lists the registered series so Close can unregister
// them symmetrically.
var transferMetricNames = []string{
	"objstore_batch_puts_total",
	"objstore_batch_gets_total",
	"objstore_batch_probes_total",
	"objstore_dedup_skipped_total",
	"client_chunk_cache_hits_total",
	"client_chunk_cache_misses_total",
	"client_singleflight_shared_total",
	"client_transfer_upload_bytes",
	"client_transfer_download_bytes",
}

func newTransferMetrics(reg *obs.Registry, deviceID string) *transferMetrics {
	return &transferMetrics{
		batchPuts:     reg.Counter("objstore_batch_puts_total", "device", deviceID),
		batchGets:     reg.Counter("objstore_batch_gets_total", "device", deviceID),
		batchProbes:   reg.Counter("objstore_batch_probes_total", "device", deviceID),
		dedupSkipped:  reg.Counter("objstore_dedup_skipped_total", "device", deviceID),
		cacheHits:     reg.Counter("client_chunk_cache_hits_total", "device", deviceID),
		cacheMisses:   reg.Counter("client_chunk_cache_misses_total", "device", deviceID),
		flightShared:  reg.Counter("client_singleflight_shared_total", "device", deviceID),
		uploadBytes:   reg.HistogramWith(transferByteBuckets, "client_transfer_upload_bytes", "device", deviceID),
		downloadBytes: reg.HistogramWith(transferByteBuckets, "client_transfer_download_bytes", "device", deviceID),
	}
}

// flightGroup coalesces concurrent uploads of the same fingerprint: the
// first claimant becomes the leader and actually ships the chunk; later
// claimants wait for the leader's outcome instead of re-sending the bytes.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[string]*flightCall)}
}

// claim returns (call, true) when the caller became the leader for fp, or
// the existing in-flight call and false when another goroutine leads. A
// leader must release its call exactly once.
func (g *flightGroup) claim(fp string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.inflight[fp]; ok {
		return call, false
	}
	call := &flightCall{done: make(chan struct{})}
	g.inflight[fp] = call
	return call, true
}

// release publishes the leader's outcome and wakes the followers.
func (g *flightGroup) release(fp string, call *flightCall, err error) {
	g.mu.Lock()
	delete(g.inflight, fp)
	g.mu.Unlock()
	call.err = err
	close(call.done)
}

// chunkCache is a size-bounded LRU over compressed chunk bytes. Downloads
// consult it before the store; uploads and downloads both feed it. maxBytes
// <= 0 disables the cache entirely.
type chunkCache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	items    map[string]*list.Element
	order    *list.List // front = most recently used
}

type cacheEntry struct {
	fp   string
	data []byte
}

func newChunkCache(maxBytes int64) *chunkCache {
	return &chunkCache{
		maxBytes: maxBytes,
		items:    make(map[string]*list.Element),
		order:    list.New(),
	}
}

func (c *chunkCache) get(fp string) ([]byte, bool) {
	if c.maxBytes <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[fp]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

func (c *chunkCache) put(fp string, data []byte) {
	if c.maxBytes <= 0 || int64(len(data)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		c.order.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		c.size += int64(len(data)) - int64(len(entry.data))
		entry.data = data
	} else {
		c.items[fp] = c.order.PushFront(&cacheEntry{fp: fp, data: data})
		c.size += int64(len(data))
	}
	for c.size > c.maxBytes {
		back := c.order.Back()
		if back == nil {
			break
		}
		entry := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.items, entry.fp)
		c.size -= int64(len(entry.data))
	}
}

func (c *chunkCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// runTransfer slices n items into TransferBatch-sized batches and drives
// them through a pool of TransferWorkers goroutines. It returns the first
// batch error; remaining batches still run (chunk puts are idempotent, so
// over-transfer is harmless and keeps the queue simple). A single batch
// runs inline on the calling goroutine — small transfers pay no pool
// scheduling at all.
func (c *Client) runTransfer(ctx context.Context, n int, batchFn func(lo, hi int) error) error {
	batchSize := c.cfg.TransferBatch
	numBatches := (n + batchSize - 1) / batchSize
	if numBatches <= 1 {
		if n == 0 {
			return nil
		}
		return batchFn(0, n)
	}
	workers := min(c.cfg.TransferWorkers, numBatches)

	type job struct{ lo, hi int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := batchFn(j.lo, j.hi); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for lo := 0; lo < n; lo += batchSize {
		jobs <- job{lo, min(lo+batchSize, n)}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// uploadChunks compresses the fresh chunks and pushes them through the
// pipelined upload path: per batch, a server-side existence probe skips
// chunks some other device already stored (workspace-scoped dedup, §4.1),
// the singleflight layer coalesces concurrent uploads of the same
// fingerprint, and the survivors ship in one PutMulti.
func (c *Client) uploadChunks(ctx context.Context, fresh []chunker.Chunk) error {
	if len(fresh) == 0 {
		return nil
	}
	objs := make([]objstore.Object, 0, len(fresh))
	for _, ch := range fresh {
		compressed, err := chunker.Compress(ch.Data, c.cfg.Compression)
		if err != nil {
			return fmt.Errorf("client: compress chunk: %w", err)
		}
		objs = append(objs, objstore.Object{Key: ch.Fingerprint, Data: compressed})
	}
	return c.runTransfer(ctx, len(objs), func(lo, hi int) error {
		return c.uploadBatch(ctx, objs[lo:hi])
	})
}

// probeMinBatch is the smallest batch worth the server-assisted dedup
// probe. A single-chunk probe costs one round trip — exactly what the put
// it might save costs — so tiny batches skip straight to the (idempotent)
// put and keep small-file commit latency at one storage round trip.
const probeMinBatch = 2

// uploadBatch moves one batch: probe, coalesce, put.
func (c *Client) uploadBatch(ctx context.Context, objs []objstore.Object) error {
	span := c.tracer.StartFromContext(ctx, "objstore.putBatch")
	defer span.End()

	// Server-assisted dedup: ask before shipping bytes. A failed probe
	// (store down, circuit open) degrades gracefully to "assume everything
	// is missing" — at worst we re-upload idempotent chunks.
	missing := objs
	if len(objs) >= probeMinBatch {
		keys := make([]string, len(objs))
		for i, o := range objs {
			keys[i] = o.Key
		}
		c.tm.batchProbes.Add(uint64(len(keys)))
		if present, err := c.store.ExistsMulti(ctx, c.container, keys); err == nil && len(present) == len(objs) {
			missing = make([]objstore.Object, 0, len(objs))
			for i, o := range objs {
				if present[i] {
					c.tm.dedupSkipped.Inc()
					c.cache.put(o.Key, o.Data)
					continue
				}
				missing = append(missing, o)
			}
		} else if canceledErr(err) {
			return err
		}
	}
	if len(missing) == 0 {
		return nil
	}

	// Singleflight per fingerprint: chunks another goroutine is already
	// uploading are waited on, not re-sent.
	var leaders []objstore.Object
	var claims []*flightCall
	var waits []*flightCall
	for _, o := range missing {
		call, lead := c.flights.claim(o.Key)
		if lead {
			leaders = append(leaders, o)
			claims = append(claims, call)
		} else {
			c.tm.flightShared.Inc()
			waits = append(waits, call)
		}
	}

	err := c.putLeaders(ctx, leaders)
	for i, call := range claims {
		c.flights.release(leaders[i].Key, call, err)
	}
	for _, w := range waits {
		select {
		case <-w.done:
			if w.err != nil && err == nil {
				err = w.err
			}
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	}
	return err
}

// putLeaders ships the chunks this goroutine leads. Transient failures
// (including an open circuit) defer the batch to the upload queue and count
// as success: metadata and data flows are independent (§4), so a flaky
// store must not block the commit.
func (c *Client) putLeaders(ctx context.Context, leaders []objstore.Object) error {
	if len(leaders) == 0 {
		return nil
	}
	var total int
	for _, o := range leaders {
		total += len(o.Data)
	}
	err := c.store.PutMulti(ctx, c.container, leaders)
	switch {
	case err == nil:
		c.tm.batchPuts.Add(uint64(len(leaders)))
		c.tm.uploadBytes.Observe(float64(total))
		for _, o := range leaders {
			c.cache.put(o.Key, o.Data)
		}
		return nil
	case permanentStoreErr(err) || canceledErr(err):
		return fmt.Errorf("client: upload chunk batch: %w", err)
	default:
		for _, o := range leaders {
			c.uploads.add(o.Key, o.Data)
		}
		return nil
	}
}

// fetchChunks fills compressed[i] for every index in idx (positions into
// fps), batching GetMulti calls through the worker pool. The cache and the
// deferred-upload queue were already consulted by the caller.
func (c *Client) fetchChunks(ctx context.Context, fps []string, compressed [][]byte, idx []int) error {
	return c.runTransfer(ctx, len(idx), func(lo, hi int) error {
		return c.downloadBatch(ctx, fps, compressed, idx[lo:hi])
	})
}

// downloadBatch resolves one batch of missing chunks. Chunks absent from
// the store fall back to the deferred-upload queue (read-your-writes under
// degradation); anything still unresolved fails the fetch.
func (c *Client) downloadBatch(ctx context.Context, fps []string, out [][]byte, idx []int) error {
	span := c.tracer.StartFromContext(ctx, "objstore.getBatch")
	defer span.End()

	keys := make([]string, len(idx))
	for i, j := range idx {
		keys[i] = fps[j]
	}
	c.tm.batchGets.Add(uint64(len(keys)))
	data, gerr := c.store.GetMulti(ctx, c.container, keys)
	if canceledErr(gerr) {
		return gerr
	}
	if gerr != nil && !errors.Is(gerr, objstore.ErrNotFound) {
		// Whole-batch failure (store down, circuit open): the queue is the
		// only local recourse, so treat every key as a miss.
		data = make([][]byte, len(keys))
	}
	if len(data) != len(keys) {
		data = make([][]byte, len(keys))
	}
	var total int
	for i, j := range idx {
		d := data[i]
		if d == nil {
			queued, ok := c.uploads.get(keys[i])
			if !ok {
				if gerr == nil {
					gerr = objstore.ErrNotFound
				}
				return fmt.Errorf("client: fetch chunk %s: %w", keys[i], gerr)
			}
			d = queued
		} else {
			total += len(d)
			c.cache.put(keys[i], d)
		}
		out[j] = d
	}
	c.tm.downloadBytes.Observe(float64(total))
	return nil
}
