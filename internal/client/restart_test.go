package client

import (
	"bytes"
	"fmt"
	"testing"

	"stacksync/internal/chunker"
	"stacksync/internal/omq"
)

// TestDeviceRestartResyncsViaGetChanges models a device crash and restart:
// a brand-new Client with the same device id (fresh local database, as if
// the process died) must rebuild the full workspace state through the
// startup getChanges and continue committing on the correct version chain.
func TestDeviceRestartResyncsViaGetChanges(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")

	for i := 0; i < 8; i++ {
		if err := a.PutFile(fmt.Sprintf("f%d.txt", i), []byte(fmt.Sprintf("gen1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := a.WaitForVersion(fmt.Sprintf("f%d.txt", i), 1, syncWait); err != nil {
			t.Fatal(err)
		}
	}
	// Update one file so the restarted device must see version 2.
	if err := a.PutFile("f0.txt", []byte("gen1-updated")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("f0.txt", 2, syncWait); err != nil {
		t.Fatal(err)
	}

	// "Crash": drop the client (its broker too) without ceremony.
	_ = a.Close()

	// Restart: same device id, empty local state.
	b2, err := omq.NewBroker(r.mq)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b2.Close() })
	restarted, err := NewClient(Config{
		UserID: "alice", DeviceID: "dev-a", WorkspaceID: "ws",
		Broker: b2, Storage: r.storage,
		Chunker: chunker.Fixed{ChunkSize: 1024}, // match the rig's chunking
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = restarted.Close() })

	if got := len(restarted.Paths()); got != 8 {
		t.Fatalf("restarted device sees %d files, want 8", got)
	}
	content, ok := restarted.FileContent("f0.txt")
	if !ok || !bytes.Equal(content, []byte("gen1-updated")) {
		t.Fatalf("restarted device content: %q %v", content, ok)
	}
	if v, _ := restarted.Version("f0.txt"); v != 2 {
		t.Fatalf("restarted device version = %d, want 2", v)
	}

	// And it continues the version chain correctly (proposes v3, not v1).
	if err := restarted.PutFile("f0.txt", []byte("gen2")); err != nil {
		t.Fatal(err)
	}
	if err := restarted.WaitForVersion("f0.txt", 3, syncWait); err != nil {
		t.Fatal(err)
	}
}

// TestRestartedDeviceSkipsReuploadOfKnownChunks verifies that dedup state
// rebuilt from getChanges avoids re-uploading chunks the store already has.
func TestRestartedDeviceSkipsReuploadOfKnownChunks(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	payload := bytes.Repeat([]byte("stable-content-"), 300)
	if err := a.PutFile("doc.bin", payload); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("doc.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	_ = a.Close()

	putsBefore := r.storage.Traffic().Puts
	b2, err := omq.NewBroker(r.mq)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b2.Close() })
	restarted, err := NewClient(Config{
		UserID: "alice", DeviceID: "dev-a", WorkspaceID: "ws",
		Broker: b2, Storage: r.storage,
		Chunker: chunker.Fixed{ChunkSize: 1024}, // match the rig's chunking
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = restarted.Close() })

	// Re-putting identical content must upload nothing new.
	if err := restarted.PutFile("copy-of-doc.bin", payload); err != nil {
		t.Fatal(err)
	}
	if err := restarted.WaitForVersion("copy-of-doc.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if puts := r.storage.Traffic().Puts; puts != putsBefore {
		t.Fatalf("restarted device re-uploaded %d chunks", puts-putsBefore)
	}
}
