package client

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"stacksync/internal/chunker"
	"stacksync/internal/obs"
)

// DirWatcher mirrors a real directory into a Client (the Watcher/Indexer
// pair of §4.1). A polling scanner detects local creations, modifications
// and deletions and proposes commits; pushed remote changes are applied back
// to disk. Content checksums break the feedback loop between the two
// directions.
type DirWatcher struct {
	c        *Client
	dir      string
	interval time.Duration
	// readFile reads one file during a scan (os.ReadFile; injectable so
	// tests can exercise transient read failures).
	readFile func(string) ([]byte, error)

	mu    sync.Mutex
	known map[string]string // sync path -> checksum of last agreed content

	// scanErrors counts per-file reads that failed transiently during a scan
	// (mid-write files, races with the OS); syncErrors counts whole cycles
	// that returned an error. Registry series labelled by device — steady
	// growth means the watcher is persistently unable to index some file.
	scanErrors *obs.Counter
	syncErrors *obs.Counter

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewDirWatcher prepares a watcher for dir. Call Start to begin syncing.
func NewDirWatcher(c *Client, dir string, interval time.Duration) (*DirWatcher, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("client: watch dir: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("client: watch dir: %s is not a directory", dir)
	}
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	return &DirWatcher{
		c:        c,
		dir:      dir,
		interval: interval,
		readFile: os.ReadFile,
		known:    make(map[string]string),
		scanErrors: c.reg.Counter("client_watcher_scan_errors_total",
			"device", c.cfg.DeviceID),
		syncErrors: c.reg.Counter("client_watcher_sync_errors_total",
			"device", c.cfg.DeviceID),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Start launches the watch loop. The client must already be started.
func (w *DirWatcher) Start() {
	go w.loop()
}

// Stop halts the loop and waits for it to exit.
func (w *DirWatcher) Stop() {
	w.stopOnce.Do(func() {
		close(w.stop)
		<-w.done
	})
}

// SyncOnce runs a single apply-remote + scan-local cycle; exposed so tests
// and examples can drive the watcher deterministically.
func (w *DirWatcher) SyncOnce() error {
	if err := w.applyRemote(); err != nil {
		return err
	}
	return w.scanLocal()
}

func (w *DirWatcher) loop() {
	defer close(w.done)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			// Errors are transient (mid-write files, races with the OS);
			// the next tick retries — but they are counted, not swallowed.
			if err := w.SyncOnce(); err != nil {
				w.syncErrors.Inc()
			}
		}
	}
}

// applyRemote reconciles the synced state (client database) onto disk.
func (w *DirWatcher) applyRemote() error {
	// Current live paths and contents per the client.
	livePaths := make(map[string]bool)
	for _, p := range w.c.Paths() {
		livePaths[p] = true
		content, ok := w.c.FileContent(p)
		if !ok {
			continue
		}
		sum := chunker.Fingerprint(content)
		w.mu.Lock()
		agreed := w.known[p]
		w.mu.Unlock()
		if agreed == sum {
			continue
		}
		onDisk, err := os.ReadFile(w.diskPath(p))
		if err == nil && bytes.Equal(onDisk, content) {
			w.remember(p, sum)
			continue
		}
		if err == nil && agreed != chunker.Fingerprint(onDisk) {
			// Disk changed locally at the same time; let scanLocal pick the
			// local edit up first — the service will arbitrate.
			continue
		}
		if err := w.writeFile(p, content); err != nil {
			return err
		}
		w.remember(p, sum)
	}
	// Paths we knew that are no longer live were remotely deleted.
	w.mu.Lock()
	var gone []string
	for p := range w.known {
		if !livePaths[p] {
			gone = append(gone, p)
		}
	}
	w.mu.Unlock()
	for _, p := range gone {
		if _, ok := w.c.Version(p); ok {
			continue // still live after all
		}
		if w.c.ProposalPending(p) {
			// Our own add/update is still awaiting its ack: the path is not
			// in the database yet, but it was never remotely deleted. Leave
			// the file alone and reconcile on a later tick.
			continue
		}
		if err := os.Remove(w.diskPath(p)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("client: remove %s: %w", p, err)
		}
		w.forget(p)
	}
	return nil
}

// scanLocal walks the directory and proposes commits for local changes. A
// vanished path paired with a new path holding identical content is
// detected as a rename and proposed as a metadata-only MoveFile.
func (w *DirWatcher) scanLocal() error {
	seen := make(map[string]bool)
	type newFile struct {
		path    string
		content []byte
		sum     string
	}
	var created []newFile
	err := filepath.WalkDir(w.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(w.dir, path)
		if err != nil {
			return err
		}
		syncPath := filepath.ToSlash(rel)
		if strings.HasPrefix(filepath.Base(syncPath), ".") {
			return nil // ignore dotfiles (editor temp files etc.)
		}
		seen[syncPath] = true
		content, err := w.readFile(path)
		if err != nil {
			w.scanErrors.Inc() // transient; retry next tick
			return nil
		}
		sum := chunker.Fingerprint(content)
		w.mu.Lock()
		agreed, ok := w.known[syncPath]
		w.mu.Unlock()
		if ok && agreed == sum {
			return nil
		}
		if !ok {
			// Defer: it may pair with a vanished path as a rename.
			created = append(created, newFile{path: syncPath, content: content, sum: sum})
			return nil
		}
		if err := w.c.PutFile(syncPath, content); err != nil {
			return fmt.Errorf("client: index %s: %w", syncPath, err)
		}
		w.remember(syncPath, sum)
		return nil
	})
	if err != nil {
		return err
	}
	// Known paths missing on disk were locally deleted — or renamed, when a
	// created file carries the same checksum.
	w.mu.Lock()
	goneByChecksum := make(map[string]string) // checksum -> old path
	var gone []string
	for p, sum := range w.known {
		if !seen[p] {
			gone = append(gone, p)
			goneByChecksum[sum] = p
		}
	}
	w.mu.Unlock()
	renamed := make(map[string]bool) // old paths consumed by renames
	for _, nf := range created {
		oldPath, isRename := goneByChecksum[nf.sum]
		if isRename && !renamed[oldPath] {
			if _, ok := w.c.Version(oldPath); ok {
				if err := w.c.MoveFile(oldPath, nf.path); err != nil {
					return fmt.Errorf("client: move %s -> %s: %w", oldPath, nf.path, err)
				}
				renamed[oldPath] = true
				w.forget(oldPath)
				w.remember(nf.path, nf.sum)
				continue
			}
		}
		if err := w.c.PutFile(nf.path, nf.content); err != nil {
			return fmt.Errorf("client: index %s: %w", nf.path, err)
		}
		w.remember(nf.path, nf.sum)
	}
	for _, p := range gone {
		if renamed[p] {
			continue
		}
		if _, ok := w.c.Version(p); !ok {
			if w.c.ProposalPending(p) {
				continue // ack in flight; revisit once the database has it
			}
			w.forget(p)
			continue // already deleted in sync state (remote delete)
		}
		if err := w.c.RemoveFile(p); err != nil && !strings.Contains(err.Error(), "not found") {
			return err
		}
		w.forget(p)
	}
	return nil
}

func (w *DirWatcher) diskPath(syncPath string) string {
	return filepath.Join(w.dir, filepath.FromSlash(syncPath))
}

func (w *DirWatcher) writeFile(syncPath string, content []byte) error {
	full := w.diskPath(syncPath)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return fmt.Errorf("client: mkdir for %s: %w", syncPath, err)
	}
	if err := os.WriteFile(full, content, 0o644); err != nil {
		return fmt.Errorf("client: write %s: %w", syncPath, err)
	}
	return nil
}

func (w *DirWatcher) remember(p, sum string) {
	w.mu.Lock()
	w.known[p] = sum
	w.mu.Unlock()
}

func (w *DirWatcher) forget(p string) {
	w.mu.Lock()
	delete(w.known, p)
	w.mu.Unlock()
}
