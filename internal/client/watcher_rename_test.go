package client

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWatcherDetectsRenameWithoutReupload(t *testing.T) {
	r, wa, dirA, wb, dirB := watchRig(t)

	payload := bytes.Repeat([]byte("big-enough-to-matter-"), 400)
	src := filepath.Join(dirA, "original.bin")
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	pump(t, func() bool {
		data, err := os.ReadFile(filepath.Join(dirB, "original.bin"))
		return err == nil && bytes.Equal(data, payload)
	}, wa, wb)

	trafficBefore := r.storage.Traffic()
	// Rename on disk: delete+create with the same content from the
	// scanner's point of view.
	if err := os.Rename(src, filepath.Join(dirA, "renamed.bin")); err != nil {
		t.Fatal(err)
	}
	pump(t, func() bool {
		if _, err := os.Stat(filepath.Join(dirB, "original.bin")); !os.IsNotExist(err) {
			return false
		}
		data, err := os.ReadFile(filepath.Join(dirB, "renamed.bin"))
		return err == nil && bytes.Equal(data, payload)
	}, wa, wb)

	// Metadata-only: nothing travelled to the storage back-end.
	trafficAfter := r.storage.Traffic()
	if trafficAfter.BytesUp != trafficBefore.BytesUp {
		t.Fatalf("rename uploaded %d bytes", trafficAfter.BytesUp-trafficBefore.BytesUp)
	}
	if trafficAfter.BytesDown != trafficBefore.BytesDown {
		t.Fatalf("rename downloaded %d bytes", trafficAfter.BytesDown-trafficBefore.BytesDown)
	}
}

func TestWatcherRenameIntoSubdirectory(t *testing.T) {
	_, wa, dirA, wb, dirB := watchRig(t)
	if err := os.WriteFile(filepath.Join(dirA, "file.txt"), []byte("content"), 0o644); err != nil {
		t.Fatal(err)
	}
	pump(t, func() bool {
		_, err := os.Stat(filepath.Join(dirB, "file.txt"))
		return err == nil
	}, wa, wb)

	sub := filepath.Join(dirA, "archive")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dirA, "file.txt"), filepath.Join(sub, "file.txt")); err != nil {
		t.Fatal(err)
	}
	pump(t, func() bool {
		if _, err := os.Stat(filepath.Join(dirB, "file.txt")); !os.IsNotExist(err) {
			return false
		}
		data, err := os.ReadFile(filepath.Join(dirB, "archive", "file.txt"))
		return err == nil && bytes.Equal(data, []byte("content"))
	}, wa, wb)
}
