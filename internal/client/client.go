package client

import (
	"context"
	"errors"
	"fmt"
	"path"
	"strings"
	"sync"
	"time"

	"stacksync/internal/chunker"
	"stacksync/internal/clock"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/objstore"
	"stacksync/internal/obs"
	"stacksync/internal/omq"
)

// EventType classifies client events.
type EventType int

const (
	// LocalCommitted: a change made on this device was accepted.
	LocalCommitted EventType = iota + 1
	// RemoteApplied: a change from another device was applied locally.
	RemoteApplied
	// ConflictResolved: this device lost a race; its content was preserved
	// as a conflict copy (Dropbox policy, §4.1).
	ConflictResolved
)

// Event reports a sync outcome to the embedding application.
type Event struct {
	Type EventType
	// Path of the affected file (for ConflictResolved, the conflict copy).
	Path    string
	Version uint64
	Status  metastore.Status
}

// Config assembles a Client.
type Config struct {
	// UserID authenticates against the SyncService's workspace list.
	UserID string
	// DeviceID must be unique per device of the user.
	DeviceID string
	// WorkspaceID selects the synced workspace.
	WorkspaceID string
	// Broker is this device's ObjectMQ endpoint.
	Broker *omq.Broker
	// Router, when set, routes this device's service calls by workspace
	// affinity (DESIGN §13): CommitRequest becomes a synchronous routed call
	// to the workspace's owning instance — acknowledged only after the
	// metadata commit — with epoch fencing and failover to the successor on
	// crash or rebalance. Nil keeps the legacy shared-queue path.
	Router *omq.Router
	// Storage is the Storage back-end. Chunks live in the workspace's
	// container, which the client ensures on Start.
	Storage objstore.Store
	// Chunker cuts files (default: fixed 512 KB, §4.1).
	Chunker chunker.Chunker
	// Compression applied to chunks before upload (default gzip).
	Compression chunker.Compression
	// CallTimeout and CallRetries tune @SyncMethod calls (default 1500 ms, 5).
	CallTimeout time.Duration
	CallRetries int
	// EventBuffer caps the Events channel (default 256). When full, the
	// oldest unread events are dropped.
	EventBuffer int
	// Clock drives waits, retries and background loops (default wall clock).
	Clock clock.Clock
	// StoreRetries and StoreBackoff tune the retry loop around each storage
	// operation (defaults 3 extra attempts, 20 ms doubling).
	StoreRetries int
	StoreBackoff time.Duration
	// BreakerThreshold consecutive storage failures open the circuit for
	// BreakerCooldown (defaults 5, 500 ms). While open, chunk uploads queue
	// and drain in the background — commits stay available (degraded mode).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// TransferWorkers bounds the concurrent batch transfers of one upload or
	// download (default 4; 1 serializes the data path). TransferBatch caps
	// the chunks per batch request (default 16; 1 degenerates to per-chunk
	// calls). Together they turn the batch-first Store API into a pipeline:
	// workers overlap request latency, batches amortize per-request cost.
	TransferWorkers int
	TransferBatch   int
	// ChunkCacheBytes bounds the compressed-chunk LRU cache consulted before
	// any download (default 16 MB; negative disables caching).
	ChunkCacheBytes int64
	// RetransmitEvery re-proposes commits whose notification has not arrived
	// (default 1 s; the metadata store deduplicates replays). <0 disables.
	RetransmitEvery time.Duration
	// ResyncEvery periodically pulls GetChanges to repair losses the push
	// path missed (dropped notifications). Default 0 = disabled.
	ResyncEvery time.Duration
	// Tracer records a root span per commit and child spans at every hop
	// (storage puts/gets, notification application). nil disables tracing.
	// Pass the same tracer to the device's Broker so the trace continues
	// across the messaging layer.
	Tracer *obs.Tracer
	// Registry backs this device's metric series (upload-queue depth,
	// breaker state, watcher errors), labelled by device id. Defaults to a
	// private registry readable via Registry().
	Registry *obs.Registry
}

// Client is one StackSync device. It is driven programmatically through
// PutFile/RemoveFile (the benchmark path); DirWatcher in watcher.go layers a
// real directory on top.
type Client struct {
	cfg       Config
	container string
	clk       clock.Clock
	store     *breakerStore
	uploads   *uploadQueue
	flights   *flightGroup
	cache     *chunkCache
	tm        *transferMetrics
	sync      *omq.Proxy
	handler   *omq.BoundObject
	tracer    *obs.Tracer
	reg       *obs.Registry

	db     *localDB
	events chan Event
	stopCh chan struct{}
	bg     sync.WaitGroup

	mu               sync.Mutex
	pendingProposals map[pendingKey]pendingProposal
	started          bool
	closed           bool
	// syncVersion is the workspace version the local database is known to
	// reflect — the cursor sent with GetChangesSince so a resync ships only
	// the change-log tail (incremental resync, DESIGN §16). Guarded by mu.
	syncVersion uint64

	// Resync metrics: tail (incremental) vs full (cold start, or the cursor
	// fell behind the server's compaction watermark).
	resyncTail, resyncFull *obs.Counter
}

// Errors returned by the client.
var (
	ErrNotStarted = errors.New("client: not started")
	ErrNoFile     = errors.New("client: file not found")
)

// WorkspaceContainer names the storage container of a workspace. Chunks of a
// shared workspace live in one container all members can reach; dedup stays
// scoped to the workspace (never cross-user, per §4.1).
func WorkspaceContainer(workspaceID string) string { return "ws-" + workspaceID }

// NewClient validates the configuration and prepares a stopped client.
func NewClient(cfg Config) (*Client, error) {
	if cfg.UserID == "" || cfg.DeviceID == "" || cfg.WorkspaceID == "" {
		return nil, errors.New("client: UserID, DeviceID and WorkspaceID are required")
	}
	if cfg.Broker == nil || cfg.Storage == nil {
		return nil, errors.New("client: Broker and Storage are required")
	}
	if cfg.Chunker == nil {
		cfg.Chunker = chunker.NewFixed()
	}
	if cfg.Compression == 0 {
		cfg.Compression = chunker.Gzip
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = omq.DefaultTimeout
	}
	if cfg.CallRetries <= 0 {
		cfg.CallRetries = omq.DefaultRetries
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.RetransmitEvery == 0 {
		cfg.RetransmitEvery = time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.TransferWorkers <= 0 {
		if cfg.TransferWorkers < 0 {
			cfg.TransferWorkers = 1
		} else {
			cfg.TransferWorkers = defaultTransferWorkers
		}
	}
	if cfg.TransferBatch <= 0 {
		if cfg.TransferBatch < 0 {
			cfg.TransferBatch = 1
		} else {
			cfg.TransferBatch = defaultTransferBatch
		}
	}
	if cfg.ChunkCacheBytes == 0 {
		cfg.ChunkCacheBytes = defaultChunkCacheBytes
	}
	c := &Client{
		cfg:       cfg,
		container: WorkspaceContainer(cfg.WorkspaceID),
		clk:       cfg.Clock,
		uploads:   newUploadQueue(),
		flights:   newFlightGroup(),
		cache:     newChunkCache(cfg.ChunkCacheBytes),
		tracer:    cfg.Tracer,
		reg:       cfg.Registry,
		db:        newLocalDB(),
		events:    make(chan Event, cfg.EventBuffer),
		stopCh:    make(chan struct{}),
	}
	c.store = newBreakerStore(cfg.Storage, cfg.Clock,
		cfg.StoreRetries, cfg.StoreBackoff, cfg.BreakerThreshold, cfg.BreakerCooldown)
	c.tm = newTransferMetrics(c.reg, cfg.DeviceID)
	c.reg.GaugeFunc("client_chunk_cache_bytes", func() float64 {
		return float64(c.cache.bytes())
	}, "device", cfg.DeviceID)
	c.reg.GaugeFunc("client_upload_queue_depth", func() float64 {
		return float64(c.uploads.len())
	}, "device", cfg.DeviceID)
	c.reg.GaugeFunc("client_storage_breaker_open", func() float64 {
		if c.store.Open() {
			return 1
		}
		return 0
	}, "device", cfg.DeviceID)
	c.resyncTail = c.reg.Counter("client_resync_total", "device", cfg.DeviceID, "result", "tail")
	c.resyncFull = c.reg.Counter("client_resync_total", "device", cfg.DeviceID, "result", "full")
	return c, nil
}

// Registry returns the metrics registry backing this device's series.
func (c *Client) Registry() *obs.Registry { return c.reg }

// UploadQueueDepth reads this device's queued (deferred) chunk uploads from
// the registry gauge.
func UploadQueueDepth(reg *obs.Registry, deviceID string) int {
	v, _ := reg.GaugeValue("client_upload_queue_depth", "device", deviceID)
	return int(v)
}

// Start connects the device: it registers the notification handler for the
// workspace (so no push is missed), then fetches the workspace state with
// getChanges — the startup protocol of §4.2.1.
func (c *Client) Start() error {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return nil
	}
	c.started = true
	c.mu.Unlock()

	if err := c.store.EnsureContainer(context.Background(), c.container); err != nil {
		return fmt.Errorf("client: ensure container: %w", err)
	}
	c.sync = c.cfg.Broker.Lookup(core.ServiceOID,
		omq.WithTimeout(c.cfg.CallTimeout), omq.WithRetries(c.cfg.CallRetries))

	handler, err := c.cfg.Broker.Bind(core.WorkspaceOID(c.cfg.WorkspaceID), &notificationHandler{c: c})
	if err != nil {
		return fmt.Errorf("client: bind notifications: %w", err)
	}
	c.handler = handler

	// Bootstrap: bring the local database up to the committed state. A cold
	// start sends since=0, which the service answers with the full live state
	// plus the workspace version — the cursor later resyncs continue from.
	if err := c.pullChanges(); err != nil {
		_ = handler.Unbind()
		return fmt.Errorf("client: getChanges: %w", err)
	}

	// Background repair loops: drain deferred chunk uploads, retransmit
	// unacknowledged proposals, and (when configured) resync pulled state.
	c.bg.Add(1)
	go c.repairLoop()
	return nil
}

// uploadFlushEvery paces the deferred-upload drain attempts.
const uploadFlushEvery = 100 * time.Millisecond

// repairLoop is the client's self-healing heartbeat. Each tick it (1) drains
// queued chunk uploads once the store admits requests again, (2) re-proposes
// commits whose notification never came (the metadata store deduplicates
// replays, §4.2 at-least-once), and (3) optionally pulls GetChanges to
// repair dropped pushes.
func (c *Client) repairLoop() {
	defer c.bg.Done()
	var sinceResync, sinceRetransmit time.Duration
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.clk.After(uploadFlushEvery):
		}
		c.flushUploads()
		sinceRetransmit += uploadFlushEvery
		if c.cfg.RetransmitEvery > 0 && sinceRetransmit >= c.cfg.RetransmitEvery {
			sinceRetransmit = 0
			c.retransmitPending()
		}
		sinceResync += uploadFlushEvery
		if c.cfg.ResyncEvery > 0 && sinceResync >= c.cfg.ResyncEvery {
			sinceResync = 0
			_ = c.Resync()
		}
	}
}

// flushUploads retries queued chunk uploads in FIFO order, draining a batch
// at a time and stopping at the first transient failure (the store is still
// down; keep order and try again later).
func (c *Client) flushUploads() {
	ctx := context.Background()
	for {
		fps := c.uploads.snapshot()
		if len(fps) == 0 {
			return
		}
		batch := make([]objstore.Object, 0, min(len(fps), c.cfg.TransferBatch))
		for _, fp := range fps[:min(len(fps), c.cfg.TransferBatch)] {
			if data, ok := c.uploads.get(fp); ok {
				batch = append(batch, objstore.Object{Key: fp, Data: data})
			}
		}
		if len(batch) == 0 {
			return
		}
		if err := c.store.PutMulti(ctx, c.container, batch); err != nil {
			if !permanentStoreErr(err) {
				return
			}
			// A poisoned batch: retry singly so the offending chunk is
			// dropped without stalling the rest of the queue.
			for _, o := range batch {
				if err := c.store.Put(ctx, c.container, o.Key, o.Data); err != nil {
					if permanentStoreErr(err) {
						c.uploads.remove(o.Key) // retrying can never succeed
						continue
					}
					return
				}
				c.uploads.remove(o.Key)
			}
			continue
		}
		c.tm.batchPuts.Add(uint64(len(batch)))
		for _, o := range batch {
			c.uploads.remove(o.Key)
		}
	}
}

// StorageDegraded reports whether the storage circuit breaker is open.
func (c *Client) StorageDegraded() bool { return c.store.Open() }

// retransmitPending re-proposes every stashed proposal older than the
// retransmit interval: its CommitRequest or notification was lost somewhere
// along the at-least-once pipeline.
func (c *Client) retransmitPending() {
	now := c.clk.Now()
	c.mu.Lock()
	var items []metastore.ItemVersion
	for key, p := range c.pendingProposals {
		if now.Sub(p.at) < c.cfg.RetransmitEvery {
			continue
		}
		p.at = now
		c.pendingProposals[key] = p
		items = append(items, p.item)
	}
	c.mu.Unlock()
	if len(items) == 0 {
		return
	}
	_ = c.propose(context.Background(), items)
}

// Resync pulls everything committed since the last synced workspace version
// and applies anything newer than the local database — the pull-based safety
// net under the push notifications. With a warm cursor this ships only the
// change-log tail; the service falls back to the full state (Full set in the
// reply) when the cursor predates the compaction watermark.
func (c *Client) Resync() error {
	if c.sync == nil {
		return ErrNotStarted
	}
	if err := c.pullChanges(); err != nil {
		return fmt.Errorf("client: resync: %w", err)
	}
	return nil
}

// SyncVersion reports the workspace version the last getChanges/resync pull
// was consistent at.
func (c *Client) SyncVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncVersion
}

// pullChanges performs one GetChangesSince round trip from the current
// cursor and applies the reply: a log tail in commit order (tombstones
// included), or the full live state on cold start / compaction fallback.
// The cursor only advances, so a reply raced by a fresher pull is harmless.
func (c *Client) pullChanges() error {
	c.mu.Lock()
	since := c.syncVersion
	c.mu.Unlock()
	var reply core.ChangesReply
	if err := c.callService("GetChangesSince", &reply, c.cfg.WorkspaceID, since); err != nil {
		return err
	}
	for _, item := range reply.Items {
		if err := c.applyRemote(context.Background(), item); err != nil {
			return fmt.Errorf("apply %s v%d: %w", item.ItemID, item.Version, err)
		}
	}
	if reply.Full {
		c.resyncFull.Inc()
	} else {
		c.resyncTail.Inc()
	}
	c.mu.Lock()
	if reply.Version > c.syncVersion {
		c.syncVersion = reply.Version
	}
	c.mu.Unlock()
	return nil
}

// Workspaces lists the workspaces this user can access (getWorkspaces).
func (c *Client) Workspaces() ([]metastore.Workspace, error) {
	if c.sync == nil {
		return nil, ErrNotStarted
	}
	var ws []metastore.Workspace
	if err := c.sync.Call("GetWorkspaces", &ws, c.cfg.UserID); err != nil {
		return nil, err
	}
	return ws, nil
}

// Events streams sync outcomes. Slow consumers lose oldest events.
func (c *Client) Events() <-chan Event { return c.events }

func (c *Client) emit(e Event) {
	select {
	case c.events <- e:
	default:
		// Drop oldest to keep the stream moving.
		select {
		case <-c.events:
		default:
		}
		select {
		case c.events <- e:
		default:
		}
	}
}

// PutFile indexes new content for path and proposes the commit: the Indexer
// flow of §4.1 — chunk, dedupe against the local database, upload only fresh
// chunks, then fire the asynchronous commitRequest.
func (c *Client) PutFile(filePath string, content []byte) error {
	if c.sync == nil {
		return ErrNotStarted
	}
	span, ctx := c.beginCommit()
	defer span.End()
	item, err := c.prepareItem(ctx, filePath, content)
	if err != nil {
		return err
	}
	return c.propose(ctx, []metastore.ItemVersion{item})
}

// beginCommit opens the root span of a locally initiated commit; everything
// downstream — chunk uploads, the commitRequest publish, queue dwell, handler
// execution, the metadata commit and the notification fan-out — records child
// spans under it. With tracing disabled both returns are inert.
func (c *Client) beginCommit() (*obs.SpanHandle, context.Context) {
	span := c.tracer.StartRoot("client.commit")
	return span, obs.ContextWith(context.Background(), span.Context())
}

// Change is one entry of a bundled commit (Table 2's file-bundling setup).
// Nil Content proposes a deletion.
type Change struct {
	Path    string
	Content []byte
	Delete  bool
}

// PutBatch indexes and uploads every change, then proposes all of them in a
// single commitRequest — the file-bundling behaviour whose control-traffic
// effect Table 2 measures.
func (c *Client) PutBatch(changes []Change) error {
	if c.sync == nil {
		return ErrNotStarted
	}
	span, ctx := c.beginCommit()
	defer span.End()
	items := make([]metastore.ItemVersion, 0, len(changes))
	for _, ch := range changes {
		if ch.Delete {
			item, err := c.prepareTombstone(ch.Path)
			if err != nil {
				return err
			}
			items = append(items, item)
			continue
		}
		item, err := c.prepareItem(ctx, ch.Path, ch.Content)
		if err != nil {
			return err
		}
		items = append(items, item)
	}
	return c.propose(ctx, items)
}

// prepareItem chunks, dedupes and uploads content, returning the proposed
// metadata version.
func (c *Client) prepareItem(ctx context.Context, filePath string, content []byte) (metastore.ItemVersion, error) {
	chunks, err := chunker.SplitBytes(c.cfg.Chunker, content)
	if err != nil {
		return metastore.ItemVersion{}, fmt.Errorf("client: chunk %s: %w", filePath, err)
	}
	_, fresh := chunker.Diff(chunks, c.db.hasChunk)
	if len(fresh) > 0 {
		// The pipelined upload path: compress, probe the server for chunks
		// some other device already stored, coalesce concurrent uploads of
		// the same fingerprint, and ship the rest in parallel batches.
		// Transient storage failures (or an open circuit) defer uploads to
		// the background queue and keep the commit available — metadata and
		// data flows are independent (§4), so a flaky store must not block
		// sync.
		putSpan := c.tracer.StartFromContext(ctx, "objstore.put")
		err := c.uploadChunks(ctx, fresh)
		putSpan.End()
		if err != nil {
			return metastore.ItemVersion{}, err
		}
	}
	c.db.addChunks(chunker.Fingerprints(fresh))

	status := metastore.Added
	var version uint64 = 1
	// New paths get a deterministic id derived from the path (so two
	// devices adding the same file collide into one item); known paths keep
	// their existing id, which may differ after a rename.
	itemID := ItemID(c.cfg.WorkspaceID, filePath)
	if prev, ok := c.db.lookup(filePath); ok {
		// Modifying a live file — or re-creating a removed one — continues
		// its version chain.
		status = metastore.Modified
		version = prev.version + 1
		itemID = prev.itemID
	}
	item := metastore.ItemVersion{
		Workspace: c.cfg.WorkspaceID,
		ItemID:    itemID,
		Path:      filePath,
		Version:   version,
		Status:    status,
		Size:      int64(len(content)),
		Chunks:    chunker.Fingerprints(chunks),
		Checksum:  chunker.Fingerprint(content),
		DeviceID:  c.cfg.DeviceID,
	}
	// Remember the content we proposed so a losing race can be preserved as
	// a conflict copy.
	c.stashProposed(item, content)
	return item, nil
}

func (c *Client) prepareTombstone(filePath string) (metastore.ItemVersion, error) {
	prev, ok := c.db.lookup(filePath)
	if !ok || prev.status == metastore.Deleted {
		return metastore.ItemVersion{}, fmt.Errorf("client: remove %s: %w", filePath, ErrNoFile)
	}
	item := metastore.ItemVersion{
		Workspace: c.cfg.WorkspaceID,
		ItemID:    prev.itemID,
		Path:      filePath,
		Version:   prev.version + 1,
		Status:    metastore.Deleted,
		DeviceID:  c.cfg.DeviceID,
	}
	c.stashProposed(item, nil)
	return item, nil
}

// callService performs a workspace-scoped @SyncMethod call: routed by
// workspace key when a Router is configured, via the shared queue otherwise.
func (c *Client) callService(method string, reply interface{}, args ...interface{}) error {
	if c.cfg.Router != nil {
		return c.cfg.Router.Call(c.cfg.WorkspaceID, method, reply, args...)
	}
	return c.sync.Call(method, reply, args...)
}

func (c *Client) propose(ctx context.Context, items []metastore.ItemVersion) error {
	req := core.CommitRequest{
		Workspace: c.cfg.WorkspaceID,
		DeviceID:  c.cfg.DeviceID,
		Items:     items,
	}
	if c.cfg.Router != nil {
		// Routed commits are synchronous: the ack means the metadata commit
		// is durable on the owning instance, and the Router's fencing/
		// failover loop absorbs rebalances and crashes in between. The
		// retransmit loop stays as the backstop for lost notifications.
		return c.cfg.Router.CallCtx(ctx, c.cfg.WorkspaceID, "CommitRequest", nil, req)
	}
	return c.sync.AsyncCtx(ctx, "CommitRequest", req)
}

// MoveFile proposes a rename: a metadata-only version that changes the
// item's path while keeping its chunks, so no data travels to the Storage
// back-end.
func (c *Client) MoveFile(oldPath, newPath string) error {
	if c.sync == nil {
		return ErrNotStarted
	}
	prev, ok := c.db.lookup(oldPath)
	if !ok || prev.status == metastore.Deleted {
		return fmt.Errorf("client: move %s: %w", oldPath, ErrNoFile)
	}
	if _, exists := c.db.lookup(newPath); exists {
		return fmt.Errorf("client: move to %s: destination exists", newPath)
	}
	span, ctx := c.beginCommit()
	defer span.End()
	item := metastore.ItemVersion{
		Workspace: c.cfg.WorkspaceID,
		ItemID:    prev.itemID,
		Path:      newPath,
		Version:   prev.version + 1,
		Status:    metastore.Modified,
		Size:      prev.size,
		Chunks:    prev.chunks,
		Checksum:  prev.checksum,
		DeviceID:  c.cfg.DeviceID,
	}
	c.stashProposed(item, prev.content)
	return c.propose(ctx, []metastore.ItemVersion{item})
}

// RemoveFile proposes a tombstone version for path.
func (c *Client) RemoveFile(filePath string) error {
	if c.sync == nil {
		return ErrNotStarted
	}
	span, ctx := c.beginCommit()
	defer span.End()
	item, err := c.prepareTombstone(filePath)
	if err != nil {
		return err
	}
	return c.propose(ctx, []metastore.ItemVersion{item})
}

// pendingKey tracks proposals awaiting their notification, keyed by
// itemID/version; the entry holds the locally proposed content (so a losing
// race can be preserved as a conflict copy) and the full proposal (so a lost
// CommitRequest or notification can be retransmitted).
type pendingKey struct {
	itemID  string
	version uint64
}

type pendingProposal struct {
	content []byte
	item    metastore.ItemVersion
	at      time.Time // last (re)transmission
}

func (c *Client) stashProposed(item metastore.ItemVersion, content []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingProposals == nil {
		c.pendingProposals = make(map[pendingKey]pendingProposal)
	}
	c.pendingProposals[pendingKey{item.ItemID, item.Version}] = pendingProposal{
		content: content, item: item, at: c.clk.Now(),
	}
}

// ProposalPending reports whether a locally proposed commit for path is
// still awaiting its acknowledgement. Commit proposals are asynchronous, so
// between propose and ack the item is in pendingProposals but not yet in the
// database; callers reconciling "known locally but not in the database"
// (the directory watcher's remote-delete detection) must treat that window
// as in-flight, not as a remote deletion.
func (c *Client) ProposalPending(filePath string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.pendingProposals {
		if p.item.Path == filePath {
			return true
		}
	}
	return false
}

func (c *Client) takeProposed(item metastore.ItemVersion) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := pendingKey{item.ItemID, item.Version}
	p, ok := c.pendingProposals[key]
	if ok {
		delete(c.pendingProposals, key)
	}
	return p.content, ok
}

// FileContent returns the current synced content of path.
func (c *Client) FileContent(filePath string) ([]byte, bool) {
	it, ok := c.db.lookup(filePath)
	if !ok || it.status == metastore.Deleted {
		return nil, false
	}
	cp := make([]byte, len(it.content))
	copy(cp, it.content)
	return cp, true
}

// Version returns the synced version of path.
func (c *Client) Version(filePath string) (uint64, bool) {
	it, ok := c.db.lookup(filePath)
	if !ok || it.status == metastore.Deleted {
		return 0, false
	}
	return it.version, true
}

// Paths lists the live synced paths.
func (c *Client) Paths() []string { return c.db.paths() }

// WaitForVersion blocks until path reaches at least version or the timeout
// elapses — the hook the sync-time experiments use to measure when devices
// are in sync. It is event-driven (no polling): the database's change
// broadcast wakes it, so it works unchanged under a virtual clock.
func (c *Client) WaitForVersion(filePath string, version uint64, timeout time.Duration) error {
	ok := c.waitDB(timeout, func() bool {
		v, ok := c.Version(filePath)
		return ok && v >= version
	})
	if !ok {
		return fmt.Errorf("client: %s did not reach v%d within %v", filePath, version, timeout)
	}
	return nil
}

// WaitForGone blocks until path is deleted locally or the timeout elapses.
func (c *Client) WaitForGone(filePath string, timeout time.Duration) error {
	ok := c.waitDB(timeout, func() bool {
		_, ok := c.Version(filePath)
		return !ok
	})
	if !ok {
		return fmt.Errorf("client: %s still present after %v", filePath, timeout)
	}
	return nil
}

// waitDB blocks until pred holds or timeout elapses. The channel is grabbed
// before the predicate is checked, so a change racing the check is never
// missed — the broadcast channel closes and re-arms on every upsert.
func (c *Client) waitDB(timeout time.Duration, pred func() bool) bool {
	deadline := c.clk.Now().Add(timeout)
	for {
		ch := c.db.changeCh()
		if pred() {
			return true
		}
		remaining := deadline.Sub(c.clk.Now())
		if remaining <= 0 {
			return false
		}
		select {
		case <-ch:
		case <-c.clk.After(remaining):
			return pred()
		}
	}
}

// Close detaches the device from the workspace and stops the repair loop.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stopCh)
	c.bg.Wait()
	c.reg.Unregister("client_upload_queue_depth", "device", c.cfg.DeviceID)
	c.reg.Unregister("client_storage_breaker_open", "device", c.cfg.DeviceID)
	c.reg.Unregister("client_chunk_cache_bytes", "device", c.cfg.DeviceID)
	c.reg.Unregister("client_resync_total", "device", c.cfg.DeviceID, "result", "tail")
	c.reg.Unregister("client_resync_total", "device", c.cfg.DeviceID, "result", "full")
	for _, name := range transferMetricNames {
		c.reg.Unregister(name, "device", c.cfg.DeviceID)
	}
	if c.handler != nil {
		return c.handler.Unbind()
	}
	return nil
}

// notificationHandler is the remote object receiving workspace multicasts.
type notificationHandler struct {
	c *Client
}

// NotifyCommit applies a pushed CommitNotification (Fig. 6). The context
// carries the notification's trace, so the application work on every device
// shows up as a span of the originating commit.
func (h *notificationHandler) NotifyCommit(ctx context.Context, n core.CommitNotification) error {
	span := h.c.tracer.StartFromContext(ctx, "client.applyNotification")
	defer span.End()
	return h.c.handleNotification(obs.ContextWith(ctx, span.Context()), n)
}

func (c *Client) handleNotification(ctx context.Context, n core.CommitNotification) error {
	for _, r := range n.Results {
		mine := r.Proposed.DeviceID == c.cfg.DeviceID && n.DeviceID == c.cfg.DeviceID
		switch {
		case r.Committed && mine:
			c.applyOwnCommit(r)
		case r.Committed:
			if err := c.applyRemote(ctx, r.Item); err != nil {
				return err
			}
			c.emit(Event{Type: RemoteApplied, Path: r.Item.Path, Version: r.Item.Version, Status: r.Item.Status})
		case mine:
			if err := c.resolveConflict(ctx, r); err != nil {
				return err
			}
		default:
			// Someone else's conflict; the authoritative version may still
			// be newer than ours, so apply it.
			if err := c.applyRemote(ctx, r.Item); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyOwnCommit records a confirmed local proposal. Duplicate
// acknowledgements (notification replayed by an at-least-once hop, or a
// retransmitted proposal re-acked by the metadata store) are absorbed: the
// pending entry is cleared, but an already-current database is not touched,
// so no duplicate event fires.
func (c *Client) applyOwnCommit(r CommitResultView) {
	content, _ := c.takeProposed(r.Proposed)
	if cur, have := c.db.lookupID(r.Item.ItemID); have && cur.version >= r.Item.Version {
		return
	}
	it := localItem{
		itemID:   r.Item.ItemID,
		path:     r.Item.Path,
		version:  r.Item.Version,
		status:   r.Item.Status,
		chunks:   r.Item.Chunks,
		checksum: r.Item.Checksum,
		size:     r.Item.Size,
		content:  content,
	}
	c.db.upsert(it)
	c.emit(Event{Type: LocalCommitted, Path: r.Item.Path, Version: r.Item.Version, Status: r.Item.Status})
}

// CommitResultView aliases core.CommitResult to keep method signatures tidy.
type CommitResultView = core.CommitResult

// applyRemote brings the local copy of an item up to the given committed
// version, downloading whatever chunks are missing.
func (c *Client) applyRemote(ctx context.Context, item metastore.ItemVersion) error {
	cur, have := c.db.lookupID(item.ItemID)
	if have && cur.version >= item.Version {
		return nil // already at or past this version
	}
	if item.Status == metastore.Deleted {
		c.db.upsert(localItem{
			itemID: item.ItemID, path: item.Path, version: item.Version,
			status: metastore.Deleted,
		})
		return nil
	}
	// Renames keep the content: when the checksum matches the version we
	// already hold, skip the Storage round trip entirely.
	if have && cur.checksum == item.Checksum && cur.content != nil && cur.status != metastore.Deleted {
		c.db.upsert(localItem{
			itemID: item.ItemID, path: item.Path, version: item.Version,
			status: item.Status, chunks: item.Chunks, checksum: item.Checksum,
			size: item.Size, content: cur.content,
		})
		return nil
	}
	content, err := c.fetchContent(ctx, item)
	if err != nil {
		return err
	}
	c.db.addChunks(item.Chunks)
	c.db.upsert(localItem{
		itemID: item.ItemID, path: item.Path, version: item.Version,
		status: item.Status, chunks: item.Chunks, checksum: item.Checksum,
		size: item.Size, content: content,
	})
	return nil
}

func (c *Client) fetchContent(ctx context.Context, item metastore.ItemVersion) ([]byte, error) {
	getSpan := c.tracer.StartFromContext(ctx, "objstore.get")
	defer getSpan.End()
	// Resolve locally first: the LRU chunk cache, then the deferred-upload
	// queue (read-your-writes under degradation). Only the remainder hits
	// the store, in parallel batches.
	compressed := make([][]byte, len(item.Chunks))
	var missIdx []int
	for i, fp := range item.Chunks {
		if data, ok := c.cache.get(fp); ok {
			c.tm.cacheHits.Inc()
			compressed[i] = data
			continue
		}
		c.tm.cacheMisses.Inc()
		if queued, ok := c.uploads.get(fp); ok {
			compressed[i] = queued
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) > 0 {
		if err := c.fetchChunks(ctx, item.Chunks, compressed, missIdx); err != nil {
			return nil, err
		}
	}
	chunks := make([]chunker.Chunk, 0, len(item.Chunks))
	for i, fp := range item.Chunks {
		data, err := chunker.Decompress(compressed[i], c.cfg.Compression)
		if err != nil {
			return nil, fmt.Errorf("client: decompress chunk %s: %w", fp, err)
		}
		chunks = append(chunks, chunker.Chunk{Fingerprint: fp, Data: data})
	}
	content, err := chunker.Reassemble(chunks)
	if err != nil {
		return nil, fmt.Errorf("client: reassemble %s: %w", item.Path, err)
	}
	return content, nil
}

// resolveConflict implements the losing side of Algorithm 1: adopt the
// server's authoritative version for the original path and preserve the
// local content as a renamed conflict copy, proposed as a fresh item.
func (c *Client) resolveConflict(ctx context.Context, r CommitResultView) error {
	localContent, _ := c.takeProposed(r.Proposed)

	// Adopt the authoritative version.
	if err := c.applyRemote(ctx, r.Item); err != nil {
		return err
	}

	if r.Proposed.Status == metastore.Deleted || localContent == nil {
		// Our delete lost against a newer edit (or content is unknown):
		// keeping the server version is the whole resolution.
		c.emit(Event{Type: RemoteApplied, Path: r.Item.Path, Version: r.Item.Version, Status: r.Item.Status})
		return nil
	}

	copyPath := ConflictCopyPath(r.Proposed.Path, c.cfg.DeviceID)
	if err := c.PutFile(copyPath, localContent); err != nil {
		return fmt.Errorf("client: propose conflict copy: %w", err)
	}
	c.emit(Event{Type: ConflictResolved, Path: copyPath, Version: r.Item.Version, Status: r.Item.Status})
	return nil
}

// ConflictCopyPath derives the renamed path of a losing concurrent edit,
// e.g. "notes.txt" -> "notes (conflicted copy of dev-2).txt".
func ConflictCopyPath(original, deviceID string) string {
	dir := path.Dir(original)
	base := path.Base(original)
	ext := path.Ext(base)
	stem := strings.TrimSuffix(base, ext)
	renamed := fmt.Sprintf("%s (conflicted copy of %s)%s", stem, deviceID, ext)
	if dir == "." {
		return renamed
	}
	return dir + "/" + renamed
}
