package client

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"stacksync/internal/chunker"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
)

const syncWait = 5 * time.Second

// rig is a full in-process deployment: broker, metadata store, storage,
// SyncService, and any number of client devices.
type rig struct {
	t       *testing.T
	mq      *mq.Broker
	meta    *metastore.Store
	storage *objstore.Metered
	server  *omq.Broker
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := mq.NewBroker()
	meta := metastore.NewStore()
	storage := objstore.NewMetered(objstore.NewMemory())
	server, err := omq.NewBroker(m)
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(meta, server)
	if _, err := svc.Bind(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = server.Close()
		_ = meta.Close()
		_ = m.Close()
	})
	if err := meta.CreateWorkspace(metastore.Workspace{ID: "ws", Owner: "alice", Members: []string{"bob"}}); err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, mq: m, meta: meta, storage: storage, server: server}
}

func (r *rig) newDevice(user, device string, opts ...func(*Config)) *Client {
	r.t.Helper()
	b, err := omq.NewBroker(r.mq)
	if err != nil {
		r.t.Fatal(err)
	}
	cfg := Config{
		UserID: user, DeviceID: device, WorkspaceID: "ws",
		Broker: b, Storage: r.storage,
		Chunker: chunker.Fixed{ChunkSize: 1024}, // small files, small chunks
	}
	for _, o := range opts {
		o(&cfg)
	}
	c, err := NewClient(cfg)
	if err != nil {
		r.t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(func() {
		_ = c.Close()
		_ = b.Close()
	})
	return c
}

func TestAddPropagatesToOtherDevice(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")

	content := []byte("hello stacksync")
	if err := a.PutFile("notes.txt", content); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("notes.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	got, ok := b.FileContent("notes.txt")
	if !ok || !bytes.Equal(got, content) {
		t.Fatalf("device B content: %q, %v", got, ok)
	}
	// The writer also converges.
	if err := a.WaitForVersion("notes.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatePropagatesAndDeduplicates(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")

	base := bytes.Repeat([]byte("block-one-"), 200) // ~2 KB = 2 chunks of 1 KB
	if err := a.PutFile("doc.bin", base); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("doc.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	// Commits are asynchronous: wait for the writer's own ack so the update
	// proposes v2 on top of an acknowledged v1.
	if err := a.WaitForVersion("doc.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	putsBefore := r.storage.Traffic().Puts

	// Append-only modification: the shared prefix chunks must not re-upload.
	updated := append(append([]byte{}, base...), bytes.Repeat([]byte("tail"), 300)...)
	if err := a.PutFile("doc.bin", updated); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("doc.bin", 2, syncWait); err != nil {
		t.Fatal(err)
	}
	got, _ := b.FileContent("doc.bin")
	if !bytes.Equal(got, updated) {
		t.Fatal("device B diverged after update")
	}
	newPuts := r.storage.Traffic().Puts - putsBefore
	// base is 2000 bytes -> chunks [0,1024) and [1024,2000). The update
	// extends the file, so chunk 0 is unchanged; chunk 1 and the new tail
	// chunks are fresh. Full re-upload would be >= 3 puts + no dedup.
	if newPuts >= 4 {
		t.Fatalf("update uploaded %d chunks; dedup not applied", newPuts)
	}
	if newPuts == 0 {
		t.Fatal("update uploaded nothing; content cannot have propagated")
	}
}

func TestRemovePropagates(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")

	if err := a.PutFile("temp.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("temp.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	// b's notification and a's own ack ride independent queues; wait for
	// a's ack too before removing.
	if err := a.WaitForVersion("temp.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveFile("temp.txt"); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForGone("temp.txt", syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForGone("temp.txt", syncWait); err != nil {
		t.Fatal(err)
	}
	// Removing a missing file fails.
	if err := a.RemoveFile("never-existed"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("remove missing: %v", err)
	}
}

func TestLateJoinerBootstrapsViaGetChanges(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	for i := 0; i < 5; i++ {
		if err := a.PutFile(fmt.Sprintf("f%d.txt", i), []byte(fmt.Sprintf("content %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := a.WaitForVersion(fmt.Sprintf("f%d.txt", i), 1, syncWait); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.RemoveFile("f0.txt"); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForGone("f0.txt", syncWait); err != nil {
		t.Fatal(err)
	}

	// A device joining now must see exactly the live state.
	late := r.newDevice("bob", "dev-late")
	paths := late.Paths()
	if len(paths) != 4 {
		t.Fatalf("late joiner sees %d files, want 4: %v", len(paths), paths)
	}
	got, ok := late.FileContent("f3.txt")
	if !ok || string(got) != "content 3" {
		t.Fatalf("late joiner content: %q %v", got, ok)
	}
}

func TestConcurrentEditProducesConflictCopy(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")

	if err := a.PutFile("shared.txt", []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("shared.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("shared.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}

	// Both devices propose version 2 before either sees the other's commit.
	if err := a.PutFile("shared.txt", []byte("from A")); err != nil {
		t.Fatal(err)
	}
	if err := b.PutFile("shared.txt", []byte("from B")); err != nil {
		t.Fatal(err)
	}

	// Both converge on one winner at v2...
	if err := a.WaitForVersion("shared.txt", 2, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("shared.txt", 2, syncWait); err != nil {
		t.Fatal(err)
	}
	// ...and a conflict copy appears on both devices.
	findCopy := func(c *Client) string {
		deadline := time.Now().Add(syncWait)
		for time.Now().Before(deadline) {
			for _, p := range c.Paths() {
				if strings.Contains(p, "conflicted copy") {
					return p
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		return ""
	}
	copyA := findCopy(a)
	copyB := findCopy(b)
	if copyA == "" || copyA != copyB {
		t.Fatalf("conflict copies: a=%q b=%q", copyA, copyB)
	}

	// Winner content on the original path agrees across devices, and the
	// conflict copy holds the loser's content.
	ca, _ := a.FileContent("shared.txt")
	cb, _ := b.FileContent("shared.txt")
	if !bytes.Equal(ca, cb) {
		t.Fatalf("devices diverged: %q vs %q", ca, cb)
	}
	copyContentA, _ := a.FileContent(copyA)
	copyContentB, _ := b.FileContent(copyB)
	if !bytes.Equal(copyContentA, copyContentB) {
		t.Fatalf("conflict copy diverged: %q vs %q", copyContentA, copyContentB)
	}
	winner, loser := string(ca), string(copyContentA)
	if winner == loser {
		t.Fatal("winner and conflict copy hold the same content")
	}
	want := map[string]bool{"from A": true, "from B": true}
	if !want[winner] || !want[loser] {
		t.Fatalf("unexpected contents: winner=%q loser=%q", winner, loser)
	}
}

func TestSixDevicesConverge(t *testing.T) {
	// The Fig. 7(e) topology: one writer, five observers.
	r := newRig(t)
	writer := r.newDevice("alice", "dev-w")
	observers := make([]*Client, 5)
	for i := range observers {
		observers[i] = r.newDevice("bob", fmt.Sprintf("dev-o%d", i))
	}
	payload := bytes.Repeat([]byte("payload"), 1000)
	if err := writer.PutFile("big.bin", payload); err != nil {
		t.Fatal(err)
	}
	for i, o := range observers {
		if err := o.WaitForVersion("big.bin", 1, syncWait); err != nil {
			t.Fatalf("observer %d: %v", i, err)
		}
		got, _ := o.FileContent("big.bin")
		if !bytes.Equal(got, payload) {
			t.Fatalf("observer %d diverged", i)
		}
	}
}

func TestEventsEmitted(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")

	if err := a.PutFile("e.txt", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	waitEvent := func(c *Client, want EventType) Event {
		t.Helper()
		select {
		case e := <-c.Events():
			if e.Type != want {
				t.Fatalf("event = %+v, want type %d", e, want)
			}
			return e
		case <-time.After(syncWait):
			t.Fatalf("no event of type %d", want)
			panic("unreachable")
		}
	}
	ea := waitEvent(a, LocalCommitted)
	if ea.Path != "e.txt" || ea.Version != 1 {
		t.Fatalf("local event: %+v", ea)
	}
	eb := waitEvent(b, RemoteApplied)
	if eb.Path != "e.txt" || eb.Version != 1 {
		t.Fatalf("remote event: %+v", eb)
	}
}

func TestWorkspacesRPC(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	ws, err := a.Workspaces()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].ID != "ws" {
		t.Fatalf("workspaces: %+v", ws)
	}
}

func TestRecreateAfterRemoveContinuesVersionChain(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	if err := a.PutFile("phoenix.txt", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("phoenix.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveFile("phoenix.txt"); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForGone("phoenix.txt", syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.PutFile("phoenix.txt", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("phoenix.txt", 3, syncWait); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewClient(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewClient(Config{UserID: "u", DeviceID: "d", WorkspaceID: "w"}); err == nil {
		t.Fatal("missing broker/storage accepted")
	}
}

func TestOperationsBeforeStartFail(t *testing.T) {
	r := newRig(t)
	b, err := omq.NewBroker(r.mq)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := NewClient(Config{
		UserID: "alice", DeviceID: "d", WorkspaceID: "ws",
		Broker: b, Storage: r.storage,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutFile("x", []byte("y")); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("put before start: %v", err)
	}
	if err := c.RemoveFile("x"); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("remove before start: %v", err)
	}
}

func TestConflictCopyPathShapes(t *testing.T) {
	tests := []struct {
		in, device, want string
	}{
		{"notes.txt", "dev-2", "notes (conflicted copy of dev-2).txt"},
		{"dir/sub/a.bin", "d", "dir/sub/a (conflicted copy of d).bin"},
		{"noext", "d", "noext (conflicted copy of d)"},
	}
	for _, tt := range tests {
		if got := ConflictCopyPath(tt.in, tt.device); got != tt.want {
			t.Fatalf("ConflictCopyPath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLoadBalancedServiceInstances(t *testing.T) {
	// Two SyncService instances share the request queue; commits from many
	// clients spread across them and everything still converges.
	r := newRig(t)
	server2, err := omq.NewBroker(r.mq)
	if err != nil {
		t.Fatal(err)
	}
	defer server2.Close()
	svc2 := core.NewService(r.meta, server2)
	if _, err := svc2.Bind(); err != nil {
		t.Fatal(err)
	}

	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")
	const files = 20
	for i := 0; i < files; i++ {
		if err := a.PutFile(fmt.Sprintf("lb-%d.txt", i), []byte(fmt.Sprintf("content-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < files; i++ {
		if err := b.WaitForVersion(fmt.Sprintf("lb-%d.txt", i), 1, syncWait); err != nil {
			t.Fatal(err)
		}
	}
}
