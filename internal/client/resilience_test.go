package client

import (
	"context"
	"errors"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"stacksync/internal/clock"
	"stacksync/internal/core"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
)

// flakyStore fails every operation while down is set. It overrides the
// batch entry points too, so the client's pipelined transfer path cannot
// tunnel past the fault through the embedded inner store.
type flakyStore struct {
	objstore.Store
	down  atomic.Bool
	calls atomic.Int64
}

var errStoreDown = errors.New("store down")

func (f *flakyStore) fail() error {
	f.calls.Add(1)
	if f.down.Load() {
		return errStoreDown
	}
	return nil
}

func (f *flakyStore) EnsureContainer(ctx context.Context, c string) error {
	if err := f.fail(); err != nil {
		return err
	}
	return f.Store.EnsureContainer(ctx, c)
}

func (f *flakyStore) Put(ctx context.Context, c, k string, d []byte) error {
	if err := f.fail(); err != nil {
		return err
	}
	return f.Store.Put(ctx, c, k, d)
}

func (f *flakyStore) Get(ctx context.Context, c, k string) ([]byte, error) {
	if err := f.fail(); err != nil {
		return nil, err
	}
	return f.Store.Get(ctx, c, k)
}

func (f *flakyStore) PutMulti(ctx context.Context, c string, objs []objstore.Object) error {
	if err := f.fail(); err != nil {
		return err
	}
	return f.Store.PutMulti(ctx, c, objs)
}

func (f *flakyStore) GetMulti(ctx context.Context, c string, keys []string) ([][]byte, error) {
	if err := f.fail(); err != nil {
		return nil, err
	}
	return f.Store.GetMulti(ctx, c, keys)
}

func (f *flakyStore) ExistsMulti(ctx context.Context, c string, keys []string) ([]bool, error) {
	if err := f.fail(); err != nil {
		return nil, err
	}
	return f.Store.ExistsMulti(ctx, c, keys)
}

func TestBreakerOpensThenRecovers(t *testing.T) {
	flaky := &flakyStore{Store: objstore.NewMemory()}
	flaky.down.Store(true)
	b := newBreakerStore(flaky, clock.NewReal(), -1, time.Millisecond, 3, 30*time.Millisecond)

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := b.Put(ctx, "c", "k", []byte("x")); !errors.Is(err, errStoreDown) {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if !b.Open() {
		t.Fatal("breaker closed after threshold failures")
	}
	before := flaky.calls.Load()
	if err := b.Put(ctx, "c", "k", []byte("x")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-circuit put: %v", err)
	}
	if flaky.calls.Load() != before {
		t.Fatal("open circuit still reached the store")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// Heal; after the cooldown a probe goes through and closes the breaker.
	flaky.down.Store(false)
	time.Sleep(40 * time.Millisecond)
	if err := b.EnsureContainer(ctx, "c"); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if err := b.Put(ctx, "c", "k", []byte("x")); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	if b.Open() {
		t.Fatal("breaker still open after successful probe")
	}
}

// TestPermanentErrorsSkipRetries: ErrNotFound must surface immediately (one
// attempt) and must not trip the breaker.
func TestPermanentErrorsSkipRetries(t *testing.T) {
	ctx := context.Background()
	mem := objstore.NewMemory()
	if err := mem.EnsureContainer(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	counting := &flakyStore{Store: mem}
	b := newBreakerStore(counting, clock.NewReal(), 5, time.Millisecond, 2, time.Minute)
	if _, err := b.Get(ctx, "c", "missing"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("get: %v", err)
	}
	if got := counting.calls.Load(); got != 1 {
		t.Fatalf("permanent error attempted %d times, want 1", got)
	}
	if _, err := b.Get(ctx, "c", "missing"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("second get: %v", err)
	}
	if b.Open() {
		t.Fatal("permanent errors tripped the breaker")
	}
}

// TestDegradedCommitQueuesUploads: with storage down, PutFile still commits
// (metadata flow stays available); the chunk upload is queued and drained
// once storage heals, after which a fresh device can fetch the content.
func TestDegradedCommitQueuesUploads(t *testing.T) {
	r := newRig(t)
	flaky := &flakyStore{Store: r.storage}
	a := r.newDevice("alice", "dev-a", func(cfg *Config) {
		cfg.Storage = flaky
		cfg.StoreRetries = -1 // no in-call retries: fail fast into the queue
		cfg.BreakerCooldown = 50 * time.Millisecond
	})

	flaky.down.Store(true)
	content := []byte("written while the object store is down")
	if err := a.PutFile("degraded.txt", content); err != nil {
		t.Fatalf("degraded put: %v", err)
	}
	if UploadQueueDepth(a.Registry(), "dev-a") == 0 {
		t.Fatal("no upload queued while store down")
	}
	// The commit itself must still go through.
	if err := a.WaitForVersion("degraded.txt", 1, syncWait); err != nil {
		t.Fatalf("commit unavailable during storage outage: %v", err)
	}

	flaky.down.Store(false)
	deadline := time.Now().Add(syncWait)
	for UploadQueueDepth(a.Registry(), "dev-a") > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queued uploads never drained (%d left)",
				UploadQueueDepth(a.Registry(), "dev-a"))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A device joining after recovery reads the full content from storage.
	b := r.newDevice("bob", "dev-b")
	if err := b.WaitForVersion("degraded.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	got, ok := b.FileContent("degraded.txt")
	if !ok || string(got) != string(content) {
		t.Fatalf("joiner content = %q ok=%v", got, ok)
	}
}

// lossyMQ drops the first `budget` publishes routed to the given key.
type lossyMQ struct {
	mq.MQ
	key     string
	dropped atomic.Int64
	budget  int64
}

func (l *lossyMQ) Publish(exchange, key string, msg mq.Message) error {
	if key == l.key && l.dropped.Load() < l.budget {
		l.dropped.Add(1)
		return nil
	}
	return l.MQ.Publish(exchange, key, msg)
}

// TestRetransmitRecoversDroppedCommit: the CommitRequest vanishes in the
// network; the client's retransmit loop re-proposes it and the device
// converges anyway.
func TestRetransmitRecoversDroppedCommit(t *testing.T) {
	r := newRig(t)
	lossy := &lossyMQ{MQ: r.mq, key: core.ServiceOID, budget: 1}
	b, err := omq.NewBroker(lossy)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := NewClient(Config{
		UserID: "alice", DeviceID: "dev-a", WorkspaceID: "ws",
		Broker: b, Storage: r.storage,
		RetransmitEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	if err := c.PutFile("lost.txt", []byte("try again")); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForVersion("lost.txt", 1, syncWait); err != nil {
		t.Fatalf("retransmission did not recover dropped commit: %v", err)
	}
	if lossy.dropped.Load() != 1 {
		t.Fatalf("dropped %d commits, want 1", lossy.dropped.Load())
	}
}

// TestResyncPicksUpMissedCommit: a commit that produced no push notification
// (here: written straight into the metadata store) is repaired by the
// periodic pull-based resync.
func TestResyncPicksUpMissedCommit(t *testing.T) {
	r := newRig(t)
	b := r.newDevice("bob", "dev-b", func(cfg *Config) {
		cfg.ResyncEvery = 100 * time.Millisecond
	})

	// Upload the chunk + commit behind every push channel's back.
	a := r.newDevice("alice", "dev-a")
	if err := a.PutFile("seed.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("seed.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	item, ok, err := r.meta.Current("ws", ItemID("ws", "seed.txt"))
	if err != nil || !ok {
		t.Fatalf("current: ok=%v err=%v", ok, err)
	}
	item.Version = 2
	item.Path = "seed.txt"
	if _, err := r.meta.CommitVersion(item); err != nil {
		t.Fatal(err)
	}

	if err := b.WaitForVersion("seed.txt", 2, syncWait); err != nil {
		t.Fatalf("resync never repaired the silent commit: %v", err)
	}
}

// TestWatcherCountsScanErrors: transient read failures during a scan are
// counted instead of silently swallowed.
func TestWatcherCountsScanErrors(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	dir := t.TempDir()
	w, err := NewDirWatcher(a, dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/busy.txt", []byte("locked"), 0o644); err != nil {
		t.Fatal(err)
	}

	scanErrors := func() uint64 {
		return a.Registry().CounterValue("client_watcher_scan_errors_total",
			"device", "dev-a")
	}
	w.readFile = func(string) ([]byte, error) { return nil, errors.New("sharing violation") }
	if err := w.SyncOnce(); err != nil {
		t.Fatalf("scan error must not abort the cycle: %v", err)
	}
	if got := scanErrors(); got != 1 {
		t.Fatalf("scan errors = %d, want 1", got)
	}
	if _, ok := a.Version("busy.txt"); ok {
		t.Fatal("unreadable file was indexed")
	}

	// Next tick the file is readable; it gets indexed and the count stays.
	w.readFile = os.ReadFile
	if err := w.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("busy.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if got := scanErrors(); got != 1 {
		t.Fatalf("scan errors after recovery = %d, want 1", got)
	}
}

// TestDuplicateNotificationIsIdempotent: replaying a commit notification
// must not double-apply or emit duplicate events.
func TestDuplicateNotificationIsIdempotent(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	if err := a.PutFile("f.txt", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("f.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	drainEvents(a)

	// Replay the own-commit acknowledgement by hand.
	item, ok, err := r.meta.Current("ws", ItemID("ws", "f.txt"))
	if err != nil || !ok {
		t.Fatalf("current: ok=%v err=%v", ok, err)
	}
	n := core.CommitNotification{
		Workspace: "ws", DeviceID: "dev-a",
		Results: []core.CommitResult{{Committed: true, Item: item, Proposed: item}},
	}
	if err := a.handleNotification(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	if err := a.handleNotification(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Version("f.txt"); v != 1 {
		t.Fatalf("version = %d after replay, want 1", v)
	}
	select {
	case e := <-a.Events():
		t.Fatalf("replayed notification emitted event %+v", e)
	default:
	}
}

func drainEvents(c *Client) {
	for {
		select {
		case <-c.Events():
		default:
			return
		}
	}
}
