// Package client implements the StackSync desktop client (paper §4.1): it
// indexes local file changes into chunks, uploads unique chunks to the
// Storage back-end, proposes metadata commits to the SyncService through
// ObjectMQ, and applies pushed CommitNotifications — including the
// conflict-copy policy for concurrent edits.
package client

import (
	"crypto/sha1"
	"encoding/hex"
	"sync"

	"stacksync/internal/metastore"
)

// ItemID derives the deterministic item identifier of a path within a
// workspace, so two devices adding the same path propose the same item and
// concurrent creations surface as version conflicts instead of duplicates.
func ItemID(workspaceID, path string) string {
	sum := sha1.Sum([]byte(workspaceID + "|" + path))
	return hex.EncodeToString(sum[:])
}

// localItem is the client's record of one synced file.
type localItem struct {
	itemID   string
	path     string
	version  uint64
	status   metastore.Status
	chunks   []string
	checksum string
	size     int64
	content  []byte // current synced content (virtual filesystem)
}

// localDB is the client-side database of §4.1: it maps chunk fingerprints to
// presence (per-user deduplication) and paths to their synced version.
type localDB struct {
	mu     sync.RWMutex
	byPath map[string]*localItem
	byID   map[string]*localItem
	chunks map[string]bool
	// changed is closed and replaced on every upsert; waiters grab the
	// current channel, re-check their predicate, then block on it — an
	// allocation-light broadcast that works under both real and virtual
	// clocks (no polling).
	changed chan struct{}
}

func newLocalDB() *localDB {
	return &localDB{
		byPath:  make(map[string]*localItem),
		byID:    make(map[string]*localItem),
		chunks:  make(map[string]bool),
		changed: make(chan struct{}),
	}
}

// changeCh returns a channel closed at the next database change.
func (db *localDB) changeCh() <-chan struct{} {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.changed
}

func (db *localDB) hasChunk(fp string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.chunks[fp]
}

func (db *localDB) addChunks(fps []string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, fp := range fps {
		db.chunks[fp] = true
	}
}

// lookup returns a snapshot of the item at path.
func (db *localDB) lookup(path string) (localItem, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	it, ok := db.byPath[path]
	if !ok {
		return localItem{}, false
	}
	return *it, true
}

// lookupID returns a snapshot of the item by id.
func (db *localDB) lookupID(itemID string) (localItem, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	it, ok := db.byID[itemID]
	if !ok {
		return localItem{}, false
	}
	return *it, true
}

// upsert installs the new state of an item and wakes all change waiters.
func (db *localDB) upsert(it localItem) {
	db.mu.Lock()
	defer db.mu.Unlock()
	defer func() {
		close(db.changed)
		db.changed = make(chan struct{})
	}()
	existing, ok := db.byID[it.itemID]
	if ok {
		// Path may change across versions; keep the path index coherent.
		if existing.path != it.path {
			delete(db.byPath, existing.path)
		}
		*existing = it
		db.byPath[it.path] = existing
		return
	}
	stored := it
	db.byID[it.itemID] = &stored
	db.byPath[it.path] = &stored
}

// paths lists the live (non-deleted) paths.
func (db *localDB) paths() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.byPath))
	for p, it := range db.byPath {
		if it.status != metastore.Deleted {
			out = append(out, p)
		}
	}
	return out
}
