package client

import (
	"context"
	"errors"
	"sync"
	"time"

	"stacksync/internal/clock"
	"stacksync/internal/objstore"
)

// ErrCircuitOpen reports that the client's storage circuit breaker is open:
// recent requests failed consecutively and the cooldown has not elapsed, so
// the operation was not attempted at all. Callers treat it like any other
// transient storage failure (queue the upload, retry the download later).
var ErrCircuitOpen = errors.New("client: storage circuit open")

// Breaker/retry defaults for the client's storage path.
const (
	defaultStoreRetries     = 3
	defaultStoreBackoff     = 20 * time.Millisecond
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 500 * time.Millisecond
)

// breakerStore wraps the Storage back-end with the client-side resilience
// the paper's architecture pushes onto data flows (§4.1: clients talk to
// storage directly, so they — not the SyncService — must absorb its faults):
// bounded retries with exponential backoff around each operation, and a
// circuit breaker that stops hammering a down store after `threshold`
// consecutive failures until `cooldown` passes. Batch operations admit once
// and retry as a unit; content-addressed puts make replays idempotent.
type breakerStore struct {
	inner   objstore.Store
	clk     clock.Clock
	retries int           // extra attempts after the first
	backoff time.Duration // pause before retry n is backoff<<n

	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	failures int       // consecutive transient failures
	openedAt time.Time // breaker open since; zero when closed
	trips    uint64    // times the breaker opened
}

var _ objstore.Store = (*breakerStore)(nil)

func newBreakerStore(inner objstore.Store, clk clock.Clock, retries int, backoff time.Duration, threshold int, cooldown time.Duration) *breakerStore {
	if retries == 0 {
		retries = defaultStoreRetries
	} else if retries < 0 {
		retries = 0 // explicit "no retries"
	}
	if backoff <= 0 {
		backoff = defaultStoreBackoff
	}
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breakerStore{
		inner: inner, clk: clk,
		retries: retries, backoff: backoff,
		threshold: threshold, cooldown: cooldown,
	}
}

// permanentStoreErr reports failures no retry can fix: the object is absent
// or we are not allowed to see it. The store answered, so these also reset
// the breaker's failure streak. A GetMulti that found most of its keys joins
// ErrNotFound for the misses — that is a definitive (partial) answer, not an
// outage.
func permanentStoreErr(err error) bool {
	return errors.Is(err, objstore.ErrNotFound) ||
		errors.Is(err, objstore.ErrNoContainer) ||
		errors.Is(err, objstore.ErrUnauthorized)
}

// canceledErr reports that the caller gave up, not that the store failed.
func canceledErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do runs op under the retry/breaker policy. Context errors pass through
// untouched and never count against the breaker: an impatient caller says
// nothing about the store's health.
func (b *breakerStore) do(ctx context.Context, op func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !b.admit() {
		return ErrCircuitOpen
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || permanentStoreErr(err) {
			b.succeed()
			return err
		}
		if canceledErr(err) {
			return err
		}
		if attempt >= b.retries {
			break
		}
		b.clk.Sleep(b.backoff << attempt)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	b.fail()
	return err
}

// admit reports whether a request may proceed; an expired cooldown half-opens
// the breaker (one probe request goes through).
func (b *breakerStore) admit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return true
	}
	if b.clk.Now().Sub(b.openedAt) >= b.cooldown {
		// Half-open: allow a probe; failure re-opens via fail().
		b.openedAt = time.Time{}
		b.failures = b.threshold - 1
		return true
	}
	return false
}

func (b *breakerStore) succeed() {
	b.mu.Lock()
	b.failures = 0
	b.openedAt = time.Time{}
	b.mu.Unlock()
}

func (b *breakerStore) fail() {
	b.mu.Lock()
	b.failures++
	if b.failures >= b.threshold && b.openedAt.IsZero() {
		b.openedAt = b.clk.Now()
		b.trips++
	}
	b.mu.Unlock()
}

// Open reports whether the breaker currently rejects requests.
func (b *breakerStore) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openedAt.IsZero() && b.clk.Now().Sub(b.openedAt) < b.cooldown
}

// Trips reports how many times the breaker has opened.
func (b *breakerStore) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// EnsureContainer applies the policy.
func (b *breakerStore) EnsureContainer(ctx context.Context, container string) error {
	return b.do(ctx, func() error { return b.inner.EnsureContainer(ctx, container) })
}

// Put applies the policy.
func (b *breakerStore) Put(ctx context.Context, container, key string, data []byte) error {
	return b.do(ctx, func() error { return b.inner.Put(ctx, container, key, data) })
}

// Get applies the policy.
func (b *breakerStore) Get(ctx context.Context, container, key string) ([]byte, error) {
	var data []byte
	err := b.do(ctx, func() (e error) { data, e = b.inner.Get(ctx, container, key); return e })
	return data, err
}

// Exists applies the policy.
func (b *breakerStore) Exists(ctx context.Context, container, key string) (bool, error) {
	var ok bool
	err := b.do(ctx, func() (e error) { ok, e = b.inner.Exists(ctx, container, key); return e })
	return ok, err
}

// Delete applies the policy.
func (b *breakerStore) Delete(ctx context.Context, container, key string) error {
	return b.do(ctx, func() error { return b.inner.Delete(ctx, container, key) })
}

// List applies the policy.
func (b *breakerStore) List(ctx context.Context, container string) ([]string, error) {
	var keys []string
	err := b.do(ctx, func() (e error) { keys, e = b.inner.List(ctx, container); return e })
	return keys, err
}

// PutMulti applies the policy to the whole batch: one breaker admission, the
// batch retried as a unit. Replaying an already-landed prefix is safe —
// chunk keys are content fingerprints, so puts are idempotent.
func (b *breakerStore) PutMulti(ctx context.Context, container string, objects []objstore.Object) error {
	if len(objects) == 0 {
		return nil
	}
	return b.do(ctx, func() error { return b.inner.PutMulti(ctx, container, objects) })
}

// GetMulti applies the policy to the whole batch. Partial results survive:
// a joined ErrNotFound counts as a definitive answer (see permanentStoreErr)
// and comes back with whatever data was found.
func (b *breakerStore) GetMulti(ctx context.Context, container string, keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	var data [][]byte
	err := b.do(ctx, func() (e error) { data, e = b.inner.GetMulti(ctx, container, keys); return e })
	return data, err
}

// ExistsMulti applies the policy to the whole batch.
func (b *breakerStore) ExistsMulti(ctx context.Context, container string, keys []string) ([]bool, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	var present []bool
	err := b.do(ctx, func() (e error) { present, e = b.inner.ExistsMulti(ctx, container, keys); return e })
	return present, err
}

// uploadQueue holds chunk uploads deferred because storage was failing when
// the commit was proposed — the graceful-degradation half of the breaker:
// metadata commits stay available while data uploads drain in the
// background once the store recovers.
type uploadQueue struct {
	mu      sync.Mutex
	pending map[string][]byte // fingerprint -> compressed bytes
	order   []string
}

func newUploadQueue() *uploadQueue {
	return &uploadQueue{pending: make(map[string][]byte)}
}

func (q *uploadQueue) add(fp string, data []byte) {
	q.mu.Lock()
	if _, ok := q.pending[fp]; !ok {
		q.pending[fp] = data
		q.order = append(q.order, fp)
	}
	q.mu.Unlock()
}

// snapshot returns the queued uploads in FIFO order.
func (q *uploadQueue) snapshot() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, len(q.order))
	copy(out, q.order)
	return out
}

func (q *uploadQueue) get(fp string) ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	data, ok := q.pending[fp]
	return data, ok
}

func (q *uploadQueue) remove(fp string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.pending[fp]; !ok {
		return
	}
	delete(q.pending, fp)
	for i, f := range q.order {
		if f == fp {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
}

func (q *uploadQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}
