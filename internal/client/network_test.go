package client

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"stacksync/internal/chunker"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
)

// TestFullyNetworkedDeployment runs the whole stack across real transports:
// the broker behind its TCP server, the storage back-end behind its HTTP
// gateway, and two devices connected only through those endpoints — the
// paper's actual deployment shape, in-process nowhere except the service.
func TestFullyNetworkedDeployment(t *testing.T) {
	// Server side.
	broker := mq.NewBroker()
	defer broker.Close()
	mqSrv, err := mq.NewServer(broker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mqSrv.Close()

	storage := objstore.NewMemory()
	gw := httptest.NewServer(objstore.NewHandler(storage, "swift-token"))
	defer gw.Close()

	meta := metastore.NewStore()
	defer meta.Close()
	if err := meta.CreateWorkspace(metastore.Workspace{ID: "net-ws", Owner: "alice", Members: []string{"bob"}}); err != nil {
		t.Fatal(err)
	}
	serviceMQ, err := mq.Dial(mqSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer serviceMQ.Close()
	serviceBroker, err := omq.NewBroker(serviceMQ)
	if err != nil {
		t.Fatal(err)
	}
	defer serviceBroker.Close()
	if _, err := core.NewService(meta, serviceBroker).Bind(); err != nil {
		t.Fatal(err)
	}

	// Client side: everything over the network.
	newDevice := func(user, device string) *Client {
		t.Helper()
		conn, err := mq.Dial(mqSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		b, err := omq.NewBroker(conn)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = b.Close() })
		c, err := NewClient(Config{
			UserID: user, DeviceID: device, WorkspaceID: "net-ws",
			Broker:  b,
			Storage: objstore.NewHTTPStore(gw.URL, "swift-token"),
			Chunker: chunker.Fixed{ChunkSize: 8 * 1024},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}

	alice := newDevice("alice", "alice-net")
	bob := newDevice("bob", "bob-net")

	payload := bytes.Repeat([]byte("networked sync "), 2000) // ~30 KB, 4 chunks
	if err := alice.PutFile("photo.raw", payload); err != nil {
		t.Fatal(err)
	}
	if err := bob.WaitForVersion("photo.raw", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	got, ok := bob.FileContent("photo.raw")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("content diverged across network transports")
	}

	// Several more files to exercise the transports under load.
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("doc-%d.txt", i)
		if err := bob.PutFile(name, []byte(fmt.Sprintf("doc %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := alice.WaitForVersion(fmt.Sprintf("doc-%d.txt", i), 1, syncWait); err != nil {
			t.Fatal(err)
		}
	}

	// The chunks really live behind the gateway.
	keys, err := storage.List(context.Background(), WorkspaceContainer("net-ws"))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 5 {
		t.Fatalf("gateway store holds only %d chunks", len(keys))
	}
}
