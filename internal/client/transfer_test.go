package client

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"stacksync/internal/chunker"
	"stacksync/internal/clock"
	"stacksync/internal/objstore"
	"stacksync/internal/objstore/storetest"
)

// TestBreakerStoreConformance: the client's resilience wrapper is a Store
// like any other and must honor the full contract — sentinels, batch/single
// equivalence, and context cancellation (which must pass through without
// counting against the breaker).
func TestBreakerStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) objstore.Store {
		return newBreakerStore(objstore.NewMemory(), clock.NewReal(),
			-1, time.Millisecond, 5, time.Millisecond)
	})
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	lead, ok := g.claim("fp")
	if !ok {
		t.Fatal("first claim was not the leader")
	}
	follow, ok := g.claim("fp")
	if ok {
		t.Fatal("second claim stole leadership")
	}
	if follow != lead {
		t.Fatal("follower got a different call")
	}
	done := make(chan error, 1)
	go func() {
		<-follow.done
		done <- follow.err
	}()
	wantErr := fmt.Errorf("boom")
	g.release("fp", lead, wantErr)
	if err := <-done; err != wantErr {
		t.Fatalf("follower saw %v, want %v", err, wantErr)
	}
	// After release the fingerprint is claimable again.
	if _, ok := g.claim("fp"); !ok {
		t.Fatal("fingerprint stuck after release")
	}
}

func TestChunkCacheLRUEviction(t *testing.T) {
	c := newChunkCache(100)
	c.put("a", make([]byte, 40))
	c.put("b", make([]byte, 40))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// a was just touched, so inserting c evicts b (the LRU entry).
	c.put("c", make([]byte, 40))
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("new entry c missing")
	}
	if got := c.bytes(); got != 80 {
		t.Fatalf("cache size = %d, want 80", got)
	}
	// Updating an entry adjusts the accounted size.
	c.put("a", make([]byte, 10))
	if got := c.bytes(); got != 50 {
		t.Fatalf("cache size after update = %d, want 50", got)
	}
	// Oversized values are refused outright.
	c.put("huge", make([]byte, 101))
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry was cached")
	}
}

func TestChunkCacheDisabled(t *testing.T) {
	c := newChunkCache(-1)
	c.put("a", []byte("x"))
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache served a hit")
	}
	if c.bytes() != 0 {
		t.Fatal("disabled cache accounted bytes")
	}
}

// TestWarmResyncSkipsPresentChunks: the server-assisted dedup probe. The
// store already holds every chunk of the file (uploaded by some departed
// device), but the local database knows nothing — without the probe the
// client would re-upload all of it. The acceptance bar: zero puts.
func TestWarmResyncSkipsPresentChunks(t *testing.T) {
	r := newRig(t)
	var content []byte // 4 KB = 4 distinct chunks of 1 KB
	for i := 0; i < 4; i++ {
		content = append(content, bytes.Repeat([]byte{byte('a' + i)}, 1024)...)
	}

	// Seed the store directly, bypassing every client: compress exactly as
	// the client would and land the chunks under their fingerprints.
	ctx := context.Background()
	if err := r.storage.EnsureContainer(ctx, WorkspaceContainer("ws")); err != nil {
		t.Fatal(err)
	}
	chunks, err := chunker.SplitBytes(chunker.Fixed{ChunkSize: 1024}, content)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range chunks {
		compressed, err := chunker.Compress(ch.Data, chunker.Gzip)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.storage.Put(ctx, WorkspaceContainer("ws"), ch.Fingerprint, compressed); err != nil {
			t.Fatal(err)
		}
	}

	a := r.newDevice("alice", "dev-a")
	putsBefore := r.storage.Traffic().Puts
	if err := a.PutFile("warm.bin", content); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("warm.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if delta := r.storage.Traffic().Puts - putsBefore; delta != 0 {
		t.Fatalf("warm resync re-uploaded %d chunks, want 0", delta)
	}
	if skipped := a.Registry().CounterValue("objstore_dedup_skipped_total", "device", "dev-a"); skipped != uint64(len(chunks)) {
		t.Fatalf("dedup skipped %d chunks, want %d", skipped, len(chunks))
	}
}

// gatedStore blocks its first PutMulti until the gate opens, giving a
// second uploader time to pile onto the in-flight fingerprint.
type gatedStore struct {
	objstore.Store
	gate  chan struct{}
	once  sync.Once
	first chan struct{} // closed when the first PutMulti has parked
}

func (g *gatedStore) PutMulti(ctx context.Context, c string, objs []objstore.Object) error {
	blocked := false
	g.once.Do(func() { blocked = true })
	if blocked {
		close(g.first)
		<-g.gate
	}
	return g.Store.PutMulti(ctx, c, objs)
}

// TestSingleflightCoalescesConcurrentUploads: two files sharing a chunk are
// uploaded concurrently; the second upload must wait on the first instead
// of shipping the chunk again.
func TestSingleflightCoalescesConcurrentUploads(t *testing.T) {
	r := newRig(t)
	gated := &gatedStore{Store: r.storage, gate: make(chan struct{}), first: make(chan struct{})}
	a := r.newDevice("alice", "dev-a", func(cfg *Config) {
		cfg.Storage = gated
	})

	shared := bytes.Repeat([]byte("s"), 1000) // < 1 KB = exactly 1 chunk
	errs := make(chan error, 2)
	go func() { errs <- a.PutFile("one.bin", shared) }()
	<-gated.first // first upload is parked inside PutMulti, leading the flight
	go func() { errs <- a.PutFile("two.bin", shared) }()

	// Give the second upload time to probe, miss, and join the flight, then
	// open the gate. Both commits must land exactly one copy of the chunk.
	waitShared := time.Now().Add(syncWait)
	for a.Registry().CounterValue("client_singleflight_shared_total", "device", "dev-a") == 0 {
		if time.Now().After(waitShared) {
			t.Fatal("second upload never joined the in-flight chunk")
		}
		time.Sleep(time.Millisecond)
	}
	close(gated.gate)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := a.WaitForVersion("one.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("two.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if puts := r.storage.Traffic().Puts; puts != 1 {
		t.Fatalf("shared chunk shipped %d times, want 1", puts)
	}
}

// TestDownloadUsesChunkCache: a chunk downloaded once is served from the
// LRU cache on the next fetch instead of going back to the store.
func TestDownloadUsesChunkCache(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	b := r.newDevice("bob", "dev-b")

	base := bytes.Repeat([]byte("cache-me!"), 300) // ~3 KB = 3 chunks
	if err := a.PutFile("doc.bin", base); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("doc.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("doc.bin", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	// Modify the tail: device B re-fetches, but the unchanged prefix chunks
	// come from its cache.
	updated := append(append([]byte{}, base...), []byte("tail")...)
	if err := a.PutFile("doc.bin", updated); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitForVersion("doc.bin", 2, syncWait); err != nil {
		t.Fatal(err)
	}
	got, _ := b.FileContent("doc.bin")
	if !bytes.Equal(got, updated) {
		t.Fatal("device B diverged")
	}
	if hits := b.Registry().CounterValue("client_chunk_cache_hits_total", "device", "dev-b"); hits == 0 {
		t.Fatal("second fetch never hit the chunk cache")
	}
}

// TestTransferPipelineStress drives many concurrent commits with heavily
// overlapping chunks through the parallel transfer path — the race-detector
// leg of the pipeline (scripts/check.sh runs this package with -race).
func TestTransferPipelineStress(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a", func(cfg *Config) {
		cfg.TransferWorkers = 8
		cfg.TransferBatch = 4
	})
	b := r.newDevice("bob", "dev-b", func(cfg *Config) {
		cfg.TransferWorkers = 8
		cfg.TransferBatch = 4
	})

	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Shared blocks across writers force dedup + singleflight
			// collisions; a unique suffix keeps every file distinct.
			shared := bytes.Repeat([]byte("stress-shared-block"), 400) // ~7.6 KB
			unique := []byte(fmt.Sprintf("writer-%d", w))
			if err := a.PutFile(fmt.Sprintf("stress-%d.bin", w), append(shared, unique...)); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("stress-%d.bin", w)
		if err := b.WaitForVersion(name, 1, syncWait); err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
		got, ok := b.FileContent(name)
		if !ok || !bytes.HasSuffix(got, []byte(fmt.Sprintf("writer-%d", w))) {
			t.Fatalf("writer %d content diverged", w)
		}
	}
}
