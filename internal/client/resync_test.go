package client

import (
	"testing"
)

// TestIncrementalResyncAdvancesCursor covers the client side of the
// changes-since-v protocol (DESIGN §16): the startup pull is a full-state
// reply that seeds the sync cursor, a later Resync ships only the change-log
// tail, and a cursor that fell behind the server's compaction watermark
// degrades to a flagged full-state pull that still converges.
func TestIncrementalResyncAdvancesCursor(t *testing.T) {
	r := newRig(t)
	a := r.newDevice("alice", "dev-a")
	if err := a.PutFile("seed.txt", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("seed.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}

	// Late joiner: the cold pull is a full reply at the committed version.
	b := r.newDevice("bob", "dev-b")
	if got := b.SyncVersion(); got != 1 {
		t.Fatalf("cursor after cold start: %d, want 1", got)
	}
	if n := b.Registry().CounterValue("client_resync_total", "device", "dev-b", "result", "full"); n != 1 {
		t.Fatalf("full pulls after start: %d, want 1", n)
	}

	// Two more commits move the workspace to version 3; b hears about them
	// through push notifications, but its pull cursor stays at 1 until the
	// next resync.
	for _, p := range []string{"f1.txt", "f2.txt"} {
		if err := a.PutFile(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{"f1.txt", "f2.txt"} {
		if err := b.WaitForVersion(p, 1, syncWait); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.SyncVersion(); got != 1 {
		t.Fatalf("cursor before resync: %d, want 1", got)
	}

	// Warm resync: a tail pull that advances the cursor to the head.
	if err := b.Resync(); err != nil {
		t.Fatal(err)
	}
	if got := b.SyncVersion(); got != 3 {
		t.Fatalf("cursor after tail resync: %d, want 3", got)
	}
	if n := b.Registry().CounterValue("client_resync_total", "device", "dev-b", "result", "tail"); n != 1 {
		t.Fatalf("tail pulls after resync: %d, want 1", n)
	}

	// Compact everything away, then resync from the now-stale cursor: the
	// reply degrades to full state and the client still converges.
	if err := a.PutFile("f3.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitForVersion("f3.txt", 1, syncWait); err != nil {
		t.Fatal(err)
	}
	if _, err := r.meta.CompactLog("ws", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Resync(); err != nil {
		t.Fatal(err)
	}
	if got := b.SyncVersion(); got != 4 {
		t.Fatalf("cursor after fallback resync: %d, want 4", got)
	}
	if n := b.Registry().CounterValue("client_resync_total", "device", "dev-b", "result", "full"); n != 2 {
		t.Fatalf("full pulls after fallback: %d, want 2", n)
	}
	if _, ok := b.FileContent("f3.txt"); !ok {
		t.Fatal("fallback resync lost f3.txt")
	}
}
