package bench

import (
	"bytes"
	"testing"

	"stacksync/internal/trace"
)

func TestTransferAblationShape(t *testing.T) {
	res, err := RunTransferAblation(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files == 0 {
		t.Fatal("no edits generated")
	}
	byName := map[string]TransferStrategyRow{}
	for _, r := range res.Rows {
		byName[r.Strategy] = r
	}
	fixed := byName["fixed-512KB"]
	cdc := byName["cdc"]
	dlt := byName["delta"]
	// Fixed chunking suffers the boundary-shifting problem: the heaviest.
	if fixed.UploadBytes <= cdc.UploadBytes {
		t.Fatalf("fixed (%d) not above cdc (%d)", fixed.UploadBytes, cdc.UploadBytes)
	}
	// Delta encoding approaches the modified bytes; far below chunking.
	if dlt.UploadBytes >= cdc.UploadBytes {
		t.Fatalf("delta (%d) not below cdc (%d)", dlt.UploadBytes, cdc.UploadBytes)
	}
	if dlt.UploadBytes <= dlt.ModifiedBytes {
		t.Fatalf("delta (%d) below modified bytes (%d) — signatures must cost something",
			dlt.UploadBytes, dlt.ModifiedBytes)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestCompressionAblationShape(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{Seed: 5, InitialFiles: 3, TrainIterations: 1, Snapshots: 8, BirthMean: 3})
	rows, err := RunCompressionAblation(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]CompressionAblationRow{}
	for _, r := range rows {
		byName[r.Compression] = r
	}
	// The trace's content is ~90% incompressible, so gzip saves only the
	// textual fraction — but must never transfer more than +2% over raw.
	none := byName["none"].StorageBytes
	gz := byName["gzip"].StorageBytes
	if gz > none+none/50 {
		t.Fatalf("gzip (%d) inflated traffic vs none (%d)", gz, none)
	}
	if gz == 0 || none == 0 {
		t.Fatal("zero traffic measured")
	}
}

func TestDedupAblationShape(t *testing.T) {
	rows, err := RunDedupAblation(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	on, off := rows[0].StorageBytes, rows[1].StorageBytes
	// Half the files are duplicates: dedup saves roughly half the volume.
	if on >= off {
		t.Fatalf("dedup-on (%d) not below dedup-off (%d)", on, off)
	}
	ratio := float64(on) / float64(off)
	if ratio > 0.75 {
		t.Fatalf("dedup saved too little: ratio %.2f", ratio)
	}
}

func TestPolicyAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("three day-long simulations")
	}
	rows := RunPolicyAblation(1)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PolicyAblationRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	combined := byName["combined"]
	reactive := byName["reactive-only"]
	predictive := byName["predictive-only"]
	// All policies keep violations low on a well-predicted day, and the
	// fleet tracks the diurnal curve in every case.
	for _, r := range rows {
		if r.ViolationsPct > 5 {
			t.Fatalf("%s: %.2f%% violations", r.Policy, r.ViolationsPct)
		}
		if r.MaxInstances < 4 {
			t.Fatalf("%s: fleet never scaled (max %d)", r.Policy, r.MaxInstances)
		}
	}
	// Reactive-only trails the rate with no anticipation: it must not use
	// dramatically more capacity than combined.
	if reactive.InstanceMinutes > combined.InstanceMinutes*2 {
		t.Fatalf("reactive-only capacity %d vs combined %d", reactive.InstanceMinutes, combined.InstanceMinutes)
	}
	// The predictive arm provisioned for per-slot peaks: at least as much
	// capacity as combined uses.
	if predictive.InstanceMinutes < combined.InstanceMinutes/2 {
		t.Fatalf("predictive-only capacity implausibly low: %d vs %d", predictive.InstanceMinutes, combined.InstanceMinutes)
	}
	var buf bytes.Buffer
	PrintPolicyAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}
