package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"stacksync/internal/metrics"
	"stacksync/internal/omq"
	"stacksync/internal/provision"
	"stacksync/internal/trace"
)

// The Fig. 8 experiments replay a full day of the UB1 workload — hundreds of
// thousands of commit requests — against the real provisioning policies. A
// wall-clock replay would take 24 hours, so the SyncService fleet is driven
// as a discrete-event G/G/η simulation: arrivals follow the trace's rate,
// each instance is a G/G/1 server with the Table 3 service-time
// distribution, and the Combined provisioner (the identical code the live
// Supervisor runs) decides the instance count each simulated second.

// Policy selects the provisioning composition for ablation runs (§5.3's
// combined deployment is the default).
type Policy int

const (
	// PolicyCombined is predictive baseline + reactive correction (§4.3).
	PolicyCombined Policy = iota
	// PolicyPredictiveOnly disables the reactive layer.
	PolicyPredictiveOnly
	// PolicyReactiveOnly disables the predictive layer: every decision
	// recomputes from the observed rate.
	PolicyReactiveOnly
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyPredictiveOnly:
		return "predictive-only"
	case PolicyReactiveOnly:
		return "reactive-only"
	default:
		return "combined"
	}
}

// SimConfig parameterizes an auto-scaling replay.
type SimConfig struct {
	SLA provision.SLA
	// Policy selects the provisioning composition (default PolicyCombined).
	Policy Policy
	// History is the arrival trace that seeds the predictive provisioner
	// (the UB1 week).
	History *trace.ArrivalTrace
	// Workload is the replayed arrival trace (UB1 day 8, or an hour slice).
	Workload *trace.ArrivalTrace
	// Percentile of the per-slot history used as λ_pred (default 0.95).
	Percentile float64
	// MispredictOffset fools the predictor (Fig. 8c–e); zero disables.
	MispredictOffset time.Duration
	// Seed fixes arrival and service sampling.
	Seed int64
	// MaxInstances caps the fleet (safety bound; default 64).
	MaxInstances int
	// Obs, when set, instruments the replay: per-second gauges
	// (sim_lambda_obs, sim_lambda_pred, sim_instances), a response-time
	// histogram and SLO counters, all scraped at the Obs scraper's interval
	// in simulated time, plus flight-recorder wiring for every provisioning
	// decision.
	Obs *SimObs
}

func (c *SimConfig) applyDefaults() {
	if c.Percentile <= 0 {
		c.Percentile = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 64
	}
}

// MinuteStat summarizes one simulated minute.
type MinuteStat struct {
	Minute     int     `json:"minute"`
	RatePerMin float64 `json:"ratePerMin"` // arrivals per minute (the Fig. 8a workload curve)
	Instances  int     `json:"instances"`  // fleet size at minute end
	MaxRespMs  float64 `json:"maxRespMs"`
	P95RespMs  float64 `json:"p95RespMs"`
	Violations int     `json:"violations"`     // responses above the SLA
	Expected   float64 `json:"expectedPerMin"` // λ_pred the provisioner used
}

// SimResult is the replay outcome.
type SimResult struct {
	Minutes   []MinuteStat         `json:"minutes"`
	Decisions []provision.Decision `json:"decisions"`
	// Responses collects every response time (seconds).
	Responses *metrics.Recorder `json:"-"`
	SLA       provision.SLA     `json:"-"`
	// Provisioner is the Combined instance that produced Decisions; the
	// /elasticz acceptance test compares the admin surface against
	// Provisioner.Decisions() directly.
	Provisioner *provision.Combined `json:"-"`
}

// MaxInstances returns the largest fleet size used.
func (r *SimResult) MaxInstances() int {
	maxN := 0
	for _, m := range r.Minutes {
		if m.Instances > maxN {
			maxN = m.Instances
		}
	}
	return maxN
}

// ViolationFraction is the share of requests above the SLA.
func (r *SimResult) ViolationFraction() float64 {
	total, bad := 0, 0
	for _, m := range r.Minutes {
		bad += m.Violations
	}
	total = r.Responses.Count()
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total)
}

// RunAutoScaleSim replays the workload.
func RunAutoScaleSim(cfg SimConfig) *SimResult {
	cfg.applyDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	predictive := provision.NewPredictive(cfg.SLA, cfg.Percentile, 0)
	if cfg.History != nil {
		// Per-slot peaks: the predictor provisions for the peak demand of
		// the next period (§4.3.1), not its mean.
		predictive.LoadHistory(cfg.History.Start, cfg.History.PerPeriodPeaks(provision.PeriodDuration))
	}
	combined := provision.NewCombined(cfg.SLA, predictive)
	if cfg.MispredictOffset != 0 {
		combined.SetMispredictionOffset(cfg.MispredictOffset)
	}
	reactiveOnly := provision.NewReactive(cfg.SLA, 0, 0, nil)
	reactiveOnly.DrainWindow = 0 // backlog is not part of the sim's ObjectInfo
	if cfg.Obs != nil {
		combined.SetEventLog(cfg.Obs.Events)
		reactiveOnly.SetEventLog(cfg.Obs.Events)
		cfg.Obs.setCombined(combined)
	}
	policy := func(now time.Time, info omq.ObjectInfo) int {
		switch cfg.Policy {
		case PolicyPredictiveOnly:
			return predictive.Desired(now.Add(cfg.MispredictOffset), info)
		case PolicyReactiveOnly:
			return reactiveOnly.Desired(now, info)
		default:
			return combined.Desired(now, info)
		}
	}

	sd := math.Sqrt(cfg.SLA.VarService)
	meanSvc := cfg.SLA.S.Seconds()
	sampleService := func() float64 {
		s := meanSvc + r.NormFloat64()*sd
		if s < 0.005 {
			s = 0.005
		}
		return s
	}

	res := &SimResult{Responses: metrics.NewRecorder(), SLA: cfg.SLA}
	totalSeconds := int(cfg.Workload.Duration() / time.Second)
	servers := make([]float64, 1) // nextFree time (seconds since start)
	var arrivalWindow [60]int     // arrivals per second, ring buffer
	arrivals := make([]float64, 0, 256)

	var minuteResponses []float64
	minuteIdx := 0
	var minuteArrivals int
	var lastExpected float64

	slaSec := cfg.SLA.D.Seconds()
	for sec := 0; sec < totalSeconds; sec++ {
		now := cfg.Workload.Start.Add(time.Duration(sec) * time.Second)
		rate := cfg.Workload.RateAt(now)
		// Poisson arrivals within this second, uniformly spread.
		n := poissonSim(r, rate)
		arrivalWindow[sec%60] = n
		minuteArrivals += n
		// Arrivals must be processed in time order: assigning a late
		// arrival to a server before an earlier one fabricates idle-wait
		// and wrecks work conservation.
		arrivals := arrivals[:0]
		for i := 0; i < n; i++ {
			arrivals = append(arrivals, float64(sec)+r.Float64())
		}
		sortFloats(arrivals)
		for _, at := range arrivals {
			// Earliest-free server takes the request (the queue hands each
			// message to the first idle instance).
			best := 0
			for s := 1; s < len(servers); s++ {
				if servers[s] < servers[best] {
					best = s
				}
			}
			startSvc := at
			if servers[best] > startSvc {
				startSvc = servers[best]
			}
			svc := sampleService()
			servers[best] = startSvc + svc
			resp := startSvc + svc - at
			res.Responses.ObserveSeconds(resp)
			minuteResponses = append(minuteResponses, resp)
			if cfg.Obs != nil {
				cfg.Obs.observeResponse(resp)
			}
		}

		// One provisioning check per simulated second, like the live
		// Supervisor. λ_obs is the 60-second mean rate at the queue.
		var sum int
		for _, v := range arrivalWindow {
			sum += v
		}
		observed := float64(sum) / 60
		if sec < 60 {
			observed = float64(sum) / float64(sec+1)
		}
		desired := policy(now, omq.ObjectInfo{ArrivalRate: observed, Instances: len(servers)})
		if desired < 1 {
			desired = 1
		}
		if desired > cfg.MaxInstances {
			desired = cfg.MaxInstances
		}
		for len(servers) < desired {
			// A freshly spawned instance is idle immediately; spawn latency
			// shows up as the response-time spikes around scale events.
			servers = append(servers, float64(sec)+1)
		}
		for len(servers) > desired {
			servers = servers[:len(servers)-1]
		}
		lastExpected = combinedPredicted(combined, predictive, now)
		if cfg.Obs != nil {
			cfg.Obs.observeSecond(now, observed, lastExpected, len(servers))
		}

		if (sec+1)%60 == 0 {
			stat := MinuteStat{
				Minute:     minuteIdx,
				RatePerMin: float64(minuteArrivals),
				Instances:  len(servers),
				Expected:   lastExpected * 60,
			}
			if len(minuteResponses) > 0 {
				stat.MaxRespMs = metrics.Percentile(minuteResponses, 1) * 1000
				stat.P95RespMs = metrics.Percentile(minuteResponses, 0.95) * 1000
				for _, v := range minuteResponses {
					if v > slaSec {
						stat.Violations++
					}
				}
			}
			res.Minutes = append(res.Minutes, stat)
			minuteResponses = minuteResponses[:0]
			minuteArrivals = 0
			minuteIdx++
		}
	}
	res.Decisions = combined.Decisions()
	res.Provisioner = combined
	if cfg.Obs != nil {
		// A final sample flushes the end-of-run counter values into the
		// scraped history so cumulative reads see every observation.
		cfg.Obs.finalTick(cfg.Workload.Start.Add(time.Duration(totalSeconds) * time.Second))
	}
	return res
}

func combinedPredicted(c *provision.Combined, p *provision.PredictiveProvisioner, now time.Time) float64 {
	// The combined provisioner applies its misprediction offset internally;
	// reproduce it for reporting.
	return p.PredictedRate(now.Add(c.MispredictOffset()))
}

// sortFloats is a small insertion sort: arrival batches are tiny and mostly
// random, and this avoids sort.Float64s allocations in the hot loop.
func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func poissonSim(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// For large means use a normal approximation to stay O(1).
	if mean > 30 {
		n := int(mean + r.NormFloat64()*math.Sqrt(mean) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// PrintFig8a writes the workload-vs-instances series (sampled every few
// minutes to keep the table readable).
func (r *SimResult) PrintFig8a(w io.Writer, every int) {
	if every <= 0 {
		every = 15
	}
	fmt.Fprintln(w, "Fig 8(a) — day-8 workload and provisioned instances")
	fmt.Fprintf(w, "%8s %14s %10s\n", "minute", "req/min", "instances")
	for i, m := range r.Minutes {
		if i%every != 0 {
			continue
		}
		fmt.Fprintf(w, "%8d %14.0f %10d\n", m.Minute, m.RatePerMin, m.Instances)
	}
	fmt.Fprintf(w, "peak demand: %.0f req/min, max instances: %d\n", r.peakRate(), r.MaxInstances())
}

func (r *SimResult) peakRate() float64 {
	var peak float64
	for _, m := range r.Minutes {
		if m.RatePerMin > peak {
			peak = m.RatePerMin
		}
	}
	return peak
}

// PrintFig8b writes the response-time series.
func (r *SimResult) PrintFig8b(w io.Writer, every int) {
	if every <= 0 {
		every = 15
	}
	fmt.Fprintf(w, "Fig 8(b) — response times under auto-scaling (SLA %.0f ms)\n", r.SLA.D.Seconds()*1000)
	fmt.Fprintf(w, "%8s %10s %10s %11s\n", "minute", "p95 (ms)", "max (ms)", "violations")
	for i, m := range r.Minutes {
		if i%every != 0 {
			continue
		}
		fmt.Fprintf(w, "%8d %10.1f %10.1f %11d\n", m.Minute, m.P95RespMs, m.MaxRespMs, m.Violations)
	}
	fmt.Fprintf(w, "overall: %d requests, %.4f%% above SLA, p99 %.1f ms\n",
		r.Responses.Count(), 100*r.ViolationFraction(), r.Responses.Percentile(0.99)*1000)
}

// PrintFig8cde writes the misprediction experiment: expected vs observed
// arrivals (8c), instances (8d) and response times (8e) per minute.
func (r *SimResult) PrintFig8cde(w io.Writer) {
	fmt.Fprintln(w, "Fig 8(c,d,e) — misprediction corrected by reactive provisioning")
	fmt.Fprintf(w, "%8s %14s %14s %10s %10s %10s\n",
		"minute", "expected/min", "observed/min", "instances", "p95 (ms)", "max (ms)")
	for _, m := range r.Minutes {
		fmt.Fprintf(w, "%8d %14.0f %14.0f %10d %10.1f %10.1f\n",
			m.Minute, m.Expected, m.RatePerMin, m.Instances, m.P95RespMs, m.MaxRespMs)
	}
}
