package providers

import (
	"bytes"
	"testing"
)

func payload(n int) []byte {
	return bytes.Repeat([]byte("stacksync middleware "), n/21+1)[:n]
}

func TestAllProvidersListed(t *testing.T) {
	models := All()
	if len(models) != 5 {
		t.Fatalf("providers = %d, want 5 (Table 1 minus StackSync)", len(models))
	}
	seen := map[string]bool{}
	for _, m := range models {
		if m.Name == "" || seen[m.Name] {
			t.Fatalf("bad or duplicate provider name %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestAddTrafficScalesWithContent(t *testing.T) {
	for _, m := range All() {
		small := m.ApplyAdd("a", payload(10_000))
		big := m.ApplyAdd("b", payload(1_000_000))
		if big.Storage <= small.Storage {
			t.Fatalf("%s: storage does not scale with size", m.Name)
		}
		if small.Control != m.ControlAdd {
			t.Fatalf("%s: add control = %d", m.Name, small.Control)
		}
	}
}

func TestDropboxDeltaEncodingBeatsFullUpload(t *testing.T) {
	db := Dropbox()
	box := Box()
	content := payload(2_000_000)
	db.ApplyAdd("f", content)
	box.ApplyAdd("f", content)
	const changed = 300
	dbT := db.ApplyUpdate("f", content, changed)
	boxT := box.ApplyUpdate("f", content, changed)
	if dbT.Storage >= boxT.Storage {
		t.Fatalf("delta encoding (%d) not below full upload (%d)", dbT.Storage, boxT.Storage)
	}
	// Delta transfer still exceeds the bytes actually changed (signatures).
	if dbT.Storage <= changed {
		t.Fatalf("delta transfer %d implausibly small", dbT.Storage)
	}
}

func TestDropboxHasHighestControlChatter(t *testing.T) {
	db := Dropbox()
	for _, m := range All() {
		if m.Name == "Dropbox" {
			continue
		}
		if m.ControlAdd >= db.ControlAdd {
			t.Fatalf("%s control per ADD (%d) >= Dropbox (%d)", m.Name, m.ControlAdd, db.ControlAdd)
		}
	}
}

func TestRemoveIsMetadataOnly(t *testing.T) {
	for _, m := range All() {
		m.ApplyAdd("f", payload(1000))
		tr := m.ApplyRemove("f")
		if tr.Storage != 0 {
			t.Fatalf("%s: remove moved %d storage bytes", m.Name, tr.Storage)
		}
		if tr.Control <= 0 {
			t.Fatalf("%s: remove control = %d", m.Name, tr.Control)
		}
	}
}

func TestCompressingProviderCountsLess(t *testing.T) {
	gd := GoogleDrive()
	box := Box()
	// Highly compressible content.
	content := bytes.Repeat([]byte("aaaa"), 250_000)
	gdT := gd.ApplyAdd("f", content)
	boxT := box.ApplyAdd("f", content)
	if gdT.Storage >= boxT.Storage {
		t.Fatalf("compressing provider (%d) not below plain (%d)", gdT.Storage, boxT.Storage)
	}
}

func TestBatchControlAmortizes(t *testing.T) {
	db := Dropbox()
	perOp := db.BatchControl(1)
	bundled := db.BatchControl(40)
	if bundled >= 40*perOp {
		t.Fatalf("bundling does not amortize: 40 ops cost %d vs 40x%d", bundled, perOp)
	}
	// Monotone in n.
	prev := int64(0)
	for n := 1; n <= 40; n++ {
		c := db.BatchControl(n)
		if c < prev {
			t.Fatalf("batch control decreased at n=%d", n)
		}
		prev = c
	}
	if db.BatchControl(0) != 0 {
		t.Fatal("zero batch should cost nothing")
	}
	// A provider without bundling pays linearly.
	box := Box()
	if box.BatchControl(10) != 10*box.ControlAdd {
		t.Fatalf("non-bundling batch control = %d", box.BatchControl(10))
	}
}

func TestTrafficAccumulate(t *testing.T) {
	var tr Traffic
	tr.Add(Traffic{Control: 10, Storage: 100})
	tr.Add(Traffic{Control: 5, Storage: 50})
	if tr.Control != 15 || tr.Storage != 150 || tr.Total() != 165 {
		t.Fatalf("accumulated: %+v", tr)
	}
}
