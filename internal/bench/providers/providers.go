// Package providers models the transfer behaviour of the commercial
// Personal Cloud clients the paper benchmarks against (Table 1): Dropbox,
// Box, Microsoft OneDrive, Google Drive and Amazon Cloud Drive.
//
// The real clients are closed binaries the paper measured over the network;
// here each is a protocol model re-implementing the behaviours that the
// measurement literature ([1] Drago IMC'12, [4] Drago IMC'13, [16] Liu
// CCGRID'13) attributes to them — librsync delta encoding and file bundling
// for Dropbox, full-file re-upload for the rest, and their characteristic
// per-operation control chatter. StackSync itself is NOT modelled: its
// traffic is measured from the real implementation (see internal/bench).
// Calibration constants are chosen so the published Fig. 7(b–d)/Table 2
// shapes reproduce; see EXPERIMENTS.md for the paper-vs-measured table.
package providers

import (
	"stacksync/internal/chunker"
)

// Traffic accumulates a model's transfer volumes in bytes.
type Traffic struct {
	Control int64 `json:"control"`
	Storage int64 `json:"storage"`
}

// Total returns control + storage bytes.
func (t Traffic) Total() int64 { return t.Control + t.Storage }

// Add accumulates another delta.
func (t *Traffic) Add(d Traffic) {
	t.Control += d.Control
	t.Storage += d.Storage
}

// Model simulates one provider's sync client. Implementations are
// deterministic functions from operations to traffic.
type Model struct {
	// Name of the provider, as in Table 1.
	Name string

	// ControlAdd/Update/Remove are the control bytes exchanged per
	// operation when operations commit one at a time (the Fig. 7b setup).
	ControlAdd    int64
	ControlUpdate int64
	ControlRemove int64
	// ControlPerBatch replaces the per-op control cost for all operations
	// sharing a bundle when bundling is enabled (Table 2); each additional
	// operation in a batch adds ControlPerBatchItem.
	ControlPerBatch     int64
	ControlPerBatchItem int64

	// StorageFactor scales payload bytes to model protocol framing, block
	// padding and retransmission overhead (>1 means overhead).
	StorageFactor float64
	// Compresses applies gzip to payloads before counting them.
	Compresses bool
	// DeltaEncoding transfers only the changed bytes of an update
	// (librsync-style), paying DeltaSignatureBytes per whole-file pass for
	// block signatures.
	DeltaEncoding       bool
	DeltaSignatureBytes int64

	state map[string]int64 // path -> last synced size
}

// Dropbox reproduces the paper's measured behaviour: the heaviest control
// chatter of all providers (~25 MB over 940 ADDs ≈ 27 KB/op), storage
// traffic ~23% above the raw data volume (4 MB-block padding and framing,
// [1]), but delta encoding that beats chunk-based transfer on UPDATEs, and
// file bundling that amortizes control cost across batched operations.
func Dropbox() *Model {
	return &Model{
		Name:                "Dropbox",
		ControlAdd:          27_000,
		ControlUpdate:       14_000,
		ControlRemove:       9_000,
		ControlPerBatch:     34_000,
		ControlPerBatchItem: 1_500,
		StorageFactor:       1.23,
		Compresses:          false,
		DeltaEncoding:       true,
		DeltaSignatureBytes: 12_000,
	}
}

// Box models the Box Sync client: full-file upload, WebDAV-ish chatter.
func Box() *Model {
	return &Model{
		Name:          "Box",
		ControlAdd:    9_000,
		ControlUpdate: 9_000,
		ControlRemove: 4_000,
		StorageFactor: 1.08,
	}
}

// OneDrive models the Microsoft OneDrive client.
func OneDrive() *Model {
	return &Model{
		Name:          "OneDrive",
		ControlAdd:    12_000,
		ControlUpdate: 12_000,
		ControlRemove: 5_000,
		StorageFactor: 1.10,
	}
}

// GoogleDrive models the Google Drive client (compresses uploads).
func GoogleDrive() *Model {
	return &Model{
		Name:          "GoogleDrive",
		ControlAdd:    10_000,
		ControlUpdate: 10_000,
		ControlRemove: 4_500,
		StorageFactor: 1.06,
		Compresses:    true,
	}
}

// AmazonCloudDrive models the Amazon Cloud Drive client.
func AmazonCloudDrive() *Model {
	return &Model{
		Name:          "AmazonCloudDrive",
		ControlAdd:    11_000,
		ControlUpdate: 11_000,
		ControlRemove: 5_000,
		StorageFactor: 1.12,
	}
}

// All returns the five commercial comparators of Fig. 7(b).
func All() []*Model {
	return []*Model{Dropbox(), Box(), OneDrive(), GoogleDrive(), AmazonCloudDrive()}
}

func (m *Model) ensureState() {
	if m.state == nil {
		m.state = make(map[string]int64)
	}
}

func (m *Model) payload(content []byte) int64 {
	n := int64(len(content))
	if m.Compresses {
		if enc, err := chunker.Compress(content, chunker.Gzip); err == nil {
			n = int64(len(enc))
		}
	}
	return int64(float64(n) * m.StorageFactor)
}

// ApplyAdd models uploading a new file.
func (m *Model) ApplyAdd(path string, content []byte) Traffic {
	m.ensureState()
	m.state[path] = int64(len(content))
	return Traffic{Control: m.ControlAdd, Storage: m.payload(content)}
}

// ApplyUpdate models transferring a modification. changed is the number of
// bytes the edit touched; content is the file after the edit.
func (m *Model) ApplyUpdate(path string, content []byte, changed int64) Traffic {
	m.ensureState()
	m.state[path] = int64(len(content))
	if m.DeltaEncoding {
		// librsync: block signatures travel, then only the changed bytes
		// (plus factor overhead).
		delta := int64(float64(changed) * m.StorageFactor * 4) // matching windows expand the literal region
		return Traffic{Control: m.ControlUpdate, Storage: m.DeltaSignatureBytes + delta}
	}
	// Full-file re-upload.
	return Traffic{Control: m.ControlUpdate, Storage: m.payload(content)}
}

// ApplyRemove models a deletion (metadata only).
func (m *Model) ApplyRemove(path string) Traffic {
	m.ensureState()
	delete(m.state, path)
	return Traffic{Control: m.ControlRemove}
}

// BatchControl returns the control bytes of a bundle of n operations when
// the provider supports bundling; providers without bundling pay their
// per-op costs (approximated with ControlAdd).
func (m *Model) BatchControl(n int) int64 {
	if n <= 0 {
		return 0
	}
	if m.ControlPerBatch > 0 {
		return m.ControlPerBatch + int64(n-1)*m.ControlPerBatchItem
	}
	return int64(n) * m.ControlAdd
}
