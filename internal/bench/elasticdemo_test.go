package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stacksync/internal/obs"
)

// TestElasticDemoAdminMatchesProvisioner is the acceptance check: the
// decision history served on /elasticz must match Combined.Decisions()
// exactly, and the SLO attainment derived from scraped time series must agree
// with the simulator's exact per-response accounting.
func TestElasticDemoAdminMatchesProvisioner(t *testing.T) {
	demo := NewElasticDemo(1, true)
	adm := &obs.Admin{}
	demo.AttachAdmin(adm)
	srv := httptest.NewServer(adm.Handler())
	defer srv.Close()

	var buf bytes.Buffer
	res := demo.Run(&buf)
	if res.Provisioner == nil {
		t.Fatal("SimResult.Provisioner not set")
	}

	resp, err := http.Get(srv.URL + "/elasticz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st obs.ElasticStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode /elasticz: %v", err)
	}

	want := res.Provisioner.Decisions()
	if len(want) == 0 {
		t.Fatal("no provisioning decisions recorded")
	}
	if len(st.Decisions) != len(want) {
		t.Fatalf("/elasticz has %d decisions, provisioner has %d", len(st.Decisions), len(want))
	}
	for i, d := range want {
		g := st.Decisions[i]
		if !g.Time.Equal(d.Time) || g.Trigger != d.Trigger ||
			g.Observed != d.Observed || g.Predicted != d.Predicted ||
			g.ServiceTime != d.ServiceTime || g.Rho != d.Rho ||
			g.Current != d.Current || g.Target != d.Instances {
			t.Fatalf("decision %d mismatch:\n got %+v\nwant %+v", i, g, d)
		}
	}
	if len(st.Queues) != 1 || st.Queues[0].Queue != "syncservice" {
		t.Fatalf("queue load = %+v", st.Queues)
	}

	// SLO attainment: scraped counters vs the exact recorder, within
	// reservoir-sampling tolerance (the counters themselves are exact, so
	// the bound is tight).
	scraped := demo.ScrapedAttainment()
	exact := ExactAttainment(res)
	if math.Abs(scraped-exact) > 0.01 {
		t.Fatalf("scraped attainment %v vs exact %v, diff > 0.01", scraped, exact)
	}

	// Windowed p95 from the scraped histogram should land near the exact
	// recorder value (bucket-midpoint resolution bounds the error).
	window := demo.cfg.Workload.Duration() + time.Minute
	p95, ok := demo.Obs.Scraper.WindowQuantile(SimResponseSeries, window, 0.95)
	if !ok {
		t.Fatal("no scraped p95")
	}
	exactP95 := res.Responses.Percentile(0.95)
	if p95 < exactP95/3 || p95 > exactP95*3 {
		t.Fatalf("scraped p95 %v vs exact %v: outside 3x tolerance", p95, exactP95)
	}

	// The telemetry surfaces are populated end to end.
	if demo.Obs.Events.Len() == 0 {
		t.Fatal("flight recorder empty after run")
	}
	for _, key := range []string{SimLambdaObsSeries, SimLambdaPredSeries, SimInstancesSeries} {
		if !demo.Obs.Scraper.HasSeries(key) {
			t.Fatalf("series %s not scraped", key)
		}
	}
	if !demo.Obs.Scraper.HasHistogram(SimResponseSeries) {
		t.Fatal("response histogram not scraped")
	}

	// /varz serves the demo's series over the same admin mux.
	resp, err = http.Get(srv.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(SimInstancesSeries)) {
		t.Fatalf("/varz inventory missing %s: %s", SimInstancesSeries, body)
	}
	// /eventz shows the provisioning decisions the run appended.
	resp, err = http.Get(srv.URL + "/eventz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("provision.decision")) {
		t.Fatalf("/eventz missing decisions: %s", body)
	}
}
