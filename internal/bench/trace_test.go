package bench

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stacksync/internal/core"
	"stacksync/internal/obs"
)

// TestEndToEndCommitTrace runs a real two-device sync through the full stack
// and checks the observability contract of PR 2: one commit yields one trace
// whose spans cover every hop, whose parent links all resolve inside the
// trace, and whose critical-path sum stays within the measured end-to-end
// latency.
func TestEndToEndCommitTrace(t *testing.T) {
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	st, err := NewStack(StackOptions{Devices: 2, Tracer: tracer, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	t0 := time.Now()
	if err := st.Client(0).PutFile("a/traced.txt", []byte("end-to-end tracing payload")); err != nil {
		t.Fatal(err)
	}
	if err := st.Client(1).WaitForVersion("a/traced.txt", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id, spans, err := commitTrace(tracer.Sink(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(t0)

	if len(spans) < 5 {
		t.Fatalf("commit trace %s has %d spans, want >= 5", id, len(spans))
	}
	ids := make(map[string]bool, len(spans))
	for _, sp := range spans {
		ids[sp.SpanID] = true
	}
	roots := 0
	for _, sp := range spans {
		if sp.End.Before(sp.Start) {
			t.Errorf("span %s ends before it starts", sp.Name)
		}
		if sp.ParentID == "" {
			roots++
			if sp.Name != "client.commit" {
				t.Errorf("root span is %q, want client.commit", sp.Name)
			}
			continue
		}
		if !ids[sp.ParentID] {
			t.Errorf("span %s has parent %s outside the trace", sp.Name, sp.ParentID)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want 1", roots)
	}

	names := make(map[string]int)
	for _, sp := range spans {
		names[sp.Name]++
	}
	for _, want := range []string{
		"client.commit",           // root on the writer
		"objstore.put",            // chunk upload
		"omq.async.CommitRequest", // publish to the service queue
		"mq.dwell",                // queue wait reconstructed at the receiver
		"omq.handle.CommitRequest",
		"metastore.commitBatch",
		"omq.multi.NotifyCommit", // fan-out publish
		"omq.handle.NotifyCommit",
		"client.applyNotification", // remote device applies the commit
		"objstore.get",             // remote device downloads the chunk
	} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}

	var sum time.Duration
	for _, seg := range obs.CriticalPath(spans) {
		sum += seg.Self
	}
	if sum <= 0 {
		t.Fatalf("critical path sums to %v", sum)
	}
	if sum > elapsed {
		t.Errorf("critical path %v exceeds measured end-to-end latency %v", sum, elapsed)
	}

	// The shared registry saw every layer of the same commit.
	for _, series := range []struct {
		name   string
		labels []string
	}{
		{"omq_queue_depth", []string{"oid", core.ServiceOID}},
		{"mq_bytes_up", []string{"link", "dev-0"}},
		{"objstore_bytes_up", []string{"device", "dev-0"}},
		{"objstore_bytes_down", []string{"device", "dev-1"}},
		{"client_upload_queue_depth", []string{"device", "dev-0"}},
	} {
		if _, ok := reg.GaugeValue(series.name, series.labels...); !ok {
			t.Errorf("registry has no %s%v series", series.name, series.labels)
		}
	}
}

// TestAdminEndpoints serves the four admin endpoints over a live stack and
// checks each one answers with the expected content.
func TestAdminEndpoints(t *testing.T) {
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	st, err := NewStack(StackOptions{Devices: 2, Tracer: tracer, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Client(0).PutFile("x.txt", []byte("admin endpoint payload")); err != nil {
		t.Fatal(err)
	}
	if err := st.Client(1).WaitForVersion("x.txt", 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, err := commitTrace(tracer.Sink(), 2*time.Second); err != nil {
		t.Fatal(err)
	}

	admin := &obs.Admin{
		Registry: reg,
		Tracer:   tracer,
		Queues:   st.AdminQueues,
		Health: func() obs.Health {
			return obs.Health{OK: true, Components: []obs.ComponentHealth{{Name: "mq", OK: true}}}
		},
	}
	srv := httptest.NewServer(admin.Handler())
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics": "omq_queue_depth",
		"/healthz": `"ok":true`,
		"/tracez":  "client.commit",
		"/queuesz": "consumers",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body lacks %q:\n%s", path, want, body)
		}
	}
}
