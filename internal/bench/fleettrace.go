package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/obs"
	"stacksync/internal/omq"
)

// FleetTraceConfig parameterizes the fleet-observability smoke: a routed
// SyncService fleet where every instance exports its own tracer, registry,
// event log and hot-workspace sketch into an obs.Collector, a client whose
// commits are routed with per-attempt spans, and one deliberate owner kill
// so a failed-over commit produces a stitched cross-instance trace.
type FleetTraceConfig struct {
	// Seed fixes the workload shape (paths/content only; the scenario is
	// otherwise deterministic).
	Seed int64
	// Instances is the fleet size (default 2).
	Instances int
	// Workspaces is the number of warm workspaces (default 4).
	Workspaces int
	// WarmCommits is the number of commits per warm workspace before the
	// kill; the first workspace receives 3× that to become the heavy hitter
	// the sketch must surface (default 3).
	WarmCommits int
	// CheckEvery is the Supervisor's enforcement period (default 40 ms).
	CheckEvery time.Duration
}

func (c *FleetTraceConfig) applyDefaults() {
	if c.Instances <= 0 {
		c.Instances = 2
	}
	if c.Workspaces <= 0 {
		c.Workspaces = 4
	}
	if c.WarmCommits <= 0 {
		c.WarmCommits = 3
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 40 * time.Millisecond
	}
}

func fleetTraceWorkspace(i int) string { return fmt.Sprintf("fleet-ws-%d", i) }

// instanceObs is one spawned instance's private observability bundle: its
// own tracer/sink (so spans carry the instance identity), registry, flight
// recorder and hot-workspace sketch — everything the Collector scrapes.
type instanceObs struct {
	reg    *obs.Registry
	sink   *obs.SpanSink
	events *obs.EventLog
	tracer *obs.Tracer
	hot    *obs.HotStats
}

// installFleetObs arms a RemoteBroker with per-instance observability spawn
// hooks: every spawned child broker gets a fresh tracer, registry and event
// log keyed by its instance id, and instance death is reported to the
// collector (clean drains earn a final scrape; kills lose buffered spans).
// The returned lookup resolves the bundle from inside an instance factory.
func installFleetObs(rb *omq.RemoteBroker, collector *obs.Collector) func(id string) *instanceObs {
	var mu sync.Mutex
	bundles := make(map[string]*instanceObs)
	rb.SetSpawnHooks(omq.SpawnHooks{
		Options: func(oid, instanceID string) []omq.BrokerOption {
			b := &instanceObs{
				reg:    obs.NewRegistry(),
				sink:   obs.NewSpanSink(0),
				events: obs.NewEventLog(512),
				hot:    obs.NewHotStats(8),
			}
			b.tracer = obs.NewTracer(obs.WithSink(b.sink), obs.WithInstance(instanceID))
			mu.Lock()
			bundles[instanceID] = b
			mu.Unlock()
			return []omq.BrokerOption{
				omq.WithTracer(b.tracer), omq.WithRegistry(b.reg), omq.WithEventLog(b.events),
			}
		},
		Stopped: func(oid, instanceID string, clean bool) {
			collector.MarkDead(instanceID, clean)
		},
	})
	return func(id string) *instanceObs {
		mu.Lock()
		defer mu.Unlock()
		return bundles[id]
	}
}

// registerFleetInstance finishes an instance's obs wiring from its factory:
// the service adopts the per-instance tracer and sketch, and the instance
// becomes a collector source with live epoch/readiness probes.
func registerFleetInstance(collector *obs.Collector, obsOf func(string) *instanceObs, svc *core.Service, id string) error {
	b := obsOf(id)
	if b == nil {
		return fmt.Errorf("bench: no obs bundle for instance %s", id)
	}
	svc.SetObs(b.tracer, b.hot)
	collector.Register(obs.Source{
		InstanceID: id,
		Epoch:      svc.RingEpoch,
		Ready:      svc.Ready,
		Registry:   b.reg,
		Sink:       b.sink,
		Events:     b.events,
		Hot:        b.hot,
	})
	return nil
}

// countFailoverTraces scans every stitched trace in the collector and counts
// those containing at least one router attempt span annotated with a
// failover cause — the "did the failover leave a readable trace" check the
// chaos scenarios assert.
func countFailoverTraces(collector *obs.Collector) (total, failover int) {
	for _, id := range collector.TraceIDs() {
		st, ok := collector.Trace(id)
		if !ok {
			continue
		}
		total++
		for _, sp := range st.Spans {
			if strings.HasPrefix(sp.Name, "omq.attempt.") && sp.Annot("cause") != "" {
				failover++
				break
			}
		}
	}
	return total, failover
}

// FleetTraceResult reports the smoke's outcome.
type FleetTraceResult struct {
	Seed      int64 `json:"seed"`
	Instances int   `json:"instances"`
	Commits   int   `json:"commits"`
	// Failover-trace anatomy.
	TraceID        string `json:"traceId"`
	TraceSpans     int    `json:"traceSpans"`
	TraceInstances int    `json:"traceInstances"`
	AttemptSpans   int    `json:"attemptSpans"`
	FailoverCause  string `json:"failoverCause"`
	// PathInstances counts distinct instances on the stitched critical path —
	// ≥ 2 means the path crosses the process boundary.
	PathInstances int  `json:"pathInstances"`
	Partial       bool `json:"partial"`
	// Fleet rollup after the kill and the drain.
	CollectedSpans int    `json:"collectedSpans"`
	KilledInstance string `json:"killedInstance"`
	DrainedClean   bool   `json:"drainedClean"`
	HotTop         string `json:"hotTop"`
	HotTopCommits  uint64 `json:"hotTopCommits"`
	// Violations lists every broken invariant (empty on a clean run).
	Violations []string `json:"violations,omitempty"`
}

// RunFleetTrace executes the fleet-observability smoke:
//
//  1. spawn a routed fleet whose instances get per-instance obs through
//     RemoteBroker spawn hooks, all registered with one Collector;
//  2. commit a warm workload (one workspace deliberately hot);
//  3. kill an instance, then commit — under the client's still-stale ring —
//     to a workspace the corpse owned, forcing a traced failover;
//  4. drain the fleet by one and verify the collector separates the crash
//     (spans lost) from the drain (final scrape granted);
//  5. check the stitched trace: router attempt spans with a failover cause,
//     spans from both sides of the RPC, and a critical path that crosses
//     the instance boundary.
func RunFleetTrace(cfg FleetTraceConfig) (*FleetTraceResult, error) {
	cfg.applyDefaults()
	collector := obs.NewCollector()

	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore()
	defer meta.Close()
	created := make(map[string]bool)
	ensureWorkspace := func(ws string) error {
		if created[ws] {
			return nil
		}
		if err := meta.CreateWorkspace(metastore.Workspace{ID: ws, Owner: "user-0"}); err != nil {
			return err
		}
		created[ws] = true
		return nil
	}
	for i := 0; i < cfg.Workspaces; i++ {
		if err := ensureWorkspace(fleetTraceWorkspace(i)); err != nil {
			return nil, err
		}
	}

	nodeBroker, err := omq.NewBroker(m, omq.WithID("10-node"))
	if err != nil {
		return nil, err
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		return nil, err
	}
	defer rb.Close()
	notifBroker, err := omq.NewBroker(m, omq.WithID("20-notif"))
	if err != nil {
		return nil, err
	}
	defer notifBroker.Close()

	// Per-instance observability, built in the spawn hook (the instance id is
	// decided before the child broker exists) and consumed by the factory.
	obsOf := installFleetObs(rb, collector)
	rb.RegisterInstanceFactory(core.ServiceOID, func(id string) (interface{}, error) {
		svc := core.NewService(meta, notifBroker)
		svc.SetInstance(id)
		if err := registerFleetInstance(collector, obsOf, svc, id); err != nil {
			return nil, err
		}
		return svc.API(), nil
	})
	if err := m.DeclareQueue(core.ServiceOID); err != nil {
		return nil, err
	}

	var target atomic.Int64
	target.Store(int64(cfg.Instances))
	supBroker, err := omq.NewBroker(m, omq.WithID("00-supervisor"))
	if err != nil {
		return nil, err
	}
	defer supBroker.Close()
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:        core.ServiceOID,
		CheckEvery: cfg.CheckEvery,
		Provisioner: omq.ProvisionerFunc(func(time.Time, omq.ObjectInfo) int {
			return int(target.Load())
		}),
		MaxInstances:    cfg.Instances + 2,
		Routing:         true,
		InventoryWindow: 50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer sup.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := sup.Ring()
		if rb.InstanceCount(core.ServiceOID) == cfg.Instances && r != nil && len(r.Members()) == cfg.Instances {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: fleet never reached %d routed instances", cfg.Instances)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The client is a pseudo-source: no epoch/readiness, but its sink holds
	// the root/route/attempt spans every stitched trace starts from.
	clientSink := obs.NewSpanSink(0)
	clientReg := obs.NewRegistry()
	clientTracer := obs.NewTracer(obs.WithSink(clientSink), obs.WithInstance("client"))
	clientBroker, err := omq.NewBroker(m, omq.WithID("40-client"),
		omq.WithTracer(clientTracer), omq.WithRegistry(clientReg))
	if err != nil {
		return nil, err
	}
	defer clientBroker.Close()
	collector.Register(obs.Source{InstanceID: "client", Registry: clientReg, Sink: clientSink})
	router := omq.NewRouter(clientBroker, omq.RouterConfig{
		OID:         core.ServiceOID,
		Timeout:     400 * time.Millisecond,
		Attempts:    8,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	router.Refresh()

	res := &FleetTraceResult{Seed: cfg.Seed, Instances: cfg.Instances}
	commit := func(ws, path string, size int64) (string, error) {
		root := clientTracer.StartRoot("client.commit")
		ctx := obs.ContextWith(context.Background(), root.Context())
		req := core.CommitRequest{
			Workspace: ws,
			DeviceID:  "fleet-dev",
			Items: []metastore.ItemVersion{{
				Workspace: ws,
				ItemID:    ws + ":" + path,
				Path:      path,
				Version:   1,
				Status:    metastore.Added,
				Size:      size,
				DeviceID:  "fleet-dev",
			}},
		}
		err := router.CallCtx(ctx, ws, "CommitRequest", nil, req)
		root.End()
		if err == nil {
			res.Commits++
		}
		return root.Context().TraceID, err
	}

	// Warm workload: the first workspace commits 3× as often with bigger
	// items, so it must dominate all three fleet sketches.
	for i := 0; i < cfg.Workspaces; i++ {
		ws := fleetTraceWorkspace(i)
		n, size := cfg.WarmCommits, int64(1024)
		if i == 0 {
			n, size = 3*cfg.WarmCommits, 8*1024
		}
		for k := 0; k < n; k++ {
			if _, err := commit(ws, fmt.Sprintf("warm/f-%d-%d.txt", cfg.Seed, k), size); err != nil {
				return nil, fmt.Errorf("bench: warm commit %s: %w", ws, err)
			}
		}
	}
	collector.Collect()

	// Kill the owner of a chosen workspace. The router deliberately keeps
	// its now-stale ring, so the post-kill commit to that workspace must
	// fail over: the first attempt hits the dead owner's queue, the router
	// refreshes and retries against the repaired ring.
	staleRing := router.Ring()
	if staleRing == nil {
		return nil, fmt.Errorf("bench: router never adopted a ring")
	}
	victimWS := fleetTraceWorkspace(1)
	oldEpoch := sup.Ring().Epoch()
	killed := staleRing.Owner(victimWS)
	if !rb.KillByID(core.ServiceOID, killed) {
		return nil, fmt.Errorf("bench: owner %s of %s not running locally", killed, victimWS)
	}
	res.KilledInstance = killed
	deadline = time.Now().Add(10 * time.Second)
	for rb.InstanceCount(core.ServiceOID) < cfg.Instances || sup.Ring().Epoch() <= oldEpoch {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: fleet never recovered from kill")
		}
		time.Sleep(5 * time.Millisecond)
	}

	traceID, err := commit(victimWS, "failover/f-0.txt", 2048)
	if err != nil {
		return nil, fmt.Errorf("bench: failover commit: %w", err)
	}
	res.TraceID = traceID
	collector.Collect()

	// Drain one instance cleanly (scale cfg.Instances → cfg.Instances-1):
	// unlike the kill, the Stopped hook grants a final scrape, so a drained
	// instance's spans survive in the collector.
	target.Store(int64(cfg.Instances - 1))
	deadline = time.Now().Add(10 * time.Second)
	for rb.InstanceCount(core.ServiceOID) != cfg.Instances-1 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: fleet never drained to %d", cfg.Instances-1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The Stopped hook marks the drained instance dead asynchronously with
	// respect to the instance-count drop, so wait for the rollup to reflect
	// the clean exit; on timeout the DrainedClean violation below reports it.
	for !rollupHasCleanDrain(collector, killed) && !time.Now().After(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	res.CollectedSpans = collector.Collect()

	st, ok := collector.Trace(traceID)
	if ok {
		res.TraceSpans = len(st.Spans)
		res.TraceInstances = len(st.Instances)
		res.Partial = st.Partial
		for _, sp := range st.Spans {
			if strings.HasPrefix(sp.Name, "omq.attempt.") {
				res.AttemptSpans++
				if c := sp.Annot("cause"); c != "" && res.FailoverCause == "" {
					res.FailoverCause = c
				}
			}
		}
		pathInst := make(map[string]bool)
		for _, seg := range obs.CriticalPathDeep(st.Spans) {
			if seg.Instance != "" {
				pathInst[seg.Instance] = true
			}
		}
		res.PathInstances = len(pathInst)
	}

	rollup := collector.Rollup()
	for _, inst := range rollup.Instances {
		if inst.InstanceID == killed && !inst.Alive && inst.CleanExit {
			res.Violations = append(res.Violations, "killed instance reported as clean drain")
		}
		if !inst.Alive && inst.InstanceID != killed && inst.CleanExit {
			res.DrainedClean = true
		}
	}
	if len(rollup.HotCommits) > 0 {
		res.HotTop = rollup.HotCommits[0].Key
		res.HotTopCommits = rollup.HotCommits[0].Count
	}

	res.Violations = append(res.Violations, fleetTraceViolations(res, ok)...)
	sort.Strings(res.Violations)
	return res, nil
}

// rollupHasCleanDrain reports whether any instance other than the killed one
// shows up in the collector's rollup as a clean exit.
func rollupHasCleanDrain(c *obs.Collector, killed string) bool {
	for _, inst := range c.Rollup().Instances {
		if !inst.Alive && inst.InstanceID != killed && inst.CleanExit {
			return true
		}
	}
	return false
}

// fleetTraceViolations enumerates broken invariants for the report.
func fleetTraceViolations(res *FleetTraceResult, traced bool) []string {
	var v []string
	if !traced {
		return append(v, "failover trace missing from collector")
	}
	if res.TraceInstances < 2 {
		v = append(v, fmt.Sprintf("stitched trace spans %d instance(s), want >= 2", res.TraceInstances))
	}
	if res.AttemptSpans < 2 {
		v = append(v, fmt.Sprintf("failover trace has %d attempt spans, want >= 2", res.AttemptSpans))
	}
	switch res.FailoverCause {
	case omq.CauseStaleRoute, omq.CauseRoutedTimeout, omq.CauseQueueNotFound:
	case "":
		v = append(v, "no attempt span carries a failover cause")
	default:
		v = append(v, fmt.Sprintf("unexpected failover cause %q", res.FailoverCause))
	}
	if res.PathInstances < 2 {
		v = append(v, fmt.Sprintf("critical path touches %d instance(s), want >= 2 (cross-process attribution)", res.PathInstances))
	}
	if res.Partial {
		v = append(v, "failover trace marked partial despite surviving instances")
	}
	if !res.DrainedClean {
		v = append(v, "no instance recorded as a clean drain after scale-down")
	}
	if res.HotTop != fleetTraceWorkspace(0) {
		v = append(v, fmt.Sprintf("fleet hot-commit top is %q, want %q", res.HotTop, fleetTraceWorkspace(0)))
	}
	return v
}

// Print writes the smoke summary.
func (r *FleetTraceResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fleet-trace smoke — seed %d: %d commits over a %d-instance routed fleet\n",
		r.Seed, r.Commits, r.Instances)
	fmt.Fprintf(w, "%-22s %s (%d spans, %d instances, %d attempts, cause %q)\n",
		"failover trace", r.TraceID, r.TraceSpans, r.TraceInstances, r.AttemptSpans, r.FailoverCause)
	fmt.Fprintf(w, "%-22s crosses %d instances\n", "critical path", r.PathInstances)
	fmt.Fprintf(w, "%-22s killed %s (spans lost), clean drain observed: %v\n",
		"lifecycle", r.KilledInstance, r.DrainedClean)
	fmt.Fprintf(w, "%-22s %s (%d commits)\n", "hot workspace", r.HotTop, r.HotTopCommits)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "VIOLATION: %s\n", v)
	}
}
