package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stacksync/internal/chunker"
	"stacksync/internal/client"
	"stacksync/internal/core"
	"stacksync/internal/faults"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/obs"
	"stacksync/internal/omq"
	"stacksync/internal/trace"
)

// MultiChaosConfig parameterizes the cross-instance chaos soak: the chaos
// stack of RunChaos, but with workspace-affinity routing enabled and the
// SyncService fleet scaled through a phase schedule (default 1 → 4 → 2)
// while instances are crashed mid-commit. Every client routes its commits
// through an omq.Router, so the soak exercises the full failover machinery:
// ring pushes, epoch fencing, stale-route retries and owner-timeout failover
// — across instance boundaries, not just across respawns of a single one.
type MultiChaosConfig struct {
	// Seed fixes the entire fault schedule; same seed, same chaos.
	Seed int64
	// Workspaces is the number of sync workspaces; devices are assigned
	// round-robin, so keys spread over the ring (default 4).
	Workspaces int
	// Clients is the number of devices writing concurrently (default 6).
	Clients int
	// CommitsPerClient is the number of files each device writes (default 10).
	CommitsPerClient int
	// CommitGap is the idle time between a device's commits (default 10 ms).
	CommitGap time.Duration
	// Phases is the fleet-size schedule the Supervisor is driven through
	// (default 1, 4, 2 — grow under load, then shrink under load).
	Phases []int
	// PhaseEvery is the dwell time between phase switches (default 400 ms).
	PhaseEvery time.Duration
	// CrashEvery is the mean period of the instance-crash schedule (default
	// 500 ms; jittered ±50% deterministically from the seed).
	CrashEvery time.Duration
	// CheckEvery is the Supervisor's enforcement period (default 60 ms).
	CheckEvery time.Duration
	// Settle caps how long the run may take to converge after the workload
	// stops (default 30 s).
	Settle time.Duration
}

func (c *MultiChaosConfig) applyDefaults() {
	if c.Workspaces <= 0 {
		c.Workspaces = 4
	}
	if c.Clients <= 0 {
		c.Clients = 6
	}
	if c.CommitsPerClient <= 0 {
		c.CommitsPerClient = 10
	}
	if c.CommitGap <= 0 {
		c.CommitGap = 10 * time.Millisecond
	}
	if len(c.Phases) == 0 {
		c.Phases = []int{1, 4, 2}
	}
	if c.PhaseEvery <= 0 {
		c.PhaseEvery = 400 * time.Millisecond
	}
	if c.CrashEvery <= 0 {
		c.CrashEvery = 500 * time.Millisecond
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 60 * time.Millisecond
	}
	if c.Settle <= 0 {
		c.Settle = 30 * time.Second
	}
}

func multiChaosWorkspace(i int) string { return fmt.Sprintf("mchaos-ws-%d", i) }

// multiChaosPlan builds the fault plan. Slightly gentler than chaosPlan on
// the client MQ edge — routed commits are synchronous, so every fault there
// spends part of a bounded retry budget instead of an open-ended
// retransmission loop.
func multiChaosPlan(cfg MultiChaosConfig, reg *obs.Registry) *faults.Plan {
	horizon := time.Duration(cfg.CommitsPerClient) * (cfg.CommitGap + 40*time.Millisecond)
	if horizon < time.Second {
		horizon = time.Second
	}
	return faults.NewPlan(faults.Config{
		Seed:     cfg.Seed,
		Registry: reg,
		Sites: map[string]faults.SiteConfig{
			// Client-side publishes: routed commitRequests vanish, dup, lag —
			// this is the proxy↔instance partition of the issue brief.
			"mq.client": {DropP: 0.04, DupP: 0.04, DelayP: 0.08, MaxDelay: 15 * time.Millisecond},
			// Notification pushes: the lossiest hop — resync must repair.
			"mq.notif": {DropP: 0.10, DupP: 0.05, DelayP: 0.10, MaxDelay: 20 * time.Millisecond},
			// Storage: transient errors, latency spikes, one outage window.
			"objstore": {
				ErrorP: 0.08, DelayP: 0.08, MaxDelay: 10 * time.Millisecond,
				Outages: faults.RandomOutages(cfg.Seed, "objstore", 1, 200*time.Millisecond, horizon),
			},
			// Metadata transactions: sporadic aborts the pipeline must retry.
			"meta": {AbortP: 0.10},
		},
	})
}

// MultiChaosResult reports the cross-instance soak's outcome.
type MultiChaosResult struct {
	Seed       int64         `json:"seed"`
	Workspaces int           `json:"workspaces"`
	Clients    int           `json:"clients"`
	Commits    int           `json:"commits"`
	Phases     []int         `json:"phases"`
	Crashes    int           `json:"crashes"`
	MaxRespawn time.Duration `json:"maxRespawn"`
	SettleTime time.Duration `json:"settleTime"`
	Converged  bool          `json:"converged"`
	// ScheduleStable is true when rebuilding the plan from the same seed
	// yields a byte-identical schedule description.
	ScheduleStable bool `json:"scheduleStable"`
	// Fleet and ring state after the final phase settled.
	FinalInstances int    `json:"finalInstances"`
	FinalRingSize  int    `json:"finalRingSize"`
	RingEpoch      uint64 `json:"ringEpoch"`
	// Rebalances counts supervisor.rebalance events in the flight recorder.
	Rebalances int `json:"rebalances"`
	// Router/fencing traffic over the whole run.
	RoutedCalls  uint64            `json:"routedCalls"`
	StaleRejects uint64            `json:"staleRejects"`
	Failovers    uint64            `json:"failovers"`
	Fenced       uint64            `json:"fenced"`
	FaultCounts  map[string]uint64 `json:"faultCounts"`
	// Fleet observability: stitched traces collected across instances, how
	// many contain a cause-annotated router failover, and the fleet-merged
	// hottest workspace by commits.
	StitchedTraces int    `json:"stitchedTraces"`
	FailoverTraces int    `json:"failoverTraces"`
	HotTop         string `json:"hotTop"`
	HotTopCommits  uint64 `json:"hotTopCommits"`
	// Violations lists every broken invariant (empty on a clean run).
	Violations []string `json:"violations,omitempty"`
}

// RunMultiChaos executes the cross-instance chaos soak and checks
// convergence: every acked commit present on every device of its workspace,
// no spurious conflict copies, the fleet and ring settled on the final phase.
func RunMultiChaos(cfg MultiChaosConfig) (*MultiChaosResult, error) {
	cfg.applyDefaults()
	reg := obs.NewRegistry()
	events := obs.NewEventLog(4096)
	plan := multiChaosPlan(cfg, reg)
	scheduleStable := bytes.Equal(
		[]byte(plan.Describe(512)),
		[]byte(multiChaosPlan(cfg, nil).Describe(512)),
	)

	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore(metastore.WithFaults(plan, "meta"), metastore.WithRegistry(reg))
	defer meta.Close()
	for i := 0; i < cfg.Workspaces; i++ {
		if err := meta.CreateWorkspace(metastore.Workspace{ID: multiChaosWorkspace(i), Owner: "user-0"}); err != nil {
			return nil, err
		}
	}
	baseStore := objstore.NewMemory()
	faultyStore := objstore.NewFaulty(baseStore, plan, "objstore", nil)

	// Node hosting the crashing SyncService instances.
	nodeBroker, err := omq.NewBroker(m, omq.WithID("10-node"), omq.WithRegistry(reg), omq.WithEventLog(events))
	if err != nil {
		return nil, err
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		return nil, err
	}
	defer rb.Close()

	notifMQ := mq.NewFaulty(m, plan, "mq.notif", nil)
	notifBroker, err := omq.NewBroker(notifMQ, omq.WithID("20-notif"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	defer notifBroker.Close()
	// Fleet observability (DESIGN §15): every spawned instance exports its
	// own tracer/registry/events/sketch into one Collector, polled while the
	// chaos runs so crashes only lose the spans buffered since the last
	// scrape.
	collector := obs.NewCollector()
	obsOf := installFleetObs(rb, collector)
	stopPolling := collector.StartPolling(50 * time.Millisecond)
	defer stopPolling()

	// Instance factory: each spawned instance learns its ring identity before
	// it is bound, so fencing is armed from the first UpdateRing push.
	rb.RegisterInstanceFactory(core.ServiceOID, func(id string) (interface{}, error) {
		svc := core.NewService(meta, notifBroker)
		svc.SetInstance(id)
		if err := registerFleetInstance(collector, obsOf, svc, id); err != nil {
			return nil, err
		}
		return svc.API(), nil
	})
	if err := m.DeclareQueue(core.ServiceOID); err != nil {
		return nil, err
	}

	// Routing supervisor driven through the phase schedule by an atomic
	// target the phase driver advances.
	var target atomic.Int64
	target.Store(int64(cfg.Phases[0]))
	supBroker, err := omq.NewBroker(m, omq.WithID("00-supervisor"), omq.WithRegistry(reg), omq.WithEventLog(events))
	if err != nil {
		return nil, err
	}
	defer supBroker.Close()
	maxPhase := 0
	for _, p := range cfg.Phases {
		if p > maxPhase {
			maxPhase = p
		}
	}
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:        core.ServiceOID,
		CheckEvery: cfg.CheckEvery,
		Provisioner: omq.ProvisionerFunc(func(time.Time, omq.ObjectInfo) int {
			return int(target.Load())
		}),
		MaxInstances: maxPhase + 2,
		Routing:      true,
		// Keep the rebalance latency (inventory collection + ring push) well
		// under the crash cadence, or the ring would chronically trail the
		// fleet and every routed call would spend its budget on corpses.
		InventoryWindow: 50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer sup.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for rb.InstanceCount(core.ServiceOID) < cfg.Phases[0] || sup.Ring() == nil {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: supervisor never built the initial ring")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Client devices: each on its own broker over the faulty client MQ view,
	// with a Router so commits and resyncs follow workspace affinity.
	wsOf := func(i int) string { return multiChaosWorkspace(i % cfg.Workspaces) }
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		// Each device traces into its own sink and joins the collector as a
		// pseudo-source: the root/route/attempt spans of every routed commit
		// live client-side, so a failover is traceable even when the owner
		// that dropped it died unscraped.
		clientID := fmt.Sprintf("30-client-%d", i)
		clientSink := obs.NewSpanSink(0)
		clientTracer := obs.NewTracer(obs.WithSink(clientSink), obs.WithInstance(clientID))
		collector.Register(obs.Source{InstanceID: clientID, Sink: clientSink})
		cb, err := omq.NewBroker(mq.NewFaulty(m, plan, "mq.client", nil),
			omq.WithID(clientID), omq.WithRegistry(reg), omq.WithTracer(clientTracer))
		if err != nil {
			return nil, err
		}
		defer cb.Close()
		router := omq.NewRouter(cb, omq.RouterConfig{
			OID:         core.ServiceOID,
			Timeout:     400 * time.Millisecond,
			Attempts:    14,
			BackoffBase: 15 * time.Millisecond,
			BackoffMax:  250 * time.Millisecond,
		})
		cl, err := client.NewClient(client.Config{
			UserID:      "user-0",
			DeviceID:    fmt.Sprintf("dev-%d", i),
			WorkspaceID: wsOf(i),
			Broker:      cb,
			Router:      router,
			Storage:     faultyStore,
			Registry:    reg,
			Tracer:      clientTracer,
			Chunker:     chunker.Fixed{ChunkSize: 4 * 1024},
			CallTimeout: 500 * time.Millisecond, CallRetries: 10,
			StoreBackoff: 5 * time.Millisecond, BreakerThreshold: 4,
			BreakerCooldown: 150 * time.Millisecond,
			RetransmitEvery: 250 * time.Millisecond,
			ResyncEvery:     250 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		if err := cl.Start(); err != nil {
			return nil, fmt.Errorf("bench: start client %d: %w", i, err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	start := time.Now()
	plan.Begin(start)

	// Phase driver: walk the fleet through the schedule while the workload
	// runs. It is never cut short — the final phase must be applied so the
	// end-state checks (ring size, instance count) are meaningful.
	phaseDone := make(chan struct{})
	go func() {
		defer close(phaseDone)
		for _, ph := range cfg.Phases[1:] {
			time.Sleep(cfg.PhaseEvery)
			target.Store(int64(ph))
		}
	}()

	// Crash schedule: kill -9 one instance at a time; the Supervisor must
	// respawn to the current phase target and re-push the ring.
	type downInterval struct{ from, to time.Time }
	var crashMu sync.Mutex
	var downs []downInterval
	stopCrasher := make(chan struct{})
	crasherDone := make(chan struct{})
	crashTimes := faults.CrashSchedule(cfg.Seed, cfg.CrashEvery, 0.5, cfg.Settle)
	go func() {
		defer close(crasherDone)
		for _, at := range crashTimes {
			select {
			case <-stopCrasher:
				return
			case <-time.After(time.Until(start.Add(at))):
			}
			if rb.KillLocal(core.ServiceOID) == "" {
				continue
			}
			crashMu.Lock()
			downs = append(downs, downInterval{from: time.Now()})
			idx := len(downs) - 1
			crashMu.Unlock()
			for rb.InstanceCount(core.ServiceOID) < int(target.Load()) {
				select {
				case <-stopCrasher:
					return
				default:
				}
				time.Sleep(time.Millisecond)
			}
			crashMu.Lock()
			downs[idx].to = time.Now()
			crashMu.Unlock()
		}
	}()

	// Workload: each device writes its own distinct paths into its own
	// workspace; a routed PutFile acks only once the metadata commit is
	// durable, so "acked" here is the strong notion the issue demands.
	expected := make(map[string]map[string]string) // workspace -> path -> content
	for i := 0; i < cfg.Workspaces; i++ {
		expected[multiChaosWorkspace(i)] = make(map[string]string)
	}
	var expMu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			for k := 0; k < cfg.CommitsPerClient; k++ {
				path := fmt.Sprintf("dev%d/file-%04d.txt", i, k)
				content := fmt.Sprintf("mchaos seed=%d dev=%d k=%d", cfg.Seed, i, k)
				if err := cl.PutFile(path, []byte(content)); err != nil {
					errCh <- fmt.Errorf("bench: multichaos put %s: %w", path, err)
					return
				}
				expMu.Lock()
				expected[wsOf(i)][path] = content
				expMu.Unlock()
				time.Sleep(cfg.CommitGap)
			}
		}(i, cl)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}
	workloadEnd := time.Now()

	close(stopCrasher)
	<-crasherDone
	<-phaseDone

	converged := false
	var settleTime time.Duration
	settleDeadline := workloadEnd.Add(cfg.Settle)
	for time.Now().Before(settleDeadline) {
		if multiChaosConverged(clients, wsOf, expected) {
			converged = true
			settleTime = time.Since(workloadEnd)
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Let the fleet drain to the final phase target before reading end state.
	finalWant := cfg.Phases[len(cfg.Phases)-1]
	fleetDeadline := time.Now().Add(5 * time.Second)
	for rb.InstanceCount(core.ServiceOID) != finalWant && time.Now().Before(fleetDeadline) {
		time.Sleep(10 * time.Millisecond)
	}

	res := &MultiChaosResult{
		Seed:           cfg.Seed,
		Workspaces:     cfg.Workspaces,
		Clients:        cfg.Clients,
		Phases:         cfg.Phases,
		Converged:      converged,
		SettleTime:     settleTime,
		ScheduleStable: scheduleStable,
		FinalInstances: rb.InstanceCount(core.ServiceOID),
		FaultCounts:    plan.Counts(),
		RoutedCalls:    reg.CounterValue("omq_router_calls_total", "oid", core.ServiceOID),
		StaleRejects:   reg.CounterValue("omq_router_stale_total", "oid", core.ServiceOID),
		Failovers:      reg.CounterValue("omq_router_failover_total", "oid", core.ServiceOID),
		Fenced:         reg.CounterValue("core_fenced_total"),
	}
	for _, g := range expected {
		res.Commits += len(g)
	}
	if r := sup.Ring(); r != nil {
		res.FinalRingSize = len(r.Members())
		res.RingEpoch = r.Epoch()
	}
	for _, e := range events.Tail(events.Len()) {
		if e.Kind == obs.EventSupervisorRebalance {
			res.Rebalances++
		}
	}
	crashMu.Lock()
	res.Crashes = len(downs)
	for _, d := range downs {
		if d.to.IsZero() {
			continue
		}
		if dur := d.to.Sub(d.from); dur > res.MaxRespawn {
			res.MaxRespawn = dur
		}
	}
	crashMu.Unlock()

	// Final scrape (live instances and client pseudo-sources), then read the
	// fleet-wide trace and heavy-hitter state.
	stopPolling()
	collector.Collect()
	res.StitchedTraces, res.FailoverTraces = countFailoverTraces(collector)
	if hot := collector.Rollup().HotCommits; len(hot) > 0 {
		res.HotTop = hot[0].Key
		res.HotTopCommits = hot[0].Count
	}

	res.Violations = multiChaosViolations(clients, wsOf, expected, res)
	return res, nil
}

// multiChaosConverged reports whether every client holds exactly its
// workspace's expected state with no queued uploads left.
func multiChaosConverged(clients []*client.Client, wsOf func(int) string, expected map[string]map[string]string) bool {
	for i, cl := range clients {
		if client.UploadQueueDepth(cl.Registry(), fmt.Sprintf("dev-%d", i)) > 0 {
			return false
		}
		exp := expected[wsOf(i)]
		paths := cl.Paths()
		if len(paths) != len(exp) {
			return false
		}
		for path, want := range exp {
			got, ok := cl.FileContent(path)
			if !ok || string(got) != want {
				return false
			}
		}
	}
	return true
}

// multiChaosViolations enumerates broken invariants for the report.
func multiChaosViolations(clients []*client.Client, wsOf func(int) string, expected map[string]map[string]string, res *MultiChaosResult) []string {
	var v []string
	if !res.Converged {
		v = append(v, fmt.Sprintf("clients did not converge within the settle window (%d commits expected)", res.Commits))
	}
	for i, cl := range clients {
		exp := expected[wsOf(i)]
		for _, p := range cl.Paths() {
			if strings.Contains(p, "conflicted copy") {
				v = append(v, fmt.Sprintf("dev-%d holds spurious conflict copy %q", i, p))
			}
			if _, ok := exp[p]; !ok {
				v = append(v, fmt.Sprintf("dev-%d holds unexpected path %q", i, p))
			}
		}
		for path := range exp {
			if _, ok := cl.FileContent(path); !ok {
				v = append(v, fmt.Sprintf("dev-%d lost acked commit %q", i, path))
			}
		}
	}
	if !res.ScheduleStable {
		v = append(v, "fault schedule not reproducible from seed")
	}
	if res.MaxRespawn > time.Second {
		v = append(v, fmt.Sprintf("crash respawn took %v (> 1s)", res.MaxRespawn))
	}
	finalWant := res.Phases[len(res.Phases)-1]
	if res.FinalInstances != finalWant {
		v = append(v, fmt.Sprintf("fleet settled at %d instances, want %d", res.FinalInstances, finalWant))
	}
	if res.FinalRingSize != finalWant {
		v = append(v, fmt.Sprintf("ring settled with %d members, want %d", res.FinalRingSize, finalWant))
	}
	if res.Rebalances == 0 {
		v = append(v, "no supervisor.rebalance events recorded despite scale phases")
	}
	if res.StitchedTraces == 0 {
		v = append(v, "collector holds no stitched traces despite a traced workload")
	}
	if res.Failovers > 0 && res.FailoverTraces == 0 {
		v = append(v, fmt.Sprintf("%d router failovers happened but no stitched trace shows a cause-annotated attempt", res.Failovers))
	}
	if res.HotTop == "" || !strings.HasPrefix(res.HotTop, "mchaos-ws-") {
		v = append(v, fmt.Sprintf("fleet hot-workspace sketch surfaced %q, want an mchaos workspace", res.HotTop))
	}
	sort.Strings(v)
	return v
}

// Print writes the soak summary.
func (r *MultiChaosResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Multi-instance chaos soak — seed %d: %d commits, %d devices over %d workspaces, phases %v, %d crashes\n",
		r.Seed, r.Commits, r.Clients, r.Workspaces, r.Phases, r.Crashes)
	status := "CONVERGED"
	if !r.Converged {
		status = "DIVERGED"
	}
	fmt.Fprintf(w, "%-22s %s (settle %v)\n", "outcome", status, r.SettleTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%-22s %v\n", "max respawn", r.MaxRespawn.Round(time.Millisecond))
	fmt.Fprintf(w, "%-22s %d instances, ring %d members @ epoch %d\n", "final fleet", r.FinalInstances, r.FinalRingSize, r.RingEpoch)
	fmt.Fprintf(w, "%-22s %d rebalances, %d routed calls, %d failovers, %d stale rejects, %d fenced\n",
		"routing", r.Rebalances, r.RoutedCalls, r.Failovers, r.StaleRejects, r.Fenced)
	fmt.Fprintf(w, "%-22s %d stitched traces, %d with failover attempts; hottest workspace %s (%d commits)\n",
		"fleet obs", r.StitchedTraces, r.FailoverTraces, r.HotTop, r.HotTopCommits)
	fmt.Fprintf(w, "%-22s %v\n", "schedule stable", r.ScheduleStable)
	keys := make([]string, 0, len(r.FaultCounts))
	for k := range r.FaultCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-22s %d\n", "faults "+k, r.FaultCounts[k])
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "VIOLATION: %s\n", v)
	}
}

// --- UB1 day-8 peak replay over a routed fleet -----------------------------

// UB1MultiConfig parameterizes the capstone replay: the UB1 day-8 peak hour
// (8,514 commits/min at full scale, §5.3.1), time-compressed, replayed as
// routed commitRequests against a fixed fleet of SyncService instances, with
// the paper's SLA latency bound (d = 450 ms, Table 3) tracked as an SLO.
type UB1MultiConfig struct {
	// Seed fixes the trace shape and the commit schedule.
	Seed int64
	// Instances is the fleet size (default 4).
	Instances int
	// Workspaces spreads commits over this many ring keys (default 24).
	Workspaces int
	// Commits is the number of commitRequests replayed (default 3000).
	Commits int
	// Committers is the number of concurrent load workers (default 16).
	Committers int
	// Duration is the wall time the peak hour is compressed into (default 5s).
	Duration time.Duration
	// SLOTarget is the per-commit latency objective (default 450 ms — the
	// paper's SLA d for the one-minute provisioning policies, Table 3).
	SLOTarget time.Duration
	// SLOObjective is the required fraction within target (default 0.99).
	SLOObjective float64
	// CheckEvery is the Supervisor's enforcement period (default 50 ms).
	CheckEvery time.Duration
}

func (c *UB1MultiConfig) applyDefaults() {
	if c.Instances <= 0 {
		c.Instances = 4
	}
	if c.Workspaces <= 0 {
		c.Workspaces = 24
	}
	if c.Commits <= 0 {
		c.Commits = 3000
	}
	if c.Committers <= 0 {
		c.Committers = 16
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 450 * time.Millisecond
	}
	if c.SLOObjective <= 0 || c.SLOObjective > 1 {
		c.SLOObjective = 0.99
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 50 * time.Millisecond
	}
}

func ub1MultiWorkspace(i int) string { return fmt.Sprintf("ub1m-ws-%02d", i) }

// UB1MultiResult reports the replay's outcome.
type UB1MultiResult struct {
	Seed       int64 `json:"seed"`
	Instances  int   `json:"instances"`
	Workspaces int   `json:"workspaces"`
	Scheduled  int   `json:"scheduled"`
	Acked      int   `json:"acked"`
	Failed     int   `json:"failed"`
	// Lost counts acked commits missing from the metadata store afterwards —
	// must be zero: a routed ack means a durable commit.
	Lost    int           `json:"lost"`
	Elapsed time.Duration `json:"elapsed"`
	// RatePerMinute is the achieved commit throughput, for comparison with
	// the (time-compressed) trace demand.
	RatePerMinute float64 `json:"ratePerMinute"`
	// TracePeakPerMinute is the replayed trace's peak demand at full scale
	// (≈ trace.UB1PeakPerMinute for the day-8 peak hour).
	TracePeakPerMinute float64       `json:"tracePeakPerMinute"`
	P50                time.Duration `json:"p50"`
	P99                time.Duration `json:"p99"`
	SLOTarget          time.Duration `json:"sloTarget"`
	SLOObjective       float64       `json:"sloObjective"`
	Attainment         float64       `json:"attainment"`
	BurnRate           float64       `json:"burnRate"`
	SLOMet             bool          `json:"sloMet"`
	RingSize           int           `json:"ringSize"`
	RingEpoch          uint64        `json:"ringEpoch"`
	RoutedCalls        uint64        `json:"routedCalls"`
	Failovers          uint64        `json:"failovers"`
	StaleRejects       uint64        `json:"staleRejects"`
}

// RunUB1Multi replays the UB1 day-8 peak hour, time-compressed into
// cfg.Duration, as routed commitRequests over a fleet of cfg.Instances
// SyncService instances, and verifies SLO attainment plus that every acked
// commit is durable in the metadata store.
func RunUB1Multi(cfg UB1MultiConfig) (*UB1MultiResult, error) {
	cfg.applyDefaults()

	// Schedule: sample commit arrival offsets from the day-8 peak hour's
	// minute-level rate curve, compressed into cfg.Duration. Deterministic
	// from the seed.
	_, day8 := trace.UB1WeekAndDay8(cfg.Seed)
	hour := day8.HourSlice(13) // the diurnal peak lands at ~13:00
	weights := hour.Rates
	if len(weights) == 0 {
		return nil, fmt.Errorf("bench: empty UB1 peak-hour trace")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	slotDur := cfg.Duration / time.Duration(len(weights))
	type ub1Job struct {
		at  time.Duration
		ws  int
		idx int
	}
	jobs := make([]ub1Job, cfg.Commits)
	for i := range jobs {
		u := rnd.Float64() * total
		slot := sort.SearchFloat64s(cum, u)
		if slot >= len(weights) {
			slot = len(weights) - 1
		}
		at := time.Duration(slot)*slotDur + time.Duration(rnd.Float64()*float64(slotDur))
		jobs[i] = ub1Job{at: at, ws: rnd.Intn(cfg.Workspaces), idx: i}
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].at < jobs[b].at })

	// Stack: healthy plumbing — the replay measures routed capacity, not
	// fault repair (the chaos soak covers that).
	reg := obs.NewRegistry()
	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore(metastore.WithRegistry(reg))
	defer meta.Close()
	for i := 0; i < cfg.Workspaces; i++ {
		if err := meta.CreateWorkspace(metastore.Workspace{ID: ub1MultiWorkspace(i), Owner: "user-0"}); err != nil {
			return nil, err
		}
	}
	nodeBroker, err := omq.NewBroker(m, omq.WithID("10-node"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		return nil, err
	}
	defer rb.Close()
	notifBroker, err := omq.NewBroker(m, omq.WithID("20-notif"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	defer notifBroker.Close()
	rb.RegisterInstanceFactory(core.ServiceOID, func(id string) (interface{}, error) {
		svc := core.NewService(meta, notifBroker)
		svc.SetInstance(id)
		return svc.API(), nil
	})
	if err := m.DeclareQueue(core.ServiceOID); err != nil {
		return nil, err
	}
	supBroker, err := omq.NewBroker(m, omq.WithID("00-supervisor"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	defer supBroker.Close()
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:             core.ServiceOID,
		CheckEvery:      cfg.CheckEvery,
		Provisioner:     omq.FixedProvisioner(cfg.Instances),
		MaxInstances:    cfg.Instances,
		Routing:         true,
		InventoryWindow: 50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer sup.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := sup.Ring()
		if rb.InstanceCount(core.ServiceOID) == cfg.Instances && r != nil && len(r.Members()) == cfg.Instances {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: fleet never reached %d routed instances", cfg.Instances)
		}
		time.Sleep(5 * time.Millisecond)
	}

	loadBroker, err := omq.NewBroker(m, omq.WithID("40-load"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	defer loadBroker.Close()
	router := omq.NewRouter(loadBroker, omq.RouterConfig{
		OID:         core.ServiceOID,
		Timeout:     600 * time.Millisecond,
		Attempts:    8,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	})
	router.Refresh()

	slo := obs.NewSLOTracker(reg, obs.SLOConfig{
		Name:      "ub1_multi_commit",
		Target:    cfg.SLOTarget,
		Objective: cfg.SLOObjective,
	})

	// Replay: committers pull scheduled jobs and fire each at its offset.
	// Latency is measured from the scheduled arrival, not the send, so
	// backlog shows up as SLO misses instead of being silently absorbed.
	jobCh := make(chan ub1Job, len(jobs))
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	var (
		mu     sync.Mutex
		lats   []time.Duration
		failed int
		acked  = make(map[string][]string) // workspace -> acked paths
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if d := time.Until(start.Add(job.at)); d > 0 {
					time.Sleep(d)
				}
				ws := ub1MultiWorkspace(job.ws)
				path := fmt.Sprintf("peak/f%05d.txt", job.idx)
				req := core.CommitRequest{
					Workspace: ws,
					DeviceID:  "load-gen",
					Items: []metastore.ItemVersion{{
						Workspace: ws,
						ItemID:    ws + ":" + path,
						Path:      path,
						Version:   1,
						Status:    metastore.Added,
						Size:      1,
						DeviceID:  "load-gen",
					}},
				}
				err := router.Call(ws, "CommitRequest", nil, req)
				lat := time.Since(start.Add(job.at))
				slo.Observe(lat)
				mu.Lock()
				lats = append(lats, lat)
				if err != nil {
					failed++
				} else {
					acked[ws] = append(acked[ws], path)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verification: every acked commit must be present in the metadata
	// store — a routed ack is a durability promise.
	lost := 0
	ackedTotal := 0
	for ws, paths := range acked {
		state, err := meta.State(ws)
		if err != nil {
			return nil, err
		}
		have := make(map[string]bool, len(state))
		for _, item := range state {
			have[item.Path] = true
		}
		for _, p := range paths {
			ackedTotal++
			if !have[p] {
				lost++
			}
		}
	}

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	res := &UB1MultiResult{
		Seed:               cfg.Seed,
		Instances:          cfg.Instances,
		Workspaces:         cfg.Workspaces,
		Scheduled:          cfg.Commits,
		Acked:              ackedTotal,
		Failed:             failed,
		Lost:               lost,
		Elapsed:            elapsed,
		RatePerMinute:      float64(ackedTotal) / elapsed.Minutes(),
		TracePeakPerMinute: hour.Peak() * 60,
		P50:                pct(0.50),
		P99:                pct(0.99),
		SLOTarget:          cfg.SLOTarget,
		SLOObjective:       cfg.SLOObjective,
		Attainment:         slo.Attainment(),
		BurnRate:           slo.BurnRate(),
		RoutedCalls:        reg.CounterValue("omq_router_calls_total", "oid", core.ServiceOID),
		Failovers:          reg.CounterValue("omq_router_failover_total", "oid", core.ServiceOID),
		StaleRejects:       reg.CounterValue("omq_router_stale_total", "oid", core.ServiceOID),
	}
	res.SLOMet = res.Attainment >= cfg.SLOObjective
	if r := sup.Ring(); r != nil {
		res.RingSize = len(r.Members())
		res.RingEpoch = r.Epoch()
	}
	return res, nil
}

// Print writes the replay summary.
func (r *UB1MultiResult) Print(w io.Writer) {
	fmt.Fprintf(w, "UB1 day-8 peak replay — seed %d: %d commits over %d workspaces on %d routed instances\n",
		r.Seed, r.Scheduled, r.Workspaces, r.Instances)
	fmt.Fprintf(w, "%-22s %d acked, %d failed, %d lost (elapsed %v)\n", "outcome", r.Acked, r.Failed, r.Lost, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "%-22s %.0f commits/min achieved (trace peak %.0f/min at full scale)\n", "throughput", r.RatePerMinute, r.TracePeakPerMinute)
	fmt.Fprintf(w, "%-22s p50 %v, p99 %v\n", "latency", r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond))
	status := "MET"
	if !r.SLOMet {
		status = "MISSED"
	}
	fmt.Fprintf(w, "%-22s %.4f attainment vs %.2f objective at d=%v — %s (burn %.2f)\n",
		"slo", r.Attainment, r.SLOObjective, r.SLOTarget, status, r.BurnRate)
	fmt.Fprintf(w, "%-22s ring %d members @ epoch %d; %d routed calls, %d failovers, %d stale rejects\n",
		"routing", r.RingSize, r.RingEpoch, r.RoutedCalls, r.Failovers, r.StaleRejects)
}
