package bench

import (
	"fmt"
	"time"

	"stacksync/internal/client"
	"stacksync/internal/trace"
)

// replayTimeout bounds how long the replayer waits for one commit to land.
const replayTimeout = 30 * time.Second

// ReplayResult aggregates the traffic a trace replay generated at the
// writing device.
type ReplayResult struct {
	Ops          int           `json:"ops"`
	ControlBytes uint64        `json:"controlBytes"`
	StorageBytes uint64        `json:"storageBytes"`
	Elapsed      time.Duration `json:"elapsed"`
}

// TotalBytes is control + storage.
func (r ReplayResult) TotalBytes() uint64 { return r.ControlBytes + r.StorageBytes }

// Overhead computes the Fig. 7(b) metric: total traffic over the benchmark
// data volume.
func (r ReplayResult) Overhead(benchmarkBytes int64) float64 {
	if benchmarkBytes <= 0 {
		return 0
	}
	return float64(r.TotalBytes()) / float64(benchmarkBytes)
}

// ReplayTrace replays tr on device 0 of st, one operation at a time: "the
// next operation did not start until the current one was successfully
// committed" (§5.2.2). It returns the device's traffic deltas.
func ReplayTrace(st *Stack, tr *trace.Trace) (*ReplayResult, error) {
	return replay(st, tr, 1, nil)
}

// ReplayTraceBatched replays tr committing `batch` operations per
// commitRequest — the file-bundling variant of Table 2.
func ReplayTraceBatched(st *Stack, tr *trace.Trace, batch int) (*ReplayResult, error) {
	if batch < 1 {
		batch = 1
	}
	return replay(st, tr, batch, nil)
}

// ReplayTraceInto replays tr reusing an existing materializer, so a trace
// can be replayed in phases (dependency prefix, then measured ops) against
// one content state.
func ReplayTraceInto(st *Stack, tr *trace.Trace, mat *trace.Materializer) (*ReplayResult, error) {
	return replay(st, tr, 1, mat)
}

func replay(st *Stack, tr *trace.Trace, batch int, mat *trace.Materializer) (*ReplayResult, error) {
	writer := st.Client(0)
	if mat == nil {
		mat = trace.NewMaterializer(1)
	}
	// expectations records, per queued op, the condition confirming its
	// commit: the path reaching a version strictly above what the client
	// held when the op was issued, or the path disappearing for deletes.
	type expectation struct {
		path    string
		version uint64 // 0 means "wait for deletion"
	}

	ctrlBefore := st.ControlTraffic(0)
	storBefore := st.StorageTraffic(0)
	start := time.Now()

	pending := make([]client.Change, 0, batch)
	var waits []expectation

	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if batch == 1 {
			ch := pending[0]
			var err error
			if ch.Delete {
				err = writer.RemoveFile(ch.Path)
			} else {
				err = writer.PutFile(ch.Path, ch.Content)
			}
			if err != nil {
				return err
			}
		} else {
			if err := writer.PutBatch(pending); err != nil {
				return err
			}
		}
		for _, w := range waits {
			if w.version == 0 {
				if err := writer.WaitForGone(w.path, replayTimeout); err != nil {
					return err
				}
				continue
			}
			if err := writer.WaitForVersion(w.path, w.version, replayTimeout); err != nil {
				return err
			}
		}
		pending = pending[:0]
		waits = waits[:0]
		return nil
	}

	inFlight := make(map[string]bool)
	for _, op := range tr.Ops {
		// Two operations on the same path must not share a bundle: the
		// second would propose against a not-yet-committed version.
		if inFlight[op.Path] {
			if err := flush(); err != nil {
				return nil, err
			}
			for p := range inFlight {
				delete(inFlight, p)
			}
		}
		content, err := mat.Apply(op)
		if err != nil {
			return nil, fmt.Errorf("bench: materialize op %d: %w", op.Seq, err)
		}
		switch op.Action {
		case trace.ADD, trace.UPDATE:
			base, _ := writer.Version(op.Path) // 0 when absent or deleted
			pending = append(pending, client.Change{Path: op.Path, Content: content})
			waits = append(waits, expectation{path: op.Path, version: base + 1})
		case trace.REMOVE:
			pending = append(pending, client.Change{Path: op.Path, Delete: true})
			waits = append(waits, expectation{path: op.Path})
		}
		inFlight[op.Path] = true
		if len(pending) >= batch {
			if err := flush(); err != nil {
				return nil, err
			}
			for p := range inFlight {
				delete(inFlight, p)
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}

	ctrlAfter := st.ControlTraffic(0)
	storAfter := st.StorageTraffic(0)
	return &ReplayResult{
		Ops:          len(tr.Ops),
		ControlBytes: ctrlAfter.Total() - ctrlBefore.Total(),
		StorageBytes: storAfter.Total() - storBefore.Total(),
		Elapsed:      time.Since(start),
	}, nil
}
