package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"stacksync/internal/obs"
	"stacksync/internal/provision"
	"stacksync/internal/trace"
)

// The elastic-demo experiment closes the observability loop: the Fig. 8
// day-8 replay runs with the full telemetry stack attached — per-second
// elasticity gauges scraped into time series, SLO counters, a response-time
// histogram, and the provisioning flight recorder — and the paper-style
// over/under-provisioning summary at the end is computed *from the scraped
// series*, not from the simulator's private state. The admin surface
// (/varz, /elasticz, /eventz) shows the same data live while the replay runs.

// SimObs bundles the telemetry a replay publishes into: a private registry
// with gauges for the elasticity loop (sim_lambda_obs, sim_lambda_pred,
// sim_instances), a response histogram and SLO tracker, a Scraper ticked at
// simulated instants, and the flight-recorder EventLog every provisioning
// decision lands in.
type SimObs struct {
	Registry *obs.Registry
	Events   *obs.EventLog
	Scraper  *obs.Scraper
	SLO      *obs.SLOTracker

	gObs  *obs.Gauge
	gPred *obs.Gauge
	gInst *obs.Gauge
	hResp *obs.Histogram

	mu       sync.Mutex
	combined *provision.Combined
	lastTick time.Time
	haveTick bool
}

// Elasticity series keys published by an instrumented replay.
const (
	SimLambdaObsSeries  = "sim_lambda_obs"
	SimLambdaPredSeries = "sim_lambda_pred"
	SimInstancesSeries  = "sim_instances"
	SimResponseSeries   = "sim_response_seconds"
	SimSLOName          = "sync-latency"
)

// NewSimObs builds the telemetry bundle for an instrumented replay. The
// scraper samples every 5 simulated seconds; the raw ring covers an hour and
// a 24× downsampled ring extends history across the full simulated day.
func NewSimObs(sla provision.SLA) *SimObs {
	reg := obs.NewRegistry()
	o := &SimObs{
		Registry: reg,
		Events:   obs.NewEventLog(obs.DefaultEventLogCapacity),
		Scraper: obs.NewScraper(reg, obs.ScraperConfig{
			Interval:   5 * time.Second,
			Retention:  720,
			Downsample: 24,
		}),
		SLO: obs.NewSLOTracker(reg, obs.SLOConfig{
			Name:      SimSLOName,
			Target:    sla.D,
			Objective: 0.99,
		}),
		gObs:  reg.Gauge(SimLambdaObsSeries),
		gPred: reg.Gauge(SimLambdaPredSeries),
		gInst: reg.Gauge(SimInstancesSeries),
		hResp: reg.Histogram(SimResponseSeries),
	}
	return o
}

// setCombined exposes the live provisioner to concurrent /elasticz readers.
func (o *SimObs) setCombined(c *provision.Combined) {
	o.mu.Lock()
	o.combined = c
	o.mu.Unlock()
}

// Combined returns the provisioner of the run in progress (nil before one
// started).
func (o *SimObs) Combined() *provision.Combined {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.combined
}

// observeResponse records one response time (seconds) into the histogram and
// the SLO counters.
func (o *SimObs) observeResponse(sec float64) {
	o.hResp.Observe(sec)
	o.SLO.ObserveSeconds(sec)
}

// observeSecond publishes the per-second elasticity state and ticks the
// scraper whenever a full sampling interval of simulated time has elapsed.
func (o *SimObs) observeSecond(now time.Time, observed, predicted float64, instances int) {
	o.gObs.Set(observed)
	o.gPred.Set(predicted)
	o.gInst.Set(float64(instances))
	o.mu.Lock()
	due := !o.haveTick || now.Sub(o.lastTick) >= o.Scraper.Interval()
	if due {
		o.lastTick = now
		o.haveTick = true
	}
	o.mu.Unlock()
	if due {
		o.Scraper.Tick(now)
	}
}

// finalTick takes one last sample so cumulative counters are fully flushed
// into the scraped history.
func (o *SimObs) finalTick(now time.Time) {
	o.mu.Lock()
	o.lastTick = now
	o.haveTick = true
	o.mu.Unlock()
	o.Scraper.Tick(now)
}

// ElasticStatus converts the current provisioning state into the obs-level
// introspection document served on /elasticz.
func (o *SimObs) ElasticStatus(sla provision.SLA) obs.ElasticStatus {
	var st obs.ElasticStatus
	if c := o.Combined(); c != nil {
		for _, d := range c.Decisions() {
			st.Decisions = append(st.Decisions, obs.ElasticDecision{
				Time:        d.Time,
				Trigger:     d.Trigger,
				Observed:    d.Observed,
				Predicted:   d.Predicted,
				ServiceTime: d.ServiceTime,
				Rho:         d.Rho,
				Current:     d.Current,
				Target:      d.Instances,
			})
		}
	}
	lam, okL := o.Scraper.Latest(SimLambdaObsSeries)
	inst, okI := o.Scraper.Latest(SimInstancesSeries)
	if okL || okI {
		eta := inst.V
		if eta < 1 {
			eta = 1
		}
		st.Queues = append(st.Queues, obs.QueueLoad{
			Queue:       "syncservice",
			Lambda:      lam.V,
			ServiceTime: sla.S.Seconds(),
			Instances:   int(inst.V),
			Rho:         lam.V * sla.S.Seconds() / eta,
		})
	}
	return st
}

// ElasticDemo wires an instrumented day-8 replay to the admin surface.
type ElasticDemo struct {
	Obs *SimObs
	cfg SimConfig

	mu  sync.Mutex
	res *SimResult
}

// NewElasticDemo prepares the demo: the UB1 week seeds the predictor and
// day 8 (or its hour-20 slice when quick) is replayed under the combined
// policy with full telemetry attached.
func NewElasticDemo(seed int64, quick bool) *ElasticDemo {
	if seed == 0 {
		seed = 1
	}
	sla := provision.DefaultSLA()
	week, day8 := trace.UB1WeekAndDay8(seed)
	workload := day8
	if quick {
		workload = day8.HourSlice(20)
	}
	o := NewSimObs(sla)
	return &ElasticDemo{
		Obs: o,
		cfg: SimConfig{
			SLA:      sla,
			Policy:   PolicyCombined,
			History:  week,
			Workload: workload,
			Seed:     seed,
			Obs:      o,
		},
	}
}

// AttachAdmin points an admin server at the demo's telemetry: its registry,
// scraper and event log back /metrics, /varz and /eventz, and /elasticz
// serves the provisioner's live decision history.
func (d *ElasticDemo) AttachAdmin(a *obs.Admin) {
	a.Registry = d.Obs.Registry
	a.Scraper = d.Obs.Scraper
	a.Events = d.Obs.Events
	a.Elastic = func() obs.ElasticStatus { return d.Obs.ElasticStatus(d.cfg.SLA) }
}

// Result returns the finished replay (nil while running).
func (d *ElasticDemo) Result() *SimResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.res
}

// Run replays the workload and prints the paper-style elasticity summary
// computed from the scraped time series.
func (d *ElasticDemo) Run(w io.Writer) *SimResult {
	fmt.Fprintf(w, "elastic-demo — instrumented day-8 replay (%s, seed %d)\n",
		d.cfg.Workload.Duration(), d.cfg.Seed)
	res := RunAutoScaleSim(d.cfg)
	d.mu.Lock()
	d.res = res
	d.mu.Unlock()
	d.printSummary(w, res)
	return res
}

// printSummary derives the evaluation tables from telemetry, the way the
// paper reads Fig. 8: provisioning adequacy from the scraped instance and
// arrival-rate series, latency from the scraped histogram, SLO attainment
// from the scraped counters — cross-checked against the simulator's exact
// recorder.
func (d *ElasticDemo) printSummary(w io.Writer, res *SimResult) {
	sla := d.cfg.SLA
	sc := d.Obs.Scraper

	// Provisioning adequacy: at every scraped sample compare the fleet with
	// η = ⌈λ_obs/δ⌉, the paper's equation (2) target for the observed rate.
	window := d.cfg.Workload.Duration() + time.Minute
	lam := sc.Window(SimLambdaObsSeries, window)
	inst := sc.Window(SimInstancesSeries, window)
	n := len(lam)
	if len(inst) < n {
		n = len(inst)
	}
	over, under, exact := 0, 0, 0
	for i := 0; i < n; i++ {
		needed := provision.InstancesForRate(sla, lam[i].V)
		switch {
		case int(inst[i].V) > needed:
			over++
		case int(inst[i].V) < needed:
			under++
		default:
			exact++
		}
	}
	fmt.Fprintf(w, "\nprovisioning adequacy (from %d scraped samples, %s apart):\n",
		n, sc.Interval())
	if n > 0 {
		fmt.Fprintf(w, "  matched η=⌈λ/δ⌉: %5.1f%%   over-provisioned: %5.1f%%   under-provisioned: %5.1f%%\n",
			100*float64(exact)/float64(n), 100*float64(over)/float64(n), 100*float64(under)/float64(n))
	}

	// Latency: windowed quantiles from the scraped histogram next to the
	// simulator's exact recorder.
	if p95, ok := sc.WindowQuantile(SimResponseSeries, window, 0.95); ok {
		fmt.Fprintf(w, "\nresponse time p95: %.1f ms scraped vs %.1f ms exact (SLA %.0f ms)\n",
			p95*1000, res.Responses.Percentile(0.95)*1000, sla.D.Seconds()*1000)
	}

	// SLO attainment: cumulative counters from the scraped history against
	// the exact per-response violation count.
	scraped := d.ScrapedAttainment()
	fmt.Fprintf(w, "SLO %q (≤%s, objective %.0f%%): attainment %.4f scraped vs %.4f exact, burn rate %.2f\n",
		SimSLOName, sla.D, 100*d.Obs.SLO.Config().Objective,
		scraped, ExactAttainment(res), d.Obs.SLO.BurnRate())

	// Decision and event tallies from the flight recorder.
	byTrigger := map[string]int{}
	for _, dec := range res.Decisions {
		byTrigger[dec.Trigger]++
	}
	fmt.Fprintf(w, "\nprovisioning decisions: %d predictive, %d reactive (decision trace %d entries)\n",
		byTrigger["predictive"], byTrigger["reactive"], len(res.Decisions))
	fmt.Fprintf(w, "flight recorder: %d events appended, %d retained, %d dropped\n",
		d.Obs.Events.Seq(), d.Obs.Events.Len(), d.Obs.Events.Dropped())
}

// ScrapedAttainment computes the SLO attainment from the newest scraped
// samples of the tracker's counters — the telemetry-derived number the
// acceptance test compares against the exact recorder.
func (d *ElasticDemo) ScrapedAttainment() float64 {
	good, okG := d.Obs.Scraper.Latest(d.Obs.SLO.GoodKey())
	total, okT := d.Obs.Scraper.Latest(d.Obs.SLO.TotalKey())
	if !okG || !okT || total.V <= 0 {
		return 1
	}
	return good.V / total.V
}

// ExactAttainment is the ground-truth SLO attainment from the simulator's
// per-response accounting.
func ExactAttainment(res *SimResult) float64 {
	total := res.Responses.Count()
	if total == 0 {
		return 1
	}
	bad := 0
	for _, m := range res.Minutes {
		bad += m.Violations
	}
	return float64(total-bad) / float64(total)
}
