package bench

import (
	"fmt"
	"io"
	"time"

	"stacksync/internal/bench/providers"
	"stacksync/internal/metrics"
	"stacksync/internal/trace"
)

// Fig7a: CDF of the generated trace's file sizes.

// Fig7aResult carries the CDF series the figure plots.
type Fig7aResult struct {
	Trace  *trace.Trace       `json:"-"`
	Points []metrics.CDFPoint `json:"points"`
}

// RunFig7a generates the §5.2.1 trace and its file-size CDF.
func RunFig7a(cfg trace.GenConfig) *Fig7aResult {
	tr := trace.Generate(cfg)
	probes := []float64{
		4 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10,
		1 << 20, 2 << 20, 4 << 20, 8 << 20,
	}
	return &Fig7aResult{Trace: tr, Points: metrics.CDF(tr.FileSizes(), probes)}
}

// Print writes the series as the figure's rows.
func (r *Fig7aResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig 7(a) — CDF of file size (%s)\n", r.Trace.Summary())
	fmt.Fprintf(w, "%12s %10s\n", "size", "P(X<=x)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12s %10.3f\n", humanBytes(int64(p.Value)), p.Fraction)
	}
}

// ProviderRow is one bar of Fig. 7(b) (and a row of 7c/7d).
type ProviderRow struct {
	Provider     string  `json:"provider"`
	ControlBytes uint64  `json:"controlBytes"`
	StorageBytes uint64  `json:"storageBytes"`
	TotalBytes   uint64  `json:"totalBytes"`
	Overhead     float64 `json:"overhead"` // total / benchmark volume
}

// Fig7bResult compares protocol overhead across providers.
type Fig7bResult struct {
	BenchmarkBytes int64         `json:"benchmarkBytes"`
	Rows           []ProviderRow `json:"rows"`
}

// RunFig7b replays the trace through the real StackSync stack (metered) and
// through each provider model, reporting total traffic over the benchmark
// volume — the §5.2.2 overhead metric.
func RunFig7b(tr *trace.Trace) (*Fig7bResult, error) {
	res := &Fig7bResult{BenchmarkBytes: tr.AddVolume}

	stackRow, err := stackSyncRow(tr, 1)
	if err != nil {
		return nil, err
	}
	stackRow.Overhead = float64(stackRow.TotalBytes) / float64(tr.AddVolume)
	res.Rows = append(res.Rows, *stackRow)

	for _, m := range providers.All() {
		row := modelRow(m, tr)
		row.Overhead = float64(row.TotalBytes) / float64(tr.AddVolume)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// stackSyncRow measures the real implementation.
func stackSyncRow(tr *trace.Trace, batch int) (*ProviderRow, error) {
	st, err := NewStack(StackOptions{Devices: 1})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	rr, err := ReplayTraceBatched(st, tr, batch)
	if err != nil {
		return nil, err
	}
	return &ProviderRow{
		Provider:     "StackSync",
		ControlBytes: rr.ControlBytes,
		StorageBytes: rr.StorageBytes,
		TotalBytes:   rr.TotalBytes(),
	}, nil
}

// modelRow replays the trace through a provider model.
func modelRow(m *providers.Model, tr *trace.Trace) ProviderRow {
	mat := trace.NewMaterializer(1)
	var total providers.Traffic
	for _, op := range tr.Ops {
		content, err := mat.Apply(op)
		if err != nil {
			continue
		}
		switch op.Action {
		case trace.ADD:
			total.Add(m.ApplyAdd(op.Path, content))
		case trace.UPDATE:
			total.Add(m.ApplyUpdate(op.Path, content, op.ChangeBytes))
		case trace.REMOVE:
			total.Add(m.ApplyRemove(op.Path))
		}
	}
	return ProviderRow{
		Provider:     m.Name,
		ControlBytes: uint64(total.Control),
		StorageBytes: uint64(total.Storage),
		TotalBytes:   uint64(total.Total()),
	}
}

// Print writes the comparison table.
func (r *Fig7bResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig 7(b) — protocol overhead (benchmark volume %s)\n", humanBytes(r.BenchmarkBytes))
	fmt.Fprintf(w, "%-18s %12s %12s %12s %9s\n", "provider", "control", "storage", "total", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %12s %12s %12s %8.3fx\n",
			row.Provider, humanBytes(int64(row.ControlBytes)),
			humanBytes(int64(row.StorageBytes)), humanBytes(int64(row.TotalBytes)), row.Overhead)
	}
}

// Fig7cdResult holds per-action control (7c) and storage (7d) traffic for
// StackSync (measured) and Dropbox (modelled).
type Fig7cdResult struct {
	Actions []string `json:"actions"` // ADD, UPDATE, REMOVE
	// [action] -> bytes
	StackSyncControl map[string]uint64 `json:"stacksyncControl"`
	StackSyncStorage map[string]uint64 `json:"stacksyncStorage"`
	DropboxControl   map[string]uint64 `json:"dropboxControl"`
	DropboxStorage   map[string]uint64 `json:"dropboxStorage"`
	// ModifiedBytes is the data actually touched by UPDATEs, for the §5.2.2
	// observation that both systems move far more than was modified.
	ModifiedBytes int64 `json:"modifiedBytes"`
}

// RunFig7cd runs the per-action-type variant: the trace is split into three
// single-action traces (each prefixed by its dependency ADDs, whose traffic
// is excluded from the measurement).
func RunFig7cd(tr *trace.Trace) (*Fig7cdResult, error) {
	res := &Fig7cdResult{
		Actions:          []string{"ADD", "UPDATE", "REMOVE"},
		StackSyncControl: map[string]uint64{},
		StackSyncStorage: map[string]uint64{},
		DropboxControl:   map[string]uint64{},
		DropboxStorage:   map[string]uint64{},
		ModifiedBytes:    tr.UpdateVolume,
	}
	for _, action := range []trace.Action{trace.ADD, trace.UPDATE, trace.REMOVE} {
		split := tr.ByAction(action, true)
		st, err := NewStack(StackOptions{Devices: 1})
		if err != nil {
			return nil, err
		}
		// Replay the dependency prefix first, then reset meters so only the
		// action under test is measured. One materializer spans both phases
		// so UPDATEs and REMOVEs see the files the prefix created.
		prefix, actions := splitPrefix(split, action)
		mat := trace.NewMaterializer(1)
		if _, err := ReplayTraceInto(st, prefix, mat); err != nil {
			st.Close()
			return nil, err
		}
		st.ResetTraffic()
		rr, err := ReplayTraceInto(st, actions, mat)
		if err != nil {
			st.Close()
			return nil, err
		}
		st.Close()
		name := action.String()
		res.StackSyncControl[name] = rr.ControlBytes
		res.StackSyncStorage[name] = rr.StorageBytes

		// Dropbox model over the same split.
		m := providers.Dropbox()
		dbMat := trace.NewMaterializer(1)
		var measured providers.Traffic
		for _, op := range split.Ops {
			content, err := dbMat.Apply(op)
			if err != nil {
				continue
			}
			var t providers.Traffic
			switch op.Action {
			case trace.ADD:
				t = m.ApplyAdd(op.Path, content)
			case trace.UPDATE:
				t = m.ApplyUpdate(op.Path, content, op.ChangeBytes)
			case trace.REMOVE:
				t = m.ApplyRemove(op.Path)
			}
			if op.Action == action {
				measured.Add(t)
			}
		}
		res.DropboxControl[name] = uint64(measured.Control)
		res.DropboxStorage[name] = uint64(measured.Storage)
	}
	return res, nil
}

// splitPrefix separates a ByAction trace into its dependency-ADD prefix and
// the measured action ops.
func splitPrefix(split *trace.Trace, action trace.Action) (prefix, actions *trace.Trace) {
	prefix = &trace.Trace{}
	actions = &trace.Trace{}
	for _, op := range split.Ops {
		if op.Action == action {
			appendOp(actions, op)
		} else {
			appendOp(prefix, op)
		}
	}
	return prefix, actions
}

func appendOp(t *trace.Trace, op trace.Op) {
	// Re-sequence into the destination trace.
	op.Seq = len(t.Ops)
	t.Ops = append(t.Ops, op)
	switch op.Action {
	case trace.ADD:
		t.Adds++
		t.AddVolume += op.Size
	case trace.UPDATE:
		t.Updates++
		t.UpdateVolume += op.ChangeBytes
	case trace.REMOVE:
		t.Removes++
	}
}

// Print writes both panels.
func (r *Fig7cdResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig 7(c) — control traffic per action type\n")
	fmt.Fprintf(w, "%-8s %14s %14s\n", "action", "StackSync", "Dropbox")
	for _, a := range r.Actions {
		fmt.Fprintf(w, "%-8s %14s %14s\n", a,
			humanBytes(int64(r.StackSyncControl[a])), humanBytes(int64(r.DropboxControl[a])))
	}
	fmt.Fprintf(w, "Fig 7(d) — storage traffic per action type (modified data: %s)\n",
		humanBytes(r.ModifiedBytes))
	fmt.Fprintf(w, "%-8s %14s %14s\n", "action", "StackSync", "Dropbox")
	for _, a := range r.Actions {
		fmt.Fprintf(w, "%-8s %14s %14s\n", a,
			humanBytes(int64(r.StackSyncStorage[a])), humanBytes(int64(r.DropboxStorage[a])))
	}
}

// Table2Row is one row of the bundling table.
type Table2Row struct {
	Provider     string `json:"provider"`
	BatchSize    int    `json:"batchSize"`
	ControlBytes uint64 `json:"controlBytes"`
	StorageBytes uint64 `json:"storageBytes"`
	TotalBytes   uint64 `json:"totalBytes"`
}

// Table2Result is the file-bundling experiment.
type Table2Result struct {
	Rows []Table2Row `json:"rows"`
}

// RunTable2 replays the trace with batch sizes {5,10,20,40} for Dropbox
// (modelled bundling) and StackSync (real bundled commitRequests).
func RunTable2(tr *trace.Trace) (*Table2Result, error) {
	res := &Table2Result{}
	batches := []int{5, 10, 20, 40}

	for _, batch := range batches {
		m := providers.Dropbox()
		mat := trace.NewMaterializer(1)
		var storage int64
		var control int64
		n := 0
		for _, op := range tr.Ops {
			content, err := mat.Apply(op)
			if err != nil {
				continue
			}
			var t providers.Traffic
			switch op.Action {
			case trace.ADD:
				t = m.ApplyAdd(op.Path, content)
			case trace.UPDATE:
				t = m.ApplyUpdate(op.Path, content, op.ChangeBytes)
			case trace.REMOVE:
				t = m.ApplyRemove(op.Path)
			}
			storage += t.Storage
			n++
			if n == batch {
				control += m.BatchControl(n)
				n = 0
			}
		}
		if n > 0 {
			control += m.BatchControl(n)
		}
		res.Rows = append(res.Rows, Table2Row{
			Provider: "Dropbox", BatchSize: batch,
			ControlBytes: uint64(control), StorageBytes: uint64(storage),
			TotalBytes: uint64(control + storage),
		})
	}

	for _, batch := range batches {
		row, err := stackSyncRow(tr, batch)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Provider: "StackSync", BatchSize: batch,
			ControlBytes: row.ControlBytes, StorageBytes: row.StorageBytes,
			TotalBytes: row.TotalBytes,
		})
	}
	return res, nil
}

// Print writes the table.
func (r *Table2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — effect of file bundling")
	fmt.Fprintf(w, "%-10s %6s %12s %12s %12s\n", "provider", "batch", "control", "storage", "total")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %6d %12s %12s %12s\n",
			row.Provider, row.BatchSize, humanBytes(int64(row.ControlBytes)),
			humanBytes(int64(row.StorageBytes)), humanBytes(int64(row.TotalBytes)))
	}
}

// Fig7eResult holds sync-time distributions per action type with 6 devices.
type Fig7eResult struct {
	// Boxplots per action, in seconds.
	Boxplots map[string]metrics.Boxplot `json:"boxplots"`
	Skewness map[string]float64         `json:"skewness"`
}

// RunFig7e measures the time to bring 6 devices in sync per action type
// (§5.2.3): the elapsed time from the writing device's operation until the
// other five hold the new state, over a simulated-latency Storage back-end.
// Like the paper's test, each action type is exercised the same number of
// times: every generated file is added, then updated with a sampled change
// pattern, then removed.
func RunFig7e(ops, seed int64) (*Fig7eResult, error) {
	st, err := NewStack(StackOptions{
		Devices:          6,
		StorageLatency:   2 * time.Millisecond,
		StorageBandwidth: 200e6, // 200 MB/s cluster-local
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	// A balanced synthetic op list: ops/3 files, each ADDed, UPDATEd and
	// REMOVEd, with sizes and change patterns from the §5.2.1 distributions.
	perAction := int(ops) / 3
	if perAction < 1 {
		perAction = 1
	}
	mat := trace.NewMaterializer(seed)
	gen := trace.Generate(trace.GenConfig{Seed: seed, Snapshots: 60, BirthMean: 6})
	var opList []trace.Op
	sized := 0
	for _, op := range gen.Ops {
		if op.Action != trace.ADD || sized >= perAction {
			continue
		}
		sized++
		path := fmt.Sprintf("e/f%03d.dat", sized)
		opList = append(opList,
			trace.Op{Action: trace.ADD, Path: path, Size: op.Size},
			trace.Op{Action: trace.UPDATE, Path: path, Pattern: trace.PatternB, ChangeBytes: 200},
			trace.Op{Action: trace.REMOVE, Path: path},
		)
	}

	writer := st.Client(0)
	versions := make(map[string]uint64)
	recorders := map[string]*metrics.Recorder{
		"ADD": metrics.NewRecorder(), "UPDATE": metrics.NewRecorder(), "REMOVE": metrics.NewRecorder(),
	}
	for _, op := range opList {
		content, err := mat.Apply(op)
		if err != nil {
			return nil, err
		}
		versions[op.Path]++
		start := time.Now()
		switch op.Action {
		case trace.ADD, trace.UPDATE:
			if err := writer.PutFile(op.Path, content); err != nil {
				return nil, err
			}
			for d := 1; d < st.Devices(); d++ {
				if err := st.Client(d).WaitForVersion(op.Path, versions[op.Path], replayTimeout); err != nil {
					return nil, err
				}
			}
		case trace.REMOVE:
			if err := writer.RemoveFile(op.Path); err != nil {
				return nil, err
			}
			for d := 1; d < st.Devices(); d++ {
				if err := st.Client(d).WaitForGone(op.Path, replayTimeout); err != nil {
					return nil, err
				}
			}
		}
		recorders[op.Action.String()].Observe(time.Since(start))
	}
	res := &Fig7eResult{
		Boxplots: map[string]metrics.Boxplot{},
		Skewness: map[string]float64{},
	}
	for name, rec := range recorders {
		res.Boxplots[name] = rec.Boxplot()
		res.Skewness[name] = metrics.Skewness(rec.Samples())
	}
	return res, nil
}

// Print writes the boxplot summaries.
func (r *Fig7eResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 7(e) — synchronization time per action (6 devices), seconds")
	fmt.Fprintf(w, "%-8s %5s %8s %8s %8s %8s %8s %9s\n", "action", "n", "min", "q1", "median", "q3", "max", "skewness")
	for _, a := range []string{"ADD", "UPDATE", "REMOVE"} {
		b := r.Boxplots[a]
		fmt.Fprintf(w, "%-8s %5d %8.3f %8.3f %8.3f %8.3f %8.3f %9.2f\n",
			a, b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, r.Skewness[a])
	}
}

// Fig7fPoint is one point of the size sweep.
type Fig7fPoint struct {
	SizeBytes int64   `json:"sizeBytes"`
	MeanSec   float64 `json:"meanSec"`
	P95Sec    float64 `json:"p95Sec"`
}

// Fig7fResult is the sync-time-vs-file-size series.
type Fig7fResult struct {
	Points []Fig7fPoint `json:"points"`
}

// RunFig7f measures ADD sync time as a function of file size: linear growth
// once transfer time dominates the fixed protocol cost (§5.2.3).
func RunFig7f(reps int) (*Fig7fResult, error) {
	st, err := NewStack(StackOptions{
		Devices:          6,
		StorageLatency:   2 * time.Millisecond,
		StorageBandwidth: 40e6, // slower link so size effects dominate
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	writer := st.Client(0)
	mat := trace.NewMaterializer(99)

	sizes := []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	res := &Fig7fResult{}
	seq := 0
	for _, size := range sizes {
		rec := metrics.NewRecorder()
		for rep := 0; rep < reps; rep++ {
			path := fmt.Sprintf("sweep/f-%d-%d.bin", size, seq)
			seq++
			content, err := mat.Apply(trace.Op{Action: trace.ADD, Path: path, Size: size})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := writer.PutFile(path, content); err != nil {
				return nil, err
			}
			for d := 1; d < st.Devices(); d++ {
				if err := st.Client(d).WaitForVersion(path, 1, replayTimeout); err != nil {
					return nil, err
				}
			}
			rec.Observe(time.Since(start))
		}
		res.Points = append(res.Points, Fig7fPoint{
			SizeBytes: size,
			MeanSec:   rec.Mean(),
			P95Sec:    rec.Percentile(0.95),
		})
	}
	return res, nil
}

// Print writes the series.
func (r *Fig7fResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 7(f) — synchronization time vs file size (6 devices), seconds")
	fmt.Fprintf(w, "%12s %10s %10s\n", "size", "mean", "p95")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12s %10.3f %10.3f\n", humanBytes(p.SizeBytes), p.MeanSec, p.P95Sec)
	}
}

// humanBytes renders a byte count with a binary-ish unit, matching how the
// paper reports volumes (MB).
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
