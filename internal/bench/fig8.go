package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"stacksync/internal/chunker"
	"stacksync/internal/client"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/metrics"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
	"stacksync/internal/provision"
	"stacksync/internal/trace"
)

// RunFig8ab replays UB1 day 8 with both provisioning policies after feeding
// the predictor the previous week's 15-minute summaries (§5.3.2). The
// returned result covers both Fig. 8(a) (instances vs workload) and 8(b)
// (response times).
func RunFig8ab(seed int64) *SimResult {
	week, day8 := trace.UB1WeekAndDay8(seed)
	return RunAutoScaleSim(SimConfig{
		SLA:      provision.DefaultSLA(),
		History:  week,
		Workload: day8,
		Seed:     seed,
	})
}

// RunFig8cde replays one hour of day 8 (hour 20, the busy evening) while
// the predictor is fooled into planning for another hour's pattern (§5.3.3
// fools it with hour 30 of the day-8 trace): the predictive layer
// under-provisions and the reactive layer repairs the allocation within one
// 5-minute cycle. The synthetic diurnal curve is symmetric around its peak,
// so the offset targets hour 3 (deep night) to reproduce the published
// magnitude of the misprediction.
func RunFig8cde(seed int64) *SimResult {
	week, day8 := trace.UB1WeekAndDay8(seed)
	hour20 := day8.HourSlice(20)
	return RunAutoScaleSim(SimConfig{
		SLA:              provision.DefaultSLA(),
		History:          week,
		Workload:         hour20,
		MispredictOffset: 7 * time.Hour, // hour 20 + 7 → hour 3's quiet pattern
		Seed:             seed,
	})
}

// Fig8fConfig parameterizes the fault-tolerance experiment. The paper runs
// 10 minutes with a crash every 30 s on real hardware; defaults here
// compress the schedule (same crash-to-repair ratio) to keep the bench fast.
type Fig8fConfig struct {
	// Duration of the measured run.
	Duration time.Duration
	// CrashEvery kills the live SyncService instance at this period.
	CrashEvery time.Duration
	// CheckEvery is the Supervisor's health-check period (paper: 1 s).
	CheckEvery time.Duration
	// CommitGap is the idle time between consecutive client commits.
	CommitGap time.Duration
}

func (c *Fig8fConfig) applyDefaults() {
	if c.Duration <= 0 {
		c.Duration = 20 * time.Second
	}
	if c.CrashEvery <= 0 {
		c.CrashEvery = 2 * time.Second
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 100 * time.Millisecond
	}
	if c.CommitGap <= 0 {
		c.CommitGap = 20 * time.Millisecond
	}
}

// Fig8fResult separates commit response times observed while the instance
// was up from those that overlapped a crash-and-respawn window.
type Fig8fResult struct {
	Steady  metrics.Boxplot `json:"steady"`
	Crashed metrics.Boxplot `json:"crashed"`
	// Crashes is how many kills were injected.
	Crashes int `json:"crashes"`
	// LostCommits counts commits that never completed (must be 0: the MQ
	// redelivers unacked commits to the respawned instance).
	LostCommits int `json:"lostCommits"`
}

// RunFig8f runs the real stack — broker, metadata store, storage, client,
// RemoteBroker-spawned SyncService, Supervisor — and measures commit
// response times while the instance is killed on a fixed schedule (§5.3.4).
func RunFig8f(cfg Fig8fConfig) (*Fig8fResult, error) {
	cfg.applyDefaults()

	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore()
	defer meta.Close()
	if err := meta.CreateWorkspace(metastore.Workspace{ID: "ft-ws", Owner: "user-0"}); err != nil {
		return nil, err
	}
	storage := objstore.NewMemory()

	// Node hosting SyncService instances.
	nodeBroker, err := omq.NewBroker(m, omq.WithID("10-node"))
	if err != nil {
		return nil, err
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		return nil, err
	}
	defer rb.Close()
	// Notifications are pushed through a stable broker that outlives the
	// crashing instances.
	notifBroker, err := omq.NewBroker(m, omq.WithID("20-notif"))
	if err != nil {
		return nil, err
	}
	defer notifBroker.Close()
	rb.RegisterFactory(core.ServiceOID, func() (interface{}, error) {
		return core.NewService(meta, notifBroker).API(), nil
	})
	if err := m.DeclareQueue(core.ServiceOID); err != nil {
		return nil, err
	}

	// Supervisor keeping exactly one instance alive.
	supBroker, err := omq.NewBroker(m, omq.WithID("00-supervisor"))
	if err != nil {
		return nil, err
	}
	defer supBroker.Close()
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:         core.ServiceOID,
		CheckEvery:  cfg.CheckEvery,
		Provisioner: omq.FixedProvisioner(1),
	})
	if err != nil {
		return nil, err
	}
	defer sup.Stop()

	// Wait for the first instance before starting the client.
	deadline := time.Now().Add(10 * time.Second)
	for rb.InstanceCount(core.ServiceOID) == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: supervisor never spawned the service")
		}
		time.Sleep(5 * time.Millisecond)
	}

	clientBroker, err := omq.NewBroker(m, omq.WithID("30-client"))
	if err != nil {
		return nil, err
	}
	defer clientBroker.Close()
	cl, err := client.NewClient(client.Config{
		UserID: "user-0", DeviceID: "dev-0", WorkspaceID: "ft-ws",
		Broker: clientBroker, Storage: storage,
		Chunker:     chunker.Fixed{ChunkSize: 64 * 1024},
		CallTimeout: 2 * time.Second, CallRetries: 10,
		// Proxy retries alone cover the crash window; retransmission would
		// blur the per-commit latency attribution.
		RetransmitEvery: -1,
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	defer cl.Close()

	// Crash injector. Each kill records the true down interval: from the
	// kill until the Supervisor's respawned instance is back.
	type downInterval struct{ from, to time.Time }
	var crashMu sync.Mutex
	var downs []downInterval
	stopCrasher := make(chan struct{})
	crasherDone := make(chan struct{})
	go func() {
		defer close(crasherDone)
		ticker := time.NewTicker(cfg.CrashEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stopCrasher:
				return
			case <-ticker.C:
				if rb.KillLocal(core.ServiceOID) == "" {
					continue
				}
				// Open the interval immediately so commits completing while
				// the service is still down classify correctly; close it
				// once the Supervisor's replacement is up.
				crashMu.Lock()
				downs = append(downs, downInterval{from: time.Now()})
				idx := len(downs) - 1
				crashMu.Unlock()
				for rb.InstanceCount(core.ServiceOID) == 0 {
					select {
					case <-stopCrasher:
						return
					default:
					}
					time.Sleep(time.Millisecond)
				}
				crashMu.Lock()
				downs[idx].to = time.Now()
				crashMu.Unlock()
			}
		}
	}()

	// Commit loop.
	steady := metrics.NewRecorder()
	crashed := metrics.NewRecorder()
	lost := 0
	end := time.Now().Add(cfg.Duration)
	seq := 0
	for time.Now().Before(end) {
		path := fmt.Sprintf("ft/file-%06d.txt", seq)
		seq++
		start := time.Now()
		if err := cl.PutFile(path, []byte(fmt.Sprintf("payload %d", seq))); err != nil {
			lost++
			continue
		}
		waitErr := cl.WaitForVersion(path, 1, 20*time.Second)
		elapsed := time.Since(start)
		if waitErr != nil {
			lost++
			continue
		}
		// Classify: did this commit overlap a real down interval? Those are
		// the commits that paid queueing-until-respawn or redelivery delay.
		overlapped := false
		commitEnd := start.Add(elapsed)
		crashMu.Lock()
		for _, d := range downs {
			stillDown := d.to.IsZero()
			if (stillDown || start.Before(d.to)) && commitEnd.After(d.from) {
				overlapped = true
				break
			}
		}
		crashMu.Unlock()
		if overlapped {
			crashed.Observe(elapsed)
		} else {
			steady.Observe(elapsed)
		}
		time.Sleep(cfg.CommitGap)
	}
	close(stopCrasher)
	<-crasherDone

	crashMu.Lock()
	nCrashes := len(downs)
	crashMu.Unlock()
	return &Fig8fResult{
		Steady:      steady.Boxplot(),
		Crashed:     crashed.Boxplot(),
		Crashes:     nCrashes,
		LostCommits: lost,
	}, nil
}

// Print writes the two boxplots.
func (r *Fig8fResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig 8(f) — fault tolerance (%d crashes injected, %d commits lost)\n", r.Crashes, r.LostCommits)
	fmt.Fprintf(w, "%-22s %5s %8s %8s %8s %8s %8s\n", "condition", "n", "min", "q1", "median", "q3", "max")
	for _, row := range []struct {
		name string
		b    metrics.Boxplot
	}{{"instance running", r.Steady}, {"instance crashed", r.Crashed}} {
		fmt.Fprintf(w, "%-22s %5d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			row.name, row.b.N, row.b.Min, row.b.Q1, row.b.Median, row.b.Q3, row.b.Max)
	}
}
