package bench

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"stacksync/internal/chunker"
	"stacksync/internal/client"
	"stacksync/internal/core"
	"stacksync/internal/faults"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/obs"
	"stacksync/internal/omq"
)

// ChaosConfig parameterizes the chaos soak: a full stack (broker, metadata
// store, storage, Supervisor-respawned SyncService, N client devices) runs a
// write workload while the seeded fault plan drops/duplicates/delays
// messages, injects storage errors and outages, aborts metadata
// transactions, and crashes the server object on a schedule. Afterwards the
// run must converge: every proposed commit present on every device with
// identical content, no spurious conflict copies, crash respawn within the
// paper's ~1 s (§5.3.4).
type ChaosConfig struct {
	// Seed fixes the entire fault schedule; same seed, same chaos.
	Seed int64
	// Clients is the number of devices writing concurrently (default 3).
	Clients int
	// CommitsPerClient is the number of files each device writes (default 20).
	CommitsPerClient int
	// CommitGap is the idle time between a device's commits (default 10 ms).
	CommitGap time.Duration
	// CrashEvery is the mean period of the server-object crash schedule
	// (default 400 ms; jittered ±50% deterministically from the seed). Keep
	// it shorter than the workload or no crash lands inside it.
	CrashEvery time.Duration
	// CheckEvery is the Supervisor's health-check period (default 100 ms).
	CheckEvery time.Duration
	// Settle caps how long the run may take to converge after the workload
	// stops and fault injection quiesces (default 30 s).
	Settle time.Duration
}

func (c *ChaosConfig) applyDefaults() {
	if c.Clients <= 0 {
		c.Clients = 3
	}
	if c.CommitsPerClient <= 0 {
		c.CommitsPerClient = 20
	}
	if c.CommitGap <= 0 {
		c.CommitGap = 10 * time.Millisecond
	}
	if c.CrashEvery <= 0 {
		c.CrashEvery = 400 * time.Millisecond
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 100 * time.Millisecond
	}
	if c.Settle <= 0 {
		c.Settle = 30 * time.Second
	}
}

// chaosPlan builds the fault plan for a config; pulled out so the schedule
// can be rebuilt and compared for determinism.
func chaosPlan(cfg ChaosConfig, reg *obs.Registry) *faults.Plan {
	horizon := time.Duration(cfg.CommitsPerClient) * (cfg.CommitGap + 20*time.Millisecond)
	if horizon < time.Second {
		horizon = time.Second
	}
	return faults.NewPlan(faults.Config{
		Seed:     cfg.Seed,
		Registry: reg,
		Sites: map[string]faults.SiteConfig{
			// Client-side publishes: commit requests vanish, duplicate, lag.
			"mq.client": {DropP: 0.05, DupP: 0.05, DelayP: 0.10, MaxDelay: 20 * time.Millisecond},
			// Notification pushes: the lossiest hop — resync must repair.
			"mq.notif": {DropP: 0.10, DupP: 0.05, DelayP: 0.10, MaxDelay: 20 * time.Millisecond},
			// Storage: transient errors, latency spikes, plus full outages.
			"objstore": {
				ErrorP: 0.10, DelayP: 0.10, MaxDelay: 10 * time.Millisecond,
				Outages: faults.RandomOutages(cfg.Seed, "objstore", 2, 300*time.Millisecond, horizon),
			},
			// Metadata transactions: sporadic aborts the pipeline must retry.
			"meta": {AbortP: 0.15},
		},
	})
}

// ChaosResult reports the soak's outcome.
type ChaosResult struct {
	Seed       int64         `json:"seed"`
	Commits    int           `json:"commits"` // total files proposed
	Clients    int           `json:"clients"`
	Crashes    int           `json:"crashes"` // server-object kills injected
	MaxRespawn time.Duration `json:"maxRespawn"`
	SettleTime time.Duration `json:"settleTime"` // workload end -> convergence
	Converged  bool          `json:"converged"`
	// ScheduleStable is true when rebuilding the plan from the same seed
	// yields a byte-identical schedule description.
	ScheduleStable bool              `json:"scheduleStable"`
	FaultCounts    map[string]uint64 `json:"faultCounts"` // site/kind -> fired
	// Violations lists every broken invariant (empty on a clean run).
	Violations []string `json:"violations,omitempty"`
}

// RunChaos executes the chaos soak and checks convergence.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg.applyDefaults()
	// One registry for the whole run: fault counters, client series and the
	// brokers' queue gauges land on the same introspection surface.
	reg := obs.NewRegistry()
	plan := chaosPlan(cfg, reg)

	// Determinism contract: same seed and config, byte-identical schedule.
	scheduleStable := bytes.Equal(
		[]byte(plan.Describe(512)),
		[]byte(chaosPlan(cfg, nil).Describe(512)),
	)

	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore(metastore.WithFaults(plan, "meta"), metastore.WithRegistry(reg))
	defer meta.Close()
	if err := meta.CreateWorkspace(metastore.Workspace{ID: "chaos-ws", Owner: "user-0"}); err != nil {
		return nil, err
	}
	baseStore := objstore.NewMemory()
	faultyStore := objstore.NewFaulty(baseStore, plan, "objstore", nil)

	// Node hosting the crashing SyncService instances (raw MQ: the server's
	// own plumbing is healthy; the chaos lives on the edges).
	nodeBroker, err := omq.NewBroker(m, omq.WithID("10-node"))
	if err != nil {
		return nil, err
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		return nil, err
	}
	defer rb.Close()

	// Notifications go out through the faulty MQ view: pushes get lost.
	notifMQ := mq.NewFaulty(m, plan, "mq.notif", nil)
	notifBroker, err := omq.NewBroker(notifMQ, omq.WithID("20-notif"))
	if err != nil {
		return nil, err
	}
	defer notifBroker.Close()
	rb.RegisterFactory(core.ServiceOID, func() (interface{}, error) {
		return core.NewService(meta, notifBroker).API(), nil
	})
	if err := m.DeclareQueue(core.ServiceOID); err != nil {
		return nil, err
	}

	supBroker, err := omq.NewBroker(m, omq.WithID("00-supervisor"))
	if err != nil {
		return nil, err
	}
	defer supBroker.Close()
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:         core.ServiceOID,
		CheckEvery:  cfg.CheckEvery,
		Provisioner: omq.FixedProvisioner(1),
	})
	if err != nil {
		return nil, err
	}
	defer sup.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for rb.InstanceCount(core.ServiceOID) == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: supervisor never spawned the service")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Client devices, each on its own broker over the faulty client MQ view.
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		cb, err := omq.NewBroker(mq.NewFaulty(m, plan, "mq.client", nil),
			omq.WithID(fmt.Sprintf("30-client-%d", i)))
		if err != nil {
			return nil, err
		}
		defer cb.Close()
		cl, err := client.NewClient(client.Config{
			UserID:      "user-0",
			DeviceID:    fmt.Sprintf("dev-%d", i),
			WorkspaceID: "chaos-ws",
			Broker:      cb,
			Storage:     faultyStore,
			Registry:    reg,
			Chunker:     chunker.Fixed{ChunkSize: 4 * 1024},
			CallTimeout: 500 * time.Millisecond, CallRetries: 10,
			StoreBackoff: 5 * time.Millisecond, BreakerThreshold: 4,
			BreakerCooldown: 150 * time.Millisecond,
			RetransmitEvery: 250 * time.Millisecond,
			ResyncEvery:     250 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		if err := cl.Start(); err != nil {
			return nil, fmt.Errorf("bench: start client %d: %w", i, err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	// Anchor outage windows at workload start; launch the crash schedule.
	start := time.Now()
	plan.Begin(start)
	type downInterval struct{ from, to time.Time }
	var crashMu sync.Mutex
	var downs []downInterval
	stopCrasher := make(chan struct{})
	crasherDone := make(chan struct{})
	crashTimes := faults.CrashSchedule(cfg.Seed, cfg.CrashEvery, 0.5, cfg.Settle)
	go func() {
		defer close(crasherDone)
		for _, at := range crashTimes {
			select {
			case <-stopCrasher:
				return
			case <-time.After(time.Until(start.Add(at))):
			}
			if rb.KillLocal(core.ServiceOID) == "" {
				continue
			}
			crashMu.Lock()
			downs = append(downs, downInterval{from: time.Now()})
			idx := len(downs) - 1
			crashMu.Unlock()
			for rb.InstanceCount(core.ServiceOID) == 0 {
				select {
				case <-stopCrasher:
					return
				default:
				}
				time.Sleep(time.Millisecond)
			}
			crashMu.Lock()
			downs[idx].to = time.Now()
			crashMu.Unlock()
		}
	}()

	// Workload: each device writes its own distinct paths, so any
	// "conflicted copy" in the end state is spurious by construction.
	expected := make(map[string]string) // path -> content
	var expMu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			for k := 0; k < cfg.CommitsPerClient; k++ {
				path := fmt.Sprintf("dev%d/file-%04d.txt", i, k)
				content := fmt.Sprintf("chaos seed=%d dev=%d k=%d", cfg.Seed, i, k)
				expMu.Lock()
				expected[path] = content
				expMu.Unlock()
				if err := cl.PutFile(path, []byte(content)); err != nil {
					errCh <- fmt.Errorf("bench: chaos put %s: %w", path, err)
					return
				}
				time.Sleep(cfg.CommitGap)
			}
		}(i, cl)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}
	workloadEnd := time.Now()

	// Stop crashing; let the repair machinery (redelivery, retransmission,
	// resync, upload flushing) settle the system.
	close(stopCrasher)
	<-crasherDone

	converged := false
	var settleTime time.Duration
	settleDeadline := workloadEnd.Add(cfg.Settle)
	for time.Now().Before(settleDeadline) {
		if chaosConverged(clients, expected) {
			converged = true
			settleTime = time.Since(workloadEnd)
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	res := &ChaosResult{
		Seed:           cfg.Seed,
		Commits:        len(expected),
		Clients:        cfg.Clients,
		MaxRespawn:     0,
		Converged:      converged,
		SettleTime:     settleTime,
		ScheduleStable: scheduleStable,
		FaultCounts:    plan.Counts(),
	}
	crashMu.Lock()
	res.Crashes = len(downs)
	for _, d := range downs {
		if d.to.IsZero() {
			continue
		}
		if dur := d.to.Sub(d.from); dur > res.MaxRespawn {
			res.MaxRespawn = dur
		}
	}
	crashMu.Unlock()

	res.Violations = chaosViolations(clients, expected, converged, res)
	return res, nil
}

// chaosConverged reports whether every client holds exactly the expected
// state: all proposed files at their final content, no conflict copies, no
// queued uploads left.
func chaosConverged(clients []*client.Client, expected map[string]string) bool {
	for i, cl := range clients {
		if client.UploadQueueDepth(cl.Registry(), fmt.Sprintf("dev-%d", i)) > 0 {
			return false
		}
		paths := cl.Paths()
		if len(paths) != len(expected) {
			return false
		}
		for path, want := range expected {
			got, ok := cl.FileContent(path)
			if !ok || string(got) != want {
				return false
			}
		}
	}
	return true
}

// chaosViolations enumerates broken invariants for the report.
func chaosViolations(clients []*client.Client, expected map[string]string, converged bool, res *ChaosResult) []string {
	var v []string
	if !converged {
		v = append(v, fmt.Sprintf("clients did not converge within the settle window (%d commits expected)", len(expected)))
	}
	for i, cl := range clients {
		for _, p := range cl.Paths() {
			if strings.Contains(p, "conflicted copy") {
				v = append(v, fmt.Sprintf("dev-%d holds spurious conflict copy %q", i, p))
			}
			if _, ok := expected[p]; !ok {
				v = append(v, fmt.Sprintf("dev-%d holds unexpected path %q", i, p))
			}
		}
		for path := range expected {
			if _, ok := cl.FileContent(path); !ok {
				v = append(v, fmt.Sprintf("dev-%d lost acked commit %q", i, path))
			}
		}
	}
	if !res.ScheduleStable {
		v = append(v, "fault schedule not reproducible from seed")
	}
	if res.MaxRespawn > time.Second {
		v = append(v, fmt.Sprintf("crash respawn took %v (> 1s)", res.MaxRespawn))
	}
	// Keep the list stable for golden comparisons.
	sort.Strings(v)
	return v
}

// Print writes the soak summary.
func (r *ChaosResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Chaos soak — seed %d: %d commits across %d devices, %d crashes\n",
		r.Seed, r.Commits, r.Clients, r.Crashes)
	status := "CONVERGED"
	if !r.Converged {
		status = "DIVERGED"
	}
	fmt.Fprintf(w, "%-22s %s (settle %v)\n", "outcome", status, r.SettleTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%-22s %v\n", "max respawn", r.MaxRespawn.Round(time.Millisecond))
	fmt.Fprintf(w, "%-22s %v\n", "schedule stable", r.ScheduleStable)
	keys := make([]string, 0, len(r.FaultCounts))
	for k := range r.FaultCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-22s %d\n", "faults "+k, r.FaultCounts[k])
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "VIOLATION: %s\n", v)
	}
}
