package bench

import (
	"bytes"
	"testing"
	"time"

	"stacksync/internal/trace"
)

// smallTrace keeps replay-based tests fast while preserving the op mix.
func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := trace.Generate(trace.GenConfig{
		Seed: 7, InitialFiles: 5, TrainIterations: 2, Snapshots: 12, BirthMean: 4,
	})
	if tr.Adds == 0 {
		t.Fatal("empty trace")
	}
	return tr
}

func TestStackDeploysAndSyncs(t *testing.T) {
	st, err := NewStack(StackOptions{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Client(0).PutFile("x.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := st.Client(1).WaitForVersion("x.txt", 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if st.ControlTraffic(0).BytesUp == 0 {
		t.Fatal("control traffic not metered")
	}
	if st.StorageTraffic(0).BytesUp == 0 {
		t.Fatal("storage traffic not metered")
	}
}

func TestReplayTraceConverges(t *testing.T) {
	tr := smallTrace(t)
	st, err := NewStack(StackOptions{Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rr, err := ReplayTrace(st, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Ops != len(tr.Ops) {
		t.Fatalf("replayed %d/%d ops", rr.Ops, len(tr.Ops))
	}
	// Storage traffic covers at least the compressible add volume and the
	// control traffic is non-trivial but far below storage.
	if rr.StorageBytes == 0 || rr.ControlBytes == 0 {
		t.Fatalf("traffic: %+v", rr)
	}
	if rr.StorageBytes < rr.ControlBytes {
		t.Fatalf("control (%d) exceeds storage (%d) — implausible", rr.ControlBytes, rr.StorageBytes)
	}
}

func TestReplayBatchedReducesControlTraffic(t *testing.T) {
	tr := smallTrace(t)
	run := func(batch int) uint64 {
		st, err := NewStack(StackOptions{Devices: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		rr, err := ReplayTraceBatched(st, tr, batch)
		if err != nil {
			t.Fatal(err)
		}
		return rr.ControlBytes
	}
	single := run(1)
	bundled := run(10)
	if bundled >= single {
		t.Fatalf("bundling did not cut control traffic: %d -> %d", single, bundled)
	}
}

func TestFig7aCDFShape(t *testing.T) {
	res := RunFig7a(trace.GenConfig{Seed: 3})
	if len(res.Points) == 0 {
		t.Fatal("no CDF points")
	}
	// Monotonic non-decreasing, ~90% below 4 MB.
	prev := -1.0
	var at4MB float64
	for _, p := range res.Points {
		if p.Fraction < prev {
			t.Fatalf("CDF not monotonic at %v", p.Value)
		}
		prev = p.Fraction
		if p.Value == float64(4<<20) {
			at4MB = p.Fraction
		}
	}
	if at4MB < 0.85 {
		t.Fatalf("P(size<=4MB) = %.3f, want ~0.9", at4MB)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig7bShape(t *testing.T) {
	tr := smallTrace(t)
	res, err := RunFig7b(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want StackSync + 5 providers", len(res.Rows))
	}
	byName := map[string]ProviderRow{}
	for _, r := range res.Rows {
		byName[r.Provider] = r
	}
	ss, db := byName["StackSync"], byName["Dropbox"]
	// The published shape: Dropbox has the highest total overhead; its
	// control traffic dwarfs StackSync's.
	for name, row := range byName {
		if name == "Dropbox" {
			continue
		}
		if row.TotalBytes >= db.TotalBytes {
			t.Fatalf("%s total (%d) >= Dropbox (%d); Dropbox must be worst", name, row.TotalBytes, db.TotalBytes)
		}
	}
	if ss.ControlBytes*2 >= db.ControlBytes {
		t.Fatalf("StackSync control (%d) not clearly below Dropbox (%d)", ss.ControlBytes, db.ControlBytes)
	}
	// StackSync compresses chunks, so its storage traffic undercuts the raw
	// benchmark volume; overhead stays low.
	if ss.Overhead >= db.Overhead {
		t.Fatalf("StackSync overhead %.3f >= Dropbox %.3f", ss.Overhead, db.Overhead)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig7cdShape(t *testing.T) {
	tr := smallTrace(t)
	res, err := RunFig7cd(tr)
	if err != nil {
		t.Fatal(err)
	}
	// 7(c): Dropbox ADD control traffic much larger than StackSync's.
	if res.StackSyncControl["ADD"] >= res.DropboxControl["ADD"] {
		t.Fatalf("ADD control: StackSync %d >= Dropbox %d",
			res.StackSyncControl["ADD"], res.DropboxControl["ADD"])
	}
	// 7(d): on UPDATEs, delta encoding beats fixed 512 KB chunking — but
	// both transfer far more than the bytes actually modified.
	if tr.Updates > 0 {
		if res.StackSyncStorage["UPDATE"] <= res.DropboxStorage["UPDATE"] {
			t.Fatalf("UPDATE storage: StackSync %d <= Dropbox %d (delta encoding must win)",
				res.StackSyncStorage["UPDATE"], res.DropboxStorage["UPDATE"])
		}
		if res.StackSyncStorage["UPDATE"] <= uint64(res.ModifiedBytes) {
			t.Fatalf("UPDATE storage %d <= modified bytes %d — chunk amplification missing",
				res.StackSyncStorage["UPDATE"], res.ModifiedBytes)
		}
	}
	// REMOVE moves no storage data on StackSync.
	if res.StackSyncStorage["REMOVE"] != 0 {
		t.Fatalf("REMOVE storage traffic = %d, want 0", res.StackSyncStorage["REMOVE"])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestTable2Shape(t *testing.T) {
	tr := smallTrace(t)
	res, err := RunTable2(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 2 providers x 4 batch sizes", len(res.Rows))
	}
	// Control traffic decreases monotonically with batch size per provider.
	byProvider := map[string][]Table2Row{}
	for _, row := range res.Rows {
		byProvider[row.Provider] = append(byProvider[row.Provider], row)
	}
	for name, rows := range byProvider {
		for i := 1; i < len(rows); i++ {
			if rows[i].ControlBytes > rows[i-1].ControlBytes {
				t.Fatalf("%s control grew with batch size: %+v", name, rows)
			}
		}
	}
	// StackSync total below Dropbox total at every batch size.
	for i := range byProvider["StackSync"] {
		if byProvider["StackSync"][i].TotalBytes >= byProvider["Dropbox"][i].TotalBytes {
			t.Fatalf("StackSync total not below Dropbox at batch %d", byProvider["StackSync"][i].BatchSize)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig8abShape(t *testing.T) {
	if testing.Short() {
		t.Skip("day-long simulation")
	}
	res := RunFig8ab(1)
	if len(res.Minutes) != 24*60 {
		t.Fatalf("minutes = %d, want 1440", len(res.Minutes))
	}
	// Peak demand near the paper's 8,514 req/min.
	peak := res.peakRate()
	if peak < 7000 || peak > 10000 {
		t.Fatalf("peak = %.0f req/min, want ~8514", peak)
	}
	// Instances track the workload: noon fleet much larger than night's.
	night := res.Minutes[3*60].Instances
	noon := res.Minutes[13*60].Instances
	if noon < 2*night {
		t.Fatalf("instances do not track load: night %d, noon %d", night, noon)
	}
	// SLA: overwhelmingly met (spikes at scale events are allowed).
	if vf := res.ViolationFraction(); vf > 0.02 {
		t.Fatalf("%.2f%% of requests above SLA", 100*vf)
	}
	var buf bytes.Buffer
	res.PrintFig8a(&buf, 60)
	res.PrintFig8b(&buf, 60)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig8cdeShape(t *testing.T) {
	res := RunFig8cde(1)
	if len(res.Minutes) != 60 {
		t.Fatalf("minutes = %d, want 60", len(res.Minutes))
	}
	// The predictor expected far less traffic than observed (the reactive
	// trigger condition is a 20% divergence; the injected misprediction is
	// ~2x). The synthetic diurnal floor is 12% of peak, which bounds how
	// extreme the expected/observed ratio can get.
	first := res.Minutes[1]
	if first.Expected >= first.RatePerMin*0.65 {
		t.Fatalf("misprediction absent: expected %.0f vs observed %.0f", first.Expected, first.RatePerMin)
	}
	// ...so the early minutes are under-provisioned and slow; after the
	// first reactive cycle (5 min) the fleet grows and response times drop.
	// Minute 10 sits inside the corrected window (the predictive baseline
	// re-mispredicts at each 15-minute boundary until reactive re-fixes it,
	// exactly the repeated correction §5.3.3 describes).
	early := res.Minutes[2]
	late := res.Minutes[10]
	if late.Instances <= early.Instances {
		t.Fatalf("reactive never corrected: %d -> %d instances", early.Instances, late.Instances)
	}
	if early.P95RespMs <= late.P95RespMs {
		t.Fatalf("response times did not improve: early p95 %.1f, late %.1f", early.P95RespMs, late.P95RespMs)
	}
	if late.P95RespMs > res.SLA.D.Seconds()*1000 {
		t.Fatalf("post-correction p95 %.1f ms above SLA", late.P95RespMs)
	}
	var buf bytes.Buffer
	res.PrintFig8cde(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig8fFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-time experiment")
	}
	res, err := RunFig8f(Fig8fConfig{
		Duration:   6 * time.Second,
		CrashEvery: 1500 * time.Millisecond,
		CheckEvery: 100 * time.Millisecond,
		CommitGap:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("no crashes injected")
	}
	if res.LostCommits != 0 {
		t.Fatalf("%d commits lost — redelivery failed", res.LostCommits)
	}
	if res.Steady.N == 0 || res.Crashed.N == 0 {
		t.Fatalf("sample counts: steady %d, crashed %d", res.Steady.N, res.Crashed.N)
	}
	// Crash-window commits are slower, but repair keeps the penalty small
	// (the paper sees < 1 s with 1 s checks; scale: < ~10x the check
	// period). The crashed sample is small and wall-clock noise under
	// parallel test load can inflate the steady median, so the robust
	// check is that the worst crash-window commit clearly exceeds typical
	// steady commits.
	if res.Crashed.Max <= res.Steady.Median {
		t.Fatalf("crash commits indistinguishable: crashed max %.4f vs steady median %.4f",
			res.Crashed.Max, res.Steady.Median)
	}
	if res.Crashed.Max > 3.0 {
		t.Fatalf("crash recovery took %.2f s — far above the respawn budget", res.Crashed.Max)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestHumanBytes(t *testing.T) {
	for _, tt := range []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KB"},
		{3 << 20, "3.00 MB"},
		{5 << 30, "5.00 GB"},
	} {
		if got := humanBytes(tt.n); got != tt.want {
			t.Fatalf("humanBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}
