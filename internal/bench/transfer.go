package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"stacksync/internal/chunker"
)

// TransferOptions shapes one upload-throughput measurement of the client's
// transfer pipeline over the simulated Storage back-end.
type TransferOptions struct {
	// Chunks distinct chunks of ChunkSize bytes each form the uploaded file.
	Chunks    int
	ChunkSize int
	// Workers and Batch tune the client's transfer pipeline. Workers=1,
	// Batch=1 is the serial baseline: one store round trip per chunk.
	Workers int
	Batch   int
	// PerRequest is the simulated per-request storage latency. The simulated
	// store charges it per object even inside a batch, so batching alone
	// buys nothing in simulated time — only parallel batches overlap it,
	// which is exactly what this measurement isolates.
	PerRequest time.Duration
	// Seed varies the generated content so repeated runs (benchmark
	// iterations) never hit the dedup probe or the local chunk database.
	Seed int64
}

func (o *TransferOptions) applyDefaults() {
	if o.Chunks <= 0 {
		o.Chunks = 128
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 8 << 10
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Batch == 0 {
		o.Batch = 1
	}
	if o.PerRequest <= 0 {
		o.PerRequest = 2 * time.Millisecond
	}
}

// TransferResult is one measured upload.
type TransferResult struct {
	Bytes   int64
	Elapsed time.Duration
}

// MBps is upload throughput in decimal megabytes per second.
func (r TransferResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// transferContent builds Chunks distinct chunks, each stamped with the seed
// and its index so no two chunks (or two runs) share a fingerprint.
func transferContent(opts TransferOptions) []byte {
	content := make([]byte, opts.Chunks*opts.ChunkSize)
	for i := 0; i < opts.Chunks; i++ {
		chunk := content[i*opts.ChunkSize : (i+1)*opts.ChunkSize]
		var stamp [16]byte
		binary.LittleEndian.PutUint64(stamp[:8], uint64(opts.Seed))
		binary.LittleEndian.PutUint64(stamp[8:], uint64(i))
		for off := 0; off < len(chunk); off += len(stamp) {
			copy(chunk[off:], stamp[:])
		}
	}
	return content
}

// RunTransferPipeline measures how fast one device pushes a fresh file's
// chunks into the simulated store: deploy a single-device stack with the
// given pipeline shape, time PutFile (which returns once every chunk is
// uploaded or queued and the commit is proposed), and report bytes over
// wall clock. Compression is off so the measurement isolates the transfer
// schedule, not the codec.
func RunTransferPipeline(opts TransferOptions) (TransferResult, error) {
	opts.applyDefaults()
	st, err := NewStack(StackOptions{
		Devices:         1,
		Chunker:         chunker.Fixed{ChunkSize: opts.ChunkSize},
		Compression:     chunker.None,
		StorageLatency:  opts.PerRequest,
		TransferWorkers: opts.Workers,
		TransferBatch:   opts.Batch,
	})
	if err != nil {
		return TransferResult{}, err
	}
	defer st.Close()

	content := transferContent(opts)
	start := time.Now()
	if err := st.Client(0).PutFile("transfer.bin", content); err != nil {
		return TransferResult{}, fmt.Errorf("bench: transfer put: %w", err)
	}
	elapsed := time.Since(start)

	// The pipeline must not have cheated: every chunk is in the store, none
	// were left on the deferred-upload queue.
	tr := st.StorageTraffic(0)
	if got := int(tr.Puts); got != opts.Chunks {
		return TransferResult{}, fmt.Errorf("bench: uploaded %d chunks, want %d", got, opts.Chunks)
	}
	return TransferResult{Bytes: int64(len(content)), Elapsed: elapsed}, nil
}
