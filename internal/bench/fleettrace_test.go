package bench

import (
	"bytes"
	"testing"
)

// TestFleetTraceSmoke runs the fleet-observability smoke end to end: a
// routed fleet with per-instance obs, one kill, one failover commit, one
// clean drain — and asserts the stitched trace and fleet rollup hold every
// invariant the scenario promises. check.sh runs this under -race.
func TestFleetTraceSmoke(t *testing.T) {
	res, err := RunFleetTrace(FleetTraceConfig{Seed: 80})
	if err != nil {
		t.Fatalf("fleet-trace smoke: %v", err)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	t.Logf("\n%s", buf.String())
	if len(res.Violations) > 0 {
		t.Fatalf("fleet-trace smoke violations:\n%s", buf.String())
	}
	if res.TraceSpans == 0 || res.TraceID == "" {
		t.Fatalf("no stitched failover trace captured: %+v", res)
	}
}
