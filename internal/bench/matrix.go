package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stacksync/internal/benchhist"
	"stacksync/internal/chunker"
	"stacksync/internal/client"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/metrics"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/obs"
	"stacksync/internal/omq"
)

// The scenario matrix: four workload shapes beyond the paper's traces, each
// run against the real in-process stack and emitted as a gated record into
// the benchmark history — so "handles many scenarios" is an enumerable,
// regression-gated artifact rather than a set of one-off demos.
//
//   - fanout:    sharing-heavy storm — one workspace shared by many devices,
//     every commit must propagate to every member.
//   - zipf:      Zipf-skewed workspace popularity — a few hot workspaces
//     absorb most commits while the long tail stays warm.
//   - churn:     mobile connect/disconnect cycles — devices repeatedly drop
//     off, come back with a cold local DB, and must resync before writing.
//   - coldstart: thundering herd — a fleet of brand-new devices bootstraps
//     a populated workspace simultaneously.
//   - reconnect: getChanges storm against a committing fleet — a burst of
//     cold full-state readers plus warm changes-since-v readers hammers the
//     MVCC read path while committers keep writing; gated on the commit p99
//     not collapsing versus a no-reader baseline run (DESIGN §16).

// MatrixConfig parameterizes the scenario matrix run.
type MatrixConfig struct {
	// Seed fixes workload shapes (content bytes, Zipf draws, schedules).
	Seed int64
	// Quick shrinks the scenarios for interactive runs.
	Quick bool
	// Smoke shrinks them further for the CI leg: a correctness pass over
	// every scenario in a few seconds, not a measurement.
	Smoke bool
}

// matrixSizes resolves the per-scenario workload sizes for a config.
type matrixSizes struct {
	fanoutDevices, fanoutFiles      int
	zipfWorkspaces, zipfCommits     int
	zipfCommitters                  int
	churnDevices, churnCycles       int
	coldFiles, coldClients          int
	reconnSeedItems, reconnCommits  int
	reconnCommitters                int
	reconnColdReaders               int
	reconnWarmReaders               int
	fileBytes                       int
	waitBudget                      time.Duration
	fanoutSLO, commitSLO, resyncSLO time.Duration
}

func (c MatrixConfig) sizes() matrixSizes {
	s := matrixSizes{
		fanoutDevices: 6, fanoutFiles: 40,
		zipfWorkspaces: 32, zipfCommits: 1000, zipfCommitters: 8,
		churnDevices: 4, churnCycles: 6,
		coldFiles: 48, coldClients: 8,
		reconnSeedItems: 64, reconnCommits: 600, reconnCommitters: 6,
		reconnColdReaders: 8, reconnWarmReaders: 8,
		fileBytes:  8 * 1024,
		waitBudget: 30 * time.Second,
		fanoutSLO:  450 * time.Millisecond,
		commitSLO:  450 * time.Millisecond,
		resyncSLO:  2 * time.Second,
	}
	if c.Quick {
		s.fanoutDevices, s.fanoutFiles = 4, 15
		s.zipfWorkspaces, s.zipfCommits = 16, 300
		s.churnDevices, s.churnCycles = 3, 4
		s.coldFiles, s.coldClients = 24, 5
		s.reconnSeedItems, s.reconnCommits = 32, 300
		s.reconnCommitters, s.reconnColdReaders, s.reconnWarmReaders = 4, 4, 4
	}
	if c.Smoke {
		s.fanoutDevices, s.fanoutFiles = 3, 6
		s.zipfWorkspaces, s.zipfCommits, s.zipfCommitters = 8, 80, 4
		s.churnDevices, s.churnCycles = 2, 2
		s.coldFiles, s.coldClients = 8, 3
		s.reconnSeedItems, s.reconnCommits = 16, 80
		s.reconnCommitters, s.reconnColdReaders, s.reconnWarmReaders = 4, 2, 2
		s.fileBytes = 2 * 1024
		s.waitBudget = 10 * time.Second
	}
	return s
}

// ScenarioResult is one scenario's measured outcome.
type ScenarioResult struct {
	Name    string        `json:"name"`
	Ops     int           `json:"ops"`
	Elapsed time.Duration `json:"elapsed"`
	// OpsPerSec is the scenario's headline throughput (gated, higher is
	// better); what one op is depends on the scenario (commits, files).
	OpsPerSec float64       `json:"opsPerSec"`
	P50       time.Duration `json:"p50"`
	P99       time.Duration `json:"p99"`
	SLOTarget time.Duration `json:"sloTarget"`
	// Attainment is the fraction of latency samples within SLOTarget.
	Attainment float64 `json:"attainment"`
	Converged  bool    `json:"converged"`
	// Retries counts omq call retry attempts over the run — the repair
	// traffic the scenario induced (informational, from the registry).
	Retries uint64 `json:"retries"`
	// Extra carries scenario-specific informational metrics.
	Extra      []benchhist.Metric `json:"extra,omitempty"`
	Violations []string           `json:"violations,omitempty"`
}

// HistoryRecord renders the scenario as a history record in the suite
// "scenario/<name>": throughput, p99 and SLO attainment gated, the rest
// informational.
func (s *ScenarioResult) HistoryRecord(prov benchhist.Provenance, takenAt time.Time) benchhist.Record {
	ms := []benchhist.Metric{
		{Name: s.Name, Unit: "ops/s", Value: s.OpsPerSec, Dir: benchhist.DirHigher},
		{Name: s.Name, Unit: "p99-ms", Value: float64(s.P99) / 1e6, Dir: benchhist.DirLower},
		{Name: s.Name, Unit: "attainment", Value: s.Attainment, Dir: benchhist.DirHigher},
		{Name: s.Name, Unit: "p50-ms", Value: float64(s.P50) / 1e6},
		{Name: s.Name, Unit: "ops", Value: float64(s.Ops)},
		{Name: s.Name, Unit: "retries", Value: float64(s.Retries)},
	}
	ms = append(ms, s.Extra...)
	return benchhist.Record{
		Schema:     benchhist.SchemaVersion,
		Suite:      "scenario/" + s.Name,
		Commit:     prov.Commit,
		Dirty:      prov.Dirty,
		TakenAt:    takenAt.UTC(),
		GoVersion:  prov.GoVersion,
		GOMAXPROCS: prov.GOMAXPROCS,
		Host:       prov.Host,
		Metrics:    ms,
	}
}

// MatrixResult is the full matrix run.
type MatrixResult struct {
	Seed      int64            `json:"seed"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Violations aggregates every scenario's broken invariants.
func (r *MatrixResult) Violations() []string {
	var out []string
	for _, s := range r.Scenarios {
		for _, v := range s.Violations {
			out = append(out, s.Name+": "+v)
		}
	}
	return out
}

// Print writes the matrix summary table.
func (r *MatrixResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Scenario matrix — seed %d\n", r.Seed)
	fmt.Fprintf(w, "%-10s %6s %10s %10s %10s %10s %7s %9s\n",
		"scenario", "ops", "ops/s", "p50", "p99", "slo d", "attain", "converged")
	for _, s := range r.Scenarios {
		conv := "yes"
		if !s.Converged {
			conv = "NO"
		}
		fmt.Fprintf(w, "%-10s %6d %10.1f %10v %10v %10v %7.4f %9s\n",
			s.Name, s.Ops, s.OpsPerSec,
			s.P50.Round(100*time.Microsecond), s.P99.Round(100*time.Microsecond),
			s.SLOTarget, s.Attainment, conv)
	}
	for _, v := range r.Violations() {
		fmt.Fprintf(w, "VIOLATION: %s\n", v)
	}
}

// RunMatrix executes all five scenarios in sequence.
func RunMatrix(cfg MatrixConfig) (*MatrixResult, error) {
	sz := cfg.sizes()
	res := &MatrixResult{Seed: cfg.Seed}
	for _, run := range []struct {
		name string
		fn   func(MatrixConfig, matrixSizes) (*ScenarioResult, error)
	}{
		{"fanout", runFanoutScenario},
		{"zipf", runZipfScenario},
		{"churn", runChurnScenario},
		{"coldstart", runColdStartScenario},
		{"reconnect", runReconnectScenario},
	} {
		s, err := run.fn(cfg, sz)
		if err != nil {
			return nil, fmt.Errorf("bench: matrix scenario %s: %w", run.name, err)
		}
		res.Scenarios = append(res.Scenarios, *s)
	}
	return res, nil
}

// matrixContent yields deterministic pseudo-random file bodies.
func matrixContent(rnd *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rnd.Read(b)
	return b
}

// scenarioStats fills the latency-derived fields of a result.
func scenarioStats(s *ScenarioResult, lats []time.Duration, slo *obs.SLOTracker) {
	secs := make([]float64, len(lats))
	for i, l := range lats {
		secs[i] = l.Seconds()
	}
	s.P50 = time.Duration(metrics.Percentile(secs, 0.50) * 1e9)
	s.P99 = time.Duration(metrics.Percentile(secs, 0.99) * 1e9)
	s.Attainment = slo.Attainment()
	if s.Elapsed > 0 {
		s.OpsPerSec = float64(s.Ops) / s.Elapsed.Seconds()
	}
}

// --- fanout: sharing-heavy storm ------------------------------------------

// runFanoutScenario deploys one workspace shared by sz.fanoutDevices
// devices; device 0 commits sz.fanoutFiles files and every commit must
// reach every other member. Latency is commit-to-everywhere: from PutFile
// until the last member holds the version.
func runFanoutScenario(cfg MatrixConfig, sz matrixSizes) (*ScenarioResult, error) {
	reg := obs.NewRegistry()
	st, err := NewStack(StackOptions{
		Devices:     sz.fanoutDevices,
		WorkspaceID: "matrix-fanout",
		Registry:    reg,
	})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	slo := obs.NewSLOTracker(reg, obs.SLOConfig{Name: "matrix_fanout", Target: sz.fanoutSLO, Objective: 0.99})
	rnd := rand.New(rand.NewSource(cfg.Seed))
	s := &ScenarioResult{Name: "fanout", SLOTarget: sz.fanoutSLO, Converged: true}
	writer := st.Client(0)
	var lats []time.Duration

	start := time.Now()
	for k := 0; k < sz.fanoutFiles; k++ {
		path := fmt.Sprintf("storm/f%04d.txt", k)
		t0 := time.Now()
		if err := writer.PutFile(path, matrixContent(rnd, sz.fileBytes)); err != nil {
			return nil, fmt.Errorf("put %s: %w", path, err)
		}
		for d := 1; d < st.Devices(); d++ {
			if err := st.Client(d).WaitForVersion(path, 1, sz.waitBudget); err != nil {
				s.Converged = false
				s.Violations = append(s.Violations,
					fmt.Sprintf("device %d never received %s: %v", d, path, err))
			}
		}
		lat := time.Since(t0)
		lats = append(lats, lat)
		slo.Observe(lat)
	}
	s.Elapsed = time.Since(start)
	s.Ops = sz.fanoutFiles
	s.Retries = reg.CounterValue("omq_retry_attempts_total", "oid", core.ServiceOID)
	s.Extra = []benchhist.Metric{
		{Name: s.Name, Unit: "devices", Value: float64(sz.fanoutDevices)},
	}
	scenarioStats(s, lats, slo)
	return s, nil
}

// --- zipf: skewed hot workspaces ------------------------------------------

// runZipfScenario spreads sz.zipfCommits commits over sz.zipfWorkspaces
// workspaces with Zipf-distributed popularity (s=1.2), fired by concurrent
// committers straight at the SyncService — the metadata hot path under a
// realistic skew where per-workspace serialization bites on the head of the
// distribution.
func runZipfScenario(cfg MatrixConfig, sz matrixSizes) (*ScenarioResult, error) {
	reg := obs.NewRegistry()
	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore(metastore.WithRegistry(reg))
	defer meta.Close()
	wsName := func(i int) string { return fmt.Sprintf("matrix-zipf-%02d", i) }
	for i := 0; i < sz.zipfWorkspaces; i++ {
		if err := meta.CreateWorkspace(metastore.Workspace{ID: wsName(i), Owner: "user-0"}); err != nil {
			return nil, err
		}
	}
	sb, err := omq.NewBroker(m, omq.WithID("svc"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	defer sb.Close()
	svc := core.NewService(meta, sb)
	bind, err := svc.Bind()
	if err != nil {
		return nil, err
	}
	defer bind.Unbind()

	// Hot-workspace attribution under skew: the space-saving sketch on the
	// commit path must surface the Zipf head without tracking every
	// workspace exactly.
	hotStats := obs.NewHotStats(8)
	svc.SetObs(nil, hotStats)

	// Pre-draw the workspace sequence so the skew is deterministic and the
	// committers share no RNG.
	rnd := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rnd, 1.2, 1, uint64(sz.zipfWorkspaces-1))
	wsOf := make([]int, sz.zipfCommits)
	hot := make(map[int]int)
	for i := range wsOf {
		wsOf[i] = int(zipf.Uint64())
		hot[wsOf[i]]++
	}
	hotTopIdx, hotMax := 0, 0
	for i, n := range hot {
		if n > hotMax || (n == hotMax && i < hotTopIdx) {
			hotTopIdx, hotMax = i, n
		}
	}

	slo := obs.NewSLOTracker(reg, obs.SLOConfig{Name: "matrix_zipf", Target: sz.commitSLO, Objective: 0.99})
	s := &ScenarioResult{Name: "zipf", SLOTarget: sz.commitSLO, Converged: true}
	var (
		mu     sync.Mutex
		lats   []time.Duration
		failed int
	)
	jobCh := make(chan int, sz.zipfCommits)
	for i := 0; i < sz.zipfCommits; i++ {
		jobCh <- i
	}
	close(jobCh)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < sz.zipfCommitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cb, err := omq.NewBroker(m, omq.WithID(fmt.Sprintf("zipf-%d", w)), omq.WithRegistry(reg))
			if err != nil {
				return
			}
			defer cb.Close()
			proxy := cb.Lookup(core.ServiceOID)
			for i := range jobCh {
				ws := wsName(wsOf[i])
				path := fmt.Sprintf("zipf/f%05d.txt", i)
				req := core.CommitRequest{
					Workspace: ws,
					DeviceID:  fmt.Sprintf("zipf-dev-%d", w),
					Items: []metastore.ItemVersion{{
						Workspace: ws,
						ItemID:    ws + ":" + path,
						Path:      path,
						Version:   1,
						Status:    metastore.Added,
						Size:      int64(sz.fileBytes),
						DeviceID:  fmt.Sprintf("zipf-dev-%d", w),
					}},
				}
				t0 := time.Now()
				err := proxy.Call("CommitRequest", nil, req)
				lat := time.Since(t0)
				slo.Observe(lat)
				mu.Lock()
				lats = append(lats, lat)
				if err != nil {
					failed++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	s.Elapsed = time.Since(start)
	s.Ops = sz.zipfCommits

	if failed > 0 {
		s.Converged = false
		s.Violations = append(s.Violations, fmt.Sprintf("%d of %d commits failed", failed, sz.zipfCommits))
	}
	// Every acked commit must be durable: the per-workspace item counts sum
	// back to the commit count.
	stored := 0
	for i := 0; i < sz.zipfWorkspaces; i++ {
		state, err := meta.State(wsName(i))
		if err != nil {
			return nil, err
		}
		stored += len(state)
	}
	if stored != sz.zipfCommits-failed {
		s.Converged = false
		s.Violations = append(s.Violations,
			fmt.Sprintf("metadata store holds %d items, want %d", stored, sz.zipfCommits-failed))
	}
	// The sketch tracks at most 8 of the sz.zipfWorkspaces workspaces, yet
	// under Zipf skew the true head must survive every eviction: missing it
	// means the fleet's hot-workspace attribution cannot be trusted.
	sketchShare := 0.0
	sketchHit := false
	for _, e := range hotStats.Commits.Snapshot() {
		if e.Key == wsName(hotTopIdx) {
			sketchHit = true
			sketchShare = float64(e.Count) / float64(sz.zipfCommits)
			break
		}
	}
	if !sketchHit {
		s.Converged = false
		s.Violations = append(s.Violations,
			fmt.Sprintf("hot-workspace sketch missed the Zipf head %q (%d commits)", wsName(hotTopIdx), hotMax))
	}
	s.Retries = reg.CounterValue("omq_retry_attempts_total", "oid", core.ServiceOID)
	s.Extra = []benchhist.Metric{
		{Name: s.Name, Unit: "workspaces", Value: float64(sz.zipfWorkspaces)},
		{Name: s.Name, Unit: "hot-ws-share", Value: float64(hotMax) / float64(sz.zipfCommits)},
		{Name: s.Name, Unit: "sketch-top-share", Value: sketchShare},
	}
	scenarioStats(s, lats, slo)
	return s, nil
}

// --- churn: mobile connect/disconnect cycles ------------------------------

// runChurnScenario has sz.churnDevices devices cycle through connect →
// resync → commit → disconnect, sz.churnCycles times each, concurrently.
// Every reconnect starts from a cold local DB, so the device must pull its
// own history back before writing the next file. Latency is
// reconnect-to-recovered: Start+Resync until the device again holds every
// file it ever wrote.
func runChurnScenario(cfg MatrixConfig, sz matrixSizes) (*ScenarioResult, error) {
	const workspace = "matrix-churn"
	reg := obs.NewRegistry()
	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore(metastore.WithRegistry(reg))
	defer meta.Close()
	if err := meta.CreateWorkspace(metastore.Workspace{
		ID: workspace, Owner: "user-0", Members: memberNames(sz.churnDevices),
	}); err != nil {
		return nil, err
	}
	sb, err := omq.NewBroker(m, omq.WithID("svc"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	defer sb.Close()
	svc := core.NewService(meta, sb)
	bind, err := svc.Bind()
	if err != nil {
		return nil, err
	}
	defer bind.Unbind()
	base := objstore.NewMemory()

	newIncarnation := func(dev int) (*client.Client, *omq.Broker, error) {
		cb, err := omq.NewBroker(m, omq.WithID(fmt.Sprintf("churn-%d", dev)), omq.WithRegistry(reg))
		if err != nil {
			return nil, nil, err
		}
		cl, err := client.NewClient(client.Config{
			UserID:      fmt.Sprintf("user-%d", dev),
			DeviceID:    fmt.Sprintf("dev-%d", dev),
			WorkspaceID: workspace,
			Broker:      cb,
			Storage:     base,
			Registry:    reg,
			Chunker:     chunker.Fixed{ChunkSize: 4 * 1024},
		})
		if err != nil {
			cb.Close()
			return nil, nil, err
		}
		if err := cl.Start(); err != nil {
			cb.Close()
			return nil, nil, err
		}
		return cl, cb, nil
	}

	slo := obs.NewSLOTracker(reg, obs.SLOConfig{Name: "matrix_churn", Target: sz.resyncSLO, Objective: 0.99})
	rndMu := sync.Mutex{}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	content := func(n int) []byte {
		rndMu.Lock()
		defer rndMu.Unlock()
		return matrixContent(rnd, n)
	}

	s := &ScenarioResult{Name: "churn", SLOTarget: sz.resyncSLO, Converged: true}
	var (
		mu   sync.Mutex
		lats []time.Duration
	)
	report := func(lat time.Duration, viol string) {
		mu.Lock()
		defer mu.Unlock()
		if viol != "" {
			s.Converged = false
			s.Violations = append(s.Violations, viol)
		}
		if lat >= 0 {
			lats = append(lats, lat)
			slo.Observe(lat)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for dev := 0; dev < sz.churnDevices; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			var own []string
			for cyc := 0; cyc < sz.churnCycles; cyc++ {
				t0 := time.Now()
				cl, cb, err := newIncarnation(dev)
				if err != nil {
					report(-1, fmt.Sprintf("dev-%d cycle %d reconnect: %v", dev, cyc, err))
					return
				}
				// Recover this device's own history from the server: a cold
				// local DB plus resync must yield every previously-written
				// file.
				recovered := false
				deadline := time.Now().Add(sz.waitBudget)
				for time.Now().Before(deadline) {
					if err := cl.Resync(); err == nil && hasAll(cl, own) {
						recovered = true
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if !recovered {
					report(-1, fmt.Sprintf("dev-%d cycle %d never recovered its %d files", dev, cyc, len(own)))
				} else {
					report(time.Since(t0), "")
				}
				path := fmt.Sprintf("churn/dev%d/c%02d.txt", dev, cyc)
				if err := cl.PutFile(path, content(sz.fileBytes)); err != nil {
					report(-1, fmt.Sprintf("dev-%d cycle %d put %s: %v", dev, cyc, path, err))
				} else {
					own = append(own, path)
					// The commit must be acknowledged locally before the
					// device drops off, or the next incarnation races its own
					// in-flight proposal.
					if err := cl.WaitForVersion(path, 1, sz.waitBudget); err != nil {
						report(-1, fmt.Sprintf("dev-%d cycle %d commit %s not applied: %v", dev, cyc, path, err))
					}
				}
				cl.Close()
				cb.Close()
			}
			// Final incarnation: the device comes back once more and must
			// converge on the full workspace state (everyone's files).
			cl, cb, err := newIncarnation(dev)
			if err != nil {
				report(-1, fmt.Sprintf("dev-%d final reconnect: %v", dev, err))
				return
			}
			defer cb.Close()
			defer cl.Close()
			want := sz.churnDevices * sz.churnCycles
			deadline := time.Now().Add(sz.waitBudget)
			for time.Now().Before(deadline) {
				if err := cl.Resync(); err == nil && len(cl.Paths()) == want {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			report(-1, fmt.Sprintf("dev-%d final state holds %d files, want %d", dev, len(cl.Paths()), want))
		}(dev)
	}
	wg.Wait()
	s.Elapsed = time.Since(start)
	s.Ops = sz.churnDevices * sz.churnCycles
	s.Retries = reg.CounterValue("omq_retry_attempts_total", "oid", core.ServiceOID)
	s.Extra = []benchhist.Metric{
		{Name: s.Name, Unit: "devices", Value: float64(sz.churnDevices)},
		{Name: s.Name, Unit: "reconnects", Value: float64(sz.churnDevices * (sz.churnCycles + 1))},
	}
	scenarioStats(s, lats, slo)
	return s, nil
}

// hasAll reports whether the client holds every path.
func hasAll(cl *client.Client, paths []string) bool {
	for _, p := range paths {
		if _, ok := cl.FileContent(p); !ok {
			return false
		}
	}
	return true
}

// --- coldstart: thundering herd -------------------------------------------

// runColdStartScenario seeds a workspace with sz.coldFiles files, then
// boots sz.coldClients brand-new devices at the same instant. Every device
// must bootstrap the full state (metadata resync + chunk downloads) while
// all its peers hammer the same storage and metadata path. Latency is
// boot-to-converged per device.
func runColdStartScenario(cfg MatrixConfig, sz matrixSizes) (*ScenarioResult, error) {
	const workspace = "matrix-cold"
	reg := obs.NewRegistry()
	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore(metastore.WithRegistry(reg))
	defer meta.Close()
	if err := meta.CreateWorkspace(metastore.Workspace{
		ID: workspace, Owner: "user-0", Members: memberNames(sz.coldClients + 1),
	}); err != nil {
		return nil, err
	}
	sb, err := omq.NewBroker(m, omq.WithID("svc"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	defer sb.Close()
	svc := core.NewService(meta, sb)
	bind, err := svc.Bind()
	if err != nil {
		return nil, err
	}
	defer bind.Unbind()
	base := objstore.NewMemory()

	// Seed the workspace: user-0's device writes the corpus, then leaves.
	seedBroker, err := omq.NewBroker(m, omq.WithID("cold-seed"), omq.WithRegistry(reg))
	if err != nil {
		return nil, err
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	seeder, err := client.NewClient(client.Config{
		UserID: "user-0", DeviceID: "dev-seed", WorkspaceID: workspace,
		Broker: seedBroker, Storage: base, Registry: reg,
		Chunker: chunker.Fixed{ChunkSize: 4 * 1024},
	})
	if err != nil {
		seedBroker.Close()
		return nil, err
	}
	if err := seeder.Start(); err != nil {
		seedBroker.Close()
		return nil, err
	}
	paths := make([]string, sz.coldFiles)
	for k := range paths {
		paths[k] = fmt.Sprintf("corpus/f%04d.txt", k)
		if err := seeder.PutFile(paths[k], matrixContent(rnd, sz.fileBytes)); err != nil {
			return nil, fmt.Errorf("seed %s: %w", paths[k], err)
		}
	}
	for _, p := range paths {
		if err := seeder.WaitForVersion(p, 1, sz.waitBudget); err != nil {
			return nil, fmt.Errorf("seed commit %s not applied: %w", p, err)
		}
	}
	seeder.Close()
	seedBroker.Close()

	slo := obs.NewSLOTracker(reg, obs.SLOConfig{Name: "matrix_cold", Target: sz.resyncSLO, Objective: 0.99})
	s := &ScenarioResult{Name: "coldstart", SLOTarget: sz.resyncSLO, Converged: true}
	var (
		mu   sync.Mutex
		lats []time.Duration
	)

	// The herd: every device boots at the barrier and bootstraps the corpus.
	barrier := make(chan struct{})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < sz.coldClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cb, err := omq.NewBroker(m, omq.WithID(fmt.Sprintf("cold-%d", i)), omq.WithRegistry(reg))
			if err != nil {
				mu.Lock()
				s.Converged = false
				s.Violations = append(s.Violations, fmt.Sprintf("client %d broker: %v", i, err))
				mu.Unlock()
				return
			}
			defer cb.Close()
			cl, err := client.NewClient(client.Config{
				UserID: fmt.Sprintf("user-%d", i+1), DeviceID: fmt.Sprintf("dev-cold-%d", i),
				WorkspaceID: workspace, Broker: cb, Storage: base, Registry: reg,
				Chunker: chunker.Fixed{ChunkSize: 4 * 1024},
			})
			if err != nil {
				mu.Lock()
				s.Converged = false
				s.Violations = append(s.Violations, fmt.Sprintf("client %d: %v", i, err))
				mu.Unlock()
				return
			}
			defer cl.Close()
			<-barrier
			t0 := time.Now()
			if err := cl.Start(); err != nil {
				mu.Lock()
				s.Converged = false
				s.Violations = append(s.Violations, fmt.Sprintf("client %d start: %v", i, err))
				mu.Unlock()
				return
			}
			done := false
			deadline := time.Now().Add(sz.waitBudget)
			for time.Now().Before(deadline) {
				if err := cl.Resync(); err == nil && hasAll(cl, paths) {
					done = true
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			lat := time.Since(t0)
			mu.Lock()
			if !done {
				s.Converged = false
				s.Violations = append(s.Violations,
					fmt.Sprintf("client %d bootstrapped %d of %d files within %v", i, len(cl.Paths()), len(paths), sz.waitBudget))
			} else {
				lats = append(lats, lat)
				slo.Observe(lat)
			}
			mu.Unlock()
		}(i)
	}
	close(barrier)
	wg.Wait()
	s.Elapsed = time.Since(start)
	s.Ops = sz.coldClients * sz.coldFiles // files bootstrapped fleet-wide
	s.Retries = reg.CounterValue("omq_retry_attempts_total", "oid", core.ServiceOID)
	s.Extra = []benchhist.Metric{
		{Name: s.Name, Unit: "clients", Value: float64(sz.coldClients)},
		{Name: s.Name, Unit: "corpus-files", Value: float64(sz.coldFiles)},
	}
	scenarioStats(s, lats, slo)
	sort.Strings(s.Violations)
	return s, nil
}

// --- reconnect: getChanges storm over the MVCC read path ------------------

// runReconnectScenario measures the lock-free snapshot read path's promise
// (DESIGN §16): commit latency must not collapse when a reconnect storm
// hammers the same workspace. Phase one fires sz.reconnCommits commits from
// sz.reconnCommitters workers with no readers at all and records the
// baseline commit p99. Phase two repeats the identical commit load while
// sz.reconnColdReaders loop full-state GetChanges and sz.reconnWarmReaders
// loop GetChangesSince from tracked cursors (reply versions must never go
// backwards, and full-state replies must never shrink below the seeded
// corpus). The gated result is the storm phase; a violation fires when the
// storm p99 exceeds both 8x the baseline and an absolute 100ms floor. The
// ratio alone would trip on scheduler noise over a near-zero baseline, and
// the floor alone would trip on race-enabled single-core CI where every
// latency inflates ~15x; a true lock collapse (the pre-MVCC store served
// about one commit per second under this storm) clears both by orders of
// magnitude.
func runReconnectScenario(cfg MatrixConfig, sz matrixSizes) (*ScenarioResult, error) {
	const workspace = "matrix-reconn"
	reg := obs.NewRegistry()
	m := mq.NewBroker()
	defer m.Close()
	// Finite retention keeps compaction live during the storm, so some warm
	// cursors genuinely fall below the watermark and exercise the full-state
	// fallback rather than only the cheap tail branch.
	meta := metastore.NewStore(metastore.WithRegistry(reg), metastore.WithLogRetention(256))
	defer meta.Close()
	if err := meta.CreateWorkspace(metastore.Workspace{ID: workspace, Owner: "user-0"}); err != nil {
		return nil, err
	}
	// Seed a populated workspace so cold readers pay a real full-state cost.
	seed := make([]metastore.ItemVersion, sz.reconnSeedItems)
	for k := range seed {
		path := fmt.Sprintf("seed/f%04d.txt", k)
		seed[k] = metastore.ItemVersion{
			Workspace: workspace, ItemID: workspace + ":" + path, Path: path,
			Version: 1, Status: metastore.Added, Size: int64(sz.fileBytes),
		}
	}
	if _, err := meta.CommitBatch(seed); err != nil {
		return nil, err
	}
	// A SyncService fleet sharing the one store, one instance per concurrent
	// caller. Each bound object drains its call queue with a single worker
	// goroutine, so a lone instance would serialize reads ahead of commits at
	// the dispatch layer and the gate would measure queue dwell, not the
	// store. With a worker per caller the only cross-traffic coupling left is
	// the metastore itself — exactly the contention DESIGN §16 claims away.
	instances := sz.reconnCommitters + sz.reconnColdReaders + sz.reconnWarmReaders
	for inst := 0; inst < instances; inst++ {
		sb, err := omq.NewBroker(m, omq.WithID(fmt.Sprintf("svc-%d", inst)), omq.WithRegistry(reg))
		if err != nil {
			return nil, err
		}
		defer sb.Close()
		svc := core.NewService(meta, sb)
		bind, err := svc.Bind()
		if err != nil {
			return nil, err
		}
		defer bind.Unbind()
	}

	// commitPhase fires sz.reconnCommits single-item commits through the RPC
	// surface (unique items per phase) and returns the per-commit latencies.
	commitPhase := func(phase string) ([]time.Duration, int, error) {
		jobCh := make(chan int, sz.reconnCommits)
		for i := 0; i < sz.reconnCommits; i++ {
			jobCh <- i
		}
		close(jobCh)
		var (
			mu     sync.Mutex
			lats   []time.Duration
			failed int
		)
		errCh := make(chan error, sz.reconnCommitters)
		var wg sync.WaitGroup
		for w := 0; w < sz.reconnCommitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cb, err := omq.NewBroker(m, omq.WithID(fmt.Sprintf("reconn-%s-%d", phase, w)), omq.WithRegistry(reg))
				if err != nil {
					errCh <- err
					return
				}
				defer cb.Close()
				proxy := cb.Lookup(core.ServiceOID)
				dev := fmt.Sprintf("reconn-dev-%d", w)
				for i := range jobCh {
					path := fmt.Sprintf("%s/f%05d.txt", phase, i)
					req := core.CommitRequest{
						Workspace: workspace,
						DeviceID:  dev,
						Items: []metastore.ItemVersion{{
							Workspace: workspace,
							ItemID:    workspace + ":" + path,
							Path:      path,
							Version:   1,
							Status:    metastore.Added,
							Size:      int64(sz.fileBytes),
							DeviceID:  dev,
						}},
					}
					t0 := time.Now()
					err := proxy.Call("CommitRequest", nil, req)
					lat := time.Since(t0)
					mu.Lock()
					lats = append(lats, lat)
					if err != nil {
						failed++
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return nil, 0, err
		}
		return lats, failed, nil
	}

	// Phase one: no readers — the baseline the storm is judged against.
	baseLats, baseFailed, err := commitPhase("base")
	if err != nil {
		return nil, err
	}
	baseSecs := make([]float64, len(baseLats))
	for i, l := range baseLats {
		baseSecs[i] = l.Seconds()
	}
	baseP99 := time.Duration(metrics.Percentile(baseSecs, 0.99) * 1e9)

	// Phase two: the storm. Readers poll for the whole commit phase, each kind
	// checking its own invariant on every reply. The polls are paced: a real
	// reconnecting client issues one getChanges and leaves, so the storm is
	// many bounded-rate readers, not busy-loops — and on a single-core runner
	// an unpaced reader loop would measure scheduler fairness against the
	// committers rather than the read path's locking behaviour.
	const (
		coldPause = 5 * time.Millisecond
		warmPause = time.Millisecond
	)
	var (
		coldReads, warmReads atomic.Int64
		readErrs, shortReads atomic.Int64
		versionRegressions   atomic.Int64
		stop                 = make(chan struct{})
		readerWG             sync.WaitGroup
	)
	for r := 0; r < sz.reconnColdReaders; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			cb, err := omq.NewBroker(m, omq.WithID(fmt.Sprintf("reconn-cold-%d", r)), omq.WithRegistry(reg))
			if err != nil {
				readErrs.Add(1)
				return
			}
			defer cb.Close()
			proxy := cb.Lookup(core.ServiceOID)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var state []metastore.ItemVersion
				if err := proxy.Call("GetChanges", &state, workspace); err != nil {
					readErrs.Add(1)
					return
				}
				if len(state) < sz.reconnSeedItems {
					shortReads.Add(1)
				}
				coldReads.Add(1)
				time.Sleep(coldPause)
			}
		}(r)
	}
	for r := 0; r < sz.reconnWarmReaders; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			cb, err := omq.NewBroker(m, omq.WithID(fmt.Sprintf("reconn-warm-%d", r)), omq.WithRegistry(reg))
			if err != nil {
				readErrs.Add(1)
				return
			}
			defer cb.Close()
			proxy := cb.Lookup(core.ServiceOID)
			var cursor uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var reply core.ChangesReply
				if err := proxy.Call("GetChangesSince", &reply, workspace, cursor); err != nil {
					readErrs.Add(1)
					return
				}
				if reply.Version < cursor {
					versionRegressions.Add(1)
				}
				cursor = reply.Version
				warmReads.Add(1)
				time.Sleep(warmPause)
			}
		}(r)
	}

	slo := obs.NewSLOTracker(reg, obs.SLOConfig{Name: "matrix_reconn", Target: sz.commitSLO, Objective: 0.99})
	s := &ScenarioResult{Name: "reconnect", SLOTarget: sz.commitSLO, Converged: true}
	start := time.Now()
	stormLats, stormFailed, perr := commitPhase("storm")
	close(stop)
	readerWG.Wait()
	if perr != nil {
		return nil, perr
	}
	s.Elapsed = time.Since(start)
	s.Ops = sz.reconnCommits
	for _, l := range stormLats {
		slo.Observe(l)
	}

	if n := baseFailed + stormFailed; n > 0 {
		s.Converged = false
		s.Violations = append(s.Violations, fmt.Sprintf("%d of %d commits failed", n, 2*sz.reconnCommits))
	}
	// Every acked commit must be durable despite the read storm.
	state, err := meta.State(workspace)
	if err != nil {
		return nil, err
	}
	if want := sz.reconnSeedItems + 2*sz.reconnCommits - baseFailed - stormFailed; len(state) != want {
		s.Converged = false
		s.Violations = append(s.Violations,
			fmt.Sprintf("metadata store holds %d items, want %d", len(state), want))
	}
	if coldReads.Load() == 0 || warmReads.Load() == 0 {
		s.Converged = false
		s.Violations = append(s.Violations,
			fmt.Sprintf("storm never materialized: %d cold / %d warm reads", coldReads.Load(), warmReads.Load()))
	}
	if n := readErrs.Load(); n > 0 {
		s.Converged = false
		s.Violations = append(s.Violations, fmt.Sprintf("%d reader calls failed", n))
	}
	if n := shortReads.Load(); n > 0 {
		s.Converged = false
		s.Violations = append(s.Violations,
			fmt.Sprintf("%d full-state reads returned fewer than the %d seeded items", n, sz.reconnSeedItems))
	}
	if n := versionRegressions.Load(); n > 0 {
		s.Converged = false
		s.Violations = append(s.Violations,
			fmt.Sprintf("%d changes-since replies regressed the workspace version", n))
	}
	scenarioStats(s, stormLats, slo)
	// The headline gate: the storm must not collapse the commit path.
	if s.P99 > 8*baseP99 && s.P99 > 100*time.Millisecond {
		s.Converged = false
		s.Violations = append(s.Violations,
			fmt.Sprintf("storm commit p99 %v collapsed vs no-reader baseline %v", s.P99, baseP99))
	}
	s.Retries = reg.CounterValue("omq_retry_attempts_total", "oid", core.ServiceOID)
	s.Extra = []benchhist.Metric{
		{Name: s.Name, Unit: "base-p99-ms", Value: float64(baseP99) / 1e6},
		{Name: s.Name, Unit: "cold-reads", Value: float64(coldReads.Load())},
		{Name: s.Name, Unit: "warm-reads", Value: float64(warmReads.Load())},
		{Name: s.Name, Unit: "fallback-fulls", Value: float64(reg.CounterValue("metastore_changes_compaction_fallback_total"))},
	}
	return s, nil
}
