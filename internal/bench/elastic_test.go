package bench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"stacksync/internal/chunker"
	"stacksync/internal/client"
	"stacksync/internal/core"
	"stacksync/internal/metastore"
	"stacksync/internal/mq"
	"stacksync/internal/objstore"
	"stacksync/internal/omq"
	"stacksync/internal/provision"
)

// TestElasticSyncServiceEndToEnd ties the whole paper together on real
// queues: a Supervisor runs the backlog-aware reactive policy over
// RemoteBroker-spawned SyncService instances while a client floods
// commitRequests. The fleet must grow under the burst, every commit must
// land, and the fleet must shrink back once the burst ends.
func TestElasticSyncServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second elasticity experiment")
	}
	m := mq.NewBroker()
	defer m.Close()
	meta := metastore.NewStore()
	defer meta.Close()
	if err := meta.CreateWorkspace(metastore.Workspace{ID: "el-ws", Owner: "u"}); err != nil {
		t.Fatal(err)
	}
	storage := objstore.NewMemory()

	nodeBroker, err := omq.NewBroker(m, omq.WithID("10-node"))
	if err != nil {
		t.Fatal(err)
	}
	defer nodeBroker.Close()
	rb, err := omq.NewRemoteBroker(nodeBroker)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	notifBroker, err := omq.NewBroker(m, omq.WithID("20-notif"))
	if err != nil {
		t.Fatal(err)
	}
	defer notifBroker.Close()
	// Each instance sleeps per request so a single instance saturates
	// quickly and backlog builds.
	rb.RegisterFactory(core.ServiceOID, func() (interface{}, error) {
		return &slowServiceAPI{inner: core.NewService(meta, notifBroker).API(), delay: 4 * time.Millisecond}, nil
	})
	if err := m.DeclareQueue(core.ServiceOID); err != nil {
		t.Fatal(err)
	}

	sla := provision.SLA{D: 20 * time.Millisecond, S: 4 * time.Millisecond, VarService: 1e-6}
	reactive := provision.NewReactive(sla, 0.2, 0.2, nil)
	reactive.DrainWindow = 500 * time.Millisecond
	supBroker, err := omq.NewBroker(m, omq.WithID("00-sup"))
	if err != nil {
		t.Fatal(err)
	}
	defer supBroker.Close()
	sup, err := omq.StartSupervisor(supBroker, omq.SupervisorConfig{
		OID:          core.ServiceOID,
		CheckEvery:   50 * time.Millisecond,
		Provisioner:  reactive,
		MaxInstances: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	waitInstances := func(min int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for rb.InstanceCount(core.ServiceOID) < min {
			if time.Now().After(deadline) {
				t.Fatalf("fleet stuck at %d instances, want >= %d", rb.InstanceCount(core.ServiceOID), min)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitInstances(1)

	clientBroker, err := omq.NewBroker(m, omq.WithID("30-client"))
	if err != nil {
		t.Fatal(err)
	}
	defer clientBroker.Close()
	cl, err := client.NewClient(client.Config{
		UserID: "u", DeviceID: "d", WorkspaceID: "el-ws",
		Broker: clientBroker, Storage: storage,
		Chunker: chunker.Fixed{ChunkSize: 4 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Burst: fire many async commits far faster than one instance drains.
	const commits = 400
	for i := 0; i < commits; i++ {
		if err := cl.PutFile(fmt.Sprintf("burst/f%04d.txt", i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The backlog forces a scale-out.
	waitInstances(2)
	// Every commit lands despite the churn.
	for i := 0; i < commits; i++ {
		if err := cl.WaitForVersion(fmt.Sprintf("burst/f%04d.txt", i), 1, 30*time.Second); err != nil {
			t.Fatalf("commit %d lost: %v", i, err)
		}
	}
	// With the queue drained and arrivals at zero, the Supervisor shrinks
	// the pool back to the floor.
	deadline := time.Now().Add(15 * time.Second)
	for rb.InstanceCount(core.ServiceOID) > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never shrank: %d instances", rb.InstanceCount(core.ServiceOID))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(sup.History()) == 0 {
		t.Fatal("no scale events recorded")
	}
}

// slowServiceAPI wraps the SyncService API with a fixed per-request delay,
// standing in for the paper's 50 ms commit service time at test scale.
type slowServiceAPI struct {
	inner *core.API
	delay time.Duration
}

// CommitRequest forwards after the modelled service time.
func (s *slowServiceAPI) CommitRequest(ctx context.Context, req core.CommitRequest) error {
	time.Sleep(s.delay)
	return s.inner.CommitRequest(ctx, req)
}

// GetChanges forwards.
func (s *slowServiceAPI) GetChanges(ctx context.Context, workspace string) ([]metastore.ItemVersion, error) {
	return s.inner.GetChanges(ctx, workspace)
}

// GetChangesSince forwards.
func (s *slowServiceAPI) GetChangesSince(ctx context.Context, workspace string, since uint64) (core.ChangesReply, error) {
	return s.inner.GetChangesSince(ctx, workspace, since)
}

// GetWorkspaces forwards.
func (s *slowServiceAPI) GetWorkspaces(user string) ([]metastore.Workspace, error) {
	return s.inner.GetWorkspaces(user)
}
