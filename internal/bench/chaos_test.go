package bench

import (
	"os"
	"testing"
	"time"
)

// TestChaosSoakConverges runs the full chaos harness with a fixed seed and
// asserts every convergence invariant: no acked commit lost, identical end
// state on all devices, no spurious conflict copies, crash respawn under
// ~1 s, and a seed-reproducible fault schedule. The default run is sized for
// CI; set STACKSYNC_CHAOS_LONG=1 for the full soak.
func TestChaosSoakConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	cfg := ChaosConfig{Seed: 42, Clients: 3, CommitsPerClient: 25, CommitGap: 30 * time.Millisecond}
	if os.Getenv("STACKSYNC_CHAOS_LONG") != "" {
		cfg.Clients = 5
		cfg.CommitsPerClient = 120
		cfg.CommitGap = 20 * time.Millisecond
		cfg.Settle = 60 * time.Second
	}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if !res.Converged {
		t.Fatalf("did not converge (settle window %v)", cfg.Settle)
	}
	if !res.ScheduleStable {
		t.Fatal("fault schedule not byte-identical across rebuilds")
	}
	if res.Crashes == 0 {
		t.Error("no crashes were injected; the soak exercised nothing")
	}
	if got := len(res.FaultCounts); got == 0 {
		t.Error("no faults fired; injection is not wired")
	}
	t.Logf("chaos: %d commits, %d crashes, settle %v, max respawn %v, faults %v",
		res.Commits, res.Crashes, res.SettleTime, res.MaxRespawn, res.FaultCounts)
}

// TestChaosScheduleByteIdentical nails the determinism contract without
// running the stack: two plans from the same seed describe byte-identical
// schedules; a different seed differs.
func TestChaosScheduleByteIdentical(t *testing.T) {
	cfg := ChaosConfig{Seed: 7}
	cfg.applyDefaults()
	a := chaosPlan(cfg, nil).Describe(1024)
	b := chaosPlan(cfg, nil).Describe(1024)
	if a != b {
		t.Fatal("same seed produced different schedules")
	}
	other := cfg
	other.Seed = 8
	if a == chaosPlan(other, nil).Describe(1024) {
		t.Fatal("different seeds produced identical schedules")
	}
}
