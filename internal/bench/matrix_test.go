package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stacksync/internal/benchhist"
)

// TestMatrixSmoke runs all five scenarios at smoke size: every scenario must
// converge with zero violations and emit a well-formed, gateable history
// record.
func TestMatrixSmoke(t *testing.T) {
	res, err := RunMatrix(MatrixConfig{Seed: 7, Smoke: true})
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	if len(res.Scenarios) != 5 {
		t.Fatalf("got %d scenarios, want 5", len(res.Scenarios))
	}
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("matrix violations: %v", v)
	}
	wantNames := []string{"fanout", "zipf", "churn", "coldstart", "reconnect"}
	prov := benchhist.Provenance{Commit: "test", GoVersion: "go", GOMAXPROCS: 1, Host: "h"}
	for i, s := range res.Scenarios {
		if s.Name != wantNames[i] {
			t.Errorf("scenario %d = %s, want %s", i, s.Name, wantNames[i])
		}
		if !s.Converged {
			t.Errorf("%s did not converge", s.Name)
		}
		if s.Ops == 0 || s.OpsPerSec <= 0 {
			t.Errorf("%s throughput empty: ops=%d ops/s=%f", s.Name, s.Ops, s.OpsPerSec)
		}
		if s.P99 <= 0 || s.P50 > s.P99 {
			t.Errorf("%s quantiles inconsistent: p50=%v p99=%v", s.Name, s.P50, s.P99)
		}
		if s.Attainment < 0 || s.Attainment > 1 {
			t.Errorf("%s attainment out of range: %f", s.Name, s.Attainment)
		}

		rec := s.HistoryRecord(prov, time.Date(2026, 8, 2, 0, 0, 0, 0, time.UTC))
		if rec.Suite != "scenario/"+s.Name {
			t.Errorf("record suite = %q", rec.Suite)
		}
		gated := 0
		for _, m := range rec.Metrics {
			if m.Gated() {
				gated++
			}
		}
		if gated < 3 {
			t.Errorf("%s record has %d gated metrics, want >=3 (ops/s, p99, attainment)", s.Name, gated)
		}
	}

	// The records must gate cleanly against a same-shaped baseline.
	var recs []benchhist.Record
	for i := 0; i < 2; i++ {
		rec := res.Scenarios[0].HistoryRecord(prov, time.Date(2026, 8, 2, 0, i, 0, 0, time.UTC))
		rec.Commit = rec.Commit + string(rune('a'+i))
		recs = append(recs, rec)
	}
	rep, err := benchhist.GateSuite(&benchhist.History{Records: recs}, recs[0].Suite, benchhist.GateConfig{})
	if err != nil {
		t.Fatalf("GateSuite on scenario records: %v", err)
	}
	if rep.Failed {
		t.Fatalf("identical scenario records failed the gate: %+v", rep.Verdicts)
	}

	var buf bytes.Buffer
	res.Print(&buf)
	for _, want := range []string{"fanout", "zipf", "churn", "coldstart", "reconnect", "converged"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("matrix summary missing %q:\n%s", want, buf.String())
		}
	}
}
