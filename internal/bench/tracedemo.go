package bench

import (
	"fmt"
	"io"
	"time"

	"stacksync/internal/obs"
)

// RunTraceDemo deploys a two-device stack with tracing enabled, syncs one
// file from device 0 to device 1, and prints the end-to-end trace of that
// commit: the timeline of every hop (client commit, chunk upload, queue
// dwell, handler, metadata commit, notification fan-out, remote apply) plus
// the critical-path breakdown, followed by the stack's metrics registry.
//
// Tracer and reg are optional; when nil the demo uses private ones. Passing
// them in lets a caller (the experiments binary with -admin) keep serving
// the same sink and registry after the demo returns.
func RunTraceDemo(out io.Writer, tracer *obs.Tracer, reg *obs.Registry) error {
	if tracer == nil {
		tracer = obs.NewTracer()
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	st, err := NewStack(StackOptions{
		Devices: 2, Tracer: tracer, Registry: reg, WorkspaceID: "trace-ws",
	})
	if err != nil {
		return err
	}
	defer st.Close()

	content := make([]byte, 192*1024)
	for i := range content {
		content[i] = byte(i * 31)
	}
	if err := st.Client(0).PutFile("docs/report.bin", content); err != nil {
		return err
	}
	if err := st.Client(1).WaitForVersion("docs/report.bin", 1, 10*time.Second); err != nil {
		return fmt.Errorf("bench: device 1 never converged: %w", err)
	}

	id, spans, err := commitTrace(tracer.Sink(), 2*time.Second)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Trace demo — one PutFile on dev-0, observed end to end")
	fmt.Fprintln(out)
	obs.WriteTraceReport(out, id, spans)
	fmt.Fprintln(out)
	fmt.Fprintln(out, "registry after the commit:")
	reg.WriteText(out)
	return nil
}

// commitTrace finds the client.commit trace in the sink and waits for it to
// stop growing — the notification fan-out to the writer's own device lands
// just after the reader converges — then returns its spans.
func commitTrace(sink *obs.SpanSink, timeout time.Duration) (string, []obs.Span, error) {
	deadline := time.Now().Add(timeout)
	var id string
	last := -1
	for {
		if id == "" {
			for _, s := range sink.Summaries() {
				if s.Root == "client.commit" {
					id = s.TraceID
					break
				}
			}
		}
		if id != "" {
			spans := sink.Trace(id)
			if len(spans) == last {
				return id, spans, nil
			}
			last = len(spans)
		}
		if time.Now().After(deadline) {
			if id == "" {
				return "", nil, fmt.Errorf("bench: no client.commit trace recorded")
			}
			return id, sink.Trace(id), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}
